//! KDBB-like baseline (Gao et al., AAAI 2022 \[16\]).
//!
//! KDBB was the practically fastest maximum k-defective clique solver before
//! kDC. Its original binary is not publicly available (the kDC paper itself
//! compares against numbers reported in \[16\]); this reimplementation keeps
//! the *algorithmic* content attributed to KDBB by the paper —
//!
//! * preprocessing: an initial heuristic solution, the (lb−k)-core rule RR5
//!   and the (lb−k+1)-truss rule RR6;
//! * bounding: the UB3 prefix bound (proposed in \[16\]) and the classic UB2;
//! * no RR2/RR3/RR4, no UB1, plain degree-based branching —
//!
//! on top of the same engine and data structures as kDC, so measured gaps
//! reflect the algorithmic differences, not implementation quality. Its time
//! complexity is the trivial `O*(2^n)` (no branching-rule argument applies).

use kdc::{Solution, Solver, SolverConfig};
use kdc_graph::Graph;
use std::time::Duration;

/// Maximum k-defective clique via the KDBB-like configuration.
pub fn solve(g: &Graph, k: usize) -> Solution {
    solve_with_limit(g, k, None)
}

/// Same as [`solve`] with an optional wall-clock limit.
pub fn solve_with_limit(g: &Graph, k: usize, limit: Option<Duration>) -> Solution {
    let mut cfg = SolverConfig::kdbb_like();
    cfg.time_limit = limit;
    Solver::new(g, k, cfg).solve()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdc_graph::{gen, named};

    #[test]
    fn agrees_with_naive() {
        let mut rng = gen::seeded_rng(100);
        for _ in 0..10 {
            let g = gen::gnp(16, 0.45, &mut rng);
            for k in [0usize, 1, 3] {
                let expected = crate::naive::max_defective_size_naive(&g, k);
                let sol = solve(&g, k);
                assert_eq!(sol.size(), expected, "k = {k}");
                assert!(g.is_k_defective_clique(&sol.vertices, k));
            }
        }
    }

    #[test]
    fn figure2_sizes() {
        let g = named::figure2();
        assert_eq!(solve(&g, 1).size(), 5);
        assert_eq!(solve(&g, 2).size(), 6);
    }
}
