//! An independent brute-force exact solver, used purely as a correctness
//! oracle for the optimised solvers. It shares no code with the kDC engine:
//! plain include/exclude enumeration over vertices with missing-edge pruning.

use kdc_graph::{Graph, VertexId};

/// Exact maximum k-defective clique by exhaustive search. Only sensible for
/// small graphs (roughly `n ≤ 30`).
///
/// Returns one maximum solution (ties broken arbitrarily but
/// deterministically).
pub fn max_defective_clique_naive(g: &Graph, k: usize) -> Vec<VertexId> {
    let n = g.n();
    let mut best: Vec<VertexId> = Vec::new();
    let mut current: Vec<VertexId> = Vec::new();
    // missing[i] tracks |Ē(current)| incrementally.
    recurse(g, k, 0, 0, &mut current, &mut best);
    debug_assert!(g.is_k_defective_clique(&best, k) || n == 0);
    best
}

fn recurse(
    g: &Graph,
    k: usize,
    next: usize,
    missing: usize,
    current: &mut Vec<VertexId>,
    best: &mut Vec<VertexId>,
) {
    let n = g.n();
    if current.len() > best.len() {
        *best = current.clone();
    }
    if next == n {
        return;
    }
    // Even taking every remaining vertex cannot beat best → prune.
    if current.len() + (n - next) <= best.len() {
        return;
    }
    let v = next as VertexId;

    // Include v if feasible.
    let new_missing = missing + current.iter().filter(|&&u| !g.has_edge(u, v)).count();
    if new_missing <= k {
        current.push(v);
        recurse(g, k, next + 1, new_missing, current, best);
        current.pop();
    }
    // Exclude v.
    recurse(g, k, next + 1, missing, current, best);
}

/// Size-only convenience wrapper.
pub fn max_defective_size_naive(g: &Graph, k: usize) -> usize {
    max_defective_clique_naive(g, k).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdc_graph::gen;

    #[test]
    fn empty_graph() {
        assert_eq!(max_defective_size_naive(&Graph::empty(0), 3), 0);
        // n isolated vertices: any s with s(s-1)/2 ≤ k fit.
        assert_eq!(max_defective_size_naive(&Graph::empty(5), 1), 2);
        assert_eq!(max_defective_size_naive(&Graph::empty(5), 3), 3);
        assert_eq!(max_defective_size_naive(&Graph::empty(5), 100), 5);
    }

    #[test]
    fn clique_is_found() {
        let g = gen::complete(6);
        for k in 0..4 {
            assert_eq!(max_defective_size_naive(&g, k), 6);
        }
    }

    #[test]
    fn cycle5() {
        // C5: max clique 2; k=1 admits 3 (a path of 2 edges); k=2 admits...
        // {a,b,c,d} consecutive misses (a,c),(a,d),(b,d) = 3 → size 4 needs k≥3.
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        assert_eq!(max_defective_size_naive(&g, 0), 2);
        assert_eq!(max_defective_size_naive(&g, 1), 3);
        assert_eq!(max_defective_size_naive(&g, 2), 3);
        assert_eq!(max_defective_size_naive(&g, 3), 4);
    }

    #[test]
    fn figure2_ground_truth() {
        // §2: max clique 5; max 1-defective 5; max 2-defective 6.
        let g = kdc_graph::named::figure2();
        assert_eq!(max_defective_size_naive(&g, 0), 5);
        assert_eq!(max_defective_size_naive(&g, 1), 5);
        assert_eq!(max_defective_size_naive(&g, 2), 6);
    }

    #[test]
    fn figure1_style_growth() {
        // The paper's Figure 1 narrative: k-defective cliques grow with k.
        let g = kdc_graph::named::figure2();
        let mut prev = 0;
        for k in 0..5 {
            let s = max_defective_size_naive(&g, k);
            assert!(s >= prev);
            prev = s;
        }
    }

    #[test]
    fn solution_is_verified_defective() {
        let mut rng = gen::seeded_rng(13);
        for _ in 0..10 {
            let g = gen::gnp(12, 0.4, &mut rng);
            for k in [0, 1, 2, 4] {
                let c = max_defective_clique_naive(&g, k);
                assert!(g.is_k_defective_clique(&c, k));
            }
        }
    }
}
