//! MADEC⁺-like baseline (Chen et al., Computers & OR 2021 \[11\]).
//!
//! MADEC⁺ held the best pre-kDC time complexity, `O*(σ_k^n)` with
//! `σ_k = γ_{2k}`, and introduced the original colouring upper bound that
//! kDC's UB1 improves upon (Eq. (2) of the paper):
//!
//! ```text
//! |S| + Σ_i min(⌊(1+√(8k+1))/2⌋, |π_i|)
//! ```
//!
//! This reimplementation uses exactly that bound (instead of UB1), the core
//! rule RR5, and no RR2 — the missing RR2 is precisely why its branching
//! recurrence only achieves `γ_{2k}` (§3.1.2). The paper's experiments use
//! MADEC⁺p, a version tuned by the KDBB authors; numbers here play that role.

use kdc::{Solution, Solver, SolverConfig};
use kdc_graph::Graph;
use std::time::Duration;

/// Maximum k-defective clique via the MADEC-like configuration.
pub fn solve(g: &Graph, k: usize) -> Solution {
    solve_with_limit(g, k, None)
}

/// Same as [`solve`] with an optional wall-clock limit.
pub fn solve_with_limit(g: &Graph, k: usize, limit: Option<Duration>) -> Solution {
    let mut cfg = SolverConfig::madec_like();
    cfg.time_limit = limit;
    Solver::new(g, k, cfg).solve()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdc_graph::{gen, named};

    #[test]
    fn agrees_with_naive() {
        let mut rng = gen::seeded_rng(200);
        for _ in 0..10 {
            let g = gen::gnp(16, 0.45, &mut rng);
            for k in [0usize, 1, 3] {
                let expected = crate::naive::max_defective_size_naive(&g, k);
                let sol = solve(&g, k);
                assert_eq!(sol.size(), expected, "k = {k}");
            }
        }
    }

    #[test]
    fn figure2_sizes() {
        let g = named::figure2();
        assert_eq!(solve(&g, 1).size(), 5);
        assert_eq!(solve(&g, 2).size(), 6);
    }

    #[test]
    fn eq2_bound_explores_more_nodes_than_ub1() {
        // The headline claim of §3.2.1: UB1 is tighter than Eq. (2), so full
        // kDC should need no more search nodes than the MADEC-like config on
        // dense instances.
        let mut rng = gen::seeded_rng(201);
        let mut kdc_nodes = 0u64;
        let mut madec_nodes = 0u64;
        for _ in 0..5 {
            let g = gen::gnp(35, 0.5, &mut rng);
            let a = Solver::new(&g, 3, SolverConfig::kdc()).solve();
            let b = solve(&g, 3);
            assert_eq!(a.size(), b.size());
            kdc_nodes += a.stats.nodes;
            madec_nodes += b.stats.nodes;
        }
        assert!(
            kdc_nodes <= madec_nodes,
            "kDC explored {kdc_nodes} nodes vs MADEC-like {madec_nodes}"
        );
    }
}
