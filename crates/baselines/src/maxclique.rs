//! Exact maximum clique computation.
//!
//! A Tomita-style branch-and-bound over bitsets with a greedy-colouring
//! bound, preceded by degeneracy-based preprocessing. Stands in for MC-BRB
//! \[8\] in the Table 5/6 experiments, where the paper compares maximum
//! k-defective cliques against maximum cliques.

use kdc_graph::bitset::{BitMatrix, BitSet};
use kdc_graph::degeneracy;
use kdc_graph::graph::{Graph, VertexId};

/// Computes a maximum clique of `g` exactly. Suitable for graphs whose
/// (lb-core-reduced) size fits a dense bit-matrix.
pub fn max_clique(g: &Graph) -> Vec<VertexId> {
    // Initial lower bound: greedy clique along the degeneracy ordering.
    let mut best: Vec<VertexId> = greedy_clique(g);

    // Core-prune: a clique of size > lb needs vertices of degree ≥ lb.
    let keep = degeneracy::k_core_vertices(g, best.len().saturating_sub(1));
    if keep.is_empty() {
        return best;
    }
    let (sub, map) = g.induced_subgraph(&keep);
    let n = sub.n();
    let mut matrix = BitMatrix::new(n, n);
    for (u, v) in sub.edges() {
        matrix.set(u as usize, v as usize);
        matrix.set(v as usize, u as usize);
    }

    // Order candidates by degeneracy ordering for colouring quality.
    let order = degeneracy::peel(&sub).order;
    let mut searcher = CliqueSearch {
        matrix: &matrix,
        best_local: Vec::new(),
        best_size: best.len(),
        current: Vec::new(),
    };
    let mut p = BitSet::new(n);
    for &v in order.iter().rev() {
        p.insert(v as usize);
    }
    searcher.expand(&p);
    if searcher.best_local.len() > best.len() {
        best = searcher
            .best_local
            .iter()
            .map(|&v| map[v as usize])
            .collect();
    }
    best.sort_unstable();
    best
}

/// Size-only convenience wrapper.
pub fn max_clique_size(g: &Graph) -> usize {
    max_clique(g).len()
}

/// Greedy clique: walk the degeneracy ordering backwards, keeping vertices
/// adjacent to everything taken so far.
fn greedy_clique(g: &Graph) -> Vec<VertexId> {
    let order = degeneracy::peel(g).order;
    let mut clique: Vec<VertexId> = Vec::new();
    for &v in order.iter().rev() {
        if clique.iter().all(|&u| g.has_edge(u, v)) {
            clique.push(v);
        }
    }
    clique.sort_unstable();
    clique
}

struct CliqueSearch<'m> {
    matrix: &'m BitMatrix,
    best_local: Vec<u32>,
    best_size: usize,
    current: Vec<u32>,
}

impl CliqueSearch<'_> {
    /// Tomita-style expansion: greedily colour `p` into independent classes,
    /// then branch on vertices in descending colour order — a vertex with
    /// colour `c` extends the current clique to at most `|current| + c + 1`,
    /// enabling early cut-off.
    fn expand(&mut self, p: &BitSet) {
        // Sequential colouring: repeatedly peel a colour class (a maximal
        // set of mutually non-adjacent vertices of `p`).
        let mut uncolored = p.clone();
        let mut ordered: Vec<(u32, u32)> = Vec::new(); // (vertex, colour)
        let mut color = 0u32;
        while !uncolored.is_empty() {
            let mut class_candidates = uncolored.clone();
            while let Some(v) = class_candidates.first() {
                ordered.push((v as u32, color));
                uncolored.remove(v);
                class_candidates.remove(v);
                class_candidates.difference_with_words(self.matrix.row(v));
            }
            color += 1;
        }

        // Branch in reverse (descending colour).
        let mut p_live = p.clone();
        for &(v, c) in ordered.iter().rev() {
            if self.current.len() + (c as usize + 1) <= self.best_size {
                return; // colour bound cuts the rest (all have colour ≤ c)
            }
            self.current.push(v);
            let mut next = p_live.clone();
            next.intersect_with_words(self.matrix.row(v as usize));
            if next.is_empty() {
                if self.current.len() > self.best_size {
                    self.best_size = self.current.len();
                    self.best_local = self.current.clone();
                }
            } else {
                self.expand(&next);
            }
            self.current.pop();
            p_live.remove(v as usize);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdc_graph::{gen, named};

    #[test]
    fn clique_graphs() {
        assert_eq!(max_clique_size(&gen::complete(6)), 6);
        assert_eq!(max_clique_size(&Graph::empty(5)), 1);
        assert_eq!(max_clique_size(&Graph::empty(0)), 0);
    }

    #[test]
    fn figure2_max_clique() {
        let g = named::figure2();
        let c = max_clique(&g);
        assert_eq!(c, vec![7, 8, 9, 10, 11], "the K5 on v8..v12");
    }

    #[test]
    fn bipartite_max_clique_is_two() {
        let g = gen::complete_multipartite(&[4, 4]);
        assert_eq!(max_clique_size(&g), 2);
        let g3 = gen::complete_multipartite(&[3, 3, 3]);
        assert_eq!(max_clique_size(&g3), 3);
    }

    #[test]
    fn matches_naive_on_random_graphs() {
        let mut rng = gen::seeded_rng(4242);
        for _ in 0..20 {
            let g = gen::gnp(18, 0.5, &mut rng);
            let expected = crate::naive::max_defective_size_naive(&g, 0);
            let got = max_clique_size(&g);
            assert_eq!(got, expected);
            let c = max_clique(&g);
            assert_eq!(g.missing_edges_within(&c), 0, "result must be a clique");
        }
    }

    #[test]
    fn planted_clique_found() {
        let mut rng = gen::seeded_rng(9);
        let (g, planted) = gen::planted_defective_clique(200, 15, 0, 0.03, &mut rng);
        assert_eq!(max_clique_size(&g), planted.len());
    }
}
