#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! # kdc-baselines
//!
//! Comparison solvers for the kDC suite:
//!
//! * [`naive`] — an independent brute-force exact solver used as a
//!   correctness oracle (shares no code with the engine);
//! * [`maxclique`] — a Tomita-style exact maximum clique solver (stands in
//!   for MC-BRB in the Table 5/6 experiments);
//! * [`kdbb`] — a KDBB-like configuration \[16\], the pre-kDC practical
//!   state of the art;
//! * [`madec`] — a MADEC⁺-like configuration \[11\], the pre-kDC complexity
//!   state of the art;
//! * [`rds`] — Russian Doll Search \[44\], the problem's first exact
//!   algorithm, implemented independently of the kDC engine.
//!
//! The kdbb/madec baselines are *rule-faithful reconfigurations* of the same
//! engine that powers kDC (see DESIGN.md §2.3): identical data structures,
//! different algorithmic content. This matches the paper's own ablation
//! philosophy and isolates the contribution of BR/RR2, RR3/RR4 and UB1.

pub mod kdbb;
pub mod madec;
pub mod maxclique;
pub mod naive;
pub mod rds;

pub use maxclique::{max_clique, max_clique_size};
pub use naive::{max_defective_clique_naive, max_defective_size_naive};
pub use rds::{max_defective_clique_rds, max_defective_size_rds};
