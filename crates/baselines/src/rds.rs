//! Russian Doll Search (RDS) for the maximum k-defective clique.
//!
//! The first exact algorithm for this problem (Trukhanov et al., Comput.
//! Optim. Appl. 2013 \[44\]) applies Verfaillie's Russian Doll Search to
//! hereditary structures: process vertices in reverse of a fixed ordering
//! `v_1 … v_n` and solve the nested subproblems
//!
//! ```text
//! f(i) = size of the largest k-defective clique that contains v_i and lies
//!        inside the suffix {v_i, …, v_n}
//! ```
//!
//! using the already-solved dolls as an upper bound: any extension drawn
//! from the suffix starting at `j` is itself a k-defective clique (the
//! property is hereditary), so it has at most `g(j) = max_{l ≥ j} f(l)`
//! vertices, and a partial solution `S` with candidates in suffix `j` can be
//! pruned once `|S| + g(j) ≤ best`.
//!
//! This implementation orders vertices by degeneracy (small suffixes first)
//! and exists primarily as an *independent* exact solver for
//! cross-validation; it shares no search machinery with the kDC engine.

use kdc_graph::degeneracy;
use kdc_graph::graph::{Graph, VertexId};

/// Exact maximum k-defective clique via Russian Doll Search.
pub fn max_defective_clique_rds(g: &Graph, k: usize) -> Vec<VertexId> {
    let n = g.n();
    if n == 0 {
        return Vec::new();
    }
    let order = degeneracy::peel(g).order;
    let mut rank = vec![0usize; n];
    for (i, &v) in order.iter().enumerate() {
        rank[v as usize] = i;
    }

    let mut solver = Rds {
        g,
        k,
        order: &order,
        // g_best[j] = size of the largest k-defective clique inside the
        // suffix starting at position j (computed right to left).
        g_best: vec![0usize; n + 1],
        best: Vec::new(),
        current: Vec::new(),
    };

    for i in (0..n).rev() {
        let v = solver.order[i];
        // Subproblem i: solutions containing v, drawn from positions > i.
        solver.current.clear();
        solver.current.push(v);
        let cands: Vec<VertexId> = ((i + 1)..n).map(|j| solver.order[j]).collect();
        let mut f_i = 1usize; // {v} itself
        solver.search(&cands, 0, 0, &mut f_i);
        solver.g_best[i] = f_i.max(solver.g_best[i + 1]);
    }
    let mut best = solver.best;
    if best.is_empty() {
        // Graphs where the best is a single vertex.
        best.push(order[n - 1]);
    }
    best.sort_unstable();
    debug_assert!(g.is_k_defective_clique(&best, k));
    best
}

/// Size-only convenience wrapper.
pub fn max_defective_size_rds(g: &Graph, k: usize) -> usize {
    max_defective_clique_rds(g, k).len()
}

struct Rds<'g> {
    g: &'g Graph,
    k: usize,
    order: &'g [VertexId],
    g_best: Vec<usize>,
    best: Vec<VertexId>,
    current: Vec<VertexId>,
}

impl Rds<'_> {
    /// Include/exclude search over `cands[from..]`; `missing` counts the
    /// missing edges inside `current`. Updates `f_i` (the subproblem record)
    /// and the global incumbent.
    fn search(&mut self, cands: &[VertexId], from: usize, missing: usize, f_i: &mut usize) {
        if self.current.len() > *f_i {
            *f_i = self.current.len();
            if self.current.len() > self.best.len() {
                self.best = self.current.clone();
            }
        }
        if from == cands.len() {
            return;
        }
        // Russian-doll bound: everything still addable lives in the suffix
        // of cands[from], whose largest k-defective clique is g_best of the
        // corresponding position. (cands follow `order`, so the position of
        // cands[from] is n − (cands.len() − from).)
        let pos = self.order.len() - (cands.len() - from);
        let doll = self.g_best[pos];
        if self.current.len() + doll.min(cands.len() - from) <= *f_i {
            return;
        }

        let v = cands[from];
        // Include v if feasible.
        let added = self
            .current
            .iter()
            .filter(|&&u| !self.g.has_edge(u, v))
            .count();
        if missing + added <= self.k {
            self.current.push(v);
            self.search(cands, from + 1, missing + added, f_i);
            self.current.pop();
        }
        // Exclude v.
        self.search(cands, from + 1, missing, f_i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdc_graph::{gen, named};

    #[test]
    fn figure2_ground_truth() {
        let g = named::figure2();
        for (k, expected) in [(0usize, 5usize), (1, 5), (2, 6), (5, 7)] {
            assert_eq!(max_defective_size_rds(&g, k), expected, "k = {k}");
        }
    }

    #[test]
    fn agrees_with_naive_on_random_graphs() {
        let mut rng = gen::seeded_rng(300);
        for trial in 0..15 {
            let g = gen::gnp(15, 0.4, &mut rng);
            for k in [0usize, 1, 3, 6] {
                let expected = crate::naive::max_defective_size_naive(&g, k);
                assert_eq!(
                    max_defective_size_rds(&g, k),
                    expected,
                    "trial {trial} k {k}"
                );
            }
        }
    }

    #[test]
    fn handles_edge_cases() {
        assert!(max_defective_clique_rds(&Graph::empty(0), 2).is_empty());
        assert_eq!(max_defective_size_rds(&Graph::empty(1), 0), 1);
        assert_eq!(max_defective_size_rds(&Graph::empty(6), 1), 2);
        assert_eq!(max_defective_size_rds(&gen::complete(7), 3), 7);
    }

    #[test]
    fn solves_mid_size_planted_instance() {
        let mut rng = gen::seeded_rng(301);
        let (g, planted) = gen::planted_defective_clique(60, 10, 2, 0.08, &mut rng);
        let sol = max_defective_clique_rds(&g, 2);
        assert!(sol.len() >= planted.len());
        assert!(g.is_k_defective_clique(&sol, 2));
    }
}
