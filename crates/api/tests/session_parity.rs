//! Session-parity suite: the [`Session`] layer must answer **byte-identical
//! solutions and statuses** to the direct core entry points
//! ([`kdc::Solver`], [`kdc::decompose::solve_decomposed`],
//! [`kdc::topr::top_r_maximal`]) across every preset and k ∈ {0, 1, 2, 3},
//! warm and cold — the session adds residency, never a different answer.
//!
//! Run in release mode by CI alongside the ctcp-parity step.

use kdc::{decompose, topr, Solver, SolverConfig};
use kdc_api::{Budget, Options, Query, Session};
use kdc_graph::{gen, named, Graph};

const PRESETS: [&str; 5] = ["kdc", "kdc_t", "kdclub", "kdbb", "madec"];
const KS: [usize; 4] = [0, 1, 2, 3];

fn test_graphs() -> Vec<(&'static str, Graph)> {
    let mut rng = gen::seeded_rng(20_240_601);
    vec![
        ("figure2", named::figure2()),
        ("gnp28", gen::gnp(28, 0.35, &mut rng)),
        (
            "planted",
            gen::planted_defective_clique(90, 9, 2, 0.06, &mut rng).0,
        ),
    ]
}

#[test]
fn cold_session_solves_are_byte_identical_to_direct_solver() {
    for (name, g) in test_graphs() {
        for preset in PRESETS {
            for k in KS {
                let direct = Solver::new(&g, k, SolverConfig::from_preset(preset).unwrap()).solve();
                let session = Session::new(g.clone());
                let outcome = session
                    .run(
                        &Query::Solve { k },
                        &Budget::default(),
                        &Options::preset(preset).unwrap(),
                    )
                    .unwrap();
                assert_eq!(outcome.status, direct.status, "{name} {preset} k={k}");
                assert_eq!(
                    outcome.witnesses,
                    vec![direct.vertices],
                    "{name} {preset} k={k}: cold session must be byte-identical"
                );
            }
        }
    }
}

#[test]
fn warm_session_solves_stay_byte_identical() {
    // Warm = second query on a held session. The memo path answers with the
    // stored (byte-identical) solution; the memo-dodging path (custom
    // options) resumes the resident reducer and is seeded with the stored
    // witness, and must land on the very same vertex set.
    for (name, g) in test_graphs() {
        for preset in PRESETS {
            let session = Session::new(g.clone());
            for k in KS {
                let direct = Solver::new(&g, k, SolverConfig::from_preset(preset).unwrap()).solve();
                let cold = session
                    .run(
                        &Query::Solve { k },
                        &Budget::default(),
                        &Options::preset(preset).unwrap(),
                    )
                    .unwrap();
                let memo = session
                    .run(
                        &Query::Solve { k },
                        &Budget::default(),
                        &Options::preset(preset).unwrap(),
                    )
                    .unwrap();
                assert!(memo.cache.result_memo_hit, "{name} {preset} k={k}");
                let warm = session
                    .run(
                        &Query::Solve { k },
                        &Budget::default(),
                        &Options::custom(SolverConfig::from_preset(preset).unwrap()),
                    )
                    .unwrap();
                assert!(!warm.cache.result_memo_hit, "{name} {preset} k={k}");
                for (label, outcome) in [("cold", &cold), ("memo", &memo), ("warm", &warm)] {
                    assert_eq!(
                        outcome.status, direct.status,
                        "{name} {preset} k={k} ({label})"
                    );
                    assert_eq!(
                        outcome.witnesses,
                        vec![direct.vertices.clone()],
                        "{name} {preset} k={k} ({label}) must be byte-identical"
                    );
                }
            }
        }
    }
}

#[test]
fn threaded_session_solves_match_direct_decomposition() {
    // The parallel path races workers for the incumbent, so the vertex set
    // is not deterministic — sizes, statuses and validity are the contract.
    for (name, g) in test_graphs() {
        for k in KS {
            let direct = decompose::solve_decomposed(&g, k, SolverConfig::kdc(), 2);
            let session = Session::new(g.clone());
            let outcome = session
                .run(
                    &Query::Solve { k },
                    &Budget::default().with_threads(2),
                    &Options::default(),
                )
                .unwrap();
            assert_eq!(outcome.status, direct.status, "{name} k={k}");
            assert_eq!(outcome.size(), direct.size(), "{name} k={k}");
            assert!(
                g.is_k_defective_clique(outcome.best().unwrap(), k),
                "{name} k={k}"
            );
        }
    }
}

#[test]
fn session_top_r_is_byte_identical_to_direct_topr() {
    for (name, g) in test_graphs() {
        for k in KS {
            for r in [1usize, 3] {
                let direct = topr::top_r_maximal(&g, k, r, SolverConfig::kdc());
                let session = Session::new(g.clone());
                let outcome = session
                    .run(
                        &Query::TopR {
                            k,
                            r,
                            diversify: false,
                        },
                        &Budget::default(),
                        &Options::default(),
                    )
                    .unwrap();
                assert!(outcome.is_optimal(), "{name} k={k} r={r}");
                assert_eq!(outcome.witnesses, direct, "{name} k={k} r={r}");
                // Warm repetition must not change the enumeration answer
                // (no lower-bound state may leak into the pool search).
                let again = session
                    .run(
                        &Query::TopR {
                            k,
                            r,
                            diversify: false,
                        },
                        &Budget::default(),
                        &Options::default(),
                    )
                    .unwrap();
                assert_eq!(again.witnesses, direct, "{name} k={k} r={r} (warm)");
            }
        }
    }
}

#[test]
fn solves_do_not_perturb_later_enumerations() {
    // A session that has already tightened reducers and stored witnesses
    // must still enumerate the full maximal family.
    let g = named::figure2();
    let session = Session::new(g.clone());
    for k in KS {
        session.solve(k);
    }
    for k in [0usize, 1, 2] {
        let direct = topr::enumerate_maximal(&g, k, SolverConfig::kdc());
        let outcome = session
            .run(
                &Query::Enumerate { k },
                &Budget::default(),
                &Options::default(),
            )
            .unwrap();
        assert_eq!(outcome.witnesses, direct, "k={k}");
    }
}

#[test]
fn session_counts_match_direct_counts() {
    let g = named::figure2();
    let session = Session::new(g.clone());
    session.solve(1); // warm state must not affect counting
    for (k, min_size) in [(0usize, 0usize), (1, 3), (2, 5)] {
        let direct = kdc::counting::count_k_defective_cliques(&g, k, min_size);
        let outcome = session
            .run(
                &Query::Count { k, min_size },
                &Budget::default(),
                &Options::default(),
            )
            .unwrap();
        assert_eq!(outcome.counts.unwrap(), direct, "k={k} min={min_size}");
    }
}
