//! Batch-parity suite: a [`Session::run_batch`] sweep must answer
//! **byte-identical witnesses and statuses** to fresh-session individual
//! solves of the same sub-queries — the batch layer adds cross-`k` seeds,
//! upper-bound caps and shared reducer passes, never a different answer.
//! The caps are checked only against the incumbent (never used to prune),
//! so sharing work cannot change which witness is reported.
//!
//! Run in release mode by CI alongside the session-parity step.

use kdc_api::{Budget, Options, Outcome, Session, SubQuery};
use kdc_graph::{gen, Graph};

const PRESETS: [&str; 2] = ["kdc", "kdc_t"];
const K_MAX: usize = 4;

/// Planted instances: a dense defective clique inside sparse noise, so
/// the optimum witness is unique and parity is byte-exact by construction.
fn test_graphs() -> Vec<(&'static str, Graph)> {
    let mut rng = gen::seeded_rng(20_240_808);
    vec![
        (
            "planted120",
            gen::planted_defective_clique(120, 10, 2, 0.05, &mut rng).0,
        ),
        (
            "planted160",
            gen::planted_defective_clique(160, 12, 3, 0.05, &mut rng).0,
        ),
    ]
}

/// One cold reference answer: a fresh session solving exactly one query.
fn cold_solve(g: &Graph, k: usize, preset: &str) -> Outcome {
    Session::new(g.clone())
        .run(
            &kdc_api::Query::Solve { k },
            &Budget::default(),
            &Options::preset(preset).unwrap(),
        )
        .unwrap()
}

#[test]
fn batch_sweep_is_byte_identical_to_individual_solves() {
    for (name, g) in test_graphs() {
        for preset in PRESETS {
            let reference: Vec<Outcome> = (0..=K_MAX).map(|k| cold_solve(&g, k, preset)).collect();
            let session = Session::new(g.clone());
            let subs: Vec<SubQuery> = (0..=K_MAX).map(SubQuery::solve).collect();
            let batch = session
                .run_batch(&subs, &Budget::default(), &Options::preset(preset).unwrap())
                .unwrap();
            assert_eq!(batch.outcomes.len(), K_MAX + 1, "{name} {preset}");
            for (k, (got, want)) in batch.outcomes.iter().zip(&reference).enumerate() {
                assert_eq!(got.status, want.status, "{name} {preset} k={k}");
                assert_eq!(
                    got.witnesses, want.witnesses,
                    "{name} {preset} k={k}: batch must be byte-identical"
                );
            }
            // The sweep must actually have shared work, not just agreed:
            // every k > 0 entry is seeded by an earlier optimum and its
            // reducer consumed batch-contributed bounds.
            assert!(batch.batch_witness_seeds >= 1, "{name} {preset}");
            assert!(batch.batch_ctcp_shares >= 1, "{name} {preset}");
        }
    }
}

#[test]
fn batch_answers_match_under_duplicates_and_shuffled_order() {
    // Input order and duplicates must not change any answer: the planner
    // sorts the sweep and fans duplicates out from one search.
    let (_, g) = &test_graphs()[0];
    let reference: Vec<Outcome> = (0..=K_MAX).map(|k| cold_solve(g, k, "kdc")).collect();
    let session = Session::new(g.clone());
    // Descending, with k=2 duplicated.
    let subs: Vec<SubQuery> = [4, 3, 2, 2, 1, 0].map(SubQuery::solve).to_vec();
    let batch = session
        .run_batch(&subs, &Budget::default(), &Options::default())
        .unwrap();
    for (i, sub) in subs.iter().enumerate() {
        let want = &reference[sub.k];
        assert_eq!(batch.outcomes[i].status, want.status, "idx={i} k={}", sub.k);
        assert_eq!(
            batch.outcomes[i].witnesses, want.witnesses,
            "idx={i} k={}",
            sub.k
        );
    }
    assert_eq!(batch.batch_memo_dedups, 1, "one duplicate fanned out");
}

#[test]
fn warm_batch_after_individual_solves_stays_byte_identical() {
    // A batch on an already-warm session (memo holds some k's) must agree
    // with the cold reference for every k — memo-answered and searched
    // sub-queries alike.
    let (_, g) = &test_graphs()[0];
    let reference: Vec<Outcome> = (0..=K_MAX).map(|k| cold_solve(g, k, "kdc")).collect();
    let session = Session::new(g.clone());
    let warm = session.solve(2);
    assert!(warm.is_optimal());
    let subs: Vec<SubQuery> = (0..=K_MAX).map(SubQuery::solve).collect();
    let batch = session
        .run_batch(&subs, &Budget::default(), &Options::default())
        .unwrap();
    for (k, (got, want)) in batch.outcomes.iter().zip(&reference).enumerate() {
        assert_eq!(got.status, want.status, "k={k}");
        assert_eq!(got.witnesses, want.witnesses, "k={k}");
    }
    assert!(
        batch.outcomes[2].cache.result_memo_hit,
        "k=2 answers from the warm memo"
    );
}
