//! The typed request/response model: what to compute ([`Query`]), how much
//! to spend ([`Budget`]), which algorithm variant ([`Options`]), and what
//! came back ([`Outcome`]) — plus the [`Observer`] callback surface that
//! streams [`Event`]s while a query runs.

use kdc::counting::DefectiveCounts;
use kdc::{CancelFlag, SearchStats, SolverConfig, Status};
use kdc_graph::VertexId;
use std::time::Duration;

/// What a [`crate::Session`] should compute.
///
/// Not `Copy`: the [`Query::Batch`] variant owns its sub-query list.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Query {
    /// The exact maximum k-defective clique.
    Solve {
        /// The k of the k-defective clique.
        k: usize,
    },
    /// Every maximal k-defective clique, size-descending. Exponential output
    /// is possible; prefer [`Query::TopR`] on anything but small graphs.
    Enumerate {
        /// The k of the k-defective clique.
        k: usize,
    },
    /// The `r` largest maximal k-defective cliques, or — with `diversify` —
    /// `r` cliques chosen to cover many distinct vertices (the greedy
    /// peel-and-solve scheme with its `(1 − 1/e)` coverage guarantee).
    TopR {
        /// The k of the k-defective clique.
        k: usize,
        /// Pool size r (must be positive).
        r: usize,
        /// Vertex-coverage diversification instead of plain top-r-by-size.
        diversify: bool,
    },
    /// Exact per-size counts of k-defective cliques with at least
    /// `min_size` vertices (`#P`-hard in general; keep `min_size` close to
    /// the maximum on non-toy graphs).
    Count {
        /// The k of the k-defective clique.
        k: usize,
        /// Smallest size to count.
        min_size: usize,
    },
    /// A batch of sub-queries answered in one planned pass: the
    /// [`crate::BatchPlan`] groups them by preset/rule set, sweeps each
    /// group's k values ascending so every optimum witness seeds (and its
    /// adjacent-k bound caps) the next solve, shares one merged
    /// lower-bound schedule per reducer and fans duplicate sub-queries out
    /// from a single execution. Per-sub-query answers stream through the
    /// observer as [`Event::SubDone`]; run a batch via
    /// [`crate::Session::run_batch`] to get the full
    /// [`crate::BatchOutcome`] instead of the folded [`Outcome`].
    Batch(Vec<crate::SubQuery>),
}

impl Query {
    /// The largest `k` the query touches (0 for an empty batch).
    pub fn k(&self) -> usize {
        match self {
            Query::Solve { k }
            | Query::Enumerate { k }
            | Query::TopR { k, .. }
            | Query::Count { k, .. } => *k,
            Query::Batch(subs) => subs.iter().map(|s| s.k).max().unwrap_or(0),
        }
    }
}

/// Resource limits for one query: wall clock, search nodes, threads and a
/// cooperative cancellation flag. The default budget is unlimited and
/// sequential.
#[derive(Clone, Debug)]
pub struct Budget {
    /// Wall-clock limit; on expiry the best-effort answer is returned with
    /// [`Status::TimedOut`].
    pub time_limit: Option<Duration>,
    /// Branch-and-bound node limit ([`Status::NodeLimitReached`] on hit).
    pub node_limit: Option<u64>,
    /// Solver threads: `1` = sequential, `0` = all cores, `N` = N-thread
    /// ego decomposition. Clamped server-side to a sane maximum.
    pub threads: usize,
    /// Cooperative cancellation: raise the flag from any thread and the
    /// search aborts at its next node with [`Status::Cancelled`].
    pub cancel: Option<CancelFlag>,
}

impl Default for Budget {
    fn default() -> Self {
        Budget {
            time_limit: None,
            node_limit: None,
            threads: 1,
            cancel: None,
        }
    }
}

impl Budget {
    /// No limits, sequential search.
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Builder-style wall-clock limit.
    pub fn with_time_limit(mut self, limit: Duration) -> Self {
        self.time_limit = Some(limit);
        self
    }

    /// Builder-style node limit.
    pub fn with_node_limit(mut self, limit: u64) -> Self {
        self.node_limit = Some(limit);
        self
    }

    /// Builder-style thread count (see [`Budget::threads`]).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Builder-style cancellation flag.
    pub fn with_cancel(mut self, cancel: CancelFlag) -> Self {
        self.cancel = Some(cancel);
        self
    }
}

/// Algorithm selection for a query: a named preset (memoizable) or an
/// explicit [`SolverConfig`] (never memoized — an arbitrary config is not a
/// cache key).
#[derive(Clone, Debug)]
pub struct Options {
    preset: String,
    custom: Option<SolverConfig>,
}

impl Default for Options {
    /// The paper's flagship `kdc` preset.
    fn default() -> Self {
        Options {
            preset: "kdc".to_string(),
            custom: None,
        }
    }
}

impl Options {
    /// A named preset, validated against the system-wide preset table
    /// ([`SolverConfig::from_preset`]) so a typo fails here, not mid-job.
    ///
    /// # Errors
    ///
    /// Returns a message naming the unknown preset (and listing the known
    /// ones) when `name` is not in the preset table.
    pub fn preset(name: &str) -> Result<Self, String> {
        #[cfg(debug_assertions)]
        if name == PANIC_PRESET {
            // Accepted here, detonated in `resolve()`: fault injection for
            // the daemon's panic-isolation e2e test (debug builds only).
            return Ok(Options {
                preset: name.to_string(),
                custom: None,
            });
        }
        SolverConfig::from_preset(name)?;
        Ok(Options {
            preset: name.to_string(),
            custom: None,
        })
    }

    /// An explicit configuration (ablations, experiments). Results computed
    /// under a custom config are exact but bypass the proven-optimal memo.
    /// Limits already set on the config (`time_limit`, `node_limit`,
    /// `cancel`) are kept unless the query's [`Budget`] provides its own.
    pub fn custom(config: SolverConfig) -> Self {
        Options {
            preset: "custom".to_string(),
            custom: Some(config),
        }
    }

    /// The preset name (`"custom"` for explicit configs).
    pub fn preset_name(&self) -> &str {
        &self.preset
    }

    /// The memo key for proven-optimal result caching, if this options
    /// object is memoizable (named presets only).
    pub(crate) fn memo_preset(&self) -> Option<&str> {
        self.custom.is_none().then_some(self.preset.as_str())
    }

    /// Resolves to a concrete solver configuration.
    ///
    /// # Errors
    ///
    /// Fails when the stored preset name is unknown to
    /// [`SolverConfig::from_preset`] (possible only for an `Options`
    /// deserialized or constructed outside [`Options::preset`]).
    pub fn resolve(&self) -> Result<SolverConfig, String> {
        #[cfg(debug_assertions)]
        if self.preset == PANIC_PRESET {
            // kdc-lint: allow(no_panic) — deliberate fault injection; the
            // worker's catch_unwind must turn this into an ERR reply.
            panic!("fault injection: preset {PANIC_PRESET} requested");
        }
        match &self.custom {
            Some(config) => Ok(config.clone()),
            None => SolverConfig::from_preset(&self.preset),
        }
    }
}

/// Debug-only fault-injection preset: accepted by [`Options::preset`],
/// panics inside [`Options::resolve`]. Exists so the daemon's e2e suite
/// can prove a panicking job yields an ERR reply while the worker pool
/// keeps serving. Not a real preset; unknown in release builds.
#[cfg(debug_assertions)]
pub const PANIC_PRESET: &str = "__panic";

/// A progress event streamed to an [`Observer`] while a query runs. Events
/// arrive synchronously on the solving thread(s).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Event {
    /// The best known solution improved to `size` vertices (the first such
    /// event of a solve reports the initial heuristic/seed bound).
    Incumbent {
        /// Size of the new incumbent.
        size: usize,
    },
    /// The CTCP reducer re-tightened against a risen bound.
    Retighten {
        /// Vertices removed by this tightening step.
        vertices: u64,
        /// Edges removed by this tightening step.
        edges: u64,
    },
    /// Branch and bound (re)started on a universe of `universe` vertices.
    Restart {
        /// Vertex count of the universe being searched.
        universe: usize,
    },
    /// One sub-query of a [`Query::Batch`] finished (batch runs only).
    /// Streamed in completion order — the planner's sweep order, not the
    /// caller's input order — with every duplicate of a deduplicated
    /// sub-query reported under its own `index`.
    SubDone {
        /// Position of the sub-query in the caller's input list.
        index: usize,
        /// The k of the finished sub-query.
        k: usize,
        /// Size of the sub-query's primary witness (0 when none).
        size: usize,
        /// Termination status of the sub-query.
        status: Status,
    },
    /// The query finished; the final [`Outcome`] carries `status`.
    Done {
        /// Termination status of the query.
        status: Status,
    },
}

impl Event {
    pub(crate) fn from_solve(event: kdc::SolveEvent) -> Event {
        match event {
            kdc::SolveEvent::Incumbent { size } => Event::Incumbent { size },
            kdc::SolveEvent::Retighten { vertices, edges } => Event::Retighten { vertices, edges },
            kdc::SolveEvent::Restart { universe } => Event::Restart { universe },
        }
    }
}

/// Receives [`Event`]s during a query. Implemented for any
/// `Fn(&Event) + Send + Sync` closure, so
/// `session.run_with(q, b, o, Some(Arc::new(|e: &Event| ...)))` just works.
pub trait Observer: Send + Sync {
    /// Called once per event, in emission order.
    fn event(&self, event: &Event);
}

impl<F: Fn(&Event) + Send + Sync> Observer for F {
    fn event(&self, event: &Event) {
        self(event)
    }
}

/// Where a query's answer came from and which resident artifacts it reused
/// — the session-level provenance counters that make warm-path claims
/// assertable instead of inferred from timings.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheInfo {
    /// The proven-optimal result memo answered without searching.
    pub result_memo_hit: bool,
    /// The solve resumed a resident CTCP reducer instead of building one.
    pub ctcp_resumed: bool,
    /// The solve installed the session's cached degeneracy peeling.
    pub peeling_shared: bool,
    /// A stored best-known witness seeded the initial lower bound.
    pub seeded: bool,
    /// Session-lifetime count of reducers evicted from the bounded LRU
    /// cache, sampled when the query finished.
    pub ctcp_evictions: u64,
}

/// The unified answer to any [`Query`].
#[derive(Clone, Debug)]
pub struct Outcome {
    /// Witness solutions: exactly one for `Solve`, the pool for
    /// `Enumerate`/`TopR`, empty for `Count`. Vertex lists are sorted
    /// ascending in original graph ids.
    pub witnesses: Vec<Vec<VertexId>>,
    /// Per-size counts (`Count` queries only).
    pub counts: Option<DefectiveCounts>,
    /// Termination status. For enumeration queries, [`Status::Cancelled`]
    /// means the pool may be truncated and must not be read as complete.
    pub status: Status,
    /// Search statistics (zeroed for queries that bypass the search, e.g. a
    /// memo hit reports the stats of the original search).
    pub stats: SearchStats,
    /// Cache provenance (see [`CacheInfo`]).
    pub cache: CacheInfo,
    /// Wall-clock time this query took inside the session.
    pub elapsed: Duration,
}

impl Outcome {
    /// The primary witness (the solution for `Solve`, the largest pool
    /// entry otherwise), if any.
    pub fn best(&self) -> Option<&[VertexId]> {
        self.witnesses.first().map(Vec::as_slice)
    }

    /// Size of the primary witness (0 when there is none).
    pub fn size(&self) -> usize {
        self.best().map_or(0, <[VertexId]>::len)
    }

    /// Whether the answer is proven exact/complete.
    pub fn is_optimal(&self) -> bool {
        self.status == Status::Optimal
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_k_accessor() {
        assert_eq!(Query::Solve { k: 2 }.k(), 2);
        assert_eq!(Query::Enumerate { k: 1 }.k(), 1);
        assert_eq!(
            Query::TopR {
                k: 3,
                r: 5,
                diversify: true
            }
            .k(),
            3
        );
        assert_eq!(Query::Count { k: 0, min_size: 4 }.k(), 0);
    }

    #[test]
    fn budget_defaults_are_sequential_and_unlimited() {
        let b = Budget::default();
        assert_eq!(b.threads, 1);
        assert!(b.time_limit.is_none() && b.node_limit.is_none() && b.cancel.is_none());
        let b = Budget::unlimited()
            .with_time_limit(Duration::from_secs(1))
            .with_node_limit(10)
            .with_threads(4);
        assert_eq!(b.threads, 4);
        assert_eq!(b.node_limit, Some(10));
    }

    #[test]
    fn options_validate_presets_eagerly() {
        assert!(Options::preset("kdc").is_ok());
        assert!(Options::preset("nope").is_err(), "typo must fail fast");
        assert_eq!(Options::default().memo_preset(), Some("kdc"));
        let custom = Options::custom(SolverConfig::kdc_t());
        assert_eq!(custom.memo_preset(), None, "custom configs never memoize");
        assert_eq!(custom.preset_name(), "custom");
        assert!(custom.resolve().is_ok());
    }

    #[test]
    fn outcome_accessors() {
        let o = Outcome {
            witnesses: vec![vec![1, 2, 3]],
            counts: None,
            status: Status::Optimal,
            stats: SearchStats::default(),
            cache: CacheInfo::default(),
            elapsed: Duration::ZERO,
        };
        assert_eq!(o.size(), 3);
        assert!(o.is_optimal());
        assert_eq!(o.best().unwrap(), &[1, 2, 3]);
    }
}
