//! Batched query execution: one planned sweep over many sub-queries.
//!
//! A [`Query::Batch`](crate::Query::Batch) carries a list of [`SubQuery`]s
//! — typically a k-sweep (`k = 0..=K`) over one resident graph — and this
//! module answers all of them as *one* execution instead of a loop around
//! [`Session::run_with`]:
//!
//! * [`BatchPlan`] groups the sub-queries by algorithm (preset), orders
//!   each group's entries by ascending `k` and deduplicates identical
//!   sub-queries up front (every duplicate still receives its own answer).
//! * [`BatchExec`] drives the plan: each proven optimum becomes a witness
//!   seed and a cross-`k` bound for the entries still to run. A witness
//!   for `k' ≤ k` is feasible at `k`, so it seeds the incumbent; and
//!   `opt(k) ≤ opt(k') ≤ opt(k) + (k' − k)` for `k ≤ k'` (drop a vertex
//!   incident to a missing edge), so every proven size caps the remaining
//!   entries via [`kdc::SolverConfig::known_ub`]. The accumulated witness
//!   sizes are folded into the resident reducer through one shared
//!   [`kdc_graph::ctcp::Ctcp::tighten_batch`] pass per sub-solve, merged
//!   unsorted — `tighten_batch` reduces by maximum, so no pre-sorting.
//! * Answers stream through the session's ordinary [`Observer`] channel:
//!   one [`Event::SubDone`] per input sub-query (duplicates included), in
//!   completion order, before the final [`Event::Done`].
//!
//! The caps only ever stop a search early — they never alter pruning — so
//! every reported witness is the one the equivalent individual solve would
//! have produced (pinned by `tests/batch_parity.rs`). Shared work is
//! accounted honestly in the returned [`BatchOutcome`]: `batch_ctcp_shares`
//! (sub-solves whose reducer consumed batch-contributed bounds),
//! `batch_witness_seeds` (sub-solves seeded by another sub-query's
//! witness), `batch_memo_dedups` (sub-queries answered without a search of
//! their own), mirrored on the session counters and the `kdc_session_batch_*`
//! registry series.

use crate::query::{Budget, CacheInfo, Event, Observer, Options, Outcome};
use crate::session::{apply_budget, flush_solve_metrics, CtcpKey, Session, SolveKey};
use kdc::{decompose, EventHook, Solver, Status};
use kdc_graph::VertexId;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One element of a [`Query::Batch`](crate::Query::Batch): a solve (the
/// default) or a top-`r` enumeration at one `k`, optionally under its own
/// preset (sub-queries without one inherit the batch's [`Options`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SubQuery {
    /// The k of the k-defective clique.
    pub k: usize,
    /// When set, enumerate a pool of the `r` largest maximal k-defective
    /// cliques ([`Query::TopR`](crate::Query::TopR) semantics, no
    /// diversification) instead of solving for one maximum witness.
    pub r: Option<usize>,
    /// Preset override for this sub-query; `None` inherits the batch's
    /// [`Options`].
    pub preset: Option<String>,
}

impl SubQuery {
    /// A maximum-solve sub-query at `k` under the batch's default preset.
    pub fn solve(k: usize) -> Self {
        SubQuery {
            k,
            r: None,
            preset: None,
        }
    }

    /// Turns this sub-query into a top-`r` enumeration.
    #[must_use]
    pub fn with_r(mut self, r: usize) -> Self {
        self.r = Some(r);
        self
    }

    /// Overrides the preset for this sub-query.
    #[must_use]
    pub fn with_preset(mut self, preset: &str) -> Self {
        self.preset = Some(preset.to_string());
        self
    }
}

/// One planned unit of work: a deduplicated `(k, r)` pair plus every input
/// position it answers.
#[derive(Clone, Debug)]
struct PlanEntry {
    k: usize,
    r: Option<usize>,
    /// Input positions (into the caller's sub-query list) answered by this
    /// entry, ascending.
    indices: Vec<usize>,
}

/// One preset group of a plan: entries sharing a graph, preset and RR
/// flags, swept in ascending `k` so cross-`k` seeding and capping apply.
#[derive(Clone, Debug)]
struct PlanGroup {
    options: Options,
    entries: Vec<PlanEntry>,
}

/// A validated execution plan for a batch: sub-queries grouped by preset,
/// each group ordered ascending in `k` (solves before enumerations at the
/// same `k`) and deduplicated. Built eagerly so an unknown preset fails
/// before any work runs.
#[derive(Clone, Debug)]
pub struct BatchPlan {
    groups: Vec<PlanGroup>,
    total: usize,
}

impl BatchPlan {
    /// Plans `subs` under `default_options` (inherited by sub-queries
    /// without a preset of their own).
    ///
    /// # Errors
    ///
    /// Fails on an empty batch, on a sub-query with `r = Some(0)`, or on
    /// an unknown preset name (validated here, not mid-sweep).
    pub fn new(subs: &[SubQuery], default_options: &Options) -> Result<Self, String> {
        if subs.is_empty() {
            return Err("batch query must contain at least one sub-query".to_string());
        }
        // Group by preset override (`None` = the batch default). BTreeMap
        // keeps group order deterministic: default group first, then named
        // overrides alphabetically.
        let mut by_preset: BTreeMap<Option<String>, Vec<(usize, &SubQuery)>> = BTreeMap::new();
        for (idx, sub) in subs.iter().enumerate() {
            if sub.r == Some(0) {
                return Err(format!("sub-query {idx}: top-r pool size must be positive"));
            }
            by_preset
                .entry(sub.preset.clone())
                .or_default()
                .push((idx, sub));
        }
        let mut groups = Vec::with_capacity(by_preset.len());
        for (preset, members) in by_preset {
            let options = match preset {
                Some(name) => Options::preset(&name)?,
                None => default_options.clone(),
            };
            // Dedup on (k, r), then sweep ascending in k; a solve runs
            // before an enumeration at the same k so the enumeration's
            // group-mates already benefit from the proven optimum.
            let mut entries: BTreeMap<(usize, Option<usize>), Vec<usize>> = BTreeMap::new();
            for (idx, sub) in members {
                entries.entry((sub.k, sub.r)).or_default().push(idx);
            }
            groups.push(PlanGroup {
                options,
                entries: entries
                    .into_iter()
                    .map(|((k, r), indices)| PlanEntry { k, r, indices })
                    .collect(),
            });
        }
        Ok(BatchPlan {
            groups,
            total: subs.len(),
        })
    }

    /// Number of input sub-queries this plan answers.
    pub fn sub_queries(&self) -> usize {
        self.total
    }

    /// Number of searches the plan will actually run (post-dedup; memo
    /// hits at execution time may reduce it further).
    pub fn planned_solves(&self) -> usize {
        self.groups.iter().map(|g| g.entries.len()).sum()
    }
}

/// The answer to a [`Query::Batch`](crate::Query::Batch): one [`Outcome`]
/// per input sub-query (in input order), the batch's shared-work counters
/// and its wall-clock total.
#[derive(Clone, Debug)]
pub struct BatchOutcome {
    /// Per-sub-query outcomes, indexed like the caller's input list.
    /// Deduplicated sub-queries share (clones of) one answer.
    pub outcomes: Vec<Outcome>,
    /// Sub-solves whose reducer consumed a merged lower-bound schedule
    /// carrying bounds contributed by other sub-queries of this batch.
    pub batch_ctcp_shares: u64,
    /// Sub-solves seeded by a witness another sub-query of this batch
    /// produced (strictly better than anything the session already knew).
    pub batch_witness_seeds: u64,
    /// Sub-queries answered without a search of their own: in-batch
    /// duplicates fanned out plus proven-optimal memo hits.
    pub batch_memo_dedups: u64,
    /// Wall-clock time of the whole batch.
    pub elapsed: Duration,
}

impl BatchOutcome {
    /// The batch-level termination status: the most severe sub-query
    /// status (`Cancelled` > `TimedOut` > `NodeLimitReached` > `Optimal`),
    /// so a batch is `Optimal` only when every sub-query is.
    pub fn status(&self) -> Status {
        let mut folded = Status::Optimal;
        for outcome in &self.outcomes {
            folded = match (folded, outcome.status) {
                (Status::Cancelled, _) | (_, Status::Cancelled) => Status::Cancelled,
                (Status::TimedOut, _) | (_, Status::TimedOut) => Status::TimedOut,
                (Status::NodeLimitReached, _) | (_, Status::NodeLimitReached) => {
                    Status::NodeLimitReached
                }
                (Status::Optimal, Status::Optimal) => Status::Optimal,
            };
        }
        folded
    }

    /// Total branch-and-bound nodes across all distinct searches. Memo
    /// answers and fan-out copies of deduplicated sub-queries carry
    /// `cache.result_memo_hit` and are excluded, so each search counts
    /// exactly once.
    pub fn total_nodes(&self) -> u64 {
        self.outcomes
            .iter()
            .filter(|o| !o.cache.result_memo_hit)
            .map(|o| o.stats.nodes)
            .sum()
    }
}

/// Executes a [`BatchPlan`] against one [`Session`]. Holds the batch-local
/// state the sweep accumulates: the best feasible witness per `k`, the
/// proven optimum sizes (pre-seeded from the session's result memo), the
/// shared deadline and the honest shared-work counters.
pub struct BatchExec<'a> {
    session: &'a Session,
    budget: &'a Budget,
    observer: Option<Arc<dyn Observer>>,
    trace: Option<kdc_obs::Tracer>,
    t0: Instant,
    deadline: Option<Instant>,
    /// Best feasible witness produced by this batch, per `k`. A witness
    /// for `k'` is feasible at every `k ≥ k'`.
    feasible: BTreeMap<usize, Vec<VertexId>>,
    /// Proven optimum sizes, per `k` (session memo + this batch's proven
    /// results); each caps later entries via the cross-`k` bound.
    proven: BTreeMap<usize, usize>,
    shares: u64,
    seeds: u64,
    dedups: u64,
}

impl<'a> BatchExec<'a> {
    /// A fresh executor over `session`, spending `budget` (the time limit
    /// is batch-wide; the node limit applies per sub-solve; cancellation
    /// aborts the whole batch as one unit).
    pub fn new(session: &'a Session, budget: &'a Budget) -> Self {
        let t0 = Instant::now();
        BatchExec {
            session,
            budget,
            observer: None,
            trace: None,
            t0,
            deadline: budget.time_limit.map(|d| t0 + d),
            feasible: BTreeMap::new(),
            proven: BTreeMap::new(),
            shares: 0,
            seeds: 0,
            dedups: 0,
        }
    }

    /// Streams [`Event`]s ([`Event::SubDone`] per sub-query plus the inner
    /// solves' incumbent/retighten/restart events) to `observer`.
    #[must_use]
    pub fn with_observer(mut self, observer: Option<Arc<dyn Observer>>) -> Self {
        self.observer = observer;
        self
    }

    /// Collects phase spans of the sub-solves into `trace`'s ring.
    #[must_use]
    pub fn with_trace(mut self, trace: Option<kdc_obs::Tracer>) -> Self {
        self.trace = trace;
        self
    }

    /// Runs the plan to completion and returns the per-sub-query answers
    /// plus shared-work counters. Also folds the counters into the session
    /// atomics and their `kdc_session_batch_*` registry twins.
    ///
    /// # Errors
    ///
    /// Fails only on invalid options (possible when the plan was built
    /// from an `Options` deserialized outside [`Options::preset`]);
    /// exhausted budgets come back as per-sub-query statuses.
    pub fn run(mut self, plan: &BatchPlan) -> Result<BatchOutcome, String> {
        for (k, size) in self.session.memoized_optimal_sizes() {
            self.proven.insert(k, size);
        }
        let mut outcomes: Vec<Option<Outcome>> = vec![None; plan.total];
        for group in &plan.groups {
            for entry in &group.entries {
                let outcome = self.run_entry(group, entry)?;
                self.dedups += (entry.indices.len() as u64).saturating_sub(1);
                for &idx in &entry.indices {
                    if let Some(obs) = &self.observer {
                        obs.event(&Event::SubDone {
                            index: idx,
                            k: entry.k,
                            size: outcome.size(),
                            status: outcome.status,
                        });
                    }
                    // Fan-out copies are marked as memo answers so that
                    // only the entry's primary copy counts as a search
                    // (see `BatchOutcome::total_nodes`).
                    let mut copy = outcome.clone();
                    if idx != entry.indices[0] {
                        copy.cache.result_memo_hit = true;
                    }
                    outcomes[idx] = Some(copy);
                }
            }
        }
        self.session
            .note_batch_shared_work(self.shares, self.seeds, self.dedups);
        Ok(BatchOutcome {
            // kdc-lint: allow(no_panic) — every input index belongs to
            // exactly one plan entry, so every slot was filled above.
            outcomes: outcomes
                .into_iter()
                .map(|o| o.expect("plan covers every input index"))
                .collect(),
            batch_ctcp_shares: self.shares,
            batch_witness_seeds: self.seeds,
            batch_memo_dedups: self.dedups,
            elapsed: self.t0.elapsed(),
        })
    }

    /// Answers one plan entry (shared by all its duplicate input indices).
    fn run_entry(&mut self, group: &PlanGroup, entry: &PlanEntry) -> Result<Outcome, String> {
        // A raised cancel flag or an expired batch deadline short-circuits
        // the rest of the sweep with honest statuses: the best feasible
        // witness we can vouch for, never a fabricated `Optimal`.
        if self
            .budget
            .cancel
            .as_ref()
            .is_some_and(kdc::CancelFlag::is_cancelled)
        {
            return Ok(self.cut_short(entry.k, Status::Cancelled));
        }
        if self.deadline.is_some_and(|d| Instant::now() >= d) {
            return Ok(self.cut_short(entry.k, Status::TimedOut));
        }
        match entry.r {
            Some(r) => self.run_enumerate(group, entry.k, r),
            None => self.run_solve(group, entry.k),
        }
    }

    /// One maximum-solve entry: memo dedup, cross-`k` seed + cap, shared
    /// reducer tightening, then the search itself.
    fn run_solve(&mut self, group: &PlanGroup, k: usize) -> Result<Outcome, String> {
        let t0 = Instant::now();
        let memo_key = group.options.memo_preset().map(|preset| SolveKey {
            k,
            preset: preset.to_string(),
        });
        if let Some(key) = &memo_key {
            if let Some(solution) = self.session.cached_result(key) {
                // Answered by the proven-optimal memo: no search of its
                // own, but its witness still feeds the sweep.
                self.dedups += 1;
                self.note_proven(k, &solution.vertices);
                return Ok(Outcome {
                    witnesses: vec![solution.vertices],
                    counts: None,
                    status: solution.status,
                    stats: solution.stats,
                    cache: CacheInfo {
                        result_memo_hit: true,
                        ctcp_evictions: self.session.ctcp_evictions_snapshot(),
                        ..CacheInfo::default()
                    },
                    elapsed: t0.elapsed(),
                });
            }
        }
        let mut config = group.options.resolve()?;
        apply_budget(&mut config, &self.sub_budget());
        config.trace = self.trace.clone();
        config.shared_peeling = Some(self.session.peeling());
        let (ctcp, ctcp_resumed) = self.session.ctcp_state(CtcpKey {
            k,
            core_rule: config.enable_rr5,
            truss_rule: config.enable_rr6,
        });
        // The shared-universe pass: fold every witness size this batch has
        // produced at k' ≤ k into the resident reducer, unsorted and with
        // whatever duplicates accumulated — `tighten_batch` reduces by
        // maximum. The schedule never exceeds the seed installed below, so
        // the solver's `resident reducer lb ≤ initial lb` invariant holds
        // and the tightening only discards solutions the seed already
        // dominates.
        let schedule: Vec<usize> = self
            .feasible
            .range(..=k)
            .map(|(_, w)| w.len())
            .filter(|&s| s > 0)
            .collect();
        if !schedule.is_empty() {
            ctcp.lock()
                .map_err(std::sync::PoisonError::into_inner)
                .unwrap_or_else(|g| g)
                .tighten_batch(&schedule);
            self.shares += 1;
        }
        config.shared_ctcp = Some(ctcp);
        // Seed: the larger of the session's best known witness and the
        // best feasible witness this batch produced at any k' ≤ k. The
        // batch counter only fires when the batch strictly beat the
        // session's prior knowledge.
        let session_seed = self.session.best_known(k);
        let batch_seed = self.batch_seed(k);
        let session_len = session_seed.as_ref().map_or(0, Vec::len);
        let seed = match batch_seed {
            Some(w) if w.len() > session_len => {
                self.seeds += 1;
                Some(w)
            }
            _ => session_seed,
        };
        let seeded = seed.is_some();
        config.seed_solution = seed;
        // Cap: every proven optimum bounds this k. Backwards, optima are
        // monotone (`opt(k) ≤ opt(k0)` for `k ≤ k0`); forwards, removing a
        // vertex incident to a missing edge gives `opt(k) ≤ opt(k0) + (k −
        // k0)`. The cap is checked only against the incumbent — never used
        // for pruning — so the reported witness matches an uncapped run.
        config.known_ub = self
            .proven
            .iter()
            .map(|(&k0, &s0)| if k >= k0 { s0 + (k - k0) } else { s0 })
            .min();
        if let Some(obs) = self.observer.clone() {
            config.on_event = Some(EventHook::new(move |e| {
                obs.event(&Event::from_solve(e));
            }));
        }
        self.session.note_real_solve();
        let solution = if self.budget.threads == 1 {
            Solver::new(self.session.graph(), k, config).solve()
        } else {
            let threads = Session::clamped_threads(self.budget);
            decompose::solve_decomposed(self.session.graph(), k, config, threads)
        };
        self.session.record_best_known(k, &solution.vertices);
        flush_solve_metrics(
            group.options.preset_name(),
            &solution.stats,
            t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64,
        );
        self.note_feasible(k, &solution.vertices);
        if solution.is_optimal() {
            self.note_proven(k, &solution.vertices);
            if let Some(key) = memo_key {
                self.session.memoize_result(key, solution.clone());
            }
        }
        Ok(Outcome {
            witnesses: vec![solution.vertices],
            counts: None,
            status: solution.status,
            stats: solution.stats,
            cache: CacheInfo {
                result_memo_hit: false,
                ctcp_resumed,
                peeling_shared: true,
                seeded,
                ctcp_evictions: self.session.ctcp_evictions_snapshot(),
            },
            elapsed: t0.elapsed(),
        })
    }

    /// One top-`r` enumeration entry: runs uncapped and unseeded (a
    /// precomputed bound would silently truncate the pool), but its best
    /// maximal clique still feeds the sweep as a feasible witness.
    fn run_enumerate(&mut self, group: &PlanGroup, k: usize, r: usize) -> Result<Outcome, String> {
        let outcome = self
            .session
            .run_top_r(k, r, false, &self.sub_budget(), &group.options)?;
        if let Some(best) = outcome.witnesses.iter().max_by_key(|w| w.len()) {
            self.note_feasible(k, best);
        }
        Ok(outcome)
    }

    /// The best feasible witness this batch produced at any `k' ≤ k`.
    fn batch_seed(&self, k: usize) -> Option<Vec<VertexId>> {
        self.feasible
            .range(..=k)
            .map(|(_, w)| w)
            .max_by_key(|w| w.len())
            .filter(|w| !w.is_empty())
            .cloned()
    }

    /// Records a batch-produced feasible witness for `k` (kept only when
    /// it beats the stored one).
    fn note_feasible(&mut self, k: usize, vertices: &[VertexId]) {
        if vertices.is_empty() {
            return;
        }
        let entry = self.feasible.entry(k).or_default();
        if vertices.len() > entry.len() {
            *entry = vertices.to_vec();
        }
    }

    /// Records a proven optimum for `k` (size bound + feasible witness).
    fn note_proven(&mut self, k: usize, vertices: &[VertexId]) {
        let size = vertices.len();
        let entry = self.proven.entry(k).or_insert(size);
        *entry = (*entry).min(size);
        self.note_feasible(k, vertices);
    }

    /// The per-sub-query budget: the batch node limit and cancel flag
    /// pass through, the time limit shrinks to whatever remains of the
    /// batch deadline (so a late sub-query times out honestly instead of
    /// restarting the clock).
    fn sub_budget(&self) -> Budget {
        let mut budget = self.budget.clone();
        if let Some(deadline) = self.deadline {
            budget.time_limit = Some(deadline.saturating_duration_since(Instant::now()));
        }
        budget
    }

    /// An honest answer for an entry the batch could not afford to run:
    /// the best witness the sweep can vouch for, under `status`.
    fn cut_short(&self, k: usize, status: Status) -> Outcome {
        let witness = self
            .batch_seed(k)
            .or_else(|| self.session.best_known(k))
            .unwrap_or_default();
        Outcome {
            witnesses: vec![witness],
            counts: None,
            status,
            stats: kdc::SearchStats::default(),
            cache: CacheInfo {
                ctcp_evictions: self.session.ctcp_evictions_snapshot(),
                ..CacheInfo::default()
            },
            elapsed: Duration::ZERO,
        }
    }
}

impl Session {
    /// Answers a batch of sub-queries as one planned sweep. See the
    /// [module docs](self) for what is shared across the batch; see
    /// [`Session::run_batch_with`] for the observer-carrying variant.
    ///
    /// # Errors
    ///
    /// Fails on an empty batch or an invalid preset (validated before any
    /// work runs); solver-side limits come back as per-sub-query statuses
    /// in the [`BatchOutcome`].
    pub fn run_batch(
        &self,
        subs: &[SubQuery],
        budget: &Budget,
        options: &Options,
    ) -> Result<BatchOutcome, String> {
        self.run_batch_with(subs, budget, options, None)
    }

    /// [`Session::run_batch`], streaming [`Event`]s to `observer`: the
    /// inner solves' incumbent/retighten/restart events plus one
    /// [`Event::SubDone`] per input sub-query in completion order.
    ///
    /// # Errors
    ///
    /// Same contract as [`Session::run_batch`].
    pub fn run_batch_with(
        &self,
        subs: &[SubQuery],
        budget: &Budget,
        options: &Options,
        observer: Option<Arc<dyn Observer>>,
    ) -> Result<BatchOutcome, String> {
        self.run_batch_observed(subs, budget, options, observer, None)
    }

    /// [`Session::run_batch_with`] plus an optional [`kdc_obs::Tracer`]
    /// collecting the sub-solves' phase spans.
    ///
    /// # Errors
    ///
    /// Same contract as [`Session::run_batch`].
    pub fn run_batch_observed(
        &self,
        subs: &[SubQuery],
        budget: &Budget,
        options: &Options,
        observer: Option<Arc<dyn Observer>>,
        trace: Option<kdc_obs::Tracer>,
    ) -> Result<BatchOutcome, String> {
        let plan = BatchPlan::new(subs, options)?;
        BatchExec::new(self, budget)
            .with_observer(observer)
            .with_trace(trace)
            .run(&plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Query;
    use kdc_graph::{gen, named};
    use std::sync::Mutex;

    fn sweep(hi: usize) -> Vec<SubQuery> {
        (0..=hi).map(SubQuery::solve).collect()
    }

    #[test]
    fn plan_groups_orders_and_dedups() {
        let subs = vec![
            SubQuery::solve(3),
            SubQuery::solve(1),
            SubQuery::solve(3),
            SubQuery::solve(2).with_preset("kdc_t"),
            SubQuery::solve(1).with_r(2),
        ];
        let plan = BatchPlan::new(&subs, &Options::default()).unwrap();
        assert_eq!(plan.sub_queries(), 5);
        assert_eq!(plan.planned_solves(), 4, "the duplicate k=3 merges");
        // Default group first, ascending k, solve before enumeration at
        // equal k; the kdc_t override forms its own group.
        assert_eq!(plan.groups.len(), 2);
        let keys: Vec<(usize, Option<usize>)> =
            plan.groups[0].entries.iter().map(|e| (e.k, e.r)).collect();
        assert_eq!(keys, vec![(1, None), (1, Some(2)), (3, None)]);
        assert_eq!(plan.groups[0].entries[2].indices, vec![0, 2]);
        assert_eq!(plan.groups[1].entries[0].k, 2);
    }

    #[test]
    fn plan_rejects_empty_bad_preset_and_zero_r() {
        let opts = Options::default();
        assert!(BatchPlan::new(&[], &opts).is_err());
        assert!(BatchPlan::new(&[SubQuery::solve(1).with_preset("nope")], &opts).is_err());
        assert!(BatchPlan::new(&[SubQuery::solve(1).with_r(0)], &opts).is_err());
    }

    #[test]
    fn batch_sweep_matches_individual_solves_and_shares_work() {
        let mut rng = gen::seeded_rng(77);
        let (g, _) = gen::planted_defective_clique(120, 10, 2, 0.05, &mut rng);
        let expected: Vec<Outcome> = (0..=3).map(|k| Session::new(g.clone()).solve(k)).collect();

        let session = Session::new(g);
        let batch = session
            .run_batch(&sweep(3), &Budget::default(), &Options::default())
            .unwrap();
        assert_eq!(batch.outcomes.len(), 4);
        assert_eq!(batch.status(), kdc::Status::Optimal);
        for (k, (got, want)) in batch.outcomes.iter().zip(&expected).enumerate() {
            assert_eq!(got.status, want.status, "k={k}");
            assert_eq!(got.witnesses, want.witnesses, "k={k} byte-identical");
        }
        assert!(
            batch.batch_ctcp_shares >= 1,
            "k>0 reducers saw batch bounds"
        );
        assert!(batch.batch_witness_seeds >= 1, "k>0 solves were seeded");
        let counters = session.counters();
        assert_eq!(counters.batch_ctcp_shares, batch.batch_ctcp_shares);
        assert_eq!(counters.batch_witness_seeds, batch.batch_witness_seeds);
        assert_eq!(counters.batch_memo_dedups, batch.batch_memo_dedups);
    }

    #[test]
    fn duplicates_and_memo_hits_are_deduplicated() {
        let session = Session::new(named::figure2());
        // Warm the memo at k=1, then batch k=1 twice plus k=2 twice.
        let warm = session.solve(1);
        assert!(warm.is_optimal());
        let subs = vec![
            SubQuery::solve(1),
            SubQuery::solve(1),
            SubQuery::solve(2),
            SubQuery::solve(2),
        ];
        let batch = session
            .run_batch(&subs, &Budget::default(), &Options::default())
            .unwrap();
        // k=1 answers from the memo (2 dedups: the hit plus its fan-out),
        // k=2 runs once and fans out (1 dedup).
        assert_eq!(batch.batch_memo_dedups, 3);
        assert_eq!(batch.outcomes[0].witnesses, batch.outcomes[1].witnesses);
        assert_eq!(batch.outcomes[2].witnesses, batch.outcomes[3].witnesses);
        assert!(batch.outcomes[0].cache.result_memo_hit);
        // Only one real search ran for the whole batch.
        assert_eq!(session.counters().solves, 2, "warm solve + k=2 only");
    }

    #[test]
    fn batch_streams_subdone_events_in_sweep_order() {
        let session = Session::new(named::figure2());
        let seen: Arc<Mutex<Vec<(usize, usize)>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = seen.clone();
        let subs = vec![SubQuery::solve(2), SubQuery::solve(0), SubQuery::solve(2)];
        let batch = session
            .run_batch_with(
                &subs,
                &Budget::default(),
                &Options::default(),
                Some(Arc::new(move |e: &Event| {
                    if let Event::SubDone { index, k, .. } = *e {
                        sink.lock().unwrap().push((index, k));
                    }
                })),
            )
            .unwrap();
        // Sweep order is ascending k; both duplicates of k=2 get their own
        // event, under their own input index.
        assert_eq!(*seen.lock().unwrap(), vec![(1, 0), (0, 2), (2, 2)]);
        assert_eq!(batch.outcomes[0].witnesses, batch.outcomes[2].witnesses);
    }

    #[test]
    fn cancelled_batch_reports_honest_statuses() {
        let flag = kdc::CancelFlag::new();
        flag.cancel();
        let session = Session::new(named::figure2());
        let batch = session
            .run_batch(
                &sweep(2),
                &Budget::default().with_cancel(flag),
                &Options::default(),
            )
            .unwrap();
        assert_eq!(batch.status(), kdc::Status::Cancelled);
        assert!(batch
            .outcomes
            .iter()
            .all(|o| o.status == kdc::Status::Cancelled));
    }

    #[test]
    fn query_batch_folds_into_one_outcome() {
        let session = Session::new(named::figure2());
        let outcome = session
            .run(
                &Query::Batch(sweep(2)),
                &Budget::default(),
                &Options::default(),
            )
            .unwrap();
        assert_eq!(outcome.witnesses.len(), 3, "one witness per sub-query");
        assert!(outcome.is_optimal());
        let sizes: Vec<usize> = outcome.witnesses.iter().map(Vec::len).collect();
        assert_eq!(sizes, vec![5, 5, 6], "figure2 optima for k=0,1,2");
    }
}
