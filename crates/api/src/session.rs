//! The resident [`Session`]: one graph, every cached artifact, one typed
//! query surface.

use crate::query::{Budget, CacheInfo, Event, Observer, Options, Outcome, Query};
use kdc::{bound, counting, decompose, topr, EventHook, Solution, Solver};
use kdc_graph::ctcp::Ctcp;
use kdc_graph::degeneracy::{self, Peeling};
use kdc_graph::{Graph, VertexId};
use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Instant;

/// Locks `m`, recovering the data if a previous holder panicked. Every
/// structure behind a session mutex is a cache keyed by value (reducer
/// slots, result memos, witness maps): a panic mid-update can at worst
/// lose one entry, never corrupt an invariant, so serving the recovered
/// state beats poisoning every later query on the session.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Process-global registry twins of the [`SessionCounters`] plus the solve
/// telemetry series. Handles are registered once and shared by every
/// session in the process: the per-session atomics stay the source of truth
/// for warm-vs-cold assertions, while these aggregate across sessions for
/// the `METRICS` exposition.
pub(crate) struct SessionObs {
    peel_builds: kdc_obs::Counter,
    pub(crate) solves: kdc_obs::Counter,
    result_hits: kdc_obs::Counter,
    ctcp_builds: kdc_obs::Counter,
    ctcp_resumes: kdc_obs::Counter,
    ctcp_evictions: kdc_obs::Counter,
    memo_evictions: kdc_obs::Counter,
    recovered_witnesses: kdc_obs::Counter,
    recovered_memos: kdc_obs::Counter,
    pub(crate) batch_ctcp_shares: kdc_obs::Counter,
    pub(crate) batch_witness_seeds: kdc_obs::Counter,
    pub(crate) batch_memo_dedups: kdc_obs::Counter,
    solve_ns: kdc_obs::Histogram,
    bound_invocations: [kdc_obs::Counter; bound::COUNT],
    bound_prunes: [kdc_obs::Counter; bound::COUNT],
    bound_ns: [kdc_obs::Counter; bound::COUNT],
}

pub(crate) fn session_obs() -> &'static SessionObs {
    static OBS: OnceLock<SessionObs> = OnceLock::new();
    OBS.get_or_init(|| {
        let r = kdc_obs::registry();
        SessionObs {
            peel_builds: r.register_counter("kdc_session_peel_builds_total"),
            solves: r.register_counter("kdc_session_solves_total"),
            result_hits: r.register_counter("kdc_session_result_hits_total"),
            ctcp_builds: r.register_counter("kdc_session_ctcp_builds_total"),
            ctcp_resumes: r.register_counter("kdc_session_ctcp_resumes_total"),
            ctcp_evictions: r.register_counter("kdc_session_ctcp_evictions_total"),
            memo_evictions: r.register_counter("kdc_session_memo_evictions_total"),
            recovered_witnesses: r.register_counter("kdc_session_recovered_witnesses_total"),
            recovered_memos: r.register_counter("kdc_session_recovered_memos_total"),
            batch_ctcp_shares: r.register_counter("kdc_session_batch_ctcp_shares_total"),
            batch_witness_seeds: r.register_counter("kdc_session_batch_witness_seeds_total"),
            batch_memo_dedups: r.register_counter("kdc_session_batch_memo_dedups_total"),
            solve_ns: r.register_histogram("kdc_session_solve_duration_ns"),
            bound_invocations: std::array::from_fn(|i| {
                r.register_counter_labeled(
                    "kdc_core_bound_invocations_total",
                    "bound",
                    bound::NAMES[i],
                )
            }),
            bound_prunes: std::array::from_fn(|i| {
                r.register_counter_labeled("kdc_core_bound_prunes_total", "bound", bound::NAMES[i])
            }),
            bound_ns: std::array::from_fn(|i| {
                r.register_counter_labeled("kdc_core_bound_ns_total", "bound", bound::NAMES[i])
            }),
        }
    })
}

/// Publishes one finished solve's telemetry to the global registry: the
/// latency sample, per-preset node count and per-bound cost columns.
pub(crate) fn flush_solve_metrics(preset: &str, stats: &kdc::SearchStats, elapsed_ns: u64) {
    if !kdc_obs::enabled() {
        return;
    }
    let obs = session_obs();
    obs.solve_ns.observe(elapsed_ns);
    kdc_obs::registry()
        .register_counter_labeled("kdc_session_nodes_total", "preset", preset)
        .add(stats.nodes);
    for (i, bc) in stats.bound_costs.iter().enumerate() {
        obs.bound_invocations[i].add(bc.invocations);
        obs.bound_prunes[i].add(bc.prunes);
        obs.bound_ns[i].add(bc.ns);
    }
}

/// Workers may not spawn unbounded decomposition threads on a caller's
/// say-so; `Budget::threads` beyond this is clamped (0 still means "all
/// cores").
const MAX_SOLVE_THREADS: usize = 256;

/// Default cap on resident CTCP reducers (see
/// [`Session::with_ctcp_capacity`]).
pub const DEFAULT_CTCP_CAPACITY: usize = 8;

/// Default cap on memoized proven-optimal results (see
/// [`Session::with_memo_capacity`]). Deliberately generous: a memo entry is
/// one witness plus counters, so hundreds are cheap — the cap exists to
/// stop unbounded growth under long-lived k/preset churn, not to be felt.
pub const DEFAULT_MEMO_CAPACITY: usize = 512;

/// Memo key for a proven-optimal solve result: the answer depends only on
/// the graph, `k` and the algorithm variant (all exact presets agree on the
/// *size*, but the key includes the preset so the reported vertex set is
/// reproducible per preset).
#[derive(Clone, Debug, Hash, PartialEq, Eq)]
pub struct SolveKey {
    /// The k of the k-defective clique.
    pub k: usize,
    /// Preset name (`"kdc"` for the default).
    pub preset: String,
}

/// Cache key for a resident CTCP reducer: its state depends on `k` and on
/// which of the two rules (RR5 core / RR6 truss) the configuration enables.
#[derive(Clone, Copy, Debug, Hash, PartialEq, Eq)]
pub struct CtcpKey {
    /// The k of the k-defective clique.
    pub k: usize,
    /// Whether the degree (RR5) rule is active.
    pub core_rule: bool,
    /// Whether the support (RR6) rule is active.
    pub truss_rule: bool,
}

/// Usage counters of a [`Session`], for warm-vs-cold assertions.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SessionCounters {
    /// Degeneracy peelings computed (at most 1 for the session's lifetime).
    pub peel_builds: u64,
    /// Real (non-memo) searches executed.
    pub solves: u64,
    /// Queries answered from the proven-optimal result memo.
    pub result_hits: u64,
    /// Resident CTCP reducers built from scratch.
    pub ctcp_builds: u64,
    /// Solves that resumed a resident reducer.
    pub ctcp_resumes: u64,
    /// Reducers evicted from the bounded LRU cache.
    pub ctcp_evictions: u64,
    /// Batch sub-solves whose reducer consumed a merged lower-bound
    /// schedule carrying bounds from other sub-queries.
    pub batch_ctcp_shares: u64,
    /// Batch sub-solves seeded by a witness another sub-query produced.
    pub batch_witness_seeds: u64,
    /// Batch sub-queries answered without a search of their own (in-batch
    /// duplicates fanned out plus proven-optimal memo hits).
    pub batch_memo_dedups: u64,
    /// Proven-optimal memo entries evicted from the bounded LRU memo.
    pub memo_evictions: u64,
    /// Witnesses rehydrated from the durable store at recovery.
    pub recovered_witnesses: u64,
    /// Proven-optimal memo entries rehydrated from the durable store at
    /// recovery.
    pub recovered_memos: u64,
}

/// The exportable warm state of a [`Session`]: everything the durable
/// store persists and recovery feeds back through
/// [`Session::import_state`]. Witnesses are `(k, vertices)` pairs; memos
/// pair a [`SolveKey`] with its proven solution.
#[derive(Clone, Debug, Default)]
pub struct SessionState {
    /// Best-known witness per defect budget, ascending `k`.
    pub witnesses: Vec<(usize, Vec<VertexId>)>,
    /// Proven-optimal memo entries, ascending `(k, preset)`.
    pub memos: Vec<(SolveKey, Solution)>,
}

/// One resident reducer slot of the bounded LRU cache.
struct CtcpSlot {
    key: CtcpKey,
    reducer: Arc<Mutex<Ctcp>>,
    last_used: u64,
}

/// The bounded reducer cache: linear-scan LRU (the cap is single-digit).
struct CtcpCache {
    cap: usize,
    tick: u64,
    slots: Vec<CtcpSlot>,
}

/// One memoized proven-optimal result with its recency stamp.
struct MemoSlot {
    solution: Solution,
    last_used: u64,
}

/// The bounded result memo: a hash map with LRU eviction at `cap`. The
/// scan to find the eviction victim is linear, which at the default cap is
/// still nanoseconds next to the solves the memo is summarizing.
struct MemoCache {
    cap: usize,
    tick: u64,
    map: HashMap<SolveKey, MemoSlot>,
}

/// A resident solver session over one graph.
///
/// A `Session` owns an `Arc<Graph>` plus every artifact worth keeping warm
/// between queries — the degeneracy peeling, a bounded LRU cache of
/// incremental CTCP reducers (one per `(k, rules)` combination), the best
/// known witness per `k`, and a memo of proven-optimal results per
/// `(k, preset)` — and answers typed [`Query`]s through [`Session::run`].
/// The CLI, the daemon, the benches and embedding applications all drive
/// this one surface, so the measured path *is* the served path.
///
/// All methods take `&self`; a `Session` wrapped in an `Arc` serves
/// concurrent queries from many threads (counters are atomics, caches sit
/// behind coarse mutexes, the solves themselves run outside any lock).
pub struct Session {
    graph: Arc<Graph>,
    peeling: OnceLock<Arc<Peeling>>,
    ctcp: Mutex<CtcpCache>,
    results: Mutex<MemoCache>,
    best_known: Mutex<HashMap<usize, Vec<VertexId>>>,
    peel_builds: AtomicU64,
    solves: AtomicU64,
    result_hits: AtomicU64,
    ctcp_builds: AtomicU64,
    ctcp_resumes: AtomicU64,
    ctcp_evictions: AtomicU64,
    memo_evictions: AtomicU64,
    recovered_witnesses: AtomicU64,
    recovered_memos: AtomicU64,
    batch_ctcp_shares: AtomicU64,
    batch_witness_seeds: AtomicU64,
    batch_memo_dedups: AtomicU64,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("n", &self.graph.n())
            .field("m", &self.graph.m())
            .field("counters", &self.counters())
            .finish()
    }
}

impl Session {
    /// A session over an owned graph.
    pub fn new(graph: Graph) -> Self {
        Self::from_arc(Arc::new(graph))
    }

    /// A session over an already shared graph (services that hand the same
    /// `Arc<Graph>` to in-flight jobs).
    pub fn from_arc(graph: Arc<Graph>) -> Self {
        Session {
            graph,
            peeling: OnceLock::new(),
            ctcp: Mutex::new(CtcpCache {
                cap: DEFAULT_CTCP_CAPACITY,
                tick: 0,
                slots: Vec::new(),
            }),
            results: Mutex::new(MemoCache {
                cap: DEFAULT_MEMO_CAPACITY,
                tick: 0,
                map: HashMap::new(),
            }),
            best_known: Mutex::new(HashMap::new()),
            peel_builds: AtomicU64::new(0),
            solves: AtomicU64::new(0),
            result_hits: AtomicU64::new(0),
            ctcp_builds: AtomicU64::new(0),
            ctcp_resumes: AtomicU64::new(0),
            ctcp_evictions: AtomicU64::new(0),
            memo_evictions: AtomicU64::new(0),
            recovered_witnesses: AtomicU64::new(0),
            recovered_memos: AtomicU64::new(0),
            batch_ctcp_shares: AtomicU64::new(0),
            batch_witness_seeds: AtomicU64::new(0),
            batch_memo_dedups: AtomicU64::new(0),
        }
    }

    /// Parses a graph file (DIMACS/METIS/edge list by extension) into a
    /// session.
    ///
    /// # Errors
    ///
    /// Fails with a message naming the path when the file cannot be read
    /// or parsed in any supported format.
    pub fn open(path: &Path) -> Result<Self, String> {
        let graph = kdc_graph::io::read_graph(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Ok(Self::new(graph))
    }

    /// Caps the number of resident CTCP reducers (default
    /// [`DEFAULT_CTCP_CAPACITY`]); beyond it the least-recently-used reducer
    /// is evicted (counted in [`SessionCounters::ctcp_evictions`]). A cap of
    /// `0` disables reducer residency entirely — every solve builds fresh.
    pub fn with_ctcp_capacity(self, cap: usize) -> Self {
        lock_unpoisoned(&self.ctcp).cap = cap;
        self
    }

    /// Caps the proven-optimal result memo (default
    /// [`DEFAULT_MEMO_CAPACITY`]); beyond it the least-recently-used entry
    /// is evicted (counted in [`SessionCounters::memo_evictions`]). A cap
    /// of `0` disables result memoization entirely.
    pub fn with_memo_capacity(self, cap: usize) -> Self {
        let mut memo = lock_unpoisoned(&self.results);
        memo.cap = cap;
        while memo.map.len() > cap {
            evict_lru_memo(&mut memo);
            self.memo_evictions.fetch_add(1, Ordering::Relaxed);
            session_obs().memo_evictions.inc();
        }
        drop(memo);
        self
    }

    /// The session's graph.
    pub fn graph(&self) -> &Arc<Graph> {
        &self.graph
    }

    /// The degeneracy peeling (ordering, ranks, core numbers), computed at
    /// most once per session and shared from then on.
    pub fn peeling(&self) -> Arc<Peeling> {
        self.peeling
            .get_or_init(|| {
                self.peel_builds.fetch_add(1, Ordering::Relaxed);
                session_obs().peel_builds.inc();
                Arc::new(degeneracy::peel(&self.graph))
            })
            .clone()
    }

    /// Degeneracy of the graph (forces the peeling artifact).
    pub fn degeneracy(&self) -> usize {
        self.peeling().degeneracy
    }

    /// A snapshot of the usage counters.
    pub fn counters(&self) -> SessionCounters {
        SessionCounters {
            peel_builds: self.peel_builds.load(Ordering::Relaxed),
            solves: self.solves.load(Ordering::Relaxed),
            result_hits: self.result_hits.load(Ordering::Relaxed),
            ctcp_builds: self.ctcp_builds.load(Ordering::Relaxed),
            ctcp_resumes: self.ctcp_resumes.load(Ordering::Relaxed),
            ctcp_evictions: self.ctcp_evictions.load(Ordering::Relaxed),
            batch_ctcp_shares: self.batch_ctcp_shares.load(Ordering::Relaxed),
            batch_witness_seeds: self.batch_witness_seeds.load(Ordering::Relaxed),
            batch_memo_dedups: self.batch_memo_dedups.load(Ordering::Relaxed),
            memo_evictions: self.memo_evictions.load(Ordering::Relaxed),
            recovered_witnesses: self.recovered_witnesses.load(Ordering::Relaxed),
            recovered_memos: self.recovered_memos.load(Ordering::Relaxed),
        }
    }

    /// Exports the session's warm state — best-known witnesses and the
    /// proven-optimal memo — in a deterministic order, for the durable
    /// store to snapshot.
    pub fn export_state(&self) -> SessionState {
        let mut witnesses: Vec<(usize, Vec<VertexId>)> = lock_unpoisoned(&self.best_known)
            .iter()
            .filter(|(_, w)| !w.is_empty())
            .map(|(&k, w)| (k, w.clone()))
            .collect();
        witnesses.sort_unstable_by_key(|&(k, _)| k);
        let mut memos: Vec<(SolveKey, Solution)> = lock_unpoisoned(&self.results)
            .map
            .iter()
            .map(|(key, slot)| (key.clone(), slot.solution.clone()))
            .collect();
        memos.sort_unstable_by(|(a, _), (b, _)| {
            (a.k, a.preset.as_str()).cmp(&(b.k, b.preset.as_str()))
        });
        SessionState { witnesses, memos }
    }

    /// Rehydrates warm state exported by [`Session::export_state`] (usually
    /// via the durable store after a restart). Every entry is revalidated
    /// against *this* session's graph — a witness must be a strictly
    /// ascending in-range k-defective clique, a memo additionally a proven
    /// [`kdc::Status::Optimal`] under a known preset — and anything that
    /// fails is silently dropped: recovered state is a hint, never an
    /// oracle. Accepted witnesses seed [`Session::best_known`]; accepted
    /// memos answer later queries `cached`. Returns
    /// `(witnesses_accepted, memos_accepted)`, also tracked by
    /// [`SessionCounters::recovered_witnesses`] /
    /// [`SessionCounters::recovered_memos`].
    pub fn import_state(&self, state: &SessionState) -> (u64, u64) {
        let valid = |vertices: &[VertexId], k: usize| -> bool {
            !vertices.is_empty()
                && vertices.windows(2).all(|pair| pair[0] < pair[1])
                && vertices.iter().all(|&v| (v as usize) < self.graph.n())
                && self.graph.is_k_defective_clique(vertices, k)
        };
        let mut witnesses = 0u64;
        for (k, vertices) in &state.witnesses {
            if valid(vertices, *k) {
                self.record_best_known(*k, vertices);
                witnesses += 1;
            }
        }
        let mut memos = 0u64;
        for (key, solution) in &state.memos {
            if solution.status != kdc::Status::Optimal
                || Options::preset(&key.preset).is_err()
                || !valid(&solution.vertices, key.k)
            {
                continue;
            }
            // A proven optimum is also the best witness for its k.
            self.record_best_known(key.k, &solution.vertices);
            self.memoize_result(key.clone(), solution.clone());
            memos += 1;
        }
        if witnesses > 0 {
            self.recovered_witnesses
                .fetch_add(witnesses, Ordering::Relaxed);
            session_obs().recovered_witnesses.add(witnesses);
        }
        if memos > 0 {
            self.recovered_memos.fetch_add(memos, Ordering::Relaxed);
            session_obs().recovered_memos.add(memos);
        }
        (witnesses, memos)
    }

    /// The best known solution for `k`, if any (cloned; seeds warm solves).
    pub fn best_known(&self, k: usize) -> Option<Vec<VertexId>> {
        lock_unpoisoned(&self.best_known).get(&k).cloned()
    }

    /// Records `vertices` as the best known solution for `k` when it beats
    /// the stored witness. Witnesses come straight out of the solver, so
    /// they are trusted here (and re-validated by the solver when seeded
    /// back in).
    pub(crate) fn record_best_known(&self, k: usize, vertices: &[VertexId]) {
        let mut map = lock_unpoisoned(&self.best_known);
        let entry = map.entry(k).or_default();
        if vertices.len() > entry.len() {
            *entry = vertices.to_vec();
        }
    }

    /// A memoized proven-optimal result for `key`, if any. A hit refreshes
    /// the entry's LRU stamp.
    pub(crate) fn cached_result(&self, key: &SolveKey) -> Option<Solution> {
        let mut memo = lock_unpoisoned(&self.results);
        memo.tick += 1;
        let tick = memo.tick;
        let found = memo.map.get_mut(key).map(|slot| {
            slot.last_used = tick;
            slot.solution.clone()
        });
        drop(memo);
        if found.is_some() {
            self.result_hits.fetch_add(1, Ordering::Relaxed);
            session_obs().result_hits.inc();
        }
        found
    }

    /// The resident CTCP reducer for `key`, built on first use and resumed
    /// from then on; returns `(reducer, resumed)`. Evicts the
    /// least-recently-used slot when the cache is full.
    pub(crate) fn ctcp_state(&self, key: CtcpKey) -> (Arc<Mutex<Ctcp>>, bool) {
        let mut cache = lock_unpoisoned(&self.ctcp);
        cache.tick += 1;
        let tick = cache.tick;
        if let Some(slot) = cache.slots.iter_mut().find(|s| s.key == key) {
            slot.last_used = tick;
            self.ctcp_resumes.fetch_add(1, Ordering::Relaxed);
            session_obs().ctcp_resumes.inc();
            return (slot.reducer.clone(), true);
        }
        self.ctcp_builds.fetch_add(1, Ordering::Relaxed);
        session_obs().ctcp_builds.inc();
        let fresh = Arc::new(Mutex::new(Ctcp::with_rules(
            &self.graph,
            key.k,
            key.core_rule,
            key.truss_rule,
        )));
        if cache.cap == 0 {
            return (fresh, false);
        }
        if cache.slots.len() >= cache.cap {
            let mut lru = 0;
            for (i, slot) in cache.slots.iter().enumerate().skip(1) {
                if slot.last_used < cache.slots[lru].last_used {
                    lru = i;
                }
            }
            cache.slots.swap_remove(lru);
            self.ctcp_evictions.fetch_add(1, Ordering::Relaxed);
            session_obs().ctcp_evictions.inc();
        }
        cache.slots.push(CtcpSlot {
            key,
            reducer: fresh.clone(),
            last_used: tick,
        });
        (fresh, false)
    }

    /// Every `(k, size)` pair the proven-optimal memo can vouch for, for
    /// pre-seeding a batch sweep's upper-bound caps. Sizes are
    /// preset-independent (every exact preset agrees on the optimum), so
    /// duplicate k entries across presets collapse to one pair.
    pub(crate) fn memoized_optimal_sizes(&self) -> Vec<(usize, usize)> {
        let results = lock_unpoisoned(&self.results);
        let mut sizes: HashMap<usize, usize> = HashMap::new();
        for (key, slot) in results.map.iter() {
            sizes.insert(key.k, slot.solution.vertices.len());
        }
        let mut out: Vec<(usize, usize)> = sizes.into_iter().collect();
        out.sort_unstable();
        out
    }

    /// Inserts a proven-optimal solution into the bounded result memo,
    /// evicting the least-recently-used entry at capacity.
    pub(crate) fn memoize_result(&self, key: SolveKey, solution: Solution) {
        let mut memo = lock_unpoisoned(&self.results);
        if memo.cap == 0 {
            return;
        }
        memo.tick += 1;
        let tick = memo.tick;
        if let Some(slot) = memo.map.get_mut(&key) {
            slot.solution = solution;
            slot.last_used = tick;
            return;
        }
        if memo.map.len() >= memo.cap {
            evict_lru_memo(&mut memo);
            self.memo_evictions.fetch_add(1, Ordering::Relaxed);
            session_obs().memo_evictions.inc();
        }
        memo.map.insert(
            key,
            MemoSlot {
                solution,
                last_used: tick,
            },
        );
    }

    /// Counts one real (non-memo) search, on the session and its registry
    /// twin.
    pub(crate) fn note_real_solve(&self) {
        self.solves.fetch_add(1, Ordering::Relaxed);
        session_obs().solves.inc();
    }

    /// Folds one finished batch's shared-work counters into the session
    /// atomics and their registry twins.
    pub(crate) fn note_batch_shared_work(&self, shares: u64, seeds: u64, dedups: u64) {
        self.batch_ctcp_shares.fetch_add(shares, Ordering::Relaxed);
        self.batch_witness_seeds.fetch_add(seeds, Ordering::Relaxed);
        self.batch_memo_dedups.fetch_add(dedups, Ordering::Relaxed);
        let obs = session_obs();
        obs.batch_ctcp_shares.add(shares);
        obs.batch_witness_seeds.add(seeds);
        obs.batch_memo_dedups.add(dedups);
    }

    /// Session-lifetime reducer eviction count, as sampled into
    /// [`CacheInfo::ctcp_evictions`].
    pub(crate) fn ctcp_evictions_snapshot(&self) -> u64 {
        self.ctcp_evictions.load(Ordering::Relaxed)
    }

    /// The thread count a budget is allowed to spend (see
    /// [`Budget::threads`]; clamped server-side).
    pub(crate) fn clamped_threads(budget: &Budget) -> usize {
        budget.threads.min(MAX_SOLVE_THREADS)
    }

    /// Convenience wrapper: [`Session::run`] with `Solve { k }` and default
    /// budget/options (which cannot fail).
    pub fn solve(&self, k: usize) -> Outcome {
        self.run(&Query::Solve { k }, &Budget::default(), &Options::default())
            // kdc-lint: allow(no_panic) — the default preset is statically valid.
            .expect("default options are always valid")
    }

    /// Runs one query to completion. See [`Session::run_with`] for the
    /// observer-carrying variant.
    ///
    /// # Errors
    ///
    /// Fails on invalid options (unknown preset) or invalid query
    /// parameters (e.g. a zero top-r pool); never on solver-side limits,
    /// which are reported through [`Outcome::status`].
    pub fn run(
        &self,
        query: &Query,
        budget: &Budget,
        options: &Options,
    ) -> Result<Outcome, String> {
        self.run_with(query, budget, options, None)
    }

    /// Runs one query, streaming [`Event`]s to `observer` while it executes.
    /// Events are delivered synchronously from the solving thread(s); the
    /// final [`Event::Done`] precedes the return.
    ///
    /// # Errors
    ///
    /// Same contract as [`Session::run`]: invalid options or query
    /// parameters fail fast, exhausted budgets come back as a non-optimal
    /// [`Outcome::status`].
    pub fn run_with(
        &self,
        query: &Query,
        budget: &Budget,
        options: &Options,
        observer: Option<Arc<dyn Observer>>,
    ) -> Result<Outcome, String> {
        self.run_observed(query, budget, options, observer, None)
    }

    /// Runs one query with the full observability surface: optional
    /// [`Event`] streaming plus an optional [`kdc_obs::Tracer`] whose ring
    /// collects the solve's phase spans (peel / tighten / branch / ego) for
    /// `--profile` tables, the daemon's `TRACE` verb and slow-query logs.
    /// Solve telemetry (latency, per-preset nodes, per-bound costs) is
    /// published to the global [`kdc_obs::registry`] regardless of `trace`.
    ///
    /// # Errors
    ///
    /// Same contract as [`Session::run`]: invalid options or query
    /// parameters fail fast, exhausted budgets come back as a non-optimal
    /// [`Outcome::status`].
    pub fn run_observed(
        &self,
        query: &Query,
        budget: &Budget,
        options: &Options,
        observer: Option<Arc<dyn Observer>>,
        trace: Option<kdc_obs::Tracer>,
    ) -> Result<Outcome, String> {
        let outcome = match query {
            Query::Solve { k } => self.run_solve(*k, budget, options, observer.clone(), trace),
            Query::Enumerate { k } => self.run_top_r(*k, usize::MAX, false, budget, options),
            Query::TopR { k, r, diversify } => self.run_top_r(*k, *r, *diversify, budget, options),
            Query::Count { k, min_size } => self.run_count(*k, *min_size, budget),
            // A batch folds into one Outcome for the uniform `run` surface:
            // one primary witness per sub-query (input order), the most
            // severe status, summed search stats. Callers wanting the
            // per-sub-query outcomes and shared-work counters use
            // `Session::run_batch` directly.
            Query::Batch(subs) => {
                let t0 = Instant::now();
                let batch =
                    self.run_batch_observed(subs, budget, options, observer.clone(), trace)?;
                let status = batch.status();
                let mut stats = kdc::SearchStats::default();
                let mut witnesses = Vec::with_capacity(batch.outcomes.len());
                for outcome in &batch.outcomes {
                    stats.absorb(&outcome.stats);
                    witnesses.push(outcome.best().unwrap_or_default().to_vec());
                }
                Ok(Outcome {
                    witnesses,
                    counts: None,
                    status,
                    stats,
                    cache: CacheInfo {
                        ctcp_evictions: self.ctcp_evictions.load(Ordering::Relaxed),
                        ..CacheInfo::default()
                    },
                    elapsed: t0.elapsed(),
                })
            }
        }?;
        if let Some(obs) = &observer {
            obs.event(&Event::Done {
                status: outcome.status,
            });
        }
        Ok(outcome)
    }

    fn run_solve(
        &self,
        k: usize,
        budget: &Budget,
        options: &Options,
        observer: Option<Arc<dyn Observer>>,
        trace: Option<kdc_obs::Tracer>,
    ) -> Result<Outcome, String> {
        let t0 = Instant::now();
        let memo_key = options.memo_preset().map(|preset| SolveKey {
            k,
            preset: preset.to_string(),
        });
        if let Some(key) = &memo_key {
            if let Some(solution) = self.cached_result(key) {
                return Ok(Outcome {
                    witnesses: vec![solution.vertices],
                    counts: None,
                    status: solution.status,
                    stats: solution.stats,
                    cache: CacheInfo {
                        result_memo_hit: true,
                        ctcp_evictions: self.ctcp_evictions.load(Ordering::Relaxed),
                        ..CacheInfo::default()
                    },
                    elapsed: t0.elapsed(),
                });
            }
        }
        let mut config = options.resolve()?;
        apply_budget(&mut config, budget);
        config.trace = trace;
        // Warm artifact reuse: the heuristic/decomposition phase runs on the
        // cached peeling, preprocessing resumes the resident CTCP reducer
        // for this (k, rules) pair, and the best known witness seeds the
        // lower bound so the resumed reducer state is sound.
        config.shared_peeling = Some(self.peeling());
        let (ctcp, ctcp_resumed) = self.ctcp_state(CtcpKey {
            k,
            core_rule: config.enable_rr5,
            truss_rule: config.enable_rr6,
        });
        config.shared_ctcp = Some(ctcp);
        let seed = self.best_known(k);
        let seeded = seed.is_some();
        config.seed_solution = seed;
        if let Some(obs) = observer {
            config.on_event = Some(EventHook::new(move |e| {
                obs.event(&Event::from_solve(e));
            }));
        }
        self.solves.fetch_add(1, Ordering::Relaxed);
        session_obs().solves.inc();
        let solution = if budget.threads == 1 {
            Solver::new(&self.graph, k, config).solve()
        } else {
            let threads = budget.threads.min(MAX_SOLVE_THREADS);
            decompose::solve_decomposed(&self.graph, k, config, threads)
        };
        self.record_best_known(k, &solution.vertices);
        flush_solve_metrics(
            options.preset_name(),
            &solution.stats,
            t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64,
        );
        if solution.is_optimal() {
            if let Some(key) = memo_key {
                self.memoize_result(key, solution.clone());
            }
        }
        Ok(Outcome {
            witnesses: vec![solution.vertices],
            counts: None,
            status: solution.status,
            stats: solution.stats,
            cache: CacheInfo {
                result_memo_hit: false,
                ctcp_resumed,
                peeling_shared: true,
                seeded,
                ctcp_evictions: self.ctcp_evictions.load(Ordering::Relaxed),
            },
            elapsed: t0.elapsed(),
        })
    }

    pub(crate) fn run_top_r(
        &self,
        k: usize,
        r: usize,
        diversify: bool,
        budget: &Budget,
        options: &Options,
    ) -> Result<Outcome, String> {
        if r == 0 {
            return Err("top-r pool size must be positive".to_string());
        }
        let t0 = Instant::now();
        let mut config = options.resolve()?;
        // Enumeration must not discard solutions via a precomputed lower
        // bound, so no resident reducer and no witness seed are installed;
        // budget limits still apply (the engine honours them per run).
        apply_budget(&mut config, budget);
        let result = if diversify {
            topr::top_r_diversified_with_status(&self.graph, k, r, config)
        } else {
            topr::top_r_maximal_with_status(&self.graph, k, r, config)
        };
        Ok(Outcome {
            witnesses: result.cliques,
            counts: None,
            // Anything but Optimal means a limit or cancellation cut the
            // enumeration short: the pool may be truncated.
            status: result.status,
            stats: kdc::SearchStats::default(),
            cache: CacheInfo {
                ctcp_evictions: self.ctcp_evictions.load(Ordering::Relaxed),
                ..CacheInfo::default()
            },
            elapsed: t0.elapsed(),
        })
    }

    fn run_count(&self, k: usize, min_size: usize, budget: &Budget) -> Result<Outcome, String> {
        let t0 = Instant::now();
        // The counter honours cancellation and the wall clock (node limits
        // do not apply: counting has no branch-and-bound nodes). A
        // non-Optimal status means the counts are a lower bound.
        let deadline = budget.time_limit.map(|d| t0 + d);
        let (counts, status) = counting::count_k_defective_cliques_with(
            &self.graph,
            k,
            min_size,
            budget.cancel.as_ref(),
            deadline,
        );
        Ok(Outcome {
            witnesses: Vec::new(),
            counts: Some(counts),
            status,
            stats: kdc::SearchStats::default(),
            cache: CacheInfo {
                ctcp_evictions: self.ctcp_evictions.load(Ordering::Relaxed),
                ..CacheInfo::default()
            },
            elapsed: t0.elapsed(),
        })
    }
}

/// Removes the least-recently-used entry of a full memo. Callers count the
/// eviction on the session and its registry twin.
fn evict_lru_memo(memo: &mut MemoCache) {
    let victim = memo
        .map
        .iter()
        .min_by_key(|(_, slot)| slot.last_used)
        .map(|(key, _)| key.clone());
    if let Some(key) = victim {
        memo.map.remove(&key);
    }
}

/// Installs a budget's limits on a config. Budget values win when present;
/// values an embedder set on an [`Options::custom`] configuration survive
/// an unlimited (default) budget instead of being silently clobbered.
pub(crate) fn apply_budget(config: &mut kdc::SolverConfig, budget: &Budget) {
    if budget.time_limit.is_some() {
        config.time_limit = budget.time_limit;
    }
    if budget.node_limit.is_some() {
        config.node_limit = budget.node_limit;
    }
    if budget.cancel.is_some() {
        config.cancel = budget.cancel.clone();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdc::Status;
    use kdc_graph::{gen, named};

    #[test]
    fn solve_matches_direct_solver_and_memoizes() {
        let session = Session::new(named::figure2());
        let first = session.solve(2);
        assert_eq!(first.size(), 6);
        assert!(first.is_optimal());
        assert!(!first.cache.result_memo_hit);
        let second = session.solve(2);
        assert!(second.cache.result_memo_hit, "identical query hits memo");
        assert_eq!(second.witnesses, first.witnesses, "byte-identical answer");
        let c = session.counters();
        assert_eq!((c.solves, c.result_hits), (1, 1));
    }

    #[test]
    fn peeling_is_built_exactly_once() {
        let session = Session::new(named::figure2());
        assert_eq!(session.counters().peel_builds, 0, "peel must be lazy");
        let d1 = session.degeneracy();
        let d2 = session.degeneracy();
        assert_eq!(d1, d2);
        assert_eq!(session.counters().peel_builds, 1);
    }

    #[test]
    fn warm_solve_resumes_the_resident_reducer() {
        let mut rng = gen::seeded_rng(31);
        let (g, _) = gen::planted_defective_clique(200, 12, 2, 0.03, &mut rng);
        let session = Session::new(g);
        let q = Query::Solve { k: 2 };
        let b = Budget::default();
        let first = session
            .run(&q, &b, &Options::preset("kdc").unwrap())
            .unwrap();
        assert!(!first.cache.ctcp_resumed, "cold solve builds");
        // A different preset dodges the result memo but shares the same
        // (rr5, rr6) rule set, so the resident reducer is resumed.
        let second = session
            .run(&q, &b, &Options::preset("kdbb").unwrap())
            .unwrap();
        assert!(!second.cache.result_memo_hit);
        assert!(second.cache.ctcp_resumed, "warm solve must resume");
        assert!(second.cache.seeded, "witness seeds the warm solve");
        assert_eq!(second.size(), first.size());
        assert_eq!(
            second.stats.ctcp_vertex_removals, 0,
            "resumed reducer already at the fixpoint for this bound"
        );
        let c = session.counters();
        assert_eq!((c.ctcp_builds, c.ctcp_resumes), (1, 1));
        assert_eq!(
            session.best_known(2).unwrap().len(),
            first.size(),
            "witness recorded for seeding"
        );
    }

    #[test]
    fn lru_cap_evicts_least_recently_used_reducer() {
        let session = Session::new(named::figure2()).with_ctcp_capacity(2);
        // kdc (rr5+rr6), kdc at other k, then a third key: one eviction.
        session.solve(0);
        session.solve(1);
        assert_eq!(session.counters().ctcp_evictions, 0);
        session.solve(2);
        let c = session.counters();
        assert_eq!(c.ctcp_evictions, 1, "third key evicts the LRU slot");
        assert_eq!(c.ctcp_builds, 3);
        // k=0 was least recently used and is gone: re-touching it (memo
        // dodged via a different preset) rebuilds instead of resuming.
        session
            .run(
                &Query::Solve { k: 0 },
                &Budget::default(),
                &Options::preset("kdbb").unwrap(),
            )
            .unwrap();
        let c = session.counters();
        assert_eq!(c.ctcp_builds, 4, "evicted reducer must rebuild");
        assert_eq!(c.ctcp_evictions, 2);
        // k=2 stayed resident through it all.
        session
            .run(
                &Query::Solve { k: 2 },
                &Budget::default(),
                &Options::preset("kdbb").unwrap(),
            )
            .unwrap();
        assert_eq!(session.counters().ctcp_resumes, 1);
    }

    #[test]
    fn memo_lru_cap_evicts_least_recently_used_result() {
        let session = Session::new(named::figure2()).with_memo_capacity(2);
        session.solve(0);
        session.solve(1);
        assert_eq!(session.counters().memo_evictions, 0);
        session.solve(2);
        assert_eq!(
            session.counters().memo_evictions,
            1,
            "third key evicts the LRU memo entry"
        );
        // k=1 and k=2 stayed memoized; k=0 was evicted and re-solves.
        assert!(session.solve(1).cache.result_memo_hit);
        assert!(session.solve(2).cache.result_memo_hit);
        let solves_before = session.counters().solves;
        assert!(!session.solve(0).cache.result_memo_hit);
        assert_eq!(session.counters().solves, solves_before + 1);
    }

    #[test]
    fn zero_memo_capacity_disables_memoization() {
        let session = Session::new(named::figure2()).with_memo_capacity(0);
        session.solve(1);
        assert!(!session.solve(1).cache.result_memo_hit);
        let c = session.counters();
        assert_eq!(c.result_hits, 0);
        assert_eq!(c.memo_evictions, 0, "nothing cached, nothing evicted");
        assert_eq!(c.solves, 2);
    }

    #[test]
    fn export_import_state_rehydrates_a_fresh_session() {
        let session = Session::new(named::figure2());
        let original = session.solve(2);
        let state = session.export_state();
        assert_eq!(state.witnesses.len(), 1, "{state:?}");
        assert_eq!(state.memos.len(), 1, "{state:?}");

        let fresh = Session::new(named::figure2());
        assert_eq!(fresh.import_state(&state), (1, 1));
        let hit = fresh.solve(2);
        assert!(hit.cache.result_memo_hit, "recovered memo answers cached");
        assert_eq!(hit.witnesses, original.witnesses, "byte-identical answer");
        let c = fresh.counters();
        assert_eq!(c.solves, 0, "no search ran on the rehydrated session");
        assert_eq!((c.recovered_witnesses, c.recovered_memos), (1, 1));
        assert_eq!(
            fresh.best_known(2).unwrap().len(),
            original.size(),
            "recovered witness seeds the incumbent"
        );
    }

    #[test]
    fn import_state_rejects_foreign_and_malformed_entries() {
        let session = Session::new(named::figure2());
        session.solve(2);
        let state = session.export_state();

        // A graph the witness is not a clique of (edgeless) rejects it,
        // and a tiny graph rejects out-of-range ids without panicking.
        let mut rng = gen::seeded_rng(5);
        let edgeless = Session::new(gen::gnp(30, 0.0, &mut rng));
        assert_eq!(edgeless.import_state(&state), (0, 0));
        let tiny = Session::new(gen::gnp(3, 0.0, &mut rng));
        assert_eq!(tiny.import_state(&state), (0, 0));

        // Unsorted witnesses, non-optimal memos and unknown presets are
        // dropped one by one, not trusted.
        let bogus = SessionState {
            witnesses: vec![(2, vec![5, 1])],
            memos: vec![
                (
                    SolveKey {
                        k: 2,
                        preset: "kdc".to_string(),
                    },
                    Solution {
                        vertices: vec![0, 1],
                        status: Status::TimedOut,
                        stats: kdc::SearchStats::default(),
                    },
                ),
                (
                    SolveKey {
                        k: 2,
                        preset: "no_such_preset".to_string(),
                    },
                    Solution {
                        vertices: vec![0, 1],
                        status: Status::Optimal,
                        stats: kdc::SearchStats::default(),
                    },
                ),
            ],
        };
        let clean = Session::new(named::figure2());
        assert_eq!(clean.import_state(&bogus), (0, 0));
        assert_eq!(clean.counters().recovered_witnesses, 0);
    }

    #[test]
    fn zero_capacity_disables_residency() {
        let session = Session::new(named::figure2()).with_ctcp_capacity(0);
        session.solve(1);
        session
            .run(
                &Query::Solve { k: 1 },
                &Budget::default(),
                &Options::preset("kdbb").unwrap(),
            )
            .unwrap();
        let c = session.counters();
        assert_eq!(c.ctcp_builds, 2, "nothing is resident at cap 0");
        assert_eq!(c.ctcp_resumes, 0);
        assert_eq!(c.ctcp_evictions, 0);
    }

    #[test]
    fn observer_receives_incumbent_and_done_events() {
        let session = Session::new(named::figure2());
        let events: Arc<Mutex<Vec<Event>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = events.clone();
        let observer: Arc<dyn Observer> = Arc::new(move |e: &Event| {
            sink.lock().unwrap().push(*e);
        });
        let outcome = session
            .run_with(
                &Query::Solve { k: 2 },
                &Budget::default(),
                &Options::default(),
                Some(observer),
            )
            .unwrap();
        assert!(outcome.is_optimal());
        let events = events.lock().unwrap();
        assert!(
            events
                .iter()
                .any(|e| matches!(e, Event::Incumbent { size } if *size >= 5)),
            "at least one incumbent event expected: {events:?}"
        );
        assert!(
            matches!(
                events.last(),
                Some(Event::Done {
                    status: Status::Optimal
                })
            ),
            "stream must end with Done: {events:?}"
        );
    }

    #[test]
    fn enumerate_and_topr_match_direct_calls() {
        let g = named::figure2();
        let session = Session::new(g.clone());
        let direct = topr::top_r_maximal(&g, 1, 2, kdc::SolverConfig::kdc());
        let outcome = session
            .run(
                &Query::TopR {
                    k: 1,
                    r: 2,
                    diversify: false,
                },
                &Budget::default(),
                &Options::default(),
            )
            .unwrap();
        assert_eq!(outcome.witnesses, direct);
        assert!(outcome.is_optimal());
        let all = session
            .run(
                &Query::Enumerate { k: 1 },
                &Budget::default(),
                &Options::default(),
            )
            .unwrap();
        assert_eq!(
            all.witnesses,
            topr::enumerate_maximal(&g, 1, kdc::SolverConfig::kdc())
        );
        assert!(
            session
                .run(
                    &Query::TopR {
                        k: 1,
                        r: 0,
                        diversify: false
                    },
                    &Budget::default(),
                    &Options::default(),
                )
                .is_err(),
            "r = 0 must be rejected, not assert"
        );
    }

    #[test]
    fn count_matches_direct_counter() {
        let g = named::figure2();
        let session = Session::new(g.clone());
        let outcome = session
            .run(
                &Query::Count { k: 1, min_size: 5 },
                &Budget::default(),
                &Options::default(),
            )
            .unwrap();
        let direct = counting::count_k_defective_cliques(&g, 1, 5);
        assert_eq!(outcome.counts.unwrap(), direct);
        assert!(outcome.witnesses.is_empty());
    }

    #[test]
    fn budget_limits_and_cancellation_flow_through() {
        let mut rng = gen::seeded_rng(42);
        let g = gen::gnp(120, 0.5, &mut rng);
        let session = Session::new(g);
        // Node limit: best-effort status.
        let outcome = session
            .run(
                &Query::Solve { k: 8 },
                &Budget::default().with_node_limit(1),
                &Options::preset("kdc_t").unwrap(),
            )
            .unwrap();
        assert_eq!(outcome.status, Status::NodeLimitReached);
        // Pre-raised cancel flag: the search aborts immediately.
        let flag = kdc::CancelFlag::new();
        flag.cancel();
        let outcome = session
            .run(
                &Query::Solve { k: 8 },
                &Budget::default().with_cancel(flag),
                &Options::default(),
            )
            .unwrap();
        assert_eq!(outcome.status, Status::Cancelled);
    }

    #[test]
    fn budget_interrupts_enumeration_and_counting() {
        let mut rng = gen::seeded_rng(99);
        let g = gen::gnp(40, 0.5, &mut rng);
        let session = Session::new(g);
        // Pre-raised cancel: the enumeration must not claim a complete pool.
        let flag = kdc::CancelFlag::new();
        flag.cancel();
        let outcome = session
            .run(
                &Query::Enumerate { k: 2 },
                &Budget::default().with_cancel(flag.clone()),
                &Options::default(),
            )
            .unwrap();
        assert_eq!(outcome.status, Status::Cancelled);
        // Same for counting: a cancelled count is a lower bound, not an
        // answer — and the worker is released promptly.
        let outcome = session
            .run(
                &Query::Count { k: 2, min_size: 0 },
                &Budget::default().with_cancel(flag),
                &Options::default(),
            )
            .unwrap();
        assert_eq!(outcome.status, Status::Cancelled);
        // An already-expired deadline times the count out.
        let outcome = session
            .run(
                &Query::Count { k: 2, min_size: 0 },
                &Budget::default().with_time_limit(std::time::Duration::ZERO),
                &Options::default(),
            )
            .unwrap();
        assert_eq!(outcome.status, Status::TimedOut);
    }

    #[test]
    fn enumeration_with_a_node_limit_is_not_reported_complete() {
        let mut rng = gen::seeded_rng(98);
        let g = gen::gnp(40, 0.5, &mut rng);
        let session = Session::new(g);
        let outcome = session
            .run(
                &Query::Enumerate { k: 2 },
                &Budget::default().with_node_limit(1),
                &Options::default(),
            )
            .unwrap();
        assert_eq!(outcome.status, Status::NodeLimitReached);
    }

    #[test]
    fn custom_config_limits_survive_a_default_budget() {
        let mut rng = gen::seeded_rng(97);
        let g = gen::gnp(60, 0.5, &mut rng);
        let session = Session::new(g);
        // A cancel flag installed on the custom config itself — with no
        // budget-level flag — must still abort the solve.
        let flag = kdc::CancelFlag::new();
        flag.cancel();
        let outcome = session
            .run(
                &Query::Solve { k: 4 },
                &Budget::default(),
                &Options::custom(kdc::SolverConfig::kdc().with_cancel(flag)),
            )
            .unwrap();
        assert_eq!(outcome.status, Status::Cancelled);
        // Same for a config-level node limit.
        let outcome = session
            .run(
                &Query::Solve { k: 4 },
                &Budget::default(),
                &Options::custom(kdc::SolverConfig::kdc_t().with_node_limit(1)),
            )
            .unwrap();
        assert_eq!(outcome.status, Status::NodeLimitReached);
        // A budget-level limit still wins over the config's.
        let outcome = session
            .run(
                &Query::Solve { k: 4 },
                &Budget::default().with_node_limit(1),
                &Options::custom(kdc::SolverConfig::kdc_t().with_node_limit(u64::MAX)),
            )
            .unwrap();
        assert_eq!(outcome.status, Status::NodeLimitReached);
    }

    #[test]
    fn threaded_budget_uses_the_decomposition() {
        let mut rng = gen::seeded_rng(7);
        let (g, _) = gen::planted_defective_clique(300, 14, 2, 0.03, &mut rng);
        let session = Session::new(g.clone());
        let sequential = session.solve(2);
        let threaded = session
            .run(
                &Query::Solve { k: 2 },
                &Budget::default().with_threads(2),
                &Options::preset("kdbb").unwrap(), // dodge the memo
            )
            .unwrap();
        assert_eq!(threaded.size(), sequential.size());
        assert!(threaded.is_optimal());
        // Fully warm (seeded at the optimum): every ego instance may be
        // skipped, so only the answer itself is asserted here.
        assert!(g.is_k_defective_clique(threaded.best().unwrap(), 2));
    }

    #[test]
    fn lock_unpoisoned_recovers_the_inner_value() {
        let m = std::sync::Arc::new(Mutex::new(7u32));
        let poisoner = std::sync::Arc::clone(&m);
        // kdc-lint: allow(no_panic) — deliberately poisoning the mutex.
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.lock().unwrap();
            panic!("poison the mutex");
        })
        .join();
        assert!(m.lock().is_err(), "mutex must be poisoned");
        assert_eq!(*lock_unpoisoned(&m), 7, "value survives the poison");
        *lock_unpoisoned(&m) = 8;
        assert_eq!(*lock_unpoisoned(&m), 8);
    }

    #[test]
    fn observed_run_records_spans_and_registry_twins() {
        let session = Session::new(named::figure2());
        let trace = kdc_obs::Tracer::new();
        let outcome = session
            .run_observed(
                &Query::Solve { k: 2 },
                &Budget::default(),
                &Options::default(),
                None,
                Some(trace.clone()),
            )
            .unwrap();
        assert!(outcome.is_optimal());
        let phases: Vec<&str> = trace.summary().iter().map(|p| p.name).collect();
        assert!(phases.contains(&"peel"), "phases recorded: {phases:?}");
        // The registry is process-global and shared with concurrently
        // running tests, so only presence (not exact values) is asserted.
        let text = kdc_obs::registry().render_prometheus();
        assert!(text.contains("kdc_session_solves_total"), "{text}");
        assert!(
            text.contains("kdc_session_nodes_total{preset=\"kdc\"}"),
            "{text}"
        );
        assert!(
            text.contains("kdc_core_bound_invocations_total{bound=\"ub2\"}"),
            "{text}"
        );
        assert!(
            text.contains("kdc_session_solve_duration_ns_count"),
            "{text}"
        );
    }

    #[test]
    fn run_with_still_solves_without_a_tracer() {
        let session = Session::new(named::figure2());
        let outcome = session
            .run_with(
                &Query::Solve { k: 2 },
                &Budget::default(),
                &Options::default(),
                None,
            )
            .unwrap();
        assert_eq!(outcome.size(), 6);
    }

    #[cfg(debug_assertions)]
    #[test]
    fn session_survives_a_panicking_run() {
        // The daemon-side contract, proven at the API layer: a run that
        // panics (fault-injection preset) leaves the session fully usable.
        let session = Session::new(named::figure2());
        let q = Query::Solve { k: 2 };
        let b = Budget::default();
        let boom = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            session.run(
                &q,
                &b,
                &Options::preset(crate::query::PANIC_PRESET).unwrap(),
            )
        }));
        assert!(boom.is_err(), "fault-injection preset must panic");
        let after = session
            .run(&q, &b, &Options::preset("kdc").unwrap())
            .unwrap();
        assert_eq!(after.size(), 6);
        assert!(after.is_optimal());
    }
}
