#![deny(missing_docs)]
#![forbid(unsafe_code)]

//! # kdc_api — the resident, typed query surface of the kDC suite
//!
//! Every consumer of the kDC solver — the `kdc` CLI, the `kdc_service`
//! daemon, the benchmark binaries and embedding applications — used to wire
//! up the core entry points ([`kdc::Solver`],
//! [`kdc::decompose::solve_decomposed`], [`kdc::topr`], [`kdc::counting`])
//! separately, and the warm-solve state (cached degeneracy peeling,
//! per-`(k, rules)` incremental CTCP reducers, best-known witnesses,
//! proven-optimal memos) was trapped inside the daemon where nobody else
//! could reach it. This crate lifts all of that into one resident
//! [`Session`] with a typed request/response model:
//!
//! * [`Query`] — *what* to compute: `Solve`, `Enumerate`, `TopR`, `Count`;
//! * [`Budget`] — *how much* to spend: time/node limits, threads,
//!   cooperative cancellation;
//! * [`Options`] — *which algorithm*: a named preset or an explicit
//!   [`kdc::SolverConfig`];
//! * [`Outcome`] — the unified answer: witness(es), status, search
//!   statistics and cache-provenance counters;
//! * [`Observer`] / [`Event`] — a callback channel streaming
//!   incumbent-improved / retighten / restart / done events while the query
//!   runs.
//!
//! ## Embedding the solver
//!
//! ```
//! use kdc_api::{Budget, Options, Query, Session};
//! use kdc_graph::Graph;
//! use std::time::Duration;
//!
//! // Build (or parse — see Session::open) a graph and make it resident.
//! let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
//! let session = Session::new(g);
//!
//! // One-liner for the common case:
//! let outcome = session.solve(1);
//! assert_eq!(outcome.size(), 3);
//! assert!(outcome.is_optimal());
//!
//! // The full typed surface: query x budget x options.
//! let outcome = session
//!     .run(
//!         &Query::Solve { k: 1 },
//!         &Budget::default().with_time_limit(Duration::from_secs(10)),
//!         &Options::preset("kdc")?,
//!     )?;
//! assert_eq!(outcome.size(), 3);
//! // The second query hit the proven-optimal memo: no search ran.
//! assert!(outcome.cache.result_memo_hit);
//!
//! // Warm artifacts persist on the session: enumeration, top-r pools and
//! // exact counting all run against the same resident graph.
//! let pool = session.run(
//!     &Query::TopR { k: 1, r: 2, diversify: false },
//!     &Budget::default(),
//!     &Options::default(),
//! )?;
//! assert_eq!(pool.witnesses.len(), 2);
//! # Ok::<(), String>(())
//! ```
//!
//! ## Why a session (and not a function)?
//!
//! The paper's preprocessing (reduction rules RR5/RR6) and initial-solution
//! heuristics dominate the cost of easy queries; a resident session pays
//! them once and lets every later query start from the tightened state:
//! repeat solves answer from the memo, solves at new `k` or under new
//! presets resume the incremental CTCP reducer and are seeded with the best
//! known witness. The reducer cache and the proven-optimal result memo are
//! both bounded (LRU, defaults [`session::DEFAULT_CTCP_CAPACITY`] and
//! [`session::DEFAULT_MEMO_CAPACITY`]) so a long-lived session cannot
//! accumulate unbounded per-`(k, rules)` or per-`(k, preset)` state.
//!
//! The warm state is also *portable*: [`Session::export_state`] captures
//! the witnesses and memos as a [`SessionState`], and
//! [`Session::import_state`] rehydrates them into a fresh session after
//! revalidating every entry against its graph — the mechanism behind the
//! daemon's crash recovery (`kdc serve --state-dir`, see `kdc_store`).

pub mod batch;
pub mod query;
pub mod session;

pub use batch::{BatchExec, BatchOutcome, BatchPlan, SubQuery};
pub use query::{Budget, CacheInfo, Event, Observer, Options, Outcome, Query};
pub use session::{CtcpKey, Session, SessionCounters, SessionState, SolveKey};
