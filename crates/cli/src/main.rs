//! `kdc` — command-line maximum k-defective clique computation.
//!
//! ```text
//! kdc solve <graph-file> --k <K> [--preset kdc|kdc_t|kdbb|madec] [--limit S]
//!           [--nodes N] [--parallel] [--threads N] [--stats] [--watch]
//!           [--profile]
//! kdc batch <graph-file> --k <LO..HI> [--r R] [--preset P] [--limit S]
//!           [--nodes N] [--parallel] [--threads N] [--watch]
//! kdc enumerate <graph-file> --k <K> [--top R] [--diversify]
//! kdc count <graph-file> --k <K> [--min-size S]
//! kdc stats <graph-file>
//! kdc convert <input> <output>      # by extension: .clq/.graph/.txt
//! kdc gamma [max_k]
//! kdc serve [--addr A] [--workers N] [--slow-ms T] [--idle-secs S]
//!           [--watchdog-secs S] [--max-conns N] [--max-queue N]
//!           [--cache-cap N] [--state-dir DIR]
//! kdc client [--retries N] [--backoff-ms M] <addr> <command...>
//! kdc metrics <addr>
//! ```
//!
//! Graph formats are selected by extension: DIMACS `.clq`/`.col`, METIS
//! `.graph`/`.metis`, otherwise whitespace edge list.
//!
//! Exit codes: `0` success (for `solve`: proven optimal), `1` error,
//! `2` best-effort result (a limit expired before optimality was proven).

use std::path::Path;
use std::process::ExitCode;

mod args;
mod commands;

/// Exit code for a solve that returned a valid but not proven-optimal
/// solution (time/node limit, cancellation). Distinct from `1` (errors) so
/// scripts can tell "answer, maybe improvable" from "no answer".
pub(crate) const EXIT_BEST_EFFORT: u8 = 2;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = argv.split_first() else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    let result: Result<ExitCode, String> = match command.as_str() {
        "solve" => commands::solve(rest),
        "batch" => commands::batch(rest),
        "enumerate" => commands::enumerate(rest).map(|()| ExitCode::SUCCESS),
        "count" => commands::count(rest).map(|()| ExitCode::SUCCESS),
        "verify" => commands::verify(rest).map(|()| ExitCode::SUCCESS),
        "stats" => commands::stats(rest).map(|()| ExitCode::SUCCESS),
        "convert" => commands::convert(rest).map(|()| ExitCode::SUCCESS),
        "gamma" => commands::gamma(rest).map(|()| ExitCode::SUCCESS),
        "serve" => commands::serve(rest).map(|()| ExitCode::SUCCESS),
        "client" => commands::client(rest),
        "metrics" => commands::metrics(rest).map(|()| ExitCode::SUCCESS),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command {other:?}\n{}", usage())),
    };
    match result {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn usage() -> &'static str {
    "kdc — exact maximum k-defective clique computation (Chang, SIGMOD 2023)

USAGE:
  kdc solve <graph-file> --k <K> [--preset kdc|kdc_t|kdbb|madec|rds]
            [--limit <seconds>] [--nodes <N>] [--parallel] [--threads <N>]
            [--stats] [--watch] [--cert <out-file>] [--profile]
  kdc batch <graph-file> --k <LO..HI> [--r <R>] [--preset <P>]
            [--limit <seconds>] [--nodes <N>] [--parallel] [--threads <N>]
            [--watch]
  kdc enumerate <graph-file> --k <K> [--top <R>] [--diversify]
  kdc count <graph-file> --k <K> [--min-size <S>]
  kdc verify <graph-file> <certificate-file>
  kdc stats <graph-file>
  kdc convert <input-file> <output-file>
  kdc gamma [max_k]
  kdc serve [--addr <host:port>] [--workers <N>] [--slow-ms <T>]
            [--idle-secs <S>] [--watchdog-secs <S>] [--max-conns <N>]
            [--max-queue <N>] [--cache-cap <N>] [--state-dir <DIR>]
  kdc client [--retries <N>] [--backoff-ms <M>] <host:port> <command...>
  kdc metrics <host:port>

Formats by extension: .clq/.col/.dimacs (DIMACS), .graph/.metis (METIS),
anything else is read as a 0-based whitespace edge list.

Exit codes: 0 = success/optimal, 1 = error, 2 = best-effort (limit hit).

The daemon protocol (one line per request/response; SOLVE verbose=1
streams EVENT lines before the final OK):
  LOAD <path> AS <name>
  SOLVE <name> k=<K> [preset=..] [limit=..] [nodes=..] [threads=..]
        [verbose=0|1]
  MSOLVE <name> k=<LO>..<HI> [r=..] [preset=..] [limit=..] [nodes=..]
         [threads=..]                # one batched sweep; streams RESULT lines
  ENUMERATE <name> k=<K> top=<R>
  COUNT <name> k=<K> [min=<S>]
  STATS [<name>] | UNLOAD <name> | JOBS | CANCEL <id>
  SHUTDOWN [mode=drain|abort]         # drain finishes queued jobs first
  METRICS | TRACE <id>                # Prometheus scrape / per-job trace
  FAULTS [<plan>|off]                 # debug builds; KDC_FAULTS env anywhere

Overloaded daemons (started with --max-conns/--max-queue) answer
`ERR busy ... retry_after_ms=<M>`; `kdc client --retries` retries connect
failures and busy replies on every verb, plus torn replies on the
idempotent read verbs (SOLVE/STATS/METRICS), nothing else.

A daemon started with --state-dir journals every newly proven result to a
crash-safe snapshot/journal store and restarts warm from it: recovered
solves answer cached=true after the witnesses and memos revalidate
against the graph file's content hash."
}

/// Loads a graph file with a friendly error.
pub(crate) fn load_graph(path: &str) -> Result<kdc_graph::Graph, String> {
    kdc_graph::io::read_graph(Path::new(path)).map_err(|e| format!("cannot read {path}: {e}"))
}
