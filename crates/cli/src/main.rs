//! `kdc` — command-line maximum k-defective clique computation.
//!
//! ```text
//! kdc solve <graph-file> --k <K> [--preset kdc|kdc_t|kdbb|madec] [--limit S]
//!           [--parallel]
//! kdc enumerate <graph-file> --k <K> [--top R]
//! kdc stats <graph-file>
//! kdc convert <input> <output>      # by extension: .clq/.graph/.txt
//! kdc gamma [max_k]
//! ```
//!
//! Graph formats are selected by extension: DIMACS `.clq`/`.col`, METIS
//! `.graph`/`.metis`, otherwise whitespace edge list.

use std::path::Path;
use std::process::ExitCode;

mod args;
mod commands;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = argv.split_first() else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    let result = match command.as_str() {
        "solve" => commands::solve(rest),
        "enumerate" => commands::enumerate(rest),
        "verify" => commands::verify(rest),
        "stats" => commands::stats(rest),
        "convert" => commands::convert(rest),
        "gamma" => commands::gamma(rest),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{}", usage())),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn usage() -> &'static str {
    "kdc — exact maximum k-defective clique computation (Chang, SIGMOD 2023)

USAGE:
  kdc solve <graph-file> --k <K> [--preset kdc|kdc_t|kdbb|madec|rds]
            [--limit <seconds>] [--parallel] [--cert <out-file>]
  kdc enumerate <graph-file> --k <K> [--top <R>]
  kdc verify <graph-file> <certificate-file>
  kdc stats <graph-file>
  kdc convert <input-file> <output-file>
  kdc gamma [max_k]

Formats by extension: .clq/.col/.dimacs (DIMACS), .graph/.metis (METIS),
anything else is read as a 0-based whitespace edge list."
}

/// Loads a graph file with a friendly error.
pub(crate) fn load_graph(path: &str) -> Result<kdc_graph::Graph, String> {
    kdc_graph::io::read_graph(Path::new(path)).map_err(|e| format!("cannot read {path}: {e}"))
}
