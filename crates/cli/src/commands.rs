//! The `kdc` subcommands.
//!
//! Every solver-facing command (`solve`, `enumerate`, `count`) constructs a
//! [`kdc_api::Session`] and drives the same typed query surface the daemon
//! and the benches use; the CLI adds only argument parsing and printing.

use crate::args::{parse, Parsed};
use crate::load_graph;
use kdc::{gamma_k, sigma_k, Status};
use kdc_api::{Budget, Event, Observer, Options, Query, Session};
use kdc_graph::stats::graph_stats;
use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;

/// Parsed `kdc solve` arguments, separated from the argv handling so tests
/// can run several solves against one held [`Session`].
pub(crate) struct SolveArgs {
    k: usize,
    preset: String,
    limit: Option<std::time::Duration>,
    nodes: Option<u64>,
    /// `None` = sequential; `Some(0)` = all cores.
    threads: Option<usize>,
    watch: bool,
    stats: bool,
    cert: Option<String>,
    /// `--profile`: a tracer created before the graph was parsed (it
    /// already holds the `parse` span) and threaded through the solve.
    trace: Option<kdc_obs::Tracer>,
}

impl SolveArgs {
    fn from_parsed(p: &Parsed, trace: Option<kdc_obs::Tracer>) -> Result<SolveArgs, String> {
        Ok(SolveArgs {
            k: p.required("k")?,
            preset: p.string_or("preset", "kdc").to_string(),
            // The shared validators from kdc::config — the same ones the
            // daemon protocol uses — so hostile limits fail identically on
            // every surface.
            limit: p
                .raw("limit")
                .map(kdc::config::parse_time_limit_arg)
                .transpose()?,
            nodes: p
                .raw("nodes")
                .map(kdc::config::parse_node_limit_arg)
                .transpose()?,
            // --threads N selects the parallel ego decomposition with
            // exactly N threads (0 = all cores); --parallel remains the
            // "all cores" shorthand.
            threads: match p.optional("threads")? {
                Some(n) => Some(n),
                None if p.has("parallel") => Some(0),
                None => None,
            },
            watch: p.has("watch"),
            stats: p.has("stats"),
            cert: p.optional("cert")?,
            trace,
        })
    }
}

/// `kdc solve <file> --k K [--preset P] [--limit S] [--nodes N] [--parallel]
/// [--threads N] [--stats] [--watch] [--cert F]`
///
/// `--stats` additionally prints the reduction/arena counters (CTCP
/// removals, arena reuses, universe rebuilds), the bound-prune counters
/// (total prunes and how many were decided by UB1 / the KD-Club bound) and
/// the session cache counters, so perf-path regressions are visible
/// straight from the CLI.
/// `--watch` streams incumbent/retighten/restart events as the search runs.
///
/// Returns the process exit code: `0` for a proven-optimal solution,
/// [`crate::EXIT_BEST_EFFORT`] when a limit expired first.
pub fn solve(args: &[String]) -> Result<ExitCode, String> {
    let p = parse(args)?;
    let path = p.positional(0, "graph-file")?;
    let preset_name = p.string_or("preset", "kdc");
    // --profile: the tracer exists before parsing so the `parse` span
    // covers graph I/O, then rides into the solver's peel/tighten/branch
    // phases via the session's observed entry point.
    let trace = p.has("profile").then(kdc_obs::Tracer::new);
    let g = {
        let _parse = trace.as_ref().map(|t| t.span("parse"));
        load_graph(path)?
    };

    if preset_name == "rds" {
        let k: usize = p.required("k")?;
        let sol = kdc_baselines::max_defective_clique_rds(&g, k);
        println!("size: {}", sol.len());
        println!("vertices: {:?}", sol);
        return Ok(ExitCode::SUCCESS);
    }

    let solve_args = SolveArgs::from_parsed(&p, trace)?;
    let session = Session::new(g);
    solve_on_session(&session, &solve_args)
}

/// `kdc batch <file> --k <LO..HI> [--r R] [--preset P] [--limit S]
/// [--nodes N] [--parallel] [--threads N] [--watch]`
///
/// Answers the whole `k = LO..=HI` sweep as one planned batch
/// ([`Session::run_batch`]): ascending-k execution where each proven
/// optimum seeds and caps the next solves, one shared reducer pass per
/// sub-solve, duplicate sub-queries answered once. Prints one line per k
/// plus the batch's shared-work counters. `--r R` enumerates a top-R pool
/// per k instead of solving for one maximum. `--limit` bounds the whole
/// batch; `--nodes` bounds each sub-solve. `--watch` streams sub-query
/// completions (and incumbent improvements) as they land.
///
/// Returns exit code `0` when every sub-query is proven optimal,
/// [`crate::EXIT_BEST_EFFORT`] when any limit expired first.
pub fn batch(args: &[String]) -> Result<ExitCode, String> {
    let p = parse(args)?;
    let path = p.positional(0, "graph-file")?;
    let raw_k = p.raw("k").ok_or("batch requires --k <LO..HI>")?;
    let (k_lo, k_hi) = parse_k_range(raw_k)?;
    let r: Option<usize> = p.optional("r")?;
    if r == Some(0) {
        return Err("--r must be positive".to_string());
    }
    let options = Options::preset(p.string_or("preset", "kdc"))?;
    let budget = Budget {
        time_limit: p
            .raw("limit")
            .map(kdc::config::parse_time_limit_arg)
            .transpose()?,
        node_limit: p
            .raw("nodes")
            .map(kdc::config::parse_node_limit_arg)
            .transpose()?,
        threads: match p.optional("threads")? {
            Some(n) => n,
            None if p.has("parallel") => 0,
            None => 1,
        },
        cancel: None,
    };
    let observer: Option<Arc<dyn Observer>> = p.has("watch").then(|| {
        Arc::new(|e: &Event| match *e {
            Event::Incumbent { size } => println!("watch: incumbent size={size}"),
            Event::SubDone {
                index,
                k,
                size,
                status,
            } => println!(
                "watch: sub-done idx={index} k={k} size={size} status={}",
                status_word(status)
            ),
            _ => {}
        }) as Arc<dyn Observer>
    });

    let g = load_graph(path)?;
    let session = Session::new(g);
    let subs: Vec<kdc_api::SubQuery> = (k_lo..=k_hi)
        .map(|k| kdc_api::SubQuery { k, r, preset: None })
        .collect();
    let batch = session.run_batch_with(&subs, &budget, &options, observer)?;

    for (sub, outcome) in subs.iter().zip(&batch.outcomes) {
        match sub.r {
            None => println!(
                "k={}: size={} status={} vertices={:?}",
                sub.k,
                outcome.size(),
                status_word(outcome.status),
                outcome.best().unwrap_or_default()
            ),
            Some(_) => println!(
                "k={}: pool={} sizes={:?} status={}",
                sub.k,
                outcome.witnesses.len(),
                outcome.witnesses.iter().map(Vec::len).collect::<Vec<_>>(),
                status_word(outcome.status)
            ),
        }
    }
    let status = batch.status();
    println!(
        "batch: status={} subs={} ctcp-shares={} witness-seeds={} memo-dedups={}",
        status_report(status),
        batch.outcomes.len(),
        batch.batch_ctcp_shares,
        batch.batch_witness_seeds,
        batch.batch_memo_dedups
    );
    println!("nodes: {} (all searches)", batch.total_nodes());
    println!("time: {:.3}s", batch.elapsed.as_secs_f64());
    Ok(if status == Status::Optimal {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(crate::EXIT_BEST_EFFORT)
    })
}

/// Parses `--k`'s value for `kdc batch`: `<LO>..<HI>` (inclusive) or a
/// single `<K>` — the CLI twin of the daemon's `MSOLVE k=` grammar.
fn parse_k_range(raw: &str) -> Result<(usize, usize), String> {
    let parse_one = |s: &str| -> Result<usize, String> {
        s.parse()
            .map_err(|_| format!("invalid k bound {s:?} in --k {raw}"))
    };
    let (lo, hi) = match raw.split_once("..") {
        Some((lo, hi)) => (parse_one(lo)?, parse_one(hi)?),
        None => {
            let k = parse_one(raw)?;
            (k, k)
        }
    };
    if hi < lo {
        return Err(format!("empty k range {raw} (upper bound below lower)"));
    }
    Ok((lo, hi))
}

/// One-word rendering of a termination status for `watch:` lines.
fn status_word(status: Status) -> &'static str {
    match status {
        Status::Optimal => "optimal",
        Status::TimedOut => "timeout",
        Status::NodeLimitReached => "node-limit",
        Status::Cancelled => "cancelled",
    }
}

/// The `status:` report line body: the one-word status, flagged
/// best-effort when the answer is not proven optimal.
fn status_report(status: Status) -> String {
    match status {
        Status::Optimal => "optimal".to_string(),
        other => format!("{} (best-effort)", status_word(other)),
    }
}

/// Runs one solve against a (possibly held, possibly warm) session and
/// prints the report. Split out of [`solve`] so the warm path is testable:
/// a second call on the same session must reuse the resident reducer.
pub(crate) fn solve_on_session(session: &Session, a: &SolveArgs) -> Result<ExitCode, String> {
    let budget = Budget {
        time_limit: a.limit,
        node_limit: a.nodes,
        threads: a.threads.unwrap_or(1),
        cancel: None,
    };
    let options = Options::preset(&a.preset)?;
    let observer: Option<Arc<dyn Observer>> = a.watch.then(|| {
        Arc::new(|e: &Event| match *e {
            Event::Incumbent { size } => println!("watch: incumbent size={size}"),
            Event::Retighten { vertices, edges } => {
                println!("watch: retighten removed-vertices={vertices} removed-edges={edges}")
            }
            Event::Restart { universe } => println!("watch: restart universe={universe}"),
            Event::SubDone {
                index,
                k,
                size,
                status,
            } => {
                println!(
                    "watch: sub-done idx={index} k={k} size={size} status={}",
                    status_word(status)
                )
            }
            Event::Done { .. } => {}
        }) as Arc<dyn Observer>
    });
    let outcome = session.run_observed(
        &Query::Solve { k: a.k },
        &budget,
        &options,
        observer,
        a.trace.clone(),
    )?;

    let witness = outcome.best().unwrap_or_default().to_vec();
    if let Some(out) = &a.cert {
        let cert = kdc::verify::Certificate::new(
            session.graph(),
            a.k,
            &witness,
            outcome.status == Status::Optimal,
        );
        std::fs::write(out, cert.to_text()).map_err(|e| format!("cannot write {out}: {e}"))?;
        println!("certificate: {out}");
    }
    println!("status: {}", status_report(outcome.status));
    println!("size: {}", outcome.size());
    println!("vertices: {:?}", witness);
    println!(
        "missing-edges: {} / {}",
        session.graph().missing_edges_within(&witness),
        a.k
    );
    println!(
        "time: {:.3}s (preprocess {:.3}s, search {:.3}s)",
        outcome.stats.total_time().as_secs_f64(),
        outcome.stats.preprocess_time.as_secs_f64(),
        outcome.stats.search_time.as_secs_f64()
    );
    println!("nodes: {}", outcome.stats.nodes);
    if a.stats {
        let s = &outcome.stats;
        println!(
            "reduced: n0 {} m0 {} (initial lb {})",
            s.preprocessed_n, s.preprocessed_m, s.initial_solution_size
        );
        println!(
            "ctcp: vertex-removals {} edge-removals {}",
            s.ctcp_vertex_removals, s.ctcp_edge_removals
        );
        // Per-bound cumulative time comes from the process-wide metrics
        // registry (register_* is get-or-create, so this reads the same
        // handles the solver flushed into).
        let reg = kdc_obs::registry();
        let bound_times: Vec<String> = kdc::bound::NAMES
            .iter()
            .map(|name| {
                let ns = reg
                    .register_counter_labeled("kdc_core_bound_ns_total", "bound", name)
                    .get();
                format!("{name}={:.2}", ns as f64 / 1e6)
            })
            .collect();
        println!(
            "bounds: prunes {} (ub1 {} kdclub {}) time-ms {}",
            s.bound_prunes,
            s.ub1_prunes,
            s.kdclub_prunes,
            bound_times.join(" ")
        );
        println!(
            "arena: reuses {} universe-rebuilds {} ego-subproblems {}",
            s.arena_reuses, s.universe_rebuilds, s.ego_subproblems
        );
        let c = session.counters();
        println!(
            "session: memo-hit {} ctcp-resumed {} seeded {} (builds {} resumes {} evictions {})",
            outcome.cache.result_memo_hit,
            outcome.cache.ctcp_resumed,
            outcome.cache.seeded,
            c.ctcp_builds,
            c.ctcp_resumes,
            c.ctcp_evictions
        );
    }
    if let Some(trace) = &a.trace {
        // Phase breakdown from the span ring, then the per-bound costs of
        // *this* solve (invocations / prunes / time) from its SearchStats.
        println!("profile: phase breakdown ({} spans)", trace.len());
        for phase in trace.summary() {
            println!(
                "  {:<10} count {:<6} total {:.3}ms",
                phase.name,
                phase.count,
                phase.total_ns as f64 / 1e6
            );
        }
        if trace.dropped() > 0 {
            println!("  (ring full: {} spans dropped)", trace.dropped());
        }
        println!("profile: bound costs");
        for (i, cost) in outcome.stats.bound_costs.iter().enumerate() {
            println!(
                "  {:<10} invocations {:<8} prunes {:<8} total {:.3}ms",
                kdc::bound::NAMES[i],
                cost.invocations,
                cost.prunes,
                cost.ns as f64 / 1e6
            );
        }
    }
    Ok(if outcome.is_optimal() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(crate::EXIT_BEST_EFFORT)
    })
}

/// `kdc metrics <addr>` — scrape a running daemon's Prometheus exposition
/// (the `METRICS` verb) and print it. The exposition is validated line by
/// line — unknown shapes, non-numeric samples, a series count that does
/// not match the final `OK series=N` verdict, or an empty registry all
/// exit nonzero — so the command doubles as a health check in CI.
pub fn metrics(args: &[String]) -> Result<(), String> {
    let p = parse(args)?;
    let addr = p.positional(0, "addr")?;
    let response =
        kdc_service::request(addr, "METRICS").map_err(|e| format!("cannot reach {addr}: {e}"))?;
    let verdict = response.lines().last().unwrap_or("");
    if !verdict.starts_with("OK ") {
        return Err(format!("scrape failed: {verdict}"));
    }
    let declared: usize = verdict
        .split_whitespace()
        .find_map(|tok| tok.strip_prefix("series="))
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| format!("malformed verdict: {verdict}"))?;
    let mut samples = 0usize;
    for line in response.lines() {
        let Some(exposition) = line.strip_prefix("METRIC ") else {
            continue;
        };
        if let Some(comment) = exposition.strip_prefix("# TYPE ") {
            let kind = comment.split_whitespace().nth(1).unwrap_or("");
            if !["counter", "gauge", "histogram"].contains(&kind) {
                return Err(format!("unknown series type in {exposition:?}"));
            }
        } else {
            let (name, value) = exposition
                .rsplit_once(' ')
                .ok_or_else(|| format!("malformed sample {exposition:?}"))?;
            if !name.starts_with("kdc_") {
                return Err(format!("series outside the kdc_ namespace: {name:?}"));
            }
            value
                .parse::<f64>()
                .map_err(|_| format!("non-numeric sample value in {exposition:?}"))?;
            samples += 1;
        }
        println!("{exposition}");
    }
    if samples != declared {
        return Err(format!(
            "scrape declared {declared} series but exposed {samples}"
        ));
    }
    if samples == 0 {
        return Err("empty registry: no series exposed".to_string());
    }
    Ok(())
}

/// `kdc serve [--addr A] [--workers N] [--slow-ms T] [--idle-secs S]
/// [--watchdog-secs S] [--max-conns N] [--max-queue N] [--cache-cap N]` —
/// run the solver daemon until a client sends `SHUTDOWN`. `--slow-ms` sets
/// the slow-query log threshold (default 1000; `0` logs every solve with
/// its phase breakdown); the remaining flags are the hardening knobs
/// (admission control, idle reaping, the watchdog, the graph-cache LRU
/// bound) — each defaults to off/unlimited. A `KDC_FAULTS` environment
/// variable arms the fault-injection plan at startup (any build).
pub fn serve(args: &[String]) -> Result<(), String> {
    let p = parse(args)?;
    let addr = p.string_or("addr", "127.0.0.1:4817");
    let workers: usize = match p.optional("workers")? {
        Some(0) | None => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4),
        Some(n) => n,
    };
    let mut server =
        kdc_service::Server::bind(addr, workers).map_err(|e| format!("cannot bind {addr}: {e}"))?;
    if let Some(ms) = p.optional::<u64>("slow-ms")? {
        server = server.with_slow_threshold(std::time::Duration::from_millis(ms));
    }
    let max_conns: usize = p.optional("max-conns")?.unwrap_or(0);
    let max_queue: usize = p.optional("max-queue")?.unwrap_or(0);
    if max_conns > 0 || max_queue > 0 {
        server = server.with_limits(max_conns, max_queue);
    }
    if let Some(secs) = p.optional::<u64>("idle-secs")? {
        server = server.with_idle_timeout(std::time::Duration::from_secs(secs));
    }
    if let Some(secs) = p.optional::<u64>("watchdog-secs")? {
        server = server.with_watchdog(std::time::Duration::from_secs(secs));
    }
    if let Some(cap) = p.optional::<usize>("cache-cap")? {
        server = server.with_cache_capacity(cap);
    }
    if let Some(dir) = p.optional::<String>("state-dir")? {
        server = server
            .with_state_dir(&dir)
            .map_err(|e| format!("--state-dir {dir}: {e}"))?;
    }
    let armed = kdc_faults::install_from_env().map_err(|e| format!("KDC_FAULTS: {e}"))?;
    if armed > 0 {
        eprintln!("kdc serve: {armed} fault rule(s) armed from KDC_FAULTS");
    }
    println!("listening on {} ({workers} workers)", server.local_addr());
    server.run().map_err(|e| format!("server error: {e}"))
}

/// `kdc client [--retries N] [--backoff-ms M] <addr> <command...>` — send
/// one protocol line to a running daemon and print its response. Exits `0`
/// on `OK`, `1` on `ERR`. With `--retries`, connect failures and `ERR busy`
/// replies are retried with decorrelated-jitter backoff (base
/// `--backoff-ms`, default 50); torn replies and mid-exchange errors are
/// additionally retried for the idempotent read verbs
/// (`SOLVE`/`STATS`/`METRICS`); other errors are never retried.
pub fn client(args: &[String]) -> Result<ExitCode, String> {
    // Protocol tokens are `key=value`, not `--flags`, so the retry flags
    // are stripped by hand off the front and the rest stays raw.
    const USAGE: &str = "usage: kdc client [--retries N] [--backoff-ms M] <addr> <command...>";
    let mut retries: u32 = 0;
    let mut backoff_ms: u64 = 50;
    let mut rest = args;
    loop {
        match rest {
            [flag, value, tail @ ..] if flag == "--retries" => {
                retries = value
                    .parse()
                    .map_err(|_| format!("invalid --retries {value:?}"))?;
                rest = tail;
            }
            [flag, value, tail @ ..] if flag == "--backoff-ms" => {
                backoff_ms = value
                    .parse()
                    .map_err(|_| format!("invalid --backoff-ms {value:?}"))?;
                rest = tail;
            }
            _ => break,
        }
    }
    let (addr, command) = rest.split_first().ok_or(USAGE)?;
    if command.is_empty() || addr.starts_with("--") {
        return Err(USAGE.to_string());
    }
    let line = command.join(" ");
    let response = kdc_service::request_with_retry(
        addr,
        &line,
        retries,
        std::time::Duration::from_millis(backoff_ms),
    )
    .map_err(|e| format!("cannot reach {addr}: {e}"))?;
    println!("{response}");
    // A verbose solve streams EVENT lines first; the verdict is the final
    // line.
    let verdict_is_err = response
        .lines()
        .last()
        .is_some_and(|l| l.starts_with("ERR"));
    Ok(if verdict_is_err {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}

/// `kdc enumerate <file> --k K [--top R] [--diversify]`
pub fn enumerate(args: &[String]) -> Result<(), String> {
    let p = parse(args)?;
    let path = p.positional(0, "graph-file")?;
    let k: usize = p.required("k")?;
    let top: Option<usize> = p.optional("top")?;
    let session = Session::new(load_graph(path)?);

    let query = match top {
        Some(r) => Query::TopR {
            k,
            r,
            diversify: p.has("diversify"),
        },
        None if p.has("diversify") => {
            return Err("--diversify requires --top <R>".to_string());
        }
        None => Query::Enumerate { k },
    };
    let outcome = session.run(&query, &Budget::default(), &Options::default())?;
    let label = if p.has("diversify") {
        "diversified"
    } else {
        "maximal"
    };
    println!("{label} {k}-defective cliques: {}", outcome.witnesses.len());
    for (i, c) in outcome.witnesses.iter().enumerate() {
        println!("#{i}: size {} {:?}", c.len(), c);
    }
    Ok(())
}

/// `kdc count <file> --k K [--min-size S]` — exact per-size counts of
/// k-defective cliques (`#P`-hard in general; keep `--min-size` close to
/// the maximum on non-toy graphs).
pub fn count(args: &[String]) -> Result<(), String> {
    let p = parse(args)?;
    let path = p.positional(0, "graph-file")?;
    let k: usize = p.required("k")?;
    let min_size: usize = p.optional("min-size")?.unwrap_or(0);
    let session = Session::new(load_graph(path)?);
    let outcome = session.run(
        &Query::Count { k, min_size },
        &Budget::default(),
        &Options::default(),
    )?;
    let counts = outcome.counts.expect("count queries return counts");
    println!("max-size: {}", counts.max_size());
    println!(
        "total (size >= {min_size}): {}",
        counts.total_at_least(min_size)
    );
    for (size, &c) in counts.counts.iter().enumerate() {
        if c > 0 {
            println!("size {size}: {c}");
        }
    }
    Ok(())
}

/// `kdc verify <graph-file> <certificate-file>`
pub fn verify(args: &[String]) -> Result<(), String> {
    let p = parse(args)?;
    let graph_path = p.positional(0, "graph-file")?;
    let cert_path = p.positional(1, "certificate-file")?;
    let g = load_graph(graph_path)?;
    let text =
        std::fs::read_to_string(cert_path).map_err(|e| format!("cannot read {cert_path}: {e}"))?;
    let cert = kdc::verify::Certificate::from_text(&text)?;
    let missing = cert.check(&g)?;
    println!(
        "VALID: {} vertices form a {}-defective clique ({} of {} allowed missing edges)",
        cert.vertices.len(),
        cert.k,
        missing,
        cert.k
    );
    Ok(())
}

/// `kdc stats <file>`
pub fn stats(args: &[String]) -> Result<(), String> {
    let p = parse(args)?;
    let path = p.positional(0, "graph-file")?;
    let g = load_graph(path)?;
    let s = graph_stats(&g);
    println!("n: {}", s.n);
    println!("m: {}", s.m);
    println!(
        "degree: min {} avg {:.2} max {}",
        s.min_degree, s.avg_degree, s.max_degree
    );
    println!("degeneracy: {}", s.degeneracy);
    println!("triangles: {}", s.triangles);
    println!("global-clustering: {:.4}", s.global_clustering);
    println!(
        "components: {} (largest {})",
        s.components, s.largest_component
    );
    Ok(())
}

/// `kdc convert <input> <output>` — format chosen by the output extension.
pub fn convert(args: &[String]) -> Result<(), String> {
    let p = parse(args)?;
    let input = p.positional(0, "input-file")?;
    let output = p.positional(1, "output-file")?;
    let g = load_graph(input)?;
    let out = Path::new(output);
    let result = match out.extension().and_then(|e| e.to_str()) {
        Some("clq") | Some("col") | Some("dimacs") => kdc_graph::io::write_dimacs(&g, out),
        Some("graph") | Some("metis") => kdc_graph::io::write_metis(&g, out),
        _ => kdc_graph::io::write_edge_list(&g, out),
    };
    result.map_err(|e| format!("cannot write {output}: {e}"))?;
    println!("wrote {} vertices / {} edges to {output}", g.n(), g.m());
    Ok(())
}

/// `kdc gamma [max_k]` — the complexity bases of Theorem 3.5.
pub fn gamma(args: &[String]) -> Result<(), String> {
    let p = parse(args)?;
    let max_k: usize = match p.positional.first() {
        Some(raw) => raw.parse().map_err(|_| format!("invalid max_k {raw:?}"))?,
        None => 10,
    };
    println!("k   γ_k (kDC)   σ_k = γ_2k (MADEC+)");
    for k in 0..=max_k {
        println!("{k:<3} {:<11.6} {:.6}", gamma_k(k), sigma_k(k));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("kdc_cli_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    fn write_sample() -> String {
        let g = kdc_graph::named::figure2();
        let path = tmp("fig2.clq");
        kdc_graph::io::write_dimacs(&g, Path::new(&path)).unwrap();
        path
    }

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|t| t.to_string()).collect()
    }

    #[test]
    fn solve_command_runs() {
        let path = write_sample();
        solve(&argv(&[&path, "--k", "2"])).unwrap();
        solve(&argv(&[&path, "--k", "1", "--preset", "kdbb"])).unwrap();
        solve(&argv(&[&path, "--k", "1", "--preset", "kdclub"])).unwrap();
        solve(&argv(&[&path, "--k", "1", "--preset", "rds"])).unwrap();
        solve(&argv(&[&path, "--k", "1", "--parallel"])).unwrap();
        // --stats is a boolean flag and combines with the other options.
        solve(&argv(&[&path, "--k", "2", "--stats"])).unwrap();
        solve(&argv(&[&path, "--k", "1", "--stats", "--threads", "2"])).unwrap();
    }

    #[test]
    fn solve_threads_flag_parses_and_runs() {
        let path = write_sample();
        // Explicit thread counts plumb through to the decomposed solver;
        // 0 means "all cores".
        solve(&argv(&[&path, "--k", "1", "--threads", "2"])).unwrap();
        solve(&argv(&[&path, "--k", "1", "--threads", "0"])).unwrap();
        // --threads combines with the other solve flags.
        solve(&argv(&[
            &path,
            "--k",
            "1",
            "--threads",
            "2",
            "--limit",
            "10",
        ]))
        .unwrap();
        assert!(
            solve(&argv(&[&path, "--k", "1", "--threads", "two"])).is_err(),
            "non-numeric thread count must be rejected"
        );
        assert!(
            solve(&argv(&[&path, "--k", "1", "--threads"])).is_err(),
            "--threads requires a value"
        );
    }

    #[test]
    fn serve_and_client_argument_validation() {
        assert!(client(&[]).is_err(), "client needs an address");
        assert!(
            client(&argv(&["127.0.0.1:1"])).is_err(),
            "client needs a command"
        );
        // Unreachable address surfaces as an error, not a panic.
        assert!(client(&argv(&["127.0.0.1:1", "JOBS"])).is_err());
        assert!(
            serve(&argv(&["--workers", "two"])).is_err(),
            "non-numeric worker count must be rejected"
        );
    }

    #[test]
    fn solve_profile_flag_runs() {
        let path = write_sample();
        solve(&argv(&[&path, "--k", "2", "--profile"])).unwrap();
        // --profile combines with the other reporting flags.
        solve(&argv(&[&path, "--k", "2", "--profile", "--stats"])).unwrap();
    }

    #[test]
    fn metrics_command_scrapes_a_live_server() {
        let path = write_sample();
        let handle = kdc_service::Server::bind("127.0.0.1:0", 1)
            .unwrap()
            .spawn()
            .unwrap();
        let addr = handle.addr().to_string();
        client(&argv(&[&addr, "LOAD", &path, "AS", "fig2"])).unwrap();
        client(&argv(&[&addr, "SOLVE", "fig2", "k=2"])).unwrap();
        metrics(&argv(&[&addr])).unwrap();
        assert!(metrics(&argv(&[])).is_err(), "metrics needs an address");
        assert!(
            metrics(&argv(&["127.0.0.1:1"])).is_err(),
            "unreachable daemon is an error, not a panic"
        );
        client(&argv(&[&addr, "SHUTDOWN"])).unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn client_drives_a_live_server() {
        let path = write_sample();
        let handle = kdc_service::Server::bind("127.0.0.1:0", 1)
            .unwrap()
            .spawn()
            .unwrap();
        let addr = handle.addr().to_string();
        client(&argv(&[&addr, "LOAD", &path, "AS", "fig2"])).unwrap();
        client(&argv(&[&addr, "SOLVE", "fig2", "k=2"])).unwrap();
        // ERR responses are printed but reported via the exit code, not Err.
        client(&argv(&[&addr, "SOLVE", "ghost", "k=2"])).unwrap();
        client(&argv(&[&addr, "SHUTDOWN"])).unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn solve_command_rejects_bad_input() {
        let path = write_sample();
        assert!(solve(&argv(&[&path])).is_err(), "missing --k");
        assert!(solve(&argv(&[&path, "--k", "2", "--preset", "nope"])).is_err());
        assert!(solve(&argv(&["/nonexistent.clq", "--k", "1"])).is_err());
    }

    #[test]
    fn solve_with_certificate_then_verify() {
        let path = write_sample();
        let cert = tmp("fig2.cert");
        solve(&argv(&[&path, "--k", "2", "--cert", &cert])).unwrap();
        verify(&argv(&[&path, &cert])).unwrap();
        // Verifying against the wrong graph fails.
        let other = tmp("k5.clq");
        kdc_graph::io::write_dimacs(&kdc_graph::gen::complete(5), Path::new(&other)).unwrap();
        assert!(verify(&argv(&[&other, &cert])).is_err());
        // Tampered certificate fails.
        let mut text = std::fs::read_to_string(&cert).unwrap();
        text = text.replace("k 2", "k 0");
        let tampered = tmp("tampered.cert");
        std::fs::write(&tampered, text).unwrap();
        assert!(verify(&argv(&[&path, &tampered])).is_err());
    }

    #[test]
    fn enumerate_command_runs() {
        let path = write_sample();
        enumerate(&argv(&[&path, "--k", "1", "--top", "3"])).unwrap();
        enumerate(&argv(&[&path, "--k", "0"])).unwrap();
        enumerate(&argv(&[&path, "--k", "1", "--top", "2", "--diversify"])).unwrap();
        assert!(
            enumerate(&argv(&[&path, "--k", "1", "--diversify"])).is_err(),
            "--diversify requires --top"
        );
    }

    #[test]
    fn count_command_runs() {
        let path = write_sample();
        count(&argv(&[&path, "--k", "1", "--min-size", "5"])).unwrap();
        count(&argv(&[&path, "--k", "0"])).unwrap();
        assert!(count(&argv(&[&path])).is_err(), "missing --k");
        assert!(count(&argv(&["/nonexistent.clq", "--k", "1"])).is_err());
    }

    #[test]
    fn solve_watch_and_limit_flags_parse() {
        let path = write_sample();
        solve(&argv(&[&path, "--k", "2", "--watch"])).unwrap();
        solve(&argv(&[&path, "--k", "2", "--nodes", "100000"])).unwrap();
        // Hostile limits are rejected by the shared validators.
        for bad in [
            vec![&path[..], "--k", "2", "--limit", "NaN"],
            vec![&path[..], "--k", "2", "--limit", "-1"],
            vec![&path[..], "--k", "2", "--nodes", "0"],
            vec![&path[..], "--k", "2", "--nodes", "1.5"],
        ] {
            assert!(solve(&argv(&bad)).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn second_solve_on_a_held_session_reuses_the_reducer() {
        // The warm-solve-through-CLI contract: the command layer is a thin
        // shell over kdc_api::Session, so holding a session across two
        // `kdc solve` invocations reuses the resident reducer (asserted via
        // counters, not timings). The second run uses a different preset so
        // the result memo cannot answer.
        let session = kdc_api::Session::new(kdc_graph::named::figure2());
        let base = |preset: &str| SolveArgs {
            k: 2,
            preset: preset.to_string(),
            limit: None,
            nodes: None,
            threads: None,
            watch: false,
            stats: true,
            cert: None,
            trace: None,
        };
        let first = solve_on_session(&session, &base("kdc")).unwrap();
        assert_eq!(first, std::process::ExitCode::SUCCESS);
        let counters = session.counters();
        assert_eq!((counters.ctcp_builds, counters.ctcp_resumes), (1, 0));
        let second = solve_on_session(&session, &base("kdbb")).unwrap();
        assert_eq!(second, std::process::ExitCode::SUCCESS);
        let counters = session.counters();
        assert_eq!(
            (counters.ctcp_builds, counters.ctcp_resumes),
            (1, 1),
            "warm CLI solve must resume the resident reducer"
        );
        assert_eq!(counters.solves, 2, "both runs really searched");
    }

    #[test]
    fn stats_command_runs() {
        let path = write_sample();
        stats(&argv(&[&path])).unwrap();
    }

    #[test]
    fn convert_roundtrips_formats() {
        let path = write_sample();
        let metis = tmp("fig2.graph");
        let edges = tmp("fig2.txt");
        convert(&argv(&[&path, &metis])).unwrap();
        convert(&argv(&[&metis, &edges])).unwrap();
        let a = kdc_graph::io::read_graph(Path::new(&path)).unwrap();
        let b = kdc_graph::io::read_graph(Path::new(&edges)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn gamma_command_runs() {
        gamma(&argv(&["5"])).unwrap();
        gamma(&argv(&[])).unwrap();
        assert!(gamma(&argv(&["abc"])).is_err());
    }
}
