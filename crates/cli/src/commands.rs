//! The `kdc` subcommands.

use crate::args::parse;
use crate::load_graph;
use kdc::{decompose, gamma_k, sigma_k, topr, Solver, SolverConfig, Status};
use kdc_graph::stats::graph_stats;
use std::path::Path;
use std::process::ExitCode;

// One preset table for the whole system (core's `SolverConfig::from_preset`):
// `kdc solve --preset X` and the daemon's `SOLVE g preset=X` never disagree.
fn preset(name: &str) -> Result<SolverConfig, String> {
    SolverConfig::from_preset(name)
}

/// `kdc solve <file> --k K [--preset P] [--limit S] [--parallel]
/// [--threads N] [--stats]`
///
/// `--stats` additionally prints the reduction/arena counters (CTCP
/// removals, arena reuses, universe rebuilds) so perf-path regressions are
/// visible straight from the CLI.
///
/// Returns the process exit code: `0` for a proven-optimal solution,
/// [`crate::EXIT_BEST_EFFORT`] when a limit expired first.
pub fn solve(args: &[String]) -> Result<ExitCode, String> {
    let p = parse(args)?;
    let path = p.positional(0, "graph-file")?;
    let k: usize = p.required("k")?;
    let limit: Option<f64> = p.optional("limit")?;
    let threads: Option<usize> = p.optional("threads")?;
    let preset_name = p.string_or("preset", "kdc");
    let g = load_graph(path)?;

    if preset_name == "rds" {
        let sol = kdc_baselines::max_defective_clique_rds(&g, k);
        println!("size: {}", sol.len());
        println!("vertices: {:?}", sol);
        return Ok(ExitCode::SUCCESS);
    }

    let mut config = preset(preset_name)?;
    config.time_limit = limit.map(kdc::config::parse_time_limit).transpose()?;

    let cert_out: Option<String> = p.optional("cert")?;
    // --threads N selects the parallel ego decomposition with exactly N
    // threads (0 = all cores); --parallel remains the "all cores" shorthand.
    let sol = match threads {
        Some(n) => decompose::solve_decomposed(&g, k, config, n),
        None if p.has("parallel") => decompose::solve_decomposed(&g, k, config, 0),
        None => Solver::new(&g, k, config).solve(),
    };
    if let Some(out) = cert_out {
        let cert =
            kdc::verify::Certificate::new(&g, k, &sol.vertices, sol.status == Status::Optimal);
        std::fs::write(&out, cert.to_text()).map_err(|e| format!("cannot write {out}: {e}"))?;
        println!("certificate: {out}");
    }
    match sol.status {
        Status::Optimal => println!("status: optimal"),
        Status::TimedOut => println!("status: timeout (best-effort)"),
        Status::NodeLimitReached => println!("status: node-limit (best-effort)"),
        Status::Cancelled => println!("status: cancelled (best-effort)"),
    }
    println!("size: {}", sol.size());
    println!("vertices: {:?}", sol.vertices);
    println!(
        "missing-edges: {} / {k}",
        g.missing_edges_within(&sol.vertices)
    );
    println!(
        "time: {:.3}s (preprocess {:.3}s, search {:.3}s)",
        sol.stats.total_time().as_secs_f64(),
        sol.stats.preprocess_time.as_secs_f64(),
        sol.stats.search_time.as_secs_f64()
    );
    println!("nodes: {}", sol.stats.nodes);
    if p.has("stats") {
        println!(
            "reduced: n0 {} m0 {} (initial lb {})",
            sol.stats.preprocessed_n, sol.stats.preprocessed_m, sol.stats.initial_solution_size
        );
        println!(
            "ctcp: vertex-removals {} edge-removals {}",
            sol.stats.ctcp_vertex_removals, sol.stats.ctcp_edge_removals
        );
        println!(
            "arena: reuses {} universe-rebuilds {} ego-subproblems {}",
            sol.stats.arena_reuses, sol.stats.universe_rebuilds, sol.stats.ego_subproblems
        );
    }
    Ok(if sol.is_optimal() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(crate::EXIT_BEST_EFFORT)
    })
}

/// `kdc serve [--addr A] [--workers N]` — run the solver daemon until a
/// client sends `SHUTDOWN`.
pub fn serve(args: &[String]) -> Result<(), String> {
    let p = parse(args)?;
    let addr = p.string_or("addr", "127.0.0.1:4817");
    let workers: usize = match p.optional("workers")? {
        Some(0) | None => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4),
        Some(n) => n,
    };
    let server =
        kdc_service::Server::bind(addr, workers).map_err(|e| format!("cannot bind {addr}: {e}"))?;
    println!("listening on {} ({workers} workers)", server.local_addr());
    server.run().map_err(|e| format!("server error: {e}"))
}

/// `kdc client <addr> <command...>` — send one protocol line to a running
/// daemon and print its response. Exits `0` on `OK`, `1` on `ERR`.
pub fn client(args: &[String]) -> Result<ExitCode, String> {
    // Protocol tokens are `key=value`, not `--flags`, so take the raw args.
    let (addr, command) = args
        .split_first()
        .ok_or("usage: kdc client <addr> <command...>")?;
    if command.is_empty() {
        return Err("usage: kdc client <addr> <command...>".to_string());
    }
    let line = command.join(" ");
    let response =
        kdc_service::request(addr, &line).map_err(|e| format!("cannot reach {addr}: {e}"))?;
    println!("{response}");
    Ok(if response.starts_with("ERR") {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}

/// `kdc enumerate <file> --k K [--top R]`
pub fn enumerate(args: &[String]) -> Result<(), String> {
    let p = parse(args)?;
    let path = p.positional(0, "graph-file")?;
    let k: usize = p.required("k")?;
    let top: Option<usize> = p.optional("top")?;
    let g = load_graph(path)?;

    let cliques = match top {
        Some(r) => topr::top_r_maximal(&g, k, r, SolverConfig::kdc()),
        None => topr::enumerate_maximal(&g, k, SolverConfig::kdc()),
    };
    println!("maximal {k}-defective cliques: {}", cliques.len());
    for (i, c) in cliques.iter().enumerate() {
        println!("#{i}: size {} {:?}", c.len(), c);
    }
    Ok(())
}

/// `kdc verify <graph-file> <certificate-file>`
pub fn verify(args: &[String]) -> Result<(), String> {
    let p = parse(args)?;
    let graph_path = p.positional(0, "graph-file")?;
    let cert_path = p.positional(1, "certificate-file")?;
    let g = load_graph(graph_path)?;
    let text =
        std::fs::read_to_string(cert_path).map_err(|e| format!("cannot read {cert_path}: {e}"))?;
    let cert = kdc::verify::Certificate::from_text(&text)?;
    let missing = cert.check(&g)?;
    println!(
        "VALID: {} vertices form a {}-defective clique ({} of {} allowed missing edges)",
        cert.vertices.len(),
        cert.k,
        missing,
        cert.k
    );
    Ok(())
}

/// `kdc stats <file>`
pub fn stats(args: &[String]) -> Result<(), String> {
    let p = parse(args)?;
    let path = p.positional(0, "graph-file")?;
    let g = load_graph(path)?;
    let s = graph_stats(&g);
    println!("n: {}", s.n);
    println!("m: {}", s.m);
    println!(
        "degree: min {} avg {:.2} max {}",
        s.min_degree, s.avg_degree, s.max_degree
    );
    println!("degeneracy: {}", s.degeneracy);
    println!("triangles: {}", s.triangles);
    println!("global-clustering: {:.4}", s.global_clustering);
    println!(
        "components: {} (largest {})",
        s.components, s.largest_component
    );
    Ok(())
}

/// `kdc convert <input> <output>` — format chosen by the output extension.
pub fn convert(args: &[String]) -> Result<(), String> {
    let p = parse(args)?;
    let input = p.positional(0, "input-file")?;
    let output = p.positional(1, "output-file")?;
    let g = load_graph(input)?;
    let out = Path::new(output);
    let result = match out.extension().and_then(|e| e.to_str()) {
        Some("clq") | Some("col") | Some("dimacs") => kdc_graph::io::write_dimacs(&g, out),
        Some("graph") | Some("metis") => kdc_graph::io::write_metis(&g, out),
        _ => kdc_graph::io::write_edge_list(&g, out),
    };
    result.map_err(|e| format!("cannot write {output}: {e}"))?;
    println!("wrote {} vertices / {} edges to {output}", g.n(), g.m());
    Ok(())
}

/// `kdc gamma [max_k]` — the complexity bases of Theorem 3.5.
pub fn gamma(args: &[String]) -> Result<(), String> {
    let p = parse(args)?;
    let max_k: usize = match p.positional.first() {
        Some(raw) => raw.parse().map_err(|_| format!("invalid max_k {raw:?}"))?,
        None => 10,
    };
    println!("k   γ_k (kDC)   σ_k = γ_2k (MADEC+)");
    for k in 0..=max_k {
        println!("{k:<3} {:<11.6} {:.6}", gamma_k(k), sigma_k(k));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("kdc_cli_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    fn write_sample() -> String {
        let g = kdc_graph::named::figure2();
        let path = tmp("fig2.clq");
        kdc_graph::io::write_dimacs(&g, Path::new(&path)).unwrap();
        path
    }

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|t| t.to_string()).collect()
    }

    #[test]
    fn solve_command_runs() {
        let path = write_sample();
        solve(&argv(&[&path, "--k", "2"])).unwrap();
        solve(&argv(&[&path, "--k", "1", "--preset", "kdbb"])).unwrap();
        solve(&argv(&[&path, "--k", "1", "--preset", "rds"])).unwrap();
        solve(&argv(&[&path, "--k", "1", "--parallel"])).unwrap();
        // --stats is a boolean flag and combines with the other options.
        solve(&argv(&[&path, "--k", "2", "--stats"])).unwrap();
        solve(&argv(&[&path, "--k", "1", "--stats", "--threads", "2"])).unwrap();
    }

    #[test]
    fn solve_threads_flag_parses_and_runs() {
        let path = write_sample();
        // Explicit thread counts plumb through to the decomposed solver;
        // 0 means "all cores".
        solve(&argv(&[&path, "--k", "1", "--threads", "2"])).unwrap();
        solve(&argv(&[&path, "--k", "1", "--threads", "0"])).unwrap();
        // --threads combines with the other solve flags.
        solve(&argv(&[
            &path,
            "--k",
            "1",
            "--threads",
            "2",
            "--limit",
            "10",
        ]))
        .unwrap();
        assert!(
            solve(&argv(&[&path, "--k", "1", "--threads", "two"])).is_err(),
            "non-numeric thread count must be rejected"
        );
        assert!(
            solve(&argv(&[&path, "--k", "1", "--threads"])).is_err(),
            "--threads requires a value"
        );
    }

    #[test]
    fn serve_and_client_argument_validation() {
        assert!(client(&[]).is_err(), "client needs an address");
        assert!(
            client(&argv(&["127.0.0.1:1"])).is_err(),
            "client needs a command"
        );
        // Unreachable address surfaces as an error, not a panic.
        assert!(client(&argv(&["127.0.0.1:1", "JOBS"])).is_err());
        assert!(
            serve(&argv(&["--workers", "two"])).is_err(),
            "non-numeric worker count must be rejected"
        );
    }

    #[test]
    fn client_drives_a_live_server() {
        let path = write_sample();
        let handle = kdc_service::Server::bind("127.0.0.1:0", 1).unwrap().spawn();
        let addr = handle.addr().to_string();
        client(&argv(&[&addr, "LOAD", &path, "AS", "fig2"])).unwrap();
        client(&argv(&[&addr, "SOLVE", "fig2", "k=2"])).unwrap();
        // ERR responses are printed but reported via the exit code, not Err.
        client(&argv(&[&addr, "SOLVE", "ghost", "k=2"])).unwrap();
        client(&argv(&[&addr, "SHUTDOWN"])).unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn solve_command_rejects_bad_input() {
        let path = write_sample();
        assert!(solve(&argv(&[&path])).is_err(), "missing --k");
        assert!(solve(&argv(&[&path, "--k", "2", "--preset", "nope"])).is_err());
        assert!(solve(&argv(&["/nonexistent.clq", "--k", "1"])).is_err());
    }

    #[test]
    fn solve_with_certificate_then_verify() {
        let path = write_sample();
        let cert = tmp("fig2.cert");
        solve(&argv(&[&path, "--k", "2", "--cert", &cert])).unwrap();
        verify(&argv(&[&path, &cert])).unwrap();
        // Verifying against the wrong graph fails.
        let other = tmp("k5.clq");
        kdc_graph::io::write_dimacs(&kdc_graph::gen::complete(5), Path::new(&other)).unwrap();
        assert!(verify(&argv(&[&other, &cert])).is_err());
        // Tampered certificate fails.
        let mut text = std::fs::read_to_string(&cert).unwrap();
        text = text.replace("k 2", "k 0");
        let tampered = tmp("tampered.cert");
        std::fs::write(&tampered, text).unwrap();
        assert!(verify(&argv(&[&path, &tampered])).is_err());
    }

    #[test]
    fn enumerate_command_runs() {
        let path = write_sample();
        enumerate(&argv(&[&path, "--k", "1", "--top", "3"])).unwrap();
        enumerate(&argv(&[&path, "--k", "0"])).unwrap();
    }

    #[test]
    fn stats_command_runs() {
        let path = write_sample();
        stats(&argv(&[&path])).unwrap();
    }

    #[test]
    fn convert_roundtrips_formats() {
        let path = write_sample();
        let metis = tmp("fig2.graph");
        let edges = tmp("fig2.txt");
        convert(&argv(&[&path, &metis])).unwrap();
        convert(&argv(&[&metis, &edges])).unwrap();
        let a = kdc_graph::io::read_graph(Path::new(&path)).unwrap();
        let b = kdc_graph::io::read_graph(Path::new(&edges)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn gamma_command_runs() {
        gamma(&argv(&["5"])).unwrap();
        gamma(&argv(&[])).unwrap();
        assert!(gamma(&argv(&["abc"])).is_err());
    }
}
