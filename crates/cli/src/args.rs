//! Minimal flag parsing (no external dependencies): positional arguments
//! plus `--flag value` and boolean `--flag` options.

use std::collections::HashMap;

/// Parsed command-line tail: positionals in order, flags by name.
#[derive(Debug, Default)]
pub struct Parsed {
    /// Positional arguments in the order given.
    pub positional: Vec<String>,
    /// `--key value` and bare `--key` options (bare keys map to `""`).
    pub flags: HashMap<String, String>,
}

/// Flags that take no value.
const BOOLEAN_FLAGS: &[&str] = &[
    "parallel",
    "quick",
    "verbose",
    "stats",
    "watch",
    "diversify",
    "profile",
];

/// Parses `args` into positionals and flags.
pub fn parse(args: &[String]) -> Result<Parsed, String> {
    let mut out = Parsed::default();
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            if BOOLEAN_FLAGS.contains(&name) {
                out.flags.insert(name.to_string(), String::new());
            } else {
                let value = it
                    .next()
                    .ok_or_else(|| format!("flag --{name} requires a value"))?;
                out.flags.insert(name.to_string(), value.clone());
            }
        } else {
            out.positional.push(a.clone());
        }
    }
    Ok(out)
}

impl Parsed {
    /// The n-th positional argument, or an error naming it.
    pub fn positional(&self, idx: usize, name: &str) -> Result<&str, String> {
        self.positional
            .get(idx)
            .map(String::as_str)
            .ok_or_else(|| format!("missing required argument <{name}>"))
    }

    /// A required parsed flag.
    pub fn required<T: std::str::FromStr>(&self, name: &str) -> Result<T, String> {
        let raw = self
            .flags
            .get(name)
            .ok_or_else(|| format!("missing required flag --{name}"))?;
        raw.parse()
            .map_err(|_| format!("invalid value {raw:?} for --{name}"))
    }

    /// An optional parsed flag.
    pub fn optional<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, String> {
        match self.flags.get(name) {
            None => Ok(None),
            Some(raw) => raw
                .parse()
                .map(Some)
                .map_err(|_| format!("invalid value {raw:?} for --{name}")),
        }
    }

    /// Whether a boolean flag is present.
    pub fn has(&self, name: &str) -> bool {
        self.flags.contains_key(name)
    }

    /// The raw (unparsed) value of a flag, for validators that want the
    /// original token in their error message (e.g. the shared limit
    /// parsers in `kdc::config`).
    pub fn raw(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    /// A string flag with a default.
    pub fn string_or<'a>(&'a self, name: &str, default: &'a str) -> &'a str {
        self.flags.get(name).map(String::as_str).unwrap_or(default)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn positionals_and_flags() {
        let p = parse(&argv("file.clq --k 3 --parallel --limit 2.5")).unwrap();
        assert_eq!(p.positional(0, "file").unwrap(), "file.clq");
        assert_eq!(p.required::<usize>("k").unwrap(), 3);
        assert!(p.has("parallel"));
        assert_eq!(p.optional::<f64>("limit").unwrap(), Some(2.5));
        assert_eq!(p.optional::<f64>("absent").unwrap(), None);
    }

    #[test]
    fn missing_and_invalid() {
        let p = parse(&argv("--k x")).unwrap();
        assert!(p.required::<usize>("k").is_err());
        assert!(p.positional(0, "file").is_err());
        assert!(parse(&argv("--limit")).is_err(), "value-less flag");
    }

    #[test]
    fn threads_flag_takes_a_numeric_value() {
        let p = parse(&argv("g.clq --k 2 --threads 8")).unwrap();
        assert_eq!(p.optional::<usize>("threads").unwrap(), Some(8));
        // --threads is a value flag, not boolean: it must consume the next
        // token even when that token looks like a file.
        let p = parse(&argv("--threads 4 g.clq")).unwrap();
        assert_eq!(p.optional::<usize>("threads").unwrap(), Some(4));
        assert_eq!(p.positional(0, "file").unwrap(), "g.clq");
        let p = parse(&argv("g.clq --threads x")).unwrap();
        assert!(p.optional::<usize>("threads").is_err());
        assert!(parse(&argv("g.clq --threads")).is_err());
    }

    #[test]
    fn raw_returns_the_unparsed_token() {
        let p = parse(&argv("g.clq --limit 2.5x")).unwrap();
        assert_eq!(p.raw("limit"), Some("2.5x"));
        assert_eq!(p.raw("absent"), None);
    }

    #[test]
    fn defaults() {
        let p = parse(&argv("g.txt")).unwrap();
        assert_eq!(p.string_or("preset", "kdc"), "kdc");
        assert!(!p.has("parallel"));
    }
}
