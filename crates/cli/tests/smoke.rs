//! Smoke tests for the `kdc` binary itself: run the real executable on a
//! tiny graph and assert on exit codes and key output lines, so `cargo test`
//! catches bin-target breakage (not just library regressions).
//!
//! `CARGO_BIN_EXE_kdc` is provided by cargo for integration tests of the
//! package that defines the binary, and forces the binary to be built.

use std::path::PathBuf;
use std::process::{Command, Output};

fn kdc_bin() -> &'static str {
    env!("CARGO_BIN_EXE_kdc")
}

fn run(args: &[&str]) -> Output {
    Command::new(kdc_bin())
        .args(args)
        .output()
        .expect("failed to spawn kdc binary")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// Writes the paper's Figure 2 graph to a temp file and returns its path.
/// Written exactly once: tests run on parallel threads, and rewriting the
/// file (`File::create` truncates) would race against another test's `kdc`
/// subprocess mid-read.
fn sample_graph() -> PathBuf {
    static PATH: std::sync::OnceLock<PathBuf> = std::sync::OnceLock::new();
    PATH.get_or_init(|| {
        let dir = std::env::temp_dir().join(format!("kdc_cli_smoke_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("figure2.clq");
        kdc_graph::io::write_dimacs(&kdc_graph::named::figure2(), &path).unwrap();
        path
    })
    .clone()
}

#[test]
fn no_args_fails_with_usage() {
    let out = run(&[]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("kdc"), "usage text missing: {err}");
}

#[test]
fn help_succeeds() {
    assert!(run(&["help"]).status.success());
    assert!(run(&["--help"]).status.success());
}

#[test]
fn unknown_command_fails() {
    assert!(!run(&["frobnicate"]).status.success());
}

#[test]
fn solve_figure2() {
    let path = sample_graph();
    let out = run(&["solve", path.to_str().unwrap(), "--k", "2"]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = stdout(&out);
    assert!(text.contains("status: optimal"), "output: {text}");
    // Figure 2's maximum 2-defective clique is {v1..v6}.
    assert!(text.contains("size: 6"), "output: {text}");
}

#[test]
fn solve_stats_prints_reduction_counters() {
    let path = sample_graph();
    let out = run(&["solve", path.to_str().unwrap(), "--k", "2", "--stats"]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = stdout(&out);
    assert!(text.contains("ctcp: vertex-removals"), "output: {text}");
    assert!(text.contains("bounds: prunes"), "output: {text}");
    // The registry twin of the per-bound cost counters feeds a cumulative
    // time section onto the bounds line.
    assert!(text.contains("time-ms ub2="), "output: {text}");
    assert!(text.contains("kdclub"), "output: {text}");
    assert!(text.contains("arena: reuses"), "output: {text}");
    assert!(text.contains("universe-rebuilds"), "output: {text}");

    // Without the flag the counter lines stay off.
    let out = run(&["solve", path.to_str().unwrap(), "--k", "2"]);
    let text = stdout(&out);
    assert!(!text.contains("ctcp:"), "output: {text}");
    assert!(!text.contains("bounds:"), "output: {text}");

    // The KD-Club bound preset drives the same pipeline end to end.
    let out = run(&[
        "solve",
        path.to_str().unwrap(),
        "--k",
        "2",
        "--preset",
        "kdclub",
        "--stats",
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = stdout(&out);
    assert!(text.contains("size: 6"), "output: {text}");
    assert!(text.contains("bounds: prunes"), "output: {text}");

    // The parallel path surfaces the arena counters too.
    let out = run(&[
        "solve",
        path.to_str().unwrap(),
        "--k",
        "2",
        "--stats",
        "--threads",
        "2",
    ]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("arena: reuses"), "output: {text}");
}

/// Writes a dense 150-vertex G(n,p) graph whose k = 12 solve takes far
/// longer than a microsecond, so a tiny --limit deterministically expires.
fn hard_graph() -> PathBuf {
    static PATH: std::sync::OnceLock<PathBuf> = std::sync::OnceLock::new();
    PATH.get_or_init(|| {
        let dir = std::env::temp_dir().join(format!("kdc_cli_smoke_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("hard.clq");
        let mut rng = kdc_graph::gen::seeded_rng(99);
        let g = kdc_graph::gen::gnp(150, 0.6, &mut rng);
        kdc_graph::io::write_dimacs(&g, &path).unwrap();
        path
    })
    .clone()
}

#[test]
fn solve_profile_prints_phase_and_bound_tables() {
    let path = sample_graph();
    let out = run(&["solve", path.to_str().unwrap(), "--k", "2", "--profile"]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = stdout(&out);
    assert!(text.contains("profile: phase breakdown"), "output: {text}");
    // The parse span wraps graph I/O; peel comes from inside the solver.
    assert!(text.contains("parse"), "output: {text}");
    assert!(text.contains("peel"), "output: {text}");
    assert!(text.contains("profile: bound costs"), "output: {text}");
    assert!(text.contains("invocations"), "output: {text}");

    // Without the flag the profile tables stay off.
    let out = run(&["solve", path.to_str().unwrap(), "--k", "2"]);
    let text = stdout(&out);
    assert!(!text.contains("profile:"), "output: {text}");
}

#[test]
fn solve_time_limit_exits_best_effort() {
    let path = hard_graph();
    let out = run(&[
        "solve",
        path.to_str().unwrap(),
        "--k",
        "12",
        "--limit",
        "0.000001",
    ]);
    // A best-effort answer is not an error (code 1) and not optimal
    // (code 0): it must be the dedicated exit code 2.
    assert_eq!(
        out.status.code(),
        Some(2),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = stdout(&out);
    assert!(
        text.contains("status: timeout (best-effort)"),
        "output: {text}"
    );
    assert!(
        text.contains("size: "),
        "best solution still reported: {text}"
    );
}

#[test]
fn solve_threads_flag_works_end_to_end() {
    let path = sample_graph();
    let out = run(&[
        "solve",
        path.to_str().unwrap(),
        "--k",
        "2",
        "--threads",
        "2",
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = stdout(&out);
    assert!(text.contains("status: optimal"), "output: {text}");
    assert!(text.contains("size: 6"), "output: {text}");
}

#[test]
fn solve_watch_streams_incumbent_lines() {
    let path = sample_graph();
    let out = run(&["solve", path.to_str().unwrap(), "--k", "2", "--watch"]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = stdout(&out);
    // The observer renders incumbent events before the final report.
    let watch_pos = text
        .find("watch: incumbent size=")
        .unwrap_or_else(|| panic!("no watch line in: {text}"));
    let status_pos = text.find("status: optimal").expect("status line");
    assert!(
        watch_pos < status_pos,
        "watch output must precede the final report: {text}"
    );
    assert!(text.contains("size: 6"), "output: {text}");
}

#[test]
fn count_command_reports_counts() {
    let path = sample_graph();
    let out = run(&[
        "count",
        path.to_str().unwrap(),
        "--k",
        "1",
        "--min-size",
        "5",
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = stdout(&out);
    assert!(text.contains("max-size: 5"), "output: {text}");
    assert!(text.contains("size 5: "), "output: {text}");
}

#[test]
fn solve_node_limit_flag_is_validated() {
    let path = sample_graph();
    // Valid node limit: runs (and on figure2 still proves optimality well
    // within the budget).
    let out = run(&[
        "solve",
        path.to_str().unwrap(),
        "--k",
        "2",
        "--nodes",
        "1000000",
    ]);
    assert!(out.status.success());
    // Hostile node limit: rejected by the shared validator, exit code 1.
    let out = run(&["solve", path.to_str().unwrap(), "--k", "2", "--nodes", "0"]);
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("node limit"), "stderr: {err}");
}

#[test]
fn serve_and_client_roundtrip() {
    use std::io::BufRead;
    let path = sample_graph();
    // Ephemeral port: the daemon prints "listening on <addr> ..." first.
    let mut server = Command::new(kdc_bin())
        .args(["serve", "--addr", "127.0.0.1:0", "--workers", "2"])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("failed to spawn kdc serve");
    let mut first_line = String::new();
    std::io::BufReader::new(server.stdout.take().unwrap())
        .read_line(&mut first_line)
        .unwrap();
    let addr = first_line
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected banner: {first_line}"))
        .split_whitespace()
        .next()
        .unwrap()
        .to_string();

    let client = |words: &[&str]| -> Output {
        let mut args = vec!["client", addr.as_str()];
        args.extend_from_slice(words);
        run(&args)
    };

    let out = client(&["LOAD", path.to_str().unwrap(), "AS", "fig2"]);
    assert!(out.status.success(), "{}", stdout(&out));
    assert!(stdout(&out).contains("loaded=fig2"), "{}", stdout(&out));

    let out = client(&["SOLVE", "fig2", "k=2"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("status=optimal"), "{text}");
    assert!(text.contains("size=6"), "{text}");

    // A verbose solve through `kdc client` prints the EVENT stream and the
    // final OK verdict (a different preset dodges the daemon's result memo
    // so a real search runs and emits events).
    let out = client(&["SOLVE", "fig2", "k=2", "preset=kdbb", "verbose=1"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("EVENT type=incumbent"), "{text}");
    assert!(
        text.lines().last().unwrap().starts_with("OK "),
        "verdict must be the last line: {text}"
    );

    // ERR responses surface as a failing client exit code.
    let out = client(&["SOLVE", "ghost", "k=2"]);
    assert!(!out.status.success());
    assert!(stdout(&out).starts_with("ERR "), "{}", stdout(&out));

    // `kdc metrics` scrapes and validates the Prometheus exposition the
    // solves above populated.
    let out = run(&["metrics", addr.as_str()]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = stdout(&out);
    assert!(text.contains("kdc_service_jobs_total"), "{text}");
    assert!(text.contains("kdc_session_solves_total"), "{text}");
    assert!(text.contains("kdc_core_bound_invocations_total"), "{text}");

    // Retry flags are stripped before the protocol line and work against a
    // live daemon (no busy reply here, so one attempt suffices).
    let out = run(&[
        "client",
        "--retries",
        "2",
        "--backoff-ms",
        "10",
        addr.as_str(),
        "JOBS",
    ]);
    assert!(out.status.success(), "{}", stdout(&out));

    let out = client(&["SHUTDOWN"]);
    assert!(out.status.success());
    assert!(
        stdout(&out).contains("mode=abort"),
        "SHUTDOWN reply must echo its mode: {}",
        stdout(&out)
    );
    let status = server.wait().expect("server did not exit");
    assert!(status.success(), "serve exited with {status:?}");
}

#[test]
fn client_retries_exhaust_against_dead_port() {
    // Bind-then-drop yields an address that (almost certainly) refuses
    // connections; the client must sleep between attempts and still fail.
    let addr = {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        listener.local_addr().unwrap().to_string()
    };
    let start = std::time::Instant::now();
    let out = run(&[
        "client",
        "--retries",
        "2",
        "--backoff-ms",
        "5",
        addr.as_str(),
        "JOBS",
    ]);
    assert!(!out.status.success());
    assert!(
        start.elapsed() >= std::time::Duration::from_millis(5),
        "retries must back off between attempts"
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("cannot reach"), "stderr: {err}");
}

#[test]
fn client_rejects_malformed_retry_flags() {
    // A flag in address position means the operands went missing.
    let out = run(&["client", "--retries", "3"]);
    assert!(!out.status.success());
    let out = run(&["client", "--retries", "many", "127.0.0.1:1", "JOBS"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--retries"), "stderr: {err}");
}

#[test]
fn solve_missing_k_fails() {
    let path = sample_graph();
    assert!(!run(&["solve", path.to_str().unwrap()]).status.success());
}

#[test]
fn solve_missing_file_fails() {
    assert!(!run(&["solve", "/nonexistent/nope.clq", "--k", "1"])
        .status
        .success());
}

#[test]
fn stats_reports_counts() {
    let path = sample_graph();
    let out = run(&["stats", path.to_str().unwrap()]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("n: 12"), "output: {text}");
    assert!(text.contains("m: 26"), "output: {text}");
}

#[test]
fn gamma_prints_table() {
    let out = run(&["gamma", "4"]);
    assert!(out.status.success());
    let text = stdout(&out);
    // Header plus k = 0..=4 rows.
    assert_eq!(text.lines().count(), 6, "output: {text}");
    // γ_1 ≈ 1.839 (the tribonacci constant) appears in the k = 1 row.
    assert!(text.contains("1.839"), "output: {text}");
}

#[test]
fn convert_roundtrips_formats() {
    let path = sample_graph();
    let metis = path.with_extension("graph");
    let out = run(&["convert", path.to_str().unwrap(), metis.to_str().unwrap()]);
    assert!(out.status.success());
    let back = kdc_graph::io::read_graph(&metis).unwrap();
    assert_eq!(back, kdc_graph::named::figure2());
}

#[test]
fn solve_writes_and_verifies_certificate() {
    let path = sample_graph();
    let cert = path.with_extension("cert");
    let out = run(&[
        "solve",
        path.to_str().unwrap(),
        "--k",
        "2",
        "--cert",
        cert.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let out = run(&["verify", path.to_str().unwrap(), cert.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout(&out).contains("VALID"));
}
