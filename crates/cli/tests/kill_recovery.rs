//! Kill-recovery soak: SIGKILL the real `kdc serve --state-dir` daemon —
//! after proven solves, mid-solve in a loop, and mid-journal-append under
//! an injected torn write — then restart on the same state directory and
//! assert the durable store recovers: no corrupt state, answers identical
//! to a fresh in-process solver, and witness/memo reuse proven through the
//! session counters (`cached=true`, `recovered_*`), not timings.
//!
//! Everything runs against one state dir in one `#[test]` so the phases
//! stay strictly ordered; each phase spawns its own daemon process on an
//! ephemeral port.

use std::io::{BufRead, BufReader, Read};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

fn kdc_bin() -> &'static str {
    env!("CARGO_BIN_EXE_kdc")
}

/// Scratch directory for this test process (state dir + graph file).
fn scratch() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("kdc_kill_recovery_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A spawned daemon plus its parsed listen address.
struct DaemonProc {
    child: Child,
    addr: String,
}

impl DaemonProc {
    /// Spawns `kdc serve --addr 127.0.0.1:0 --workers 2 --state-dir <dir>`
    /// (plus `KDC_FAULTS` when given), parses the ephemeral port off the
    /// `listening on ...` stdout line, and leaves a thread draining the
    /// rest of stdout so the child can never block on a full pipe.
    fn spawn(state_dir: &Path, faults: Option<&str>) -> DaemonProc {
        let mut cmd = Command::new(kdc_bin());
        cmd.args(["serve", "--addr", "127.0.0.1:0", "--workers", "2"])
            .arg("--state-dir")
            .arg(state_dir)
            .stdout(Stdio::piped())
            .stderr(Stdio::null());
        if let Some(plan) = faults {
            cmd.env("KDC_FAULTS", plan);
        }
        let mut child = cmd.spawn().expect("failed to spawn kdc serve");
        let stdout = child.stdout.take().expect("stdout piped");
        let mut reader = BufReader::new(stdout);
        let mut line = String::new();
        reader.read_line(&mut line).expect("daemon banner");
        let addr = line
            .strip_prefix("listening on ")
            .and_then(|rest| rest.split_whitespace().next())
            .unwrap_or_else(|| panic!("unexpected banner: {line:?}"))
            .to_string();
        std::thread::spawn(move || {
            let mut sink = Vec::new();
            let _ = reader.read_to_end(&mut sink);
        });
        DaemonProc { child, addr }
    }

    fn request(&self, command: &str) -> String {
        kdc_service::request(&self.addr, command)
            .unwrap_or_else(|e| panic!("request {command:?} failed: {e}"))
    }

    /// SIGKILL — the crash under test: no drain, no final compaction.
    fn kill(mut self) {
        self.child.kill().expect("kill daemon");
        self.child.wait().expect("reap daemon");
    }

    /// Clean shutdown via the protocol, then reap.
    fn shutdown(mut self) {
        let _ = kdc_service::request(&self.addr, "SHUTDOWN mode=drain");
        self.child.wait().expect("reap daemon");
    }
}

/// Extracts `key=value` off a reply's final line.
fn field<'a>(reply: &'a str, key: &str) -> &'a str {
    let last = reply.lines().last().unwrap_or("");
    last.split_whitespace()
        .find_map(|tok| tok.strip_prefix(&format!("{key}=")[..]))
        .unwrap_or_else(|| panic!("no field {key} in reply {last:?}"))
}

/// Value of a metric series in a `METRICS` reply (0 when absent).
fn metric(reply: &str, name: &str) -> u64 {
    reply
        .lines()
        .filter_map(|line| line.strip_prefix("METRIC "))
        .find_map(|line| line.strip_prefix(name))
        .and_then(|rest| rest.trim().parse().ok())
        .unwrap_or(0)
}

#[test]
fn sigkill_daemon_recovers_state_and_reuses_proofs() {
    let dir = scratch();
    let state_dir = dir.join("state");
    let graph_path = dir.join("planted.clq");
    let (graph, _planted) = kdc_graph::gen::planted_defective_clique(
        60,
        9,
        3,
        0.25,
        &mut kdc_graph::gen::seeded_rng(7),
    );
    kdc_graph::io::write_dimacs(&graph, &graph_path).unwrap();
    let load = format!("LOAD {} AS g", graph_path.display());

    // Phase 1: prove k=2 and k=3 on a fresh daemon, then SIGKILL it. The
    // journal appends happen before the reply line, so both proofs are on
    // disk the moment the replies arrive.
    let daemon = DaemonProc::spawn(&state_dir, None);
    assert!(daemon.request(&load).starts_with("OK "), "load failed");
    let first_k3 = daemon.request("SOLVE g k=3");
    assert_eq!(field(&first_k3, "status"), "optimal");
    assert_eq!(field(&first_k3, "cached"), "false");
    let first_k2 = daemon.request("SOLVE g k=2");
    assert_eq!(field(&first_k2, "status"), "optimal");
    daemon.kill();

    // Phase 2: kill-mid-solve loop. Each round recovers, fires a solve
    // without waiting for it, and SIGKILLs a few milliseconds later — the
    // kill lands wherever it lands (mid-search, mid-append, mid-reply).
    for round in 0..3u64 {
        let daemon = DaemonProc::spawn(&state_dir, None);
        assert!(daemon.request(&load).starts_with("OK "));
        let addr = daemon.addr.clone();
        let solver = std::thread::spawn(move || {
            let _ = kdc_service::request(&addr, &format!("SOLVE g k={}", round + 1));
        });
        std::thread::sleep(Duration::from_millis(5 * (round + 1)));
        daemon.kill();
        let _ = solver.join();
    }

    // Phase 3: recovery is counter-proven, answers match phase 1 exactly,
    // and a torn journal append is survived in-process. The k=4 solve
    // below journals three records — Graph meta, Witness, Memo — and the
    // armed fault cuts the third (the Memo) mid-record, so the torn frame
    // sits at end-of-journal exactly as a mid-append SIGKILL leaves it.
    let daemon = DaemonProc::spawn(&state_dir, Some("store_write:torn:n=3"));
    assert!(daemon.request(&load).starts_with("OK "));
    let stats_g = daemon.request("STATS g");
    let recovered_witnesses: u64 = field(&stats_g, "recovered_witnesses").parse().unwrap();
    let recovered_memos: u64 = field(&stats_g, "recovered_memos").parse().unwrap();
    assert!(
        recovered_witnesses >= 2 && recovered_memos >= 2,
        "k=2 and k=3 proofs must have been rehydrated: {stats_g}"
    );
    let stats_all = daemon.request("STATS");
    assert_eq!(field(&stats_all, "recovered_graphs"), "1", "{stats_all}");
    let metrics = daemon.request("METRICS");
    assert!(
        metric(&metrics, "kdc_store_recoveries_total") >= 1,
        "store must have counted the recovery"
    );

    // The recovered memo answers without a search, identically to phase 1
    // and to a fresh in-process solver on the same file.
    let warm_k3 = daemon.request("SOLVE g k=3");
    assert_eq!(field(&warm_k3, "cached"), "true", "{warm_k3}");
    for key in ["status", "size", "vertices"] {
        assert_eq!(field(&warm_k3, key), field(&first_k3, key), "{key} drifted");
    }
    let fresh = kdc_api::Session::new(graph.clone()).solve(3);
    assert!(fresh.is_optimal());
    assert_eq!(field(&warm_k3, "size"), fresh.size().to_string());

    // k=4 was never proven: this solve runs a real search seeded by the
    // recovered witnesses, and its memo append is the one the armed
    // fault tears mid-record. The daemon must answer normally anyway.
    let k4 = daemon.request("SOLVE g k=4");
    assert_eq!(field(&k4, "status"), "optimal");
    assert_eq!(field(&k4, "cached"), "false");
    daemon.kill();

    // Phase 4: the torn tail is detected, dropped, and counted; everything
    // before it is intact. The k=4 proof died with the torn append, so it
    // must come back cold — while k=3 still answers from the memo.
    let daemon = DaemonProc::spawn(&state_dir, None);
    assert!(daemon.request(&load).starts_with("OK "));
    let metrics = daemon.request("METRICS");
    assert!(
        metric(&metrics, "kdc_store_torn_records_dropped_total") >= 1,
        "torn append must be detected on replay"
    );
    let warm_k3 = daemon.request("SOLVE g k=3");
    assert_eq!(field(&warm_k3, "cached"), "true");
    assert_eq!(field(&warm_k3, "vertices"), field(&first_k3, "vertices"));
    let k4 = daemon.request("SOLVE g k=4");
    assert_eq!(
        field(&k4, "cached"),
        "false",
        "the torn record must not have survived replay"
    );
    daemon.shutdown();

    // After a clean drain shutdown the state dir holds exactly the final
    // snapshot + journal — no tmp-* leftovers from interrupted writes.
    let names: Vec<String> = std::fs::read_dir(&state_dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    assert!(
        names.iter().any(|n| n == "snapshot.kds") && names.iter().any(|n| n == "journal.kdj"),
        "state dir incomplete: {names:?}"
    );
    assert!(
        names.iter().all(|n| !n.starts_with("tmp-")),
        "leaked temp files: {names:?}"
    );

    // And a final restart of the drained state recovers it all again.
    let daemon = DaemonProc::spawn(&state_dir, None);
    assert!(daemon.request(&load).starts_with("OK "));
    let stats_g = daemon.request("STATS g");
    let recovered: u64 = field(&stats_g, "recovered_memos").parse().unwrap();
    assert!(recovered >= 3, "k=2,3,4 must all be durable now: {stats_g}");
    let warm_k4 = daemon.request("SOLVE g k=4");
    assert_eq!(field(&warm_k4, "cached"), "true");
    assert_eq!(field(&warm_k4, "vertices"), field(&k4, "vertices"));
    daemon.shutdown();
}
