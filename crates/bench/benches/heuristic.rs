//! Initial-solution heuristics: Degen (O(m)) vs Degen-opt (O(δ(G)·m))
//! across graph families (§3.3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kdc::heuristic::{degen, degen_opt};
use kdc_graph::gen;
use std::hint::black_box;

fn bench_heuristics(c: &mut Criterion) {
    let graphs = vec![
        (
            "powerlaw-10k",
            gen::chung_lu(10_000, 8.0, 2.5, &mut gen::seeded_rng(11)),
        ),
        (
            "ba-10k",
            gen::barabasi_albert(10_000, 5, &mut gen::seeded_rng(12)),
        ),
        (
            "community-2k",
            gen::community(
                &gen::CommunityParams {
                    communities: 20,
                    community_size: 100,
                    p_in: 0.4,
                    p_out: 0.003,
                },
                &mut gen::seeded_rng(13),
            ),
        ),
    ];
    for (name, g) in graphs {
        let mut group = c.benchmark_group(format!("heuristic/{name}"));
        for k in [1usize, 10] {
            group.bench_with_input(BenchmarkId::new("degen", k), &k, |b, &k| {
                b.iter(|| black_box(degen(&g, k)).len())
            });
            group.bench_with_input(BenchmarkId::new("degen_opt", k), &k, |b, &k| {
                b.iter(|| black_box(degen_opt(&g, k)).len())
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_heuristics);
criterion_main!(benches);
