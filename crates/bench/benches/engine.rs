//! Engine ablation: the dense bit-matrix acceleration on vs off (identical
//! search trees, different adjacency-test and RR4-intersection machinery).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kdc::{Solver, SolverConfig};
use kdc_graph::gen;
use std::hint::black_box;

fn bench_matrix_ablation(c: &mut Criterion) {
    let cases = vec![
        ("gnp-60-04", gen::gnp(60, 0.4, &mut gen::seeded_rng(31))),
        (
            "community",
            gen::community(
                &gen::CommunityParams {
                    communities: 3,
                    community_size: 30,
                    p_in: 0.6,
                    p_out: 0.02,
                },
                &mut gen::seeded_rng(32),
            ),
        ),
    ];
    for (name, g) in cases {
        let mut group = c.benchmark_group(format!("engine/{name}"));
        group.sample_size(10);
        let k = 3usize;
        group.bench_with_input(BenchmarkId::new("bitmatrix", k), &k, |b, &k| {
            b.iter(|| {
                let sol = Solver::new(black_box(&g), k, SolverConfig::kdc()).solve();
                black_box(sol.size())
            })
        });
        group.bench_with_input(BenchmarkId::new("lists", k), &k, |b, &k| {
            let mut cfg = SolverConfig::kdc();
            cfg.matrix_limit = 0;
            b.iter(|| {
                let sol = Solver::new(black_box(&g), k, cfg.clone()).solve();
                black_box(sol.size())
            })
        });
        group.finish();
    }
}

criterion_group!(benches, bench_matrix_ablation);
criterion_main!(benches);
