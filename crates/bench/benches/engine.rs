//! Engine ablations.
//!
//! * matrix vs lists: the dense bit-matrix acceleration on vs off
//!   (identical search trees, different adjacency-test machinery);
//! * word vs scalar kernel: the masked-word hot path against the per-vertex
//!   probe path on search-heavy planted instances (identical search trees —
//!   the wall-clock ratio *is* the kernel speedup);
//! * kdclub: the KD-Club-style re-colouring bound (smaller search tree,
//!   costlier per node).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kdc::{Solver, SolverConfig};
use kdc_graph::gen;
use std::hint::black_box;

fn bench_word_kernel(c: &mut Criterion) {
    // The search-heavy planted instances of `bench-snapshot`
    // (`BENCH_5.json`), where branch-and-bound — not preprocessing —
    // dominates the wall clock; one shared construction keeps this bench
    // and the committed baseline measuring identical instances.
    for (name, g, k) in kdc_bench::collections::planted_snapshot_cases() {
        let mut group = c.benchmark_group(format!("engine/{name}"));
        group.sample_size(10);
        // Word vs scalar walk identical trees (same node counts, same
        // witnesses) — pinned by `crates/core/tests/kernel_parity.rs`, so
        // the wall-clock ratio below is pure kernel speedup.
        type Variant = (&'static str, fn() -> SolverConfig);
        let variants: Vec<Variant> = vec![
            ("word", SolverConfig::kdc),
            ("scalar", || SolverConfig::kdc().with_scalar_kernel()),
            ("kdclub", SolverConfig::kdclub),
        ];
        for (vname, cfg) in variants {
            group.bench_with_input(BenchmarkId::new(vname, k), &k, |b, &k| {
                b.iter(|| {
                    let sol = Solver::new(black_box(&g), k, cfg()).solve();
                    black_box(sol.size())
                })
            });
        }
        group.finish();
    }
}

fn bench_matrix_ablation(c: &mut Criterion) {
    let cases = vec![
        ("gnp-60-04", gen::gnp(60, 0.4, &mut gen::seeded_rng(31))),
        (
            "community",
            gen::community(
                &gen::CommunityParams {
                    communities: 3,
                    community_size: 30,
                    p_in: 0.6,
                    p_out: 0.02,
                },
                &mut gen::seeded_rng(32),
            ),
        ),
    ];
    for (name, g) in cases {
        let mut group = c.benchmark_group(format!("engine/{name}"));
        group.sample_size(10);
        let k = 3usize;
        group.bench_with_input(BenchmarkId::new("bitmatrix", k), &k, |b, &k| {
            b.iter(|| {
                let sol = Solver::new(black_box(&g), k, SolverConfig::kdc()).solve();
                black_box(sol.size())
            })
        });
        group.bench_with_input(BenchmarkId::new("lists", k), &k, |b, &k| {
            let mut cfg = SolverConfig::kdc();
            cfg.matrix_limit = 0;
            b.iter(|| {
                let sol = Solver::new(black_box(&g), k, cfg.clone()).solve();
                black_box(sol.size())
            })
        });
        group.finish();
    }
}

criterion_group!(benches, bench_matrix_ablation, bench_word_kernel);
criterion_main!(benches);
