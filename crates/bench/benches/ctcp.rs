//! CTCP reduction benchmarks: from-scratch core/truss fixpoint recomputation
//! vs the incremental reducer, driven across a rising lower-bound schedule
//! on planted instances (the access pattern of a solver whose incumbent
//! keeps improving, and of a resident service absorbing warm SOLVEs).
//!
//! Beyond timing, the bench *asserts* the structural warm-path claims once
//! per graph before the timed loops: the incremental reducer lands on the
//! byte-identical fixpoint at every step of the schedule, warm solver runs
//! return byte-identical solutions while performing exactly one universe
//! build, and a resumed reducer re-removes nothing.

use criterion::{criterion_group, criterion_main, Criterion};
use kdc::{Solver, SolverConfig};
use kdc_graph::ctcp::{scratch_fixpoint, Ctcp};
use kdc_graph::{gen, Graph};
use std::hint::black_box;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// The rising lower-bound schedule both sides are driven through.
const SCHEDULE: [usize; 6] = [8, 10, 12, 14, 16, 18];
const K: usize = 2;

fn planted(seed: u64, n: usize) -> Graph {
    let (g, _) = gen::planted_defective_clique(n, 18, K, 0.01, &mut gen::seeded_rng(seed));
    g
}

/// One-time structural parity check (outside the timed loops).
fn assert_warm_path_claims(g: &Graph) {
    // 1. Incremental == scratch at every schedule point, edges included.
    let mut warm = Ctcp::new(g, K);
    for &lb in &SCHEDULE {
        warm.tighten(lb);
        let (expected, expected_keep) = scratch_fixpoint(g, K, lb);
        assert_eq!(warm.alive_vertices(), expected_keep, "lb {lb}");
        let (adj, _) = warm.extract_universe();
        assert_eq!(Graph::from_adjacency(adj), expected, "lb {lb}");
    }

    // 2. Warm solver runs: byte-identical output, exactly one universe
    //    build, and nothing left for the resumed reducer to remove.
    let cold = Solver::new(g, K, SolverConfig::kdc()).solve();
    assert!(cold.is_optimal());
    let resident = Arc::new(Mutex::new(Ctcp::new(g, K)));
    let warm_cfg = SolverConfig::kdc()
        .with_shared_ctcp(resident)
        .with_seed_solution(cold.vertices.clone());
    let warm1 = Solver::new(g, K, warm_cfg.clone()).solve();
    let warm2 = Solver::new(g, K, warm_cfg).solve();
    assert_eq!(warm1.vertices, cold.vertices, "byte-identical solution");
    assert_eq!(warm2.vertices, cold.vertices, "byte-identical solution");
    assert_eq!(
        warm2.stats.universe_rebuilds, 1,
        "warm path performs no extra universe rebuilds"
    );
    assert_eq!(
        warm2.stats.ctcp_vertex_removals, 0,
        "resumed reducer is already at the fixpoint"
    );
    assert_eq!(warm2.stats.ctcp_edge_removals, 0);
}

fn bench_ctcp(c: &mut Criterion) {
    for (name, seed, n) in [("planted-2k", 11u64, 2_000usize), ("planted-5k", 12, 5_000)] {
        let g = planted(seed, n);
        assert_warm_path_claims(&g);

        let mut group = c.benchmark_group(format!("ctcp/{name}"));
        group.sample_size(10);

        // The old world: every lb improvement recomputes the core/truss
        // fixpoint from a fresh clone of the graph.
        group.bench_function("scratch-schedule", |b| {
            b.iter(|| {
                let mut last = 0usize;
                for &lb in &SCHEDULE {
                    let (reduced, keep) = scratch_fixpoint(&g, K, lb);
                    last = black_box(keep.len() + reduced.m());
                }
                last
            })
        });

        // Cold incremental: pay the one-time support computation, then
        // propagate each schedule step incrementally.
        group.bench_function("incremental-cold", |b| {
            b.iter(|| {
                let mut ctcp = Ctcp::new(&g, K);
                for &lb in &SCHEDULE {
                    black_box(ctcp.tighten(lb).vertices.len());
                }
                ctcp.alive_n()
            })
        });

        // Warm incremental (the resident-service path): the reducer already
        // exists; only the tighten propagation is timed.
        group.bench_function("incremental-warm", |b| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    let mut ctcp = Ctcp::new(&g, K);
                    let t0 = Instant::now();
                    for &lb in &SCHEDULE {
                        black_box(ctcp.tighten(lb).vertices.len());
                    }
                    total += t0.elapsed();
                }
                total
            })
        });

        // Batched: the whole pending schedule handed over in one call (a
        // decompose worker draining several queued incumbent improvements)
        // — one sweep at the maximum instead of one pass per step.
        group.bench_function("incremental-batch", |b| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    let mut ctcp = Ctcp::new(&g, K);
                    let t0 = Instant::now();
                    black_box(ctcp.tighten_batch(&SCHEDULE).vertices.len());
                    total += t0.elapsed();
                }
                total
            })
        });

        // The batch lands on the same universe as the stepped schedule.
        let mut stepped = Ctcp::new(&g, K);
        for &lb in &SCHEDULE {
            stepped.tighten(lb);
        }
        let mut batched = Ctcp::new(&g, K);
        batched.tighten_batch(&SCHEDULE);
        assert_eq!(
            batched.extract_universe().0,
            stepped.extract_universe().0,
            "batched tighten must match the stepped schedule"
        );

        group.finish();
    }
}

criterion_group!(benches, bench_ctcp);
criterion_main!(benches);
