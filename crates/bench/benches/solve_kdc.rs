//! End-to-end solver benchmarks: kDC vs the baselines on representative
//! workloads from each collection regime (the criterion companion to
//! Tables 2/3; trends here should match the tables' orderings).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kdc::{Solver, SolverConfig};
use kdc_graph::gen::{self, CommunityParams};
use kdc_graph::Graph;
use std::hint::black_box;

fn workloads() -> Vec<(&'static str, Graph)> {
    vec![
        (
            "facebook-small",
            gen::community(
                &CommunityParams {
                    communities: 4,
                    community_size: 30,
                    p_in: 0.55,
                    p_out: 0.02,
                },
                &mut gen::seeded_rng(1),
            ),
        ),
        (
            "powerlaw",
            gen::chung_lu(800, 10.0, 2.4, &mut gen::seeded_rng(2)),
        ),
        (
            "planted",
            gen::planted_defective_clique(400, 18, 3, 0.02, &mut gen::seeded_rng(3)).0,
        ),
    ]
}

fn bench_solvers(c: &mut Criterion) {
    type Preset = (&'static str, fn() -> SolverConfig);
    let presets: Vec<Preset> = vec![
        ("kDC", SolverConfig::kdc),
        ("KDBB", SolverConfig::kdbb_like),
        ("MADEC", SolverConfig::madec_like),
    ];
    for (wname, g) in workloads() {
        let mut group = c.benchmark_group(format!("solve/{wname}"));
        group.sample_size(10);
        for k in [1usize, 3] {
            for (pname, cfg) in &presets {
                group.bench_with_input(
                    BenchmarkId::new(pname.to_string(), format!("k{k}")),
                    &k,
                    |b, &k| {
                        b.iter(|| {
                            let sol = Solver::new(black_box(&g), k, cfg()).solve();
                            black_box(sol.size())
                        })
                    },
                );
            }
        }
        group.finish();
    }
}

criterion_group!(benches, bench_solvers);
criterion_main!(benches);
