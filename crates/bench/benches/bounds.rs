//! Per-node upper-bound cost: the full UB1/UB2/UB3/Eq.(2) evaluation on
//! instances of varying size and density (§3.2.1/§3.2.3 claim all bounds
//! are linear-time; this tracks the constants).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kdc::probe::bench_bounds;
use kdc_graph::gen;
use std::hint::black_box;

fn bench_bound_costs(c: &mut Criterion) {
    let cases = vec![
        ("dense-90", gen::gnp(90, 0.3, &mut gen::seeded_rng(21))),
        ("dense-250", gen::gnp(250, 0.2, &mut gen::seeded_rng(22))),
        (
            "sparse-2000",
            gen::chung_lu(2_000, 8.0, 2.5, &mut gen::seeded_rng(23)),
        ),
    ];
    let mut group = c.benchmark_group("bounds/all_bounds");
    for (name, g) in cases {
        for k in [1usize, 10] {
            group.bench_with_input(BenchmarkId::new(name, k), &k, |b, &k| {
                b.iter_custom(|iters| black_box(bench_bounds(&g, &[], k, iters as u32)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_bound_costs);
criterion_main!(benches);
