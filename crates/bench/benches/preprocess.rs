//! Preprocessing benchmarks: the O(m) Degen pipeline vs the O(δ(G)·m)
//! Degen-opt + RR6 pipeline (the cost side of Table 4's quality comparison).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kdc::solver::preprocess_report;
use kdc::SolverConfig;
use kdc_graph::gen;
use std::hint::black_box;

fn bench_preprocess(c: &mut Criterion) {
    let graphs = vec![
        (
            "powerlaw-5k",
            gen::chung_lu(5_000, 10.0, 2.4, &mut gen::seeded_rng(7)),
        ),
        (
            "geometric-5k",
            gen::random_geometric(5_000, 0.02, &mut gen::seeded_rng(8)),
        ),
    ];
    for (name, g) in graphs {
        let mut group = c.benchmark_group(format!("preprocess/{name}"));
        for k in [1usize, 10] {
            group.bench_with_input(BenchmarkId::new("kdc", k), &k, |b, &k| {
                b.iter(|| black_box(preprocess_report(&g, k, &SolverConfig::kdc())).n0)
            });
            group.bench_with_input(BenchmarkId::new("degen", k), &k, |b, &k| {
                b.iter(|| black_box(preprocess_report(&g, k, &SolverConfig::degen())).n0)
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_preprocess);
criterion_main!(benches);
