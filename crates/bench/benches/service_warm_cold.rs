//! Cold vs. warm solve latency through the `kdc_service` graph cache and
//! the `kdc_api` Session layer it is built on.
//!
//! * `cold_process_per_query` models today's one-shot CLI: every query pays
//!   file parsing, session construction and a full solve (a fresh
//!   [`GraphCache`] per iteration, like a fresh process).
//! * `warm_cached_graph` models a resident daemon answering with a shared
//!   session: the solve still runs, but parsing is gone and the cached
//!   degeneracy peeling is reused.
//! * `warm_result_memo` is the full warm service path: after the first
//!   query the per-session result memo answers without searching at all.
//!
//! Beyond timing, the bench *asserts* (via the session counters, not the
//! clock) that the warm paths performed exactly one parse and one real
//! search across all iterations — the warm/cold contrast is structural,
//! not statistical.

use criterion::{criterion_group, criterion_main, Criterion};
use kdc::CancelFlag;
use kdc_api::{Budget, Options, Query};
use kdc_graph::gen;
use kdc_service::jobs::{run_job, JobOutcome, JobSpec};
use kdc_service::GraphCache;
use std::path::PathBuf;
use std::time::Duration;

const K: usize = 2;

/// Writes the benchmark graph once and returns its path.
fn graph_file() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("kdc_bench_service_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("planted.clq");
    if !path.exists() {
        let mut rng = gen::seeded_rng(4242);
        let (g, _) = gen::planted_defective_clique(400, 14, K, 0.02, &mut rng);
        kdc_graph::io::write_dimacs(&g, &path).unwrap();
    }
    path
}

fn solve_spec(cache: &GraphCache, name: &str) -> JobSpec {
    JobSpec::Solve {
        entry: cache.get(name).expect("graph cached"),
        k: K,
        preset: "kdc".to_string(),
        limit: Some(Duration::from_secs(60)),
        nodes: None,
        threads: 1,
        observer: None,
        trace: None,
    }
}

fn expect_solve_size(outcome: JobOutcome) -> usize {
    match outcome {
        JobOutcome::Done(outcome) => outcome.size(),
        other => panic!("expected a solve outcome, got {other:?}"),
    }
}

fn bench_warm_cold(c: &mut Criterion) {
    let path = graph_file();
    let path_str = path.to_str().unwrap().to_string();

    let mut group = c.benchmark_group("service_warm_cold");

    // Cold: a fresh cache per query — parse + artifacts + full search, the
    // cost every standalone `kdc solve` process pays.
    let mut cold_size = 0;
    group.bench_function("cold_process_per_query", |b| {
        b.iter(|| {
            let cache = GraphCache::new();
            cache.load(&path_str, "g").expect("load graph");
            cold_size = expect_solve_size(run_job(&solve_spec(&cache, "g"), CancelFlag::new()));
            cold_size
        })
    });

    // Warm: one resident cache. The graph is parsed exactly once; each
    // query solves on the shared session (memo dodged via a custom options
    // object, which is never memoized, so the search really runs).
    let warm_cache = GraphCache::new();
    warm_cache.load(&path_str, "g").expect("load graph");
    group.bench_function("warm_cached_graph", |b| {
        b.iter(|| {
            let entry = warm_cache.get("g").expect("cached");
            entry
                .session()
                .run(
                    &Query::Solve { k: K },
                    &Budget::default(),
                    &Options::custom(kdc::SolverConfig::kdc()),
                )
                .expect("solve")
                .size()
        })
    });

    // Warm + memo: the full service path; after the first query the
    // proven-optimal result is returned without searching.
    let mut warm_size = 0;
    group.bench_function("warm_result_memo", |b| {
        b.iter(|| {
            warm_size =
                expect_solve_size(run_job(&solve_spec(&warm_cache, "g"), CancelFlag::new()));
            warm_size
        })
    });
    group.finish();

    // Structural assertions: warm really skipped re-parsing and
    // re-searching. `parses` counts file parses; the session counters count
    // real (non-memo) searches and memo hits.
    assert_eq!(
        cold_size, warm_size,
        "warm and cold must agree on the answer"
    );
    assert_eq!(
        warm_cache.parses(),
        1,
        "warm path must not re-parse the graph file"
    );
    let entry = warm_cache.get("g").expect("cached");
    let counters = entry.session().counters();
    assert_eq!(
        counters.peel_builds, 1,
        "warm path must reuse the cached degeneracy peeling"
    );
    assert!(
        counters.result_hits >= 1,
        "repeated warm memo queries must hit the result memo"
    );
    assert_eq!(
        counters.ctcp_builds, 1,
        "one resident reducer serves every warm search"
    );
    assert!(
        counters.ctcp_resumes >= 1,
        "warm searches must resume the resident reducer"
    );
    assert_eq!(counters.ctcp_evictions, 0, "one key never evicts");
    println!(
        "service_warm_cold: parses={} peel_builds={} searches={} memo_hits={} \
         ctcp_builds={} ctcp_resumes={} ctcp_evictions={}",
        warm_cache.parses(),
        counters.peel_builds,
        counters.solves,
        counters.result_hits,
        counters.ctcp_builds,
        counters.ctcp_resumes,
        counters.ctcp_evictions
    );
}

criterion_group!(benches, bench_warm_cold);
criterion_main!(benches);
