//! Cold vs. warm solve latency through the `kdc_service` graph cache.
//!
//! * `cold_process_per_query` models today's one-shot CLI: every query pays
//!   file parsing, cache construction and a full solve (a fresh
//!   [`GraphCache`] per iteration, like a fresh process).
//! * `warm_cached_graph` models a resident daemon answering with a shared
//!   `Arc<Graph>`: the solve still runs, but parsing is gone.
//! * `warm_result_memo` is the full warm service path: after the first
//!   query the per-graph result memo answers without searching at all.
//!
//! Beyond timing, the bench *asserts* (via the service counters, not the
//! clock) that the warm paths performed exactly one parse and one real
//! search across all iterations — the warm/cold contrast is structural,
//! not statistical.

use criterion::{criterion_group, criterion_main, Criterion};
use kdc::{CancelFlag, Solver, SolverConfig};
use kdc_graph::gen;
use kdc_service::jobs::{run_job, JobOutcome, JobSpec};
use kdc_service::GraphCache;
use std::path::PathBuf;
use std::time::Duration;

const K: usize = 2;

/// Writes the benchmark graph once and returns its path.
fn graph_file() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("kdc_bench_service_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("planted.clq");
    if !path.exists() {
        let mut rng = gen::seeded_rng(4242);
        let (g, _) = gen::planted_defective_clique(400, 14, K, 0.02, &mut rng);
        kdc_graph::io::write_dimacs(&g, &path).unwrap();
    }
    path
}

fn solve_spec(cache: &GraphCache, name: &str) -> JobSpec {
    JobSpec::Solve {
        entry: cache.get(name).expect("graph cached"),
        k: K,
        preset: "kdc".to_string(),
        limit: Some(Duration::from_secs(60)),
        threads: 1,
    }
}

fn expect_solve_size(outcome: JobOutcome) -> usize {
    match outcome {
        JobOutcome::Solve { solution, .. } => solution.size(),
        other => panic!("expected a solve outcome, got {other:?}"),
    }
}

fn bench_warm_cold(c: &mut Criterion) {
    let path = graph_file();
    let path_str = path.to_str().unwrap().to_string();

    let mut group = c.benchmark_group("service_warm_cold");

    // Cold: a fresh cache per query — parse + artifacts + full search, the
    // cost every standalone `kdc solve` process pays.
    let mut cold_size = 0;
    group.bench_function("cold_process_per_query", |b| {
        b.iter(|| {
            let cache = GraphCache::new();
            cache.load(&path_str, "g").expect("load graph");
            cold_size = expect_solve_size(run_job(&solve_spec(&cache, "g"), CancelFlag::new()));
            cold_size
        })
    });

    // Warm: one resident cache. The graph is parsed exactly once; each
    // query solves on the shared Arc<Graph>.
    let warm_cache = GraphCache::new();
    warm_cache.load(&path_str, "g").expect("load graph");
    group.bench_function("warm_cached_graph", |b| {
        b.iter(|| {
            let entry = warm_cache.get("g").expect("cached");
            // The daemon's warm solve path: shared Arc<Graph> plus the
            // cached degeneracy peeling (no re-peel in the heuristic phase).
            let config = SolverConfig::kdc().with_shared_peeling(entry.peeling());
            Solver::new(&entry.graph, K, config).solve().size()
        })
    });

    // Warm + memo: the full service path; after the first query the
    // proven-optimal result is returned without searching.
    let mut warm_size = 0;
    group.bench_function("warm_result_memo", |b| {
        b.iter(|| {
            warm_size =
                expect_solve_size(run_job(&solve_spec(&warm_cache, "g"), CancelFlag::new()));
            warm_size
        })
    });
    group.finish();

    // Structural assertions: warm really skipped re-parsing and
    // re-searching. `parses` counts file parses; `counters().2` counts real
    // (non-memo) searches; `counters().3` counts memo hits.
    assert_eq!(
        cold_size, warm_size,
        "warm and cold must agree on the answer"
    );
    assert_eq!(
        warm_cache.parses(),
        1,
        "warm path must not re-parse the graph file"
    );
    let entry = warm_cache.get("g").expect("cached");
    let (_, peel_builds, solves, result_hits) = entry.counters();
    assert_eq!(
        peel_builds, 1,
        "warm path must reuse the cached degeneracy peeling"
    );
    assert_eq!(solves, 1, "memo must reduce repeated queries to one search");
    assert!(
        result_hits >= 1,
        "repeated warm queries must hit the result memo"
    );
    println!(
        "service_warm_cold: parses={} peel_builds={} searches={} memo_hits={}",
        warm_cache.parses(),
        peel_builds,
        solves,
        result_hits
    );
}

criterion_group!(benches, bench_warm_cold);
criterion_main!(benches);
