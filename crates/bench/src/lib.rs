#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! # kdc-bench
//!
//! Experiment harness for the kDC suite: synthetic benchmark collections
//! ([`collections`]), a parallel timed runner ([`runner`]) and table
//! rendering ([`table`]).
//!
//! One binary per paper artifact regenerates the corresponding table/figure;
//! see DESIGN.md §4 for the full index and EXPERIMENTS.md for measured
//! results. Every binary accepts `--quick` (small collections) and most
//! accept `--limit <seconds>` (per-solve time limit).

pub mod collections;
pub mod figures;
pub mod runner;
pub mod table;
