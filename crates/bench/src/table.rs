//! Plain-text table and CSV rendering for the experiment binaries.

use std::fmt::Write as _;

/// Renders an aligned text table. The first row is treated as the header.
pub fn render(rows: &[Vec<String>]) -> String {
    if rows.is_empty() {
        return String::new();
    }
    let cols = rows.iter().map(Vec::len).max().unwrap_or(0);
    let mut widths = vec![0usize; cols];
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.chars().count());
        }
    }
    let mut out = String::new();
    for (ri, row) in rows.iter().enumerate() {
        for (i, cell) in row.iter().enumerate() {
            let pad = widths[i] - cell.chars().count();
            let _ = write!(out, "{}{}", cell, " ".repeat(pad));
            if i + 1 < row.len() {
                out.push_str("  ");
            }
        }
        out.push('\n');
        if ri == 0 {
            let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
            out.push_str(&"-".repeat(total));
            out.push('\n');
        }
    }
    out
}

/// Renders rows as CSV (naive quoting: commas in cells are replaced).
pub fn render_csv(rows: &[Vec<String>]) -> String {
    rows.iter()
        .map(|row| {
            row.iter()
                .map(|c| c.replace(',', ";"))
                .collect::<Vec<_>>()
                .join(",")
        })
        .collect::<Vec<_>>()
        .join("\n")
        + "\n"
}

/// Formats a duration in seconds the way the paper's Table 3 does: sub-second
/// values with two significant decimals, larger values with fewer.
pub fn fmt_secs(s: f64) -> String {
    if s < 0.000_1 {
        "<0.0001".to_string()
    } else if s < 1.0 {
        format!("{s:.4}")
    } else if s < 100.0 {
        format!("{s:.2}")
    } else {
        format!("{s:.0}")
    }
}

/// Formats a ratio like `1552x`.
pub fn fmt_speedup(r: f64) -> String {
    if r >= 100.0 {
        format!("{r:.0}x")
    } else {
        format!("{r:.1}x")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<Vec<String>> {
        vec![
            vec!["name".into(), "k".into(), "time".into()],
            vec!["graph-a".into(), "1".into(), "0.50".into()],
            vec!["g".into(), "10".into(), "3600".into()],
        ]
    }

    #[test]
    fn render_aligns_columns() {
        let out = render(&rows());
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4, "header + rule + 2 rows");
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // All non-rule lines have equal visible width for the first column.
        assert_eq!(lines[2].find("1"), lines[0].find("k"));
    }

    #[test]
    fn csv_shape() {
        let csv = render_csv(&rows());
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("name,k,time\n"));
    }

    #[test]
    fn seconds_formatting() {
        assert_eq!(fmt_secs(0.00005), "<0.0001");
        assert_eq!(fmt_secs(0.5), "0.5000");
        assert_eq!(fmt_secs(12.345), "12.35");
        assert_eq!(fmt_secs(1234.0), "1234");
    }

    #[test]
    fn speedup_formatting() {
        assert_eq!(fmt_speedup(1552.0), "1552x");
        assert_eq!(fmt_speedup(3.25), "3.2x");
    }
}
