//! **Table 2**: number of solved instances per collection and k for kDC,
//! KDBB-like and MADEC-like, within a per-instance time limit.
//!
//! Paper shape to reproduce: kDC ≥ KDBB ≥ MADEC+p for every k, with the gap
//! widening as k grows (MADEC collapses for k ≥ 10).
//!
//! Usage: `table2 [--quick] [--limit <seconds>]` (default limit 3 s).

use kdc_bench::collections::{all_collections, Scale};
use kdc_bench::runner::{cross_check_sizes, run_matrix, solved_count, table2_algos};
use kdc_bench::table;

fn main() {
    let scale = Scale::from_args();
    let limit = kdc_bench::runner::limit_from_args(3.0);
    let threads = kdc_bench::runner::default_threads();
    let ks = [1usize, 3, 5, 10, 15, 20];
    let algos = table2_algos();

    println!(
        "Table 2 — #solved instances (limit {:.2}s per instance, {} threads, scale {:?})\n",
        limit.as_secs_f64(),
        threads,
        scale
    );

    for collection in all_collections(scale) {
        eprintln!(
            "[table2] running {} ({} instances)…",
            collection.name,
            collection.instances.len()
        );
        let results = run_matrix(&collection, &algos, &ks, limit, threads);
        let issues = cross_check_sizes(&results);
        assert!(issues.is_empty(), "solvers disagree: {issues:?}");

        let mut rows = vec![{
            let mut h = vec![format!(
                "{} ({})",
                collection.name,
                collection.instances.len()
            )];
            h.extend(algos.iter().map(|a| a.name.to_string()));
            h
        }];
        for &k in &ks {
            let mut row = vec![format!("k = {k}")];
            for algo in &algos {
                row.push(solved_count(&results, algo.name, k, limit).to_string());
            }
            rows.push(row);
        }
        println!("{}", table::render(&rows));
    }
}
