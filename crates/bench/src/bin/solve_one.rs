//! Solve a single instance with any preset and print detailed statistics.
//! Debugging/profiling companion for the table binaries.
//!
//! Usage:
//!
//! ```text
//! solve_one gnp:<n>:<p> <k> [preset] [limit_secs]
//! solve_one community:<c>:<s>:<pin>:<pout> <k> [preset]
//! solve_one <path/to/graph-file> <k> [preset]
//! ```
//!
//! Presets: kdc (default), kdc_t, no_ub1, no_rr34, no_ub1_rr34, degen,
//! kdbb, madec.

use kdc::SolverConfig;
use kdc_api::{Budget, Options, Query, Session};
use kdc_graph::{gen, io, Graph};
use std::time::{Duration, Instant};

fn preset(name: &str) -> SolverConfig {
    match name {
        "kdc" => SolverConfig::kdc(),
        "kdc_t" => SolverConfig::kdc_t(),
        "no_ub1" => SolverConfig::without_ub1(),
        "no_rr34" => SolverConfig::without_rr3_rr4(),
        "no_ub1_rr34" => SolverConfig::without_ub1_rr3_rr4(),
        "degen" => SolverConfig::degen(),
        "kdbb" => SolverConfig::kdbb_like(),
        "madec" => SolverConfig::madec_like(),
        other => panic!("unknown preset {other:?}"),
    }
}

fn load(spec: &str) -> Graph {
    if let Some(rest) = spec.strip_prefix("gnp:") {
        let parts: Vec<&str> = rest.split(':').collect();
        let n: usize = parts[0].parse().expect("n");
        let p: f64 = parts[1].parse().expect("p");
        return gen::gnp(n, p, &mut gen::seeded_rng(0xDEB));
    }
    if let Some(rest) = spec.strip_prefix("community:") {
        let parts: Vec<&str> = rest.split(':').collect();
        return gen::community(
            &gen::CommunityParams {
                communities: parts[0].parse().expect("c"),
                community_size: parts[1].parse().expect("s"),
                p_in: parts[2].parse().expect("pin"),
                p_out: parts[3].parse().expect("pout"),
            },
            &mut gen::seeded_rng(0xDEB),
        );
    }
    io::read_graph(std::path::Path::new(spec)).expect("readable graph file")
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let spec = args.get(1).expect("graph spec");
    let k: usize = args.get(2).expect("k").parse().expect("k");
    let preset_name = args.get(3).map(String::as_str).unwrap_or("kdc");
    let limit = args.get(4).and_then(|a| a.parse::<f64>().ok());

    let g = load(spec);
    println!(
        "graph: n = {}, m = {}, density = {:.4}",
        g.n(),
        g.m(),
        g.density()
    );

    // The measured path is the served path: drive the same kdc_api Session
    // the CLI and the daemon use. Ablation presets beyond the public name
    // table ride in as explicit (non-memoized) configurations.
    let cfg = preset(preset_name);
    let session = Session::new(g);
    let budget = Budget {
        time_limit: limit.map(Duration::from_secs_f64),
        ..Budget::default()
    };
    let t0 = Instant::now();
    let sol = session
        .run(&Query::Solve { k }, &budget, &Options::custom(cfg))
        .expect("session solve");
    let elapsed = t0.elapsed();

    println!("preset {preset_name}, k = {k}");
    println!(
        "size = {}, status = {:?}, time = {:.4}s",
        sol.size(),
        sol.status,
        elapsed.as_secs_f64()
    );
    let s = &sol.stats;
    println!(
        "initial = {}, reduced n0 = {}, m0 = {}",
        s.initial_solution_size, s.preprocessed_n, s.preprocessed_m
    );
    println!(
        "nodes = {}, leaves = {}, depth = {}, bound prunes = {} (ub1-only {})",
        s.nodes, s.leaves, s.max_depth, s.bound_prunes, s.ub1_prunes
    );
    println!(
        "rr1 = {}, rr2 = {}, rr3 = {}, rr4 = {}, rr5 = {}, S-prunes = {}",
        s.rr1_removals,
        s.rr2_additions,
        s.rr3_removals,
        s.rr4_removals,
        s.rr5_removals,
        s.s_vertex_prunes
    );
}
