//! **Table 3**: per-instance processing time of kDC, kDC/RR3&4, kDC/UB1,
//! kDC-Degen and KDBB on the *large* facebook-like graphs, for
//! k ∈ {1, 3, 5, 10}, plus the average speedup of kDC over KDBB.
//!
//! Paper shape: kDC is consistently fastest (the paper reports kDC ~10³×
//! faster than KDBB on average); ablations sit between kDC and KDBB, with
//! kDC-Degen worst at small k.
//!
//! Usage: `table3 [--quick] [--limit <seconds>]` (default limit 30 s — high
//! enough for KDBB to finish on several instances, so the speedup statistic
//! has co-solved cells).

use kdc_bench::collections::{facebook_like, Collection, Scale};
use kdc_bench::runner::{ablation_algos, cross_check_sizes, run_matrix};
use kdc_bench::table;

fn main() {
    let scale = Scale::from_args();
    let limit = kdc_bench::runner::limit_from_args(30.0);
    let threads = kdc_bench::runner::default_threads();
    let ks = [1usize, 3, 5, 10];
    let algos = ablation_algos();

    // The paper's Table 3 restricts to the 41 Facebook graphs with more than
    // 15k vertices; at our synthetic scale the analogue is n ≥ 800.
    let full = facebook_like(scale);
    let min_n = if scale == Scale::Quick { 0 } else { 800 };
    let collection = Collection {
        name: "facebook-large",
        instances: full
            .instances
            .into_iter()
            .filter(|i| i.graph.n() >= min_n)
            .collect(),
    };

    println!(
        "Table 3 — processing time (s) on the {} large facebook-like graphs (limit {:.1}s)\n",
        collection.instances.len(),
        limit.as_secs_f64()
    );
    let results = run_matrix(&collection, &algos, &ks, limit, threads);
    let issues = cross_check_sizes(&results);
    assert!(issues.is_empty(), "solvers disagree: {issues:?}");

    for &k in &ks {
        let mut rows = vec![{
            let mut h = vec![format!("k = {k}"), "n".into(), "m".into()];
            h.extend(algos.iter().map(|a| a.name.to_string()));
            h
        }];
        for inst in &collection.instances {
            let mut row = vec![
                inst.name.clone(),
                inst.graph.n().to_string(),
                inst.graph.m().to_string(),
            ];
            for algo in &algos {
                let r = results
                    .iter()
                    .find(|r| r.instance == inst.name && r.algo == algo.name && r.k == k)
                    .expect("cell present");
                row.push(if r.solved {
                    table::fmt_secs(r.seconds)
                } else {
                    "-".to_string()
                });
            }
            rows.push(row);
        }
        println!("{}", table::render(&rows));

        // Geometric-mean speedup of kDC over KDBB on instances both solved.
        let mut log_sum = 0.0f64;
        let mut count = 0usize;
        for inst in &collection.instances {
            let a = results
                .iter()
                .find(|r| r.instance == inst.name && r.algo == "kDC" && r.k == k)
                .expect("kDC cell");
            let b = results
                .iter()
                .find(|r| r.instance == inst.name && r.algo == "KDBB" && r.k == k)
                .expect("KDBB cell");
            if a.solved && b.solved {
                let ratio = (b.seconds.max(1e-6)) / (a.seconds.max(1e-6));
                log_sum += ratio.ln();
                count += 1;
            }
        }
        if count > 0 {
            println!(
                "geometric-mean speedup of kDC over KDBB at k = {k}: {} (over {count} co-solved instances)\n",
                table::fmt_speedup((log_sum / count as f64).exp())
            );
        } else {
            println!("no co-solved instances for speedup at k = {k}\n");
        }
    }
}
