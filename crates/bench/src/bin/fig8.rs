//! **Figure 8**: #solved instances vs time limit on the facebook-like
//! collection, for kDC and its ablations plus KDBB, one panel per
//! k ∈ {1, 3, 5, 10, 15, 20}.
//!
//! Paper shape: as Figure 7, with UB1's advantage most visible here (social
//! communities produce large colour classes).
//!
//! Usage: `fig8 [--quick] [--limit <seconds>]` (default limit 3 s).

use kdc_bench::collections::{facebook_like, Scale};
use kdc_bench::figures::solved_vs_limit_report;
use kdc_bench::runner::{default_threads, limit_from_args};

fn main() {
    let scale = Scale::from_args();
    let limit = limit_from_args(3.0);
    let collection = facebook_like(scale);
    println!(
        "Figure 8 — #solved vs time limit, {} collection ({} instances, max limit {:.2}s)\n",
        collection.name,
        collection.instances.len(),
        limit.as_secs_f64()
    );
    solved_vs_limit_report(
        &collection,
        &[1, 3, 5, 10, 15, 20],
        limit,
        default_threads(),
    );
}
