//! **Table 6**: for how many graphs is the found maximum k-defective clique
//! an *extension of a maximum clique* (i.e. contains some maximum clique of
//! the graph)?
//!
//! Paper shape: most (~60–100%) of the solved instances extend a maximum
//! clique, with the fraction decreasing as k grows.
//!
//! Usage: `table6 [--quick] [--limit <seconds>]` (default limit 3 s).

use kdc::SolverConfig;
use kdc_baselines::max_clique_size;
use kdc_bench::collections::{all_collections, Scale};
use kdc_bench::runner::{default_threads, limit_from_args, map_instances, run_matrix, Algo};
use kdc_bench::table;

fn main() {
    let scale = Scale::from_args();
    let limit = limit_from_args(3.0);
    let threads = default_threads();
    let ks = [1usize, 3, 5, 10, 15, 20];

    println!(
        "Table 6 — #graphs whose max k-defective clique extends a maximum clique (limit {:.1}s)\n",
        limit.as_secs_f64()
    );
    for collection in all_collections(scale) {
        eprintln!("[table6] {} …", collection.name);
        // Maximum clique sizes via the time-limited solver at k = 0 (the
        // independent Tomita solver has no limit support and can stall on
        // the densest blocks); unsolved instances are skipped.
        let clique_sizes = map_instances(&collection, threads, |inst| {
            let cfg = SolverConfig::kdc().with_time_limit(limit);
            let sol = kdc::Solver::new(&inst.graph, 0, cfg).solve();
            sol.is_optimal().then(|| sol.size())
        });
        let algos = [Algo {
            name: "kDC",
            config: SolverConfig::kdc,
        }];
        let results = run_matrix(&collection, &algos, &ks, limit, threads);

        let mut rows = vec![vec![
            collection.name.to_string(),
            "extends max clique".into(),
            "#solved".into(),
        ]];
        for &k in &ks {
            let mut extends = 0usize;
            let mut solved = 0usize;
            for (i, inst) in collection.instances.iter().enumerate() {
                let Some(w) = clique_sizes[i] else { continue };
                let r = results
                    .iter()
                    .find(|r| r.instance == inst.name && r.k == k)
                    .expect("cell");
                if !r.solved {
                    continue;
                }
                solved += 1;
                // C extends a maximum clique iff C contains a clique of the
                // graph's maximum clique size.
                let (sub, _) = inst.graph.induced_subgraph(&r.vertices);
                if max_clique_size(&sub) == w {
                    extends += 1;
                }
            }
            rows.push(vec![
                format!("k = {k}"),
                extends.to_string(),
                solved.to_string(),
            ]);
        }
        println!("{}", table::render(&rows));
    }
}
