//! **§3.1.2**: the branching factors γ_k (kDC) and σ_k = γ_{2k} (MADEC+),
//! i.e. the bases of the `O*(γ_k^n)` vs `O*(σ_k^n)` time complexities.
//!
//! Paper values: γ_0..γ_5 ≈ 1.619, 1.840, 1.928, 1.966, 1.984, 1.992.
//!
//! Usage: `gamma_table [max_k]` (default 20).

use kdc::{gamma_k, sigma_k};
use kdc_bench::table;

fn main() {
    let max_k: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(20);

    println!("γ_k: largest real root of x^(k+3) − 2x^(k+2) + 1 = 0 (Theorem 3.5)\n");
    let mut rows = vec![vec![
        "k".to_string(),
        "γ_k (kDC)".into(),
        "σ_k = γ_2k (MADEC+)".into(),
        "γ_k^100 / σ_k^100".into(),
    ]];
    for k in 0..=max_k {
        let g = gamma_k(k);
        let s = sigma_k(k);
        rows.push(vec![
            k.to_string(),
            format!("{g:.6}"),
            format!("{s:.6}"),
            format!("{:.3e}", (g / s).powi(100)),
        ]);
    }
    println!("{}", table::render(&rows));
    println!("The last column shows kDC's asymptotic advantage on a 100-vertex instance.");
}
