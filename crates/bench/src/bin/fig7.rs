//! **Figure 7**: #solved instances vs time limit on the real-world-like
//! collection, for kDC and its ablations (kDC/RR3&4, kDC/UB1, kDC-Degen)
//! plus KDBB, one panel per k ∈ {1, 3, 5, 10, 15, 20}.
//!
//! Paper shape: kDC dominates at every limit; kDC-Degen lags at small
//! limits (it pays for the weaker initial solution), KDBB is far behind.
//!
//! Usage: `fig7 [--quick] [--limit <seconds>]` (default limit 3 s).

use kdc_bench::collections::{real_world_like, Scale};
use kdc_bench::figures::solved_vs_limit_report;
use kdc_bench::runner::{default_threads, limit_from_args};

fn main() {
    let scale = Scale::from_args();
    let limit = limit_from_args(3.0);
    let collection = real_world_like(scale);
    println!(
        "Figure 7 — #solved vs time limit, {} collection ({} instances, max limit {:.2}s)\n",
        collection.name,
        collection.instances.len(),
        limit.as_secs_f64()
    );
    solved_vs_limit_report(
        &collection,
        &[1, 3, 5, 10, 15, 20],
        limit,
        default_threads(),
    );
}
