//! **§3.2.1 tightness study**: how tight are UB1, Eq. (2), UB2 and UB3
//! relative to the true instance optimum?
//!
//! For random instances `(g, S)` (S grown greedily to the requested size),
//! each bound is compared against the exact maximum k-defective clique that
//! contains S, computed by brute force. Reported: mean over-estimation
//! factor (bound / optimum) — lower is tighter; UB1 must dominate Eq. (2).
//!
//! Also prints the paper's Figure 5 worked example (UB1 = 3 vs Eq. (2) = 11).
//!
//! Usage: `ub_tightness [--quick]`.

use kdc::probe::root_bounds;
use kdc_bench::collections::Scale;
use kdc_bench::table;
use kdc_graph::graph::{Graph, VertexId};
use kdc_graph::{gen, named};

/// Exact optimum of the instance `(g, S)`: the largest k-defective clique of
/// `g` containing all of `s`. Plain include/exclude enumeration.
fn instance_optimum(g: &Graph, s: &[VertexId], k: usize) -> usize {
    fn recurse(
        g: &Graph,
        k: usize,
        next: usize,
        missing: usize,
        current: &mut Vec<VertexId>,
        forced: &[bool],
        best: &mut usize,
    ) {
        let n = g.n();
        *best = (*best).max(current.len());
        if next == n || current.len() + (n - next) <= *best {
            return;
        }
        let v = next as VertexId;
        let add = current.iter().filter(|&&u| !g.has_edge(u, v)).count();
        if missing + add <= k {
            current.push(v);
            recurse(g, k, next + 1, missing + add, current, forced, best);
            current.pop();
        }
        if !forced[next] {
            recurse(g, k, next + 1, missing, current, forced, best);
        }
    }
    let mut forced = vec![false; g.n()];
    for &v in s {
        forced[v as usize] = true;
    }
    let mut best = 0;
    recurse(g, k, 0, 0, &mut Vec::new(), &forced, &mut best);
    best
}

fn main() {
    let scale = Scale::from_args();
    let trials = match scale {
        Scale::Quick => 20,
        Scale::Full => 200,
    };

    // The paper's worked example first.
    let (g5, s5) = named::figure5();
    let b5 = root_bounds(&g5, &s5, 3);
    println!(
        "Figure 5 example (k = 3): UB1 = {}, Eq.(2) = {}, UB3 = {}, optimum = {}\n",
        b5.ub1,
        b5.eq2,
        b5.ub3,
        instance_optimum(&g5, &s5, 3)
    );
    assert_eq!((b5.ub1, b5.eq2), (3, 11));

    println!("Mean bound/optimum over random instances (n = 16, lower = tighter):\n");
    let mut rows = vec![vec![
        "k".to_string(),
        "|S|".into(),
        "UB1".into(),
        "Eq.(2)".into(),
        "UB2".into(),
        "UB3".into(),
        "UB1 wins/ties".into(),
    ]];
    let mut seed = 10_000u64;
    for k in [1usize, 3, 5] {
        for s_target in [0usize, 2, 4] {
            let (mut r1, mut r2, mut r2b, mut r3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
            let mut ub2_count = 0usize;
            let mut wins = 0usize;
            let mut count = 0usize;
            while count < trials {
                seed += 1;
                let g = gen::gnp(16, 0.5, &mut gen::seeded_rng(seed));
                // Grow a feasible S greedily from vertex 0.
                let mut s: Vec<VertexId> = Vec::new();
                for v in g.vertices() {
                    if s.len() >= s_target {
                        break;
                    }
                    let mut cand = s.clone();
                    cand.push(v);
                    if g.is_k_defective_clique(&cand, k) {
                        s = cand;
                    }
                }
                if s.len() < s_target {
                    continue;
                }
                let opt = instance_optimum(&g, &s, k);
                if opt == 0 {
                    continue;
                }
                let b = root_bounds(&g, &s, k);
                assert!(
                    b.ub1 >= opt && b.eq2 >= opt && b.ub3 >= opt,
                    "unsound bound"
                );
                if let Some(u2) = b.ub2 {
                    assert!(u2 >= opt);
                    r2b += u2 as f64 / opt as f64;
                    ub2_count += 1;
                }
                r1 += b.ub1 as f64 / opt as f64;
                r2 += b.eq2 as f64 / opt as f64;
                r3 += b.ub3 as f64 / opt as f64;
                if b.ub1 <= b.eq2 && b.ub1 <= b.ub3 && b.ub1 <= b.ub2.unwrap_or(usize::MAX) {
                    wins += 1;
                }
                count += 1;
            }
            let c = count as f64;
            rows.push(vec![
                k.to_string(),
                s_target.to_string(),
                format!("{:.3}", r1 / c),
                format!("{:.3}", r2 / c),
                if ub2_count > 0 {
                    format!("{:.3}", r2b / ub2_count as f64)
                } else {
                    "-".into()
                },
                format!("{:.3}", r3 / c),
                format!("{}/{}", wins, count),
            ]);
        }
    }
    println!("{}", table::render(&rows));
}
