//! `bench-recovery`: the machine-readable baseline of the durable session
//! store's warm-restart path, written to `BENCH_8.json`.
//!
//! One case pair on the `planted-200-k3` snapshot instance: a cold solve
//! in a fresh session versus a *restart* — the proven state is persisted
//! through a real [`kdc_store::Store`] (snapshot on disk), then a new
//! session is rebuilt from a replay of that state dir and asked the same
//! query. The run itself asserts the durability contract — the recovered
//! memo answers without a search, byte-identical to the cold solve — and
//! gates the headline payoff: the warm path must re-explore fewer than
//! 50% of the cold solve's nodes (with an intact store it re-explores
//! zero; a silent recovery failure falls cold and trips the gate).
//! `--check` additionally compares node counts against `BENCH_8.json`
//! with the usual 5% tolerance; wall-clock is recorded for trend reading
//! but never gated, because CI hardware varies.
//!
//! Usage: `bench-recovery [--out PATH] [--check [PATH]] [--reps N]`.

use kdc_api::{Outcome, Session};
use kdc_graph::Graph;
use kdc_service::{export_graph_state, import_graph_state};
use kdc_store::Store;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Default snapshot path, relative to the invocation directory (the
/// workspace root under `cargo run`).
const DEFAULT_PATH: &str = "BENCH_8.json";

/// Allowed relative node-count growth before `--check` fails.
const NODE_TOLERANCE: f64 = 0.05;

/// The warm restart must re-explore strictly fewer than this fraction of
/// the cold solve's nodes — the headline durability guarantee.
const REEXPLORE_CEILING: f64 = 0.50;

/// The benchmarked defect budget.
const K: usize = 3;

/// One measured case: a name plus ordered numeric metrics.
struct CaseResult {
    name: String,
    median_ns: u128,
    runs: usize,
    metrics: Vec<(String, u64)>,
}

/// Runs `f` `reps` times and returns the median duration in nanoseconds.
fn median_ns(reps: usize, mut f: impl FnMut()) -> u128 {
    let mut samples: Vec<u128> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Scratch directory for this benchmark process.
fn scratch() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("kdc_bench_recovery_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// One full warm restart: replay the state dir, rebuild a session from the
/// recovered state, and re-ask the benchmarked query. Returns the outcome
/// plus how many witnesses/memos the import accepted.
fn warm_restart(state_dir: &Path, g: &Graph) -> (Outcome, u64, u64) {
    let (_store, recovered) = Store::open(state_dir).expect("reopen state dir");
    let gs = recovered
        .iter()
        .find(|gs| gs.name == "bench")
        .expect("persisted graph state survived the restart");
    let session = Session::new(g.clone());
    let (witnesses, memos) = session.import_state(&import_graph_state(gs));
    (session.solve(K), witnesses, memos)
}

fn collect(reps: usize) -> Vec<CaseResult> {
    let (name, g, _) = kdc_bench::collections::planted_snapshot_cases().remove(0);
    let dir = scratch();
    let state_dir = dir.join("state");
    let graph_path = dir.join("bench.clq");
    kdc_graph::io::write_dimacs(&g, &graph_path).expect("write graph file");
    let content_hash =
        kdc_store::content_hash(&std::fs::read(&graph_path).expect("reread graph file"));

    // Cold reference: a fresh session proves the query from nothing.
    let cold_session = Session::new(g.clone());
    let reference = cold_session.solve(K);
    assert!(
        reference.is_optimal(),
        "{name}: cold solve must prove k={K}"
    );
    let cold_nodes = reference.stats.nodes;
    let cold_median = median_ns(reps, || {
        let again = Session::new(g.clone()).solve(K);
        assert_eq!(
            again.stats.nodes, cold_nodes,
            "{name}: cold node counts must be deterministic"
        );
    });

    // Persist the proven state the way the daemon would — one snapshot in
    // a real store — then restart from disk: replay, import, re-solve.
    let state = cold_session.export_state();
    let gs = export_graph_state(
        "bench",
        &graph_path.display().to_string(),
        content_hash,
        &state,
    );
    {
        let (store, _) = Store::open(&state_dir).expect("create state dir");
        store
            .compact(std::slice::from_ref(&gs))
            .expect("write snapshot");
    }

    let (first, witnesses, memos) = warm_restart(&state_dir, &g);
    assert!(
        witnesses >= 1 && memos >= 1,
        "{name}: restart must recover the persisted state \
         (witnesses={witnesses} memos={memos})"
    );
    assert_eq!(first.status, reference.status, "{name}: status parity");
    assert_eq!(
        first.best(),
        reference.best(),
        "{name}: warm answer must be byte-identical to the cold solve"
    );
    // A memo hit replays the original proof's stats; the restarted search
    // itself explored nothing.
    let warm_reexplored = if first.cache.result_memo_hit {
        0
    } else {
        first.stats.nodes
    };
    let ceiling = ((cold_nodes as f64) * REEXPLORE_CEILING) as u64;
    assert!(
        warm_reexplored < ceiling.max(1),
        "{name}: warm restart re-explored {warm_reexplored} nodes, \
         >= {REEXPLORE_CEILING:.0}% of the {cold_nodes} cold nodes"
    );
    let warm_median = median_ns(reps, || {
        let (out, _, _) = warm_restart(&state_dir, &g);
        assert!(
            out.cache.result_memo_hit,
            "{name}: the recovered memo must answer the warm solve"
        );
    });

    let size = reference.best().map_or(0, |w| w.len()) as u64;
    vec![
        CaseResult {
            name: format!("warm/{name}/restart-solve-k{K}"),
            median_ns: warm_median,
            runs: reps,
            metrics: vec![
                ("nodes".to_string(), warm_reexplored),
                ("cold_nodes".to_string(), cold_nodes),
                ("recovered_witnesses".to_string(), witnesses),
                ("recovered_memos".to_string(), memos),
                (format!("size_k{K}"), size),
            ],
        },
        CaseResult {
            name: format!("cold/{name}/solve-k{K}"),
            median_ns: cold_median,
            runs: reps,
            metrics: vec![
                ("nodes".to_string(), cold_nodes),
                (format!("size_k{K}"), size),
            ],
        },
    ]
}

fn render(cases: &[CaseResult]) -> String {
    let mut s = String::new();
    s.push_str("{\n  \"bench\": \"BENCH_8\",\n  \"schema\": 1,\n  \"cases\": [\n");
    for (i, c) in cases.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"median_ns\": {}, \"runs\": {}",
            c.name, c.median_ns, c.runs
        ));
        for (k, v) in &c.metrics {
            s.push_str(&format!(", \"{k}\": {v}"));
        }
        s.push_str(if i + 1 == cases.len() { "}\n" } else { "},\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

/// Extracts a `"key": value` numeric field from a one-case JSON line.
fn field_u64(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\": ");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts the `"name"` field from a one-case JSON line.
fn field_name(line: &str) -> Option<String> {
    let pat = "\"name\": \"";
    let at = line.find(pat)? + pat.len();
    let rest = &line[at..];
    Some(rest[..rest.find('"')?].to_string())
}

/// `--check`: re-measure and compare against the committed snapshot. Node
/// counts gate; wall-clock deltas are only reported. The durability
/// assertions (memo hit, <50% re-exploration) already ran in [`collect`].
fn check(baseline_path: &str, cases: &[CaseResult]) -> Result<(), String> {
    let text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read baseline {baseline_path}: {e}"))?;
    let baseline: Vec<(String, u128, Option<u64>)> = text
        .lines()
        .filter_map(|line| {
            let name = field_name(line)?;
            let median = field_u64(line, "median_ns")? as u128;
            Some((name, median, field_u64(line, "nodes")))
        })
        .collect();
    if baseline.is_empty() {
        return Err(format!("baseline {baseline_path} contains no cases"));
    }
    let mut failures = Vec::new();
    for (name, base_ns, base_nodes) in &baseline {
        let Some(case) = cases.iter().find(|c| &c.name == name) else {
            failures.push(format!("case {name} missing from this run"));
            continue;
        };
        let ratio = case.median_ns as f64 / *base_ns as f64;
        println!(
            "{name}: wall {:.2}x of baseline ({} ns vs {} ns)",
            ratio, case.median_ns, base_ns
        );
        let now = case
            .metrics
            .iter()
            .find(|(k, _)| k == "nodes")
            .map(|&(_, v)| v);
        if let (Some(base), Some(now)) = (*base_nodes, now) {
            let limit = (base as f64 * (1.0 + NODE_TOLERANCE)).floor() as u64;
            if now > limit {
                failures.push(format!(
                    "case {name}: nodes regressed {base} -> {now} (> {:.0}% tolerance)",
                    NODE_TOLERANCE * 100.0
                ));
            } else {
                println!("{name}: nodes {now} (baseline {base}) ok");
            }
        }
    }
    if failures.is_empty() {
        println!("bench-recovery check passed ({} cases)", baseline.len());
        Ok(())
    } else {
        Err(failures.join("\n"))
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = DEFAULT_PATH.to_string();
    let mut check_mode = false;
    let mut reps = 5usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                out = args.get(i).expect("--out needs a path").clone();
            }
            "--check" => {
                check_mode = true;
                if let Some(path) = args.get(i + 1) {
                    if !path.starts_with("--") {
                        i += 1;
                        out = path.clone();
                    }
                }
            }
            "--reps" => {
                i += 1;
                reps = args
                    .get(i)
                    .and_then(|r| r.parse().ok())
                    .expect("--reps needs a positive integer");
                assert!(reps > 0, "--reps needs a positive integer");
            }
            other => panic!("unknown argument {other:?} (see --out/--check/--reps)"),
        }
        i += 1;
    }

    let cases = collect(reps);
    if check_mode {
        if let Err(e) = check(&out, &cases) {
            eprintln!("bench-recovery check FAILED:\n{e}");
            std::process::exit(1);
        }
    } else {
        let text = render(&cases);
        std::fs::write(&out, &text).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
        print!("{text}");
        println!("wrote {out} ({} cases)", cases.len());
    }
}
