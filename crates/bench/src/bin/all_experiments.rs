//! Runs every experiment binary in sequence, forwarding `--quick` /
//! `--limit` flags. Convenience wrapper for regenerating EXPERIMENTS.md.
//!
//! Usage: `all_experiments [--quick] [--limit <seconds>]`.

use std::process::Command;

const BINARIES: &[&str] = &[
    "gamma_table",
    "tree_size",
    "ub_tightness",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "table7",
    "fig7",
    "fig8",
    "rule_stats",
    "ub4_ablation",
];

fn main() {
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir");
    let forwarded: Vec<String> = std::env::args().skip(1).collect();

    for bin in BINARIES {
        // Table 3 needs a longer limit than the solved-count experiments so
        // that KDBB finishes on some instances (for the speedup statistic);
        // it keeps its own default unless the caller passed only --quick.
        let args: Vec<String> = if *bin == "table3" {
            forwarded
                .iter()
                .filter(|a| *a == "--quick")
                .cloned()
                .collect()
        } else {
            forwarded.clone()
        };
        println!("\n=============================================================");
        println!("== {bin} {}", args.join(" "));
        println!("=============================================================\n");
        let status = Command::new(dir.join(bin))
            .args(&args)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        assert!(status.success(), "{bin} failed with {status}");
    }
    println!("\nAll experiments completed.");
}
