//! **Lemma 3.4 / Theorem 3.5 validation**: empirical search-tree leaf counts
//! of kDC-t against the proven bound γ_k^n.
//!
//! For every (n, p, k) cell, random G(n, p) instances are solved with the
//! theory-only configuration (BR + RR1 + RR2, no bounds or lb-based rules)
//! and the worst observed leaves/γ_k^n ratio is reported — it must stay ≤ 1.
//!
//! Usage: `tree_size [--quick]`.

use kdc::{gamma_k, Solver, SolverConfig};
use kdc_bench::collections::Scale;
use kdc_bench::table;
use kdc_graph::gen;

fn main() {
    let scale = Scale::from_args();
    let (ns, trials): (&[usize], usize) = match scale {
        Scale::Quick => (&[10, 14], 3),
        Scale::Full => (&[10, 14, 18, 22], 5),
    };
    let ks = [0usize, 1, 2, 3, 5];
    let ps = [0.3f64, 0.5, 0.8];

    println!("Search-tree size of kDC-t vs the γ_k^n bound of Lemma 3.4\n");
    let mut rows = vec![vec![
        "n".to_string(),
        "k".into(),
        "γ_k^n".into(),
        "max leaves".into(),
        "max nodes".into(),
        "worst leaves/γ_k^n".into(),
    ]];
    let mut rng_seed = 1u64;
    for &n in ns {
        for &k in &ks {
            let bound = gamma_k(k).powi(n as i32);
            let mut max_leaves = 0u64;
            let mut max_nodes = 0u64;
            let mut worst_ratio = 0.0f64;
            for &p in &ps {
                for _ in 0..trials {
                    rng_seed += 1;
                    let g = gen::gnp(n, p, &mut gen::seeded_rng(rng_seed));
                    let sol = Solver::new(&g, k, SolverConfig::kdc_t()).solve();
                    assert!(sol.is_optimal());
                    max_leaves = max_leaves.max(sol.stats.leaves);
                    max_nodes = max_nodes.max(sol.stats.nodes);
                    worst_ratio = worst_ratio.max(sol.stats.leaves as f64 / bound);
                }
            }
            assert!(
                worst_ratio <= 1.0,
                "Lemma 3.4 violated at n={n}, k={k}: ratio {worst_ratio}"
            );
            rows.push(vec![
                n.to_string(),
                k.to_string(),
                format!("{bound:.1}"),
                max_leaves.to_string(),
                max_nodes.to_string(),
                format!("{worst_ratio:.5}"),
            ]);
        }
    }
    println!("{}", table::render(&rows));
    println!("All ratios ≤ 1: the implementation respects the proven worst case.");
}
