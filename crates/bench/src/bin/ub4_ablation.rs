//! **UB4 ablation** — the paper sketches an RR4-derived upper bound in
//! §3.2.2 but declines to use it ("computing this upper bound is
//! time-consuming"). This harness quantifies that design decision: search
//! nodes and wall time of kDC with and without UB4.
//!
//! Expected shape (validating the paper's choice): UB4 shrinks trees only
//! marginally beyond UB1–UB3 while adding O(m) work at every node, so
//! wall time rarely improves.
//!
//! Usage: `ub4_ablation [--quick] [--limit <seconds>]`.

use kdc::{Solver, SolverConfig};
use kdc_bench::collections::{dimacs_like, facebook_like, Scale};
use kdc_bench::runner::{default_threads, limit_from_args, map_instances};
use kdc_bench::table;

fn main() {
    let scale = Scale::from_args();
    let limit = limit_from_args(3.0);
    let threads = default_threads();
    let ks = [1usize, 5, 10];

    println!(
        "UB4 ablation — kDC vs kDC+UB4 (limit {:.1}s per solve)\n",
        limit.as_secs_f64()
    );
    for collection in [facebook_like(scale), dimacs_like(scale)] {
        eprintln!("[ub4] {} …", collection.name);
        let mut rows = vec![vec![
            collection.name.to_string(),
            "co-solved".into(),
            "nodes (kDC)".into(),
            "nodes (+UB4)".into(),
            "node ratio".into(),
            "time ratio (+UB4 / kDC)".into(),
        ]];
        for &k in &ks {
            let cells = map_instances(&collection, threads, |inst| {
                let base_cfg = SolverConfig::kdc().with_time_limit(limit);
                let ub4_cfg = SolverConfig::kdc().with_ub4().with_time_limit(limit);
                let t0 = std::time::Instant::now();
                let a = Solver::new(&inst.graph, k, base_cfg).solve();
                let ta = t0.elapsed().as_secs_f64();
                let t1 = std::time::Instant::now();
                let b = Solver::new(&inst.graph, k, ub4_cfg).solve();
                let tb = t1.elapsed().as_secs_f64();
                (a.is_optimal() && b.is_optimal()).then(|| {
                    assert_eq!(a.size(), b.size(), "UB4 changed the optimum!");
                    (a.stats.nodes, b.stats.nodes, ta, tb)
                })
            });
            let solved: Vec<_> = cells.into_iter().flatten().collect();
            let (mut na, mut nb, mut ra, mut rb) = (0u64, 0u64, 0.0f64, 0.0f64);
            for &(a, b, ta, tb) in &solved {
                na += a;
                nb += b;
                ra += ta;
                rb += tb;
            }
            rows.push(vec![
                format!("k = {k}"),
                solved.len().to_string(),
                na.to_string(),
                nb.to_string(),
                if na > 0 {
                    format!("{:.3}", nb as f64 / na as f64)
                } else {
                    "-".into()
                },
                if ra > 0.0 {
                    format!("{:.2}", rb / ra.max(1e-9))
                } else {
                    "-".into()
                },
            ]);
        }
        println!("{}", table::render(&rows));
    }
}
