//! `bench-batch`: the machine-readable baseline of the batched-execution
//! layer, written to `BENCH_7.json`.
//!
//! One case: the `planted-200-k3` snapshot instance swept as a single
//! batch over `k = 0..=4` (one shared universe, one reducer schedule,
//! cross-`k` witness seeds and upper-bound caps) versus five fresh-session
//! cold solves of the same sub-queries. The run itself asserts the batch
//! contract — answers byte-identical to the cold solves, at least one
//! `batch_ctcp_shares` and one `batch_witness_seeds`, and batch nodes
//! below 70% of the summed cold nodes — so a silent loss of sharing fails
//! even without a
//! committed baseline. `--check` additionally gates both node counts
//! against `BENCH_7.json` with the usual 5% tolerance; wall-clock is
//! recorded for trend reading but never gated, because CI hardware varies.
//!
//! Usage: `bench-batch [--out PATH] [--check [PATH]] [--reps N]`.

use kdc_api::{Budget, Options, Outcome, Query, Session, SubQuery};
use kdc_graph::Graph;
use std::time::Instant;

/// Default snapshot path, relative to the invocation directory (the
/// workspace root under `cargo run`).
const DEFAULT_PATH: &str = "BENCH_7.json";

/// Allowed relative node-count growth before `--check` fails.
const NODE_TOLERANCE: f64 = 0.05;

/// The batch must explore strictly fewer than this fraction of the nodes
/// the summed cold solves explore — the headline sharing guarantee.
const SHARING_CEILING: f64 = 0.70;

/// The swept defect budgets.
const K_SWEEP: std::ops::RangeInclusive<usize> = 0..=4;

/// One measured case: a name plus ordered numeric metrics.
struct CaseResult {
    name: String,
    median_ns: u128,
    runs: usize,
    metrics: Vec<(String, u64)>,
}

/// Runs `f` `reps` times and returns the median duration in nanoseconds.
fn median_ns(reps: usize, mut f: impl FnMut()) -> u128 {
    let mut samples: Vec<u128> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// One fresh-session cold solve — the unshared reference execution.
fn cold_solve(g: &Graph, k: usize) -> Outcome {
    Session::new(g.clone())
        .run(
            &Query::Solve { k },
            &Budget::default(),
            &Options::preset("kdc").unwrap(),
        )
        .expect("cold solve")
}

fn collect(reps: usize) -> Vec<CaseResult> {
    let (name, g, _) = kdc_bench::collections::planted_snapshot_cases().remove(0);
    let subs: Vec<SubQuery> = K_SWEEP.map(SubQuery::solve).collect();

    // Reference run: per-k cold solves, summed.
    let reference: Vec<Outcome> = K_SWEEP.map(|k| cold_solve(&g, k)).collect();
    let cold_nodes: u64 = reference.iter().map(|o| o.stats.nodes).sum();
    let cold_median = median_ns(reps, || {
        for k in K_SWEEP {
            let out = cold_solve(&g, k);
            assert_eq!(
                out.stats.nodes, reference[k].stats.nodes,
                "{name}: cold node counts must be deterministic"
            );
        }
    });

    // Batched run: one fresh session sweeping the same sub-queries.
    let batch = Session::new(g.clone())
        .run_batch(&subs, &Budget::default(), &Options::preset("kdc").unwrap())
        .expect("batch sweep");
    for (k, (got, want)) in batch.outcomes.iter().zip(&reference).enumerate() {
        assert_eq!(got.status, want.status, "{name} k={k}: status parity");
        assert_eq!(
            got.witnesses, want.witnesses,
            "{name} k={k}: batch answers must be byte-identical to cold solves"
        );
    }
    assert!(
        batch.batch_ctcp_shares >= 1,
        "{name}: sweep must share at least one reducer pass"
    );
    assert!(
        batch.batch_witness_seeds >= 1,
        "{name}: sweep must seed at least one lower bound from a witness"
    );
    let batch_nodes = batch.total_nodes();
    let ceiling = (cold_nodes as f64 * SHARING_CEILING) as u64;
    assert!(
        batch_nodes < ceiling,
        "{name}: batch explored {batch_nodes} nodes, \
         >= {SHARING_CEILING:.0}% of the {cold_nodes} summed cold nodes"
    );
    let batch_median = median_ns(reps, || {
        let again = Session::new(g.clone())
            .run_batch(&subs, &Budget::default(), &Options::preset("kdc").unwrap())
            .expect("batch sweep");
        assert_eq!(
            again.total_nodes(),
            batch_nodes,
            "{name}: batch node counts must be deterministic"
        );
    });

    let sizes: Vec<(String, u64)> = reference
        .iter()
        .enumerate()
        .map(|(k, o)| (format!("size_k{k}"), o.best().map_or(0, |w| w.len()) as u64))
        .collect();
    let mut batch_metrics = vec![
        ("nodes".to_string(), batch_nodes),
        ("cold_nodes".to_string(), cold_nodes),
        ("ctcp_shares".to_string(), batch.batch_ctcp_shares),
        ("witness_seeds".to_string(), batch.batch_witness_seeds),
        ("memo_dedups".to_string(), batch.batch_memo_dedups),
    ];
    batch_metrics.extend(sizes.iter().cloned());
    let mut cold_metrics = vec![("nodes".to_string(), cold_nodes)];
    cold_metrics.extend(sizes);
    vec![
        CaseResult {
            name: format!("batch/{name}/sweep-k0-4"),
            median_ns: batch_median,
            runs: reps,
            metrics: batch_metrics,
        },
        CaseResult {
            name: format!("cold/{name}/sweep-k0-4"),
            median_ns: cold_median,
            runs: reps,
            metrics: cold_metrics,
        },
    ]
}

fn render(cases: &[CaseResult]) -> String {
    let mut s = String::new();
    s.push_str("{\n  \"bench\": \"BENCH_7\",\n  \"schema\": 1,\n  \"cases\": [\n");
    for (i, c) in cases.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"median_ns\": {}, \"runs\": {}",
            c.name, c.median_ns, c.runs
        ));
        for (k, v) in &c.metrics {
            s.push_str(&format!(", \"{k}\": {v}"));
        }
        s.push_str(if i + 1 == cases.len() { "}\n" } else { "},\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

/// Extracts a `"key": value` numeric field from a one-case JSON line.
fn field_u64(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\": ");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts the `"name"` field from a one-case JSON line.
fn field_name(line: &str) -> Option<String> {
    let pat = "\"name\": \"";
    let at = line.find(pat)? + pat.len();
    let rest = &line[at..];
    Some(rest[..rest.find('"')?].to_string())
}

/// `--check`: re-measure and compare against the committed snapshot. Node
/// counts gate; wall-clock deltas are only reported. The sharing-contract
/// assertions already ran inside [`collect`].
fn check(baseline_path: &str, cases: &[CaseResult]) -> Result<(), String> {
    let text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read baseline {baseline_path}: {e}"))?;
    let baseline: Vec<(String, u128, Option<u64>)> = text
        .lines()
        .filter_map(|line| {
            let name = field_name(line)?;
            let median = field_u64(line, "median_ns")? as u128;
            Some((name, median, field_u64(line, "nodes")))
        })
        .collect();
    if baseline.is_empty() {
        return Err(format!("baseline {baseline_path} contains no cases"));
    }
    let mut failures = Vec::new();
    for (name, base_ns, base_nodes) in &baseline {
        let Some(case) = cases.iter().find(|c| &c.name == name) else {
            failures.push(format!("case {name} missing from this run"));
            continue;
        };
        let ratio = case.median_ns as f64 / *base_ns as f64;
        println!(
            "{name}: wall {:.2}x of baseline ({} ns vs {} ns)",
            ratio, case.median_ns, base_ns
        );
        let now = case
            .metrics
            .iter()
            .find(|(k, _)| k == "nodes")
            .map(|&(_, v)| v);
        if let (Some(base), Some(now)) = (*base_nodes, now) {
            let limit = (base as f64 * (1.0 + NODE_TOLERANCE)).floor() as u64;
            if now > limit {
                failures.push(format!(
                    "case {name}: nodes regressed {base} -> {now} (> {:.0}% tolerance)",
                    NODE_TOLERANCE * 100.0
                ));
            } else {
                println!("{name}: nodes {now} (baseline {base}) ok");
            }
        }
    }
    if failures.is_empty() {
        println!("bench-batch check passed ({} cases)", baseline.len());
        Ok(())
    } else {
        Err(failures.join("\n"))
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = DEFAULT_PATH.to_string();
    let mut check_mode = false;
    let mut reps = 5usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                out = args.get(i).expect("--out needs a path").clone();
            }
            "--check" => {
                check_mode = true;
                if let Some(path) = args.get(i + 1) {
                    if !path.starts_with("--") {
                        i += 1;
                        out = path.clone();
                    }
                }
            }
            "--reps" => {
                i += 1;
                reps = args
                    .get(i)
                    .and_then(|r| r.parse().ok())
                    .expect("--reps needs a positive integer");
                assert!(reps > 0, "--reps needs a positive integer");
            }
            other => panic!("unknown argument {other:?} (see --out/--check/--reps)"),
        }
        i += 1;
    }

    let cases = collect(reps);
    if check_mode {
        if let Err(e) = check(&out, &cases) {
            eprintln!("bench-batch check FAILED:\n{e}");
            std::process::exit(1);
        }
    } else {
        let text = render(&cases);
        std::fs::write(&out, &text).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
        print!("{text}");
        println!("wrote {out} ({} cases)", cases.len());
    }
}
