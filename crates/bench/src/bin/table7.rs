//! **Table 7**: average percentage of vertices in the found maximum
//! k-defective clique that are *not fully connected* inside it (have at
//! least one missing neighbour).
//!
//! Paper shape: the percentage grows with k (≈19% at k = 1 to ≈63% at
//! k = 20 on the real-world collection) — the missing-edge budget is spent
//! broadly rather than concentrated on few vertices.
//!
//! Usage: `table7 [--quick] [--limit <seconds>]` (default limit 3 s).

use kdc::verify::fraction_not_fully_connected;
use kdc::SolverConfig;
use kdc_bench::collections::{all_collections, Scale};
use kdc_bench::runner::{default_threads, limit_from_args, run_matrix, Algo};
use kdc_bench::table;

fn main() {
    let scale = Scale::from_args();
    let limit = limit_from_args(3.0);
    let threads = default_threads();
    let ks = [1usize, 3, 5, 10, 15, 20];

    println!(
        "Table 7 — avg % of not-fully-connected vertices in the max k-defective clique (limit {:.1}s)\n",
        limit.as_secs_f64()
    );
    for collection in all_collections(scale) {
        eprintln!("[table7] {} …", collection.name);
        let algos = [Algo {
            name: "kDC",
            config: SolverConfig::kdc,
        }];
        let results = run_matrix(&collection, &algos, &ks, limit, threads);

        let mut rows = vec![vec![
            collection.name.to_string(),
            "avg % not fully connected".into(),
            "#solved".into(),
        ]];
        for &k in &ks {
            let mut sum = 0.0f64;
            let mut count = 0usize;
            for inst in &collection.instances {
                let r = results
                    .iter()
                    .find(|r| r.instance == inst.name && r.k == k)
                    .expect("cell");
                if !r.solved {
                    continue;
                }
                sum += fraction_not_fully_connected(&inst.graph, &r.vertices);
                count += 1;
            }
            rows.push(vec![
                format!("k = {k}"),
                format!("{:.1}%", 100.0 * sum / count.max(1) as f64),
                count.to_string(),
            ]);
        }
        println!("{}", table::render(&rows));
    }
}
