//! `bench-snapshot`: the machine-readable perf baseline of the suite.
//!
//! Runs the planted solve and CTCP cases and writes `BENCH_6.json` — one
//! line per case with the median wall-clock nanoseconds, explored
//! branch-and-bound nodes, the bound-prune counters and the per-bound
//! cost attribution (invocations / prunes / prune-rate / nanoseconds for
//! each of UB2, UB3, UB1, KD-Club, UB4) — so the perf trajectory across
//! PRs is diffable by tools, not just by eyeballing criterion output.
//! Node counts are deterministic for a given algorithm, so CI gates on
//! them (`--check` fails when any case regresses nodes by more than 5%
//! against the committed baseline); wall-clock is recorded for trend
//! reading but never gated, because CI hardware varies.
//!
//! Every solve case runs in three variants: the flagship `kdc` preset on
//! the word-parallel kernel, the same preset forced onto the scalar kernel
//! (`kdc-scalar`, the speedup baseline), and `kdclub` (the KD-Club-style
//! re-colouring bound, the node-reduction headline).
//!
//! Snapshot mode additionally measures the observability layer's cost on
//! the planted-200 case — the same solve with `kdc_obs` enabled vs
//! disabled — and reports the overhead (target ≤ 2%; reported, never
//! gated, like all wall-clock numbers here).
//!
//! Usage: `bench-snapshot [--out PATH] [--check [PATH]] [--reps N]`.

use kdc::{bound, Solver, SolverConfig};
use kdc_graph::ctcp::Ctcp;
use kdc_graph::{gen, Graph};
use std::time::Instant;

/// Default snapshot path, relative to the invocation directory (the
/// workspace root under `cargo run`).
const DEFAULT_PATH: &str = "BENCH_6.json";

/// Allowed relative node-count growth before `--check` fails.
const NODE_TOLERANCE: f64 = 0.05;

/// One measured case: a name plus ordered numeric metrics. `rates` holds
/// derived ratio columns (rendered with four decimals) that the `--check`
/// gate never reads.
struct CaseResult {
    name: String,
    median_ns: u128,
    runs: usize,
    metrics: Vec<(String, u64)>,
    rates: Vec<(String, f64)>,
}

/// The planted solve workloads: the shared search-heavy cases (one source
/// of generator parameters for this bin and the `engine` criterion bench)
/// plus one preprocessing-dominated case — the classic low-noise plant
/// collapses to the planted set before any search, pinning the heuristic +
/// CTCP wall-clock.
fn solve_cases() -> Vec<(String, Graph, usize)> {
    let mut cases: Vec<(String, Graph, usize)> = kdc_bench::collections::planted_snapshot_cases()
        .into_iter()
        .map(|(name, g, k)| (name.to_string(), g, k))
        .collect();
    let (g, _) = gen::planted_defective_clique(2_000, 18, 2, 0.01, &mut gen::seeded_rng(11));
    cases.push(("planted-2k-k2".to_string(), g, 2));
    cases
}

/// Runs `f` `reps` times and returns the median duration in nanoseconds.
fn median_ns(reps: usize, mut f: impl FnMut()) -> u128 {
    let mut samples: Vec<u128> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Measures one (graph, k, config) solve variant.
fn run_solve_case(
    name: String,
    g: &Graph,
    k: usize,
    cfg: &SolverConfig,
    reps: usize,
) -> CaseResult {
    let reference = Solver::new(g, k, cfg.clone()).solve();
    assert!(
        reference.is_optimal(),
        "{name}: case must solve to optimality"
    );
    let median = median_ns(reps, || {
        let sol = Solver::new(g, k, cfg.clone()).solve();
        assert_eq!(
            sol.stats.nodes, reference.stats.nodes,
            "{name}: node counts must be deterministic"
        );
    });
    let s = &reference.stats;
    let mut metrics: Vec<(String, u64)> = vec![
        ("nodes".to_string(), s.nodes),
        ("bound_prunes".to_string(), s.bound_prunes),
        ("ub1_prunes".to_string(), s.ub1_prunes),
        ("kdclub_prunes".to_string(), s.kdclub_prunes),
        ("size".to_string(), reference.size() as u64),
    ];
    // Per-bound cost attribution, in the engine's evaluation order. The
    // prune-rate (prunes / invocations) is what tells whether a bound
    // earns its nanoseconds.
    let mut rates = Vec::new();
    for (i, cost) in s.bound_costs.iter().enumerate() {
        let b = bound::NAMES[i];
        metrics.push((format!("{b}_invocations"), cost.invocations));
        metrics.push((format!("{b}_prunes"), cost.prunes));
        metrics.push((format!("{b}_ns"), cost.ns));
        let rate = if cost.invocations > 0 {
            cost.prunes as f64 / cost.invocations as f64
        } else {
            0.0
        };
        rates.push((format!("{b}_prune_rate"), rate));
    }
    CaseResult {
        name,
        median_ns: median,
        runs: reps,
        metrics,
        rates,
    }
}

/// Measures the incremental CTCP case: a warm reducer driven across the
/// rising lower-bound schedule of the `ctcp` criterion bench.
fn run_ctcp_case(reps: usize) -> CaseResult {
    const SCHEDULE: [usize; 6] = [8, 10, 12, 14, 16, 18];
    let (g, _) = gen::planted_defective_clique(2_000, 18, 2, 0.01, &mut gen::seeded_rng(11));
    let mut vertex_removals = 0u64;
    let mut edge_removals = 0u64;
    let median = median_ns(reps, || {
        let mut ctcp = Ctcp::new(&g, 2);
        let mut vs = 0u64;
        let mut es = 0u64;
        for &lb in &SCHEDULE {
            let rem = ctcp.tighten(lb);
            vs += rem.vertices.len() as u64;
            es += rem.edges;
        }
        vertex_removals = vs;
        edge_removals = es;
    });
    CaseResult {
        name: "ctcp/planted-2k-schedule".to_string(),
        median_ns: median,
        runs: reps,
        metrics: vec![
            ("vertex_removals".to_string(), vertex_removals),
            ("edge_removals".to_string(), edge_removals),
        ],
        rates: Vec::new(),
    }
}

/// Measures the observability layer's wall-clock cost: the planted-200
/// solve with `kdc_obs` enabled (bound timing on, the default) vs
/// disabled. Returns `(enabled_ns, disabled_ns)` medians; the global
/// switch is restored to enabled afterwards.
fn measure_obs_overhead(reps: usize) -> (u128, u128) {
    let (g, _) = gen::planted_defective_clique(200, 14, 3, 0.30, &mut gen::seeded_rng(13));
    let cfg = SolverConfig::kdc();
    let run = || {
        let sol = Solver::new(&g, 3, cfg.clone()).solve();
        assert!(sol.is_optimal(), "planted-200 must solve to optimality");
    };
    // Interleave the two variants rep by rep so slow machine-level drift
    // (thermal throttling, background load) hits both sides equally
    // instead of biasing whichever block ran second.
    let mut enabled_samples = Vec::with_capacity(reps);
    let mut disabled_samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        kdc_obs::set_enabled(true);
        enabled_samples.push(median_ns(1, run));
        kdc_obs::set_enabled(false);
        disabled_samples.push(median_ns(1, run));
    }
    kdc_obs::set_enabled(true);
    enabled_samples.sort_unstable();
    disabled_samples.sort_unstable();
    (
        enabled_samples[enabled_samples.len() / 2],
        disabled_samples[disabled_samples.len() / 2],
    )
}

fn collect(reps: usize) -> Vec<CaseResult> {
    let mut out = Vec::new();
    for (name, g, k) in solve_cases() {
        let word = SolverConfig::kdc();
        let scalar = SolverConfig::kdc().with_scalar_kernel();
        let kdclub = SolverConfig::kdclub();
        out.push(run_solve_case(
            format!("solve/{name}/kdc"),
            &g,
            k,
            &word,
            reps,
        ));
        out.push(run_solve_case(
            format!("solve/{name}/kdc-scalar"),
            &g,
            k,
            &scalar,
            reps,
        ));
        out.push(run_solve_case(
            format!("solve/{name}/kdclub"),
            &g,
            k,
            &kdclub,
            reps,
        ));
    }
    out.push(run_ctcp_case(reps));
    out
}

fn render(cases: &[CaseResult], overhead: Option<(u128, u128)>) -> String {
    let mut s = String::new();
    s.push_str("{\n  \"bench\": \"BENCH_6\",\n  \"schema\": 2,\n");
    if let Some((enabled, disabled)) = overhead {
        s.push_str(&format!(
            "  \"obs_overhead\": {{\"case\": \"planted-200-k3/kdc\", \
             \"enabled_median_ns\": {enabled}, \"disabled_median_ns\": {disabled}, \
             \"overhead_pct\": {:.2}}},\n",
            overhead_pct(enabled, disabled)
        ));
    }
    s.push_str("  \"cases\": [\n");
    for (i, c) in cases.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"median_ns\": {}, \"runs\": {}",
            c.name, c.median_ns, c.runs
        ));
        for (k, v) in &c.metrics {
            s.push_str(&format!(", \"{k}\": {v}"));
        }
        for (k, v) in &c.rates {
            s.push_str(&format!(", \"{k}\": {v:.4}"));
        }
        s.push_str(if i + 1 == cases.len() { "}\n" } else { "},\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

/// Relative cost of the enabled observability layer, in percent (can be
/// negative under timer noise).
fn overhead_pct(enabled: u128, disabled: u128) -> f64 {
    if disabled == 0 {
        return 0.0;
    }
    (enabled as f64 / disabled as f64 - 1.0) * 100.0
}

/// Extracts a `"key": value` numeric field from a one-case JSON line.
fn field_u64(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\": ");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts the `"name"` field from a one-case JSON line.
fn field_name(line: &str) -> Option<String> {
    let pat = "\"name\": \"";
    let at = line.find(pat)? + pat.len();
    let rest = &line[at..];
    Some(rest[..rest.find('"')?].to_string())
}

/// Parses a committed snapshot into (name → (median_ns, nodes, size)).
fn parse_snapshot(text: &str) -> Vec<(String, u128, Option<u64>, Option<u64>)> {
    text.lines()
        .filter_map(|line| {
            let name = field_name(line)?;
            let median = field_u64(line, "median_ns")? as u128;
            Some((
                name,
                median,
                field_u64(line, "nodes"),
                field_u64(line, "size"),
            ))
        })
        .collect()
}

/// `--check`: re-measure and compare against the committed snapshot. Node
/// counts (and solution sizes) gate; wall-clock deltas are only reported.
fn check(baseline_path: &str, cases: &[CaseResult]) -> Result<(), String> {
    let text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read baseline {baseline_path}: {e}"))?;
    let baseline = parse_snapshot(&text);
    if baseline.is_empty() {
        return Err(format!("baseline {baseline_path} contains no cases"));
    }
    let mut failures = Vec::new();
    for (name, base_ns, base_nodes, base_size) in &baseline {
        let Some(case) = cases.iter().find(|c| &c.name == name) else {
            failures.push(format!("case {name} missing from this run"));
            continue;
        };
        let metric = |key: &str| {
            case.metrics
                .iter()
                .find(|(k, _)| *k == key)
                .map(|&(_, v)| v)
        };
        let ratio = case.median_ns as f64 / *base_ns as f64;
        println!(
            "{name}: wall {:.2}x of baseline ({} ns vs {} ns)",
            ratio, case.median_ns, base_ns
        );
        if let (Some(base), Some(now)) = (*base_nodes, metric("nodes")) {
            let limit = (base as f64 * (1.0 + NODE_TOLERANCE)).floor() as u64;
            if now > limit {
                failures.push(format!(
                    "case {name}: nodes regressed {base} -> {now} (> {:.0}% tolerance)",
                    NODE_TOLERANCE * 100.0
                ));
            } else {
                println!("{name}: nodes {now} (baseline {base}) ok");
            }
        }
        if let (Some(base), Some(now)) = (*base_size, metric("size")) {
            if base != now {
                failures.push(format!(
                    "case {name}: solution size changed {base} -> {now}"
                ));
            }
        }
    }
    for case in cases {
        if !baseline.iter().any(|(n, ..)| n == &case.name) {
            println!("note: new case {} not in baseline", case.name);
        }
    }
    if failures.is_empty() {
        println!("bench-snapshot check passed ({} cases)", baseline.len());
        Ok(())
    } else {
        Err(failures.join("\n"))
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = DEFAULT_PATH.to_string();
    let mut check_mode = false;
    let mut reps = 5usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                out = args.get(i).expect("--out needs a path").clone();
            }
            "--check" => {
                check_mode = true;
                if let Some(path) = args.get(i + 1) {
                    if !path.starts_with("--") {
                        i += 1;
                        out = path.clone();
                    }
                }
            }
            "--reps" => {
                i += 1;
                reps = args
                    .get(i)
                    .and_then(|r| r.parse().ok())
                    .expect("--reps needs a positive integer");
                assert!(reps > 0, "--reps needs a positive integer");
            }
            other => panic!("unknown argument {other:?} (see --out/--check/--reps)"),
        }
        i += 1;
    }

    let cases = collect(reps);
    if check_mode {
        if let Err(e) = check(&out, &cases) {
            eprintln!("bench-snapshot check FAILED:\n{e}");
            std::process::exit(1);
        }
    } else {
        let (enabled, disabled) = measure_obs_overhead(reps);
        let pct = overhead_pct(enabled, disabled);
        let text = render(&cases, Some((enabled, disabled)));
        std::fs::write(&out, &text).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
        print!("{text}");
        println!(
            "observability overhead on planted-200-k3: {pct:+.2}% \
             (enabled {enabled} ns vs disabled {disabled} ns, target <= 2%)"
        );
        println!("wrote {out} ({} cases)", cases.len());
    }
}
