//! **Table 4**: preprocessing comparison between kDC (Degen-opt + RR6) and
//! kDC-Degen (Degen, no RR6): ratio of initial-solution sizes and of reduced
//! graph sizes (n0, m0), averaged per collection and k.
//!
//! Paper shape: |C0_kDC| / |C0_Degen| > 1 (larger initial solutions) and
//! n0_kDC / n0_Degen < 1, m0_kDC / m0_Degen < 1 (smaller reduced graphs),
//! with the gap largest at small k.
//!
//! Usage: `table4 [--quick]`.

use kdc::solver::preprocess_report;
use kdc::SolverConfig;
use kdc_bench::collections::{facebook_like, real_world_like, Scale};
use kdc_bench::table;

fn main() {
    let scale = Scale::from_args();
    let ks = [1usize, 3, 5, 10, 15, 20];

    println!("Table 4 — preprocessing: kDC vs kDC-Degen (ratios kDC / kDC-Degen)\n");
    for collection in [real_world_like(scale), facebook_like(scale)] {
        eprintln!("[table4] {} …", collection.name);
        let mut rows = vec![vec![
            collection.name.to_string(),
            "|C0| ratio".into(),
            "n0 ratio".into(),
            "m0 ratio".into(),
        ]];
        for &k in &ks {
            let (mut c0_sum, mut n0_sum, mut m0_sum) = (0.0f64, 0.0f64, 0.0f64);
            let mut count = 0usize;
            for inst in &collection.instances {
                let full = preprocess_report(&inst.graph, k, &SolverConfig::kdc());
                let degen = preprocess_report(&inst.graph, k, &SolverConfig::degen());
                if degen.initial.is_empty() {
                    continue;
                }
                c0_sum += full.initial.len() as f64 / degen.initial.len() as f64;
                // Reduced-graph ratios: define 0/0 = 1 (both reductions
                // emptied the graph — equally strong).
                n0_sum += if degen.n0 == 0 {
                    1.0
                } else {
                    full.n0 as f64 / degen.n0 as f64
                };
                m0_sum += if degen.m0 == 0 {
                    1.0
                } else {
                    full.m0 as f64 / degen.m0 as f64
                };
                count += 1;
            }
            let c = count.max(1) as f64;
            rows.push(vec![
                format!("k = {k}"),
                format!("{:.2}", c0_sum / c),
                format!("{:.2}", n0_sum / c),
                format!("{:.2}", m0_sum / c),
            ]);
        }
        println!("{}", table::render(&rows));
    }
}
