//! Rule-contribution ablation: how much work does each reduction rule and
//! bound actually do inside kDC's search? (The design-choice ablation that
//! DESIGN.md §2.2 calls out; complements the solved-count ablations of
//! Figures 7/8 with per-rule activity counts.)
//!
//! For each collection and k, aggregates over the solved instances:
//! RR1/RR2/RR3/RR4/RR5 applications per search node and the share of nodes
//! pruned by bounds (UB1-attributed separately).
//!
//! Usage: `rule_stats [--quick] [--limit <seconds>] [--k <K>]`.

use kdc::{Solver, SolverConfig};
use kdc_bench::collections::{all_collections, Scale};
use kdc_bench::runner::{default_threads, limit_from_args, map_instances};
use kdc_bench::table;

fn main() {
    let scale = Scale::from_args();
    let limit = limit_from_args(3.0);
    let threads = default_threads();
    let ks: Vec<usize> = match std::env::args().position(|a| a == "--k") {
        Some(i) => vec![std::env::args()
            .nth(i + 1)
            .and_then(|v| v.parse().ok())
            .expect("--k needs an integer")],
        None => vec![1, 5, 15],
    };

    println!(
        "Rule/bound activity inside kDC (per search node, solved instances only; limit {:.1}s)\n",
        limit.as_secs_f64()
    );
    for collection in all_collections(scale) {
        eprintln!("[rule_stats] {} …", collection.name);
        let mut rows = vec![vec![
            collection.name.to_string(),
            "nodes".into(),
            "rr1/node".into(),
            "rr2/node".into(),
            "rr3/node".into(),
            "rr4/node".into(),
            "rr5/node".into(),
            "bound-pruned".into(),
            "ub1-share".into(),
        ]];
        for &k in &ks {
            let stats = map_instances(&collection, threads, |inst| {
                let cfg = SolverConfig::kdc().with_time_limit(limit);
                let sol = Solver::new(&inst.graph, k, cfg).solve();
                sol.is_optimal().then_some(sol.stats)
            });
            let solved: Vec<_> = stats.into_iter().flatten().collect();
            let nodes: u64 = solved.iter().map(|s| s.nodes).sum::<u64>().max(1);
            let per = |f: fn(&kdc::SearchStats) -> u64| {
                solved.iter().map(f).sum::<u64>() as f64 / nodes as f64
            };
            let prunes: u64 = solved.iter().map(|s| s.bound_prunes).sum();
            let ub1: u64 = solved.iter().map(|s| s.ub1_prunes).sum();
            rows.push(vec![
                format!("k = {k} ({} solved)", solved.len()),
                nodes.to_string(),
                format!("{:.2}", per(|s| s.rr1_removals)),
                format!("{:.2}", per(|s| s.rr2_additions)),
                format!("{:.2}", per(|s| s.rr3_removals)),
                format!("{:.2}", per(|s| s.rr4_removals)),
                format!("{:.2}", per(|s| s.rr5_removals)),
                format!("{:.1}%", 100.0 * prunes as f64 / nodes as f64),
                if prunes > 0 {
                    format!("{:.1}%", 100.0 * ub1 as f64 / prunes as f64)
                } else {
                    "-".into()
                },
            ]);
        }
        println!("{}", table::render(&rows));
    }
}
