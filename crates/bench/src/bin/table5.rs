//! **Table 5**: average and maximum ratio of the maximum k-defective clique
//! size over the maximum clique size, per collection and k (over instances
//! solved within the limit).
//!
//! Paper shape: ratios grow with k (e.g. ≈1.07 avg at k = 1 up to ≈1.5 avg
//! at k = 20 on the real-world collection), demonstrating that the
//! relaxation finds genuinely larger near-cliques.
//!
//! Usage: `table5 [--quick] [--limit <seconds>]` (default limit 3 s).

use kdc::SolverConfig;
use kdc_bench::collections::{all_collections, Scale};
use kdc_bench::runner::{default_threads, limit_from_args, map_instances, run_matrix, Algo};
use kdc_bench::table;

fn main() {
    let scale = Scale::from_args();
    let limit = limit_from_args(3.0);
    let threads = default_threads();
    let ks = [1usize, 3, 5, 10, 15, 20];

    println!(
        "Table 5 — (max k-defective clique size) / (max clique size), limit {:.1}s\n",
        limit.as_secs_f64()
    );
    for collection in all_collections(scale) {
        eprintln!("[table5] {} …", collection.name);
        // Maximum clique sizes via the time-limited solver at k = 0 (the
        // independent Tomita solver has no limit support and can stall on
        // the densest blocks); unsolved instances are skipped.
        let clique_sizes = map_instances(&collection, threads, |inst| {
            let cfg = SolverConfig::kdc().with_time_limit(limit);
            let sol = kdc::Solver::new(&inst.graph, 0, cfg).solve();
            sol.is_optimal().then(|| sol.size())
        });
        let algos = [Algo {
            name: "kDC",
            config: SolverConfig::kdc,
        }];
        let results = run_matrix(&collection, &algos, &ks, limit, threads);

        let mut rows = vec![vec![
            collection.name.to_string(),
            "avg ratio".into(),
            "max ratio".into(),
            "#solved".into(),
        ]];
        for &k in &ks {
            let mut sum = 0.0f64;
            let mut max = 0.0f64;
            let mut count = 0usize;
            for (i, inst) in collection.instances.iter().enumerate() {
                let Some(w) = clique_sizes[i] else { continue };
                let r = results
                    .iter()
                    .find(|r| r.instance == inst.name && r.k == k)
                    .expect("cell");
                if !r.solved || w == 0 {
                    continue;
                }
                let ratio = r.size as f64 / w as f64;
                assert!(ratio >= 1.0, "defective clique can never be smaller");
                sum += ratio;
                max = max.max(ratio);
                count += 1;
            }
            rows.push(vec![
                format!("k = {k}"),
                format!("{:.3}", sum / count.max(1) as f64),
                format!("{max:.2}"),
                count.to_string(),
            ]);
        }
        println!("{}", table::render(&rows));
    }
}
