//! Parallel experiment runner.
//!
//! Solves every (instance × algorithm × k) cell of an experiment matrix with
//! a per-solve wall-clock limit, fanning the independent solves across
//! worker threads (each solve itself stays single-threaded, as in the
//! paper's experiments; parallelism only shortens harness wall time).

use crate::collections::Collection;
use kdc::{Solver, SolverConfig, Status};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// A named algorithm configuration.
pub struct Algo {
    /// Display name ("kDC", "KDBB", …).
    pub name: &'static str,
    /// Configuration factory (time limits are injected by the runner).
    pub config: fn() -> SolverConfig,
}

/// The standard algorithm line-up of Table 2.
pub fn table2_algos() -> Vec<Algo> {
    vec![
        Algo {
            name: "kDC",
            config: SolverConfig::kdc,
        },
        Algo {
            name: "KDBB",
            config: SolverConfig::kdbb_like,
        },
        Algo {
            name: "MADEC+p",
            config: SolverConfig::madec_like,
        },
    ]
}

/// The ablation line-up of Figures 7/8 and Table 3.
pub fn ablation_algos() -> Vec<Algo> {
    vec![
        Algo {
            name: "kDC",
            config: SolverConfig::kdc,
        },
        Algo {
            name: "kDC/RR3&4",
            config: SolverConfig::without_rr3_rr4,
        },
        Algo {
            name: "kDC/UB1",
            config: SolverConfig::without_ub1,
        },
        Algo {
            name: "kDC-Degen",
            config: SolverConfig::degen,
        },
        Algo {
            name: "KDBB",
            config: SolverConfig::kdbb_like,
        },
    ]
}

/// One experiment cell result.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Collection name.
    pub collection: &'static str,
    /// Instance name.
    pub instance: String,
    /// Vertices of the instance.
    pub n: usize,
    /// Edges of the instance.
    pub m: usize,
    /// Algorithm name.
    pub algo: &'static str,
    /// The k used.
    pub k: usize,
    /// Wall-clock solve time.
    pub seconds: f64,
    /// Whether the solve proved optimality within the limit.
    pub solved: bool,
    /// Size of the best solution found (optimal when `solved`).
    pub size: usize,
    /// The solution's vertex set (original graph ids, sorted).
    pub vertices: Vec<u32>,
    /// Search-tree nodes.
    pub nodes: u64,
}

/// Runs the full (instances × algos × ks) matrix with the given per-solve
/// time limit, using `threads` workers. Results are returned in a
/// deterministic order (by instance, then algo, then k).
pub fn run_matrix(
    collection: &Collection,
    algos: &[Algo],
    ks: &[usize],
    limit: Duration,
    threads: usize,
) -> Vec<RunResult> {
    struct Task {
        instance_idx: usize,
        algo_idx: usize,
        k: usize,
    }
    let mut tasks = Vec::new();
    for instance_idx in 0..collection.instances.len() {
        for algo_idx in 0..algos.len() {
            for &k in ks {
                tasks.push(Task {
                    instance_idx,
                    algo_idx,
                    k,
                });
            }
        }
    }

    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, RunResult)>> = Mutex::new(Vec::with_capacity(tasks.len()));
    let threads = threads.max(1);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= tasks.len() {
                    break;
                }
                let task = &tasks[idx];
                let inst = &collection.instances[task.instance_idx];
                let algo = &algos[task.algo_idx];
                let mut cfg = (algo.config)();
                cfg.time_limit = Some(limit);

                let t0 = Instant::now();
                let sol = Solver::new(&inst.graph, task.k, cfg).solve();
                let seconds = t0.elapsed().as_secs_f64();
                debug_assert!(inst.graph.is_k_defective_clique(&sol.vertices, task.k));

                let result = RunResult {
                    collection: collection.name,
                    instance: inst.name.clone(),
                    n: inst.graph.n(),
                    m: inst.graph.m(),
                    algo: algo.name,
                    k: task.k,
                    seconds,
                    solved: sol.status == Status::Optimal,
                    size: sol.size(),
                    vertices: sol.vertices,
                    nodes: sol.stats.nodes,
                };
                results.lock().expect("poisoned").push((idx, result));
            });
        }
    });

    let mut out = results.into_inner().expect("poisoned");
    out.sort_by_key(|(idx, _)| *idx);
    out.into_iter().map(|(_, r)| r).collect()
}

/// Number of instances an algorithm solved within `limit` for a given k.
pub fn solved_count(results: &[RunResult], algo: &str, k: usize, limit: Duration) -> usize {
    results
        .iter()
        .filter(|r| r.algo == algo && r.k == k && r.solved && r.seconds <= limit.as_secs_f64())
        .count()
}

/// Sanity check across algorithms: all *solved* cells of the same
/// (instance, k) must report identical optimal sizes. Returns a list of
/// violations (empty when consistent).
pub fn cross_check_sizes(results: &[RunResult]) -> Vec<String> {
    use std::collections::HashMap;
    let mut sizes: HashMap<(&str, usize), usize> = HashMap::new();
    let mut issues = Vec::new();
    for r in results.iter().filter(|r| r.solved) {
        match sizes.entry((r.instance.as_str(), r.k)) {
            std::collections::hash_map::Entry::Occupied(e) => {
                if *e.get() != r.size {
                    issues.push(format!(
                        "{} k={}: {} reports {} but another solver reported {}",
                        r.instance,
                        r.k,
                        r.algo,
                        r.size,
                        e.get()
                    ));
                }
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(r.size);
            }
        }
    }
    issues
}

/// Runs `f` over all instances of a collection in parallel, returning
/// per-instance results in instance order (used for maximum-clique
/// computations in the Table 5/6 harnesses).
pub fn map_instances<T: Send>(
    collection: &Collection,
    threads: usize,
    f: impl Fn(&crate::collections::Instance) -> T + Sync,
) -> Vec<T> {
    let next = AtomicUsize::new(0);
    let out: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(collection.instances.len()));
    std::thread::scope(|scope| {
        for _ in 0..threads.max(1) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= collection.instances.len() {
                    break;
                }
                let r = f(&collection.instances[i]);
                out.lock().expect("poisoned").push((i, r));
            });
        }
    });
    let mut v = out.into_inner().expect("poisoned");
    v.sort_by_key(|(i, _)| *i);
    v.into_iter().map(|(_, r)| r).collect()
}

/// Default worker count: all cores, capped by the number of tasks.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
}

/// Parses `--limit <seconds>` (fractional allowed) from the process args.
pub fn limit_from_args(default_secs: f64) -> Duration {
    let args: Vec<String> = std::env::args().collect();
    for w in args.windows(2) {
        if w[0] == "--limit" {
            if let Ok(s) = w[1].parse::<f64>() {
                return Duration::from_secs_f64(s);
            }
        }
    }
    Duration::from_secs_f64(default_secs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collections::{dimacs_like, Scale};

    #[test]
    fn matrix_runs_and_cross_checks() {
        let col = dimacs_like(Scale::Quick);
        let algos = table2_algos();
        let results = run_matrix(&col, &algos, &[1], Duration::from_secs(5), 4);
        assert_eq!(results.len(), col.instances.len() * algos.len());
        assert!(cross_check_sizes(&results).is_empty());
        // At least the easy instances must be solved by kDC.
        assert!(solved_count(&results, "kDC", 1, Duration::from_secs(5)) >= 1);
    }

    #[test]
    fn solved_count_respects_sub_limits() {
        let col = dimacs_like(Scale::Quick);
        let algos = vec![Algo {
            name: "kDC",
            config: kdc::SolverConfig::kdc,
        }];
        let results = run_matrix(&col, &algos, &[1], Duration::from_secs(5), 2);
        let at_full = solved_count(&results, "kDC", 1, Duration::from_secs(5));
        let at_zero = solved_count(&results, "kDC", 1, Duration::from_nanos(1));
        assert!(at_zero <= at_full);
    }
}
