//! Synthetic benchmark collections standing in for the paper's three graph
//! collections (see DESIGN.md §3 for the substitution rationale).
//!
//! * [`real_world_like`] — sparse power-law / Erdős–Rényi mixes covering the
//!   size/density/degeneracy spread of the "real-world graphs" collection;
//! * [`facebook_like`] — planted-community graphs mimicking Facebook social
//!   networks (large near-cliques inside dense blocks);
//! * [`dimacs_like`] — small dense instances in the DIMACS10&SNAP regime,
//!   where search trees get deep.
//!
//! All instances are generated from fixed seeds, so every harness run sees
//! the identical inputs.

use kdc_graph::gen::{self, CommunityParams};
use kdc_graph::Graph;

/// One benchmark instance.
pub struct Instance {
    /// Stable, human-readable name (encodes the generator parameters).
    pub name: String,
    /// The graph itself.
    pub graph: Graph,
}

/// A named list of instances.
pub struct Collection {
    /// Collection name as used in tables ("real-world", "facebook",
    /// "dimacs10&snap").
    pub name: &'static str,
    /// The instances, in a fixed order.
    pub instances: Vec<Instance>,
}

/// Harness size: `Quick` for smoke runs and tests, `Full` for the numbers
/// reported in EXPERIMENTS.md.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// A handful of small instances per collection.
    Quick,
    /// The full synthetic collections.
    Full,
}

impl Scale {
    /// Parses `--quick` style flags.
    pub fn from_args() -> Scale {
        if std::env::args().any(|a| a == "--quick") {
            Scale::Quick
        } else {
            Scale::Full
        }
    }
}

/// The search-heavy planted cases of `bench-snapshot` (`BENCH_5.json`):
/// `(name, graph, k)` triples whose noise is tuned so preprocessing leaves
/// a real branch-and-bound search. The single source of these generator
/// parameters — the snapshot bin and the `engine` criterion bench must
/// measure identical instances, or the committed baseline stops describing
/// the bench.
pub fn planted_snapshot_cases() -> Vec<(&'static str, Graph, usize)> {
    let (g200, _) = gen::planted_defective_clique(200, 14, 3, 0.30, &mut gen::seeded_rng(13));
    let (g220, _) = gen::planted_defective_clique(220, 14, 3, 0.28, &mut gen::seeded_rng(17));
    vec![("planted-200-k3", g200, 3), ("planted-220-k3", g220, 3)]
}

/// The real-world-like collection: sparse graphs with skewed degrees.
pub fn real_world_like(scale: Scale) -> Collection {
    let mut instances = Vec::new();
    let mut seed = 0xC0FFEE_u64;
    let mut push = |name: String, graph: Graph| instances.push(Instance { name, graph });

    // Power-law graphs across sizes and densities.
    let chung_lu_params: &[(usize, f64, f64)] = match scale {
        Scale::Quick => &[(300, 8.0, 2.5), (800, 10.0, 2.3), (2_000, 6.0, 2.7)],
        Scale::Full => &[
            (300, 8.0, 2.5),
            (600, 12.0, 2.4),
            (1_000, 10.0, 2.3),
            (2_000, 6.0, 2.7),
            (4_000, 8.0, 2.5),
            (8_000, 10.0, 2.4),
            (16_000, 8.0, 2.6),
            (30_000, 6.0, 2.5),
        ],
    };
    for &(n, d, beta) in chung_lu_params {
        seed += 1;
        let g = gen::chung_lu(n, d, beta, &mut gen::seeded_rng(seed));
        push(format!("cl-n{n}-d{d:.0}-b{beta:.1}"), g);
    }

    // Sparse ER graphs.
    let gnp_params: &[(usize, f64)] = match scale {
        Scale::Quick => &[(200, 0.05), (500, 0.02)],
        Scale::Full => &[
            (200, 0.05),
            (400, 0.04),
            (500, 0.02),
            (1_000, 0.012),
            (2_000, 0.006),
            (4_000, 0.004),
            (8_000, 0.002),
        ],
    };
    for &(n, p) in gnp_params {
        seed += 1;
        let g = gen::gnp(n, p, &mut gen::seeded_rng(seed));
        push(format!("gnp-n{n}-p{p}"), g);
    }

    // Preferential-attachment graphs (hubs, low degeneracy).
    let ba_params: &[(usize, usize)] = match scale {
        Scale::Quick => &[(500, 4)],
        Scale::Full => &[(500, 4), (2_000, 5), (8_000, 6), (20_000, 4)],
    };
    for &(n, m) in ba_params {
        seed += 1;
        let g = gen::barabasi_albert(n, m, &mut gen::seeded_rng(seed));
        push(format!("ba-n{n}-m{m}"), g);
    }

    // Planted near-cliques in sparse noise (link-prediction workload).
    let planted: &[(usize, usize, usize, f64)] = match scale {
        Scale::Quick => &[(600, 18, 4, 0.01)],
        Scale::Full => &[
            (600, 18, 4, 0.01),
            (1_500, 22, 6, 0.008),
            (5_000, 26, 8, 0.003),
            (12_000, 30, 10, 0.001),
        ],
    };
    for &(n, size, miss, p) in planted {
        seed += 1;
        let (g, _) = gen::planted_defective_clique(n, size, miss, p, &mut gen::seeded_rng(seed));
        push(format!("planted-n{n}-s{size}-x{miss}"), g);
    }

    Collection {
        name: "real-world",
        instances,
    }
}

/// The facebook-like collection: community-structured social graphs.
pub fn facebook_like(scale: Scale) -> Collection {
    let mut instances = Vec::new();
    let mut seed = 0xFACE_u64;

    let params: &[(usize, usize, f64, f64)] = match scale {
        Scale::Quick => &[(6, 40, 0.55, 0.01), (10, 50, 0.5, 0.008)],
        Scale::Full => &[
            (4, 40, 0.6, 0.02),
            (6, 40, 0.55, 0.015),
            (8, 45, 0.55, 0.012),
            (10, 50, 0.5, 0.01),
            (12, 50, 0.5, 0.01),
            (10, 80, 0.45, 0.008),
            (16, 60, 0.45, 0.006),
            (20, 60, 0.42, 0.005),
            (16, 100, 0.4, 0.004),
            (24, 80, 0.4, 0.004),
            (20, 120, 0.38, 0.003),
            (32, 90, 0.38, 0.003),
            (24, 140, 0.35, 0.002),
            (40, 100, 0.35, 0.002),
        ],
    };
    for &(c, s, p_in, p_out) in params {
        seed += 1;
        // Heterogeneous blocks: community sizes and densities vary, so one
        // community hosts the clearly-largest near-clique (as in real social
        // networks, where preprocessing then prunes the remainder).
        let (g, _) = gen::community_heterogeneous(
            &CommunityParams {
                communities: c,
                community_size: s,
                p_in,
                p_out,
            },
            &mut gen::seeded_rng(seed),
        );
        instances.push(Instance {
            name: format!("fb-c{c}-s{s}-pi{p_in}-po{p_out}"),
            graph: g,
        });
    }

    Collection {
        name: "facebook",
        instances,
    }
}

/// The DIMACS10&SNAP-like collection. DIMACS10 instances are *sparse
/// structured* graphs (meshes, road networks, clustering instances) and the
/// SNAP slice adds social/web graphs, so this collection mixes triangulated
/// grids, random geometric graphs, sparse power-law graphs, and a few
/// moderately dense G(n, p) as the search-heavy tail.
pub fn dimacs_like(scale: Scale) -> Collection {
    let mut instances = Vec::new();
    let mut seed = 0xD13AC5_u64;
    let mut push = |name: String, graph: Graph| instances.push(Instance { name, graph });

    // Triangulated meshes (clustering instances).
    let grids: &[(usize, usize)] = match scale {
        Scale::Quick => &[(20, 25)],
        Scale::Full => &[(20, 25), (40, 50), (80, 100)],
    };
    for &(r, c) in grids {
        push(format!("mesh-{r}x{c}"), gen::grid(r, c, true));
    }

    // Road-network-like geometric graphs.
    let geo: &[(usize, f64)] = match scale {
        Scale::Quick => &[(800, 0.05)],
        Scale::Full => &[(800, 0.05), (3_000, 0.025), (10_000, 0.013)],
    };
    for &(n, r) in geo {
        seed += 1;
        push(
            format!("geo-n{n}-r{r}"),
            gen::random_geometric(n, r, &mut gen::seeded_rng(seed)),
        );
    }

    // SNAP-style power-law graphs.
    let cl: &[(usize, f64, f64)] = match scale {
        Scale::Quick => &[(2_000, 12.0, 2.3)],
        Scale::Full => &[(2_000, 12.0, 2.3), (6_000, 16.0, 2.2), (20_000, 10.0, 2.4)],
    };
    for &(n, d, b) in cl {
        seed += 1;
        push(
            format!("snap-cl-n{n}-d{d:.0}"),
            gen::chung_lu(n, d, b, &mut gen::seeded_rng(seed)),
        );
    }

    // Search-heavy dense tail.
    let gnp_params: &[(usize, f64)] = match scale {
        Scale::Quick => &[(60, 0.4)],
        Scale::Full => &[(60, 0.4), (90, 0.3), (120, 0.25)],
    };
    for &(n, p) in gnp_params {
        seed += 1;
        push(
            format!("dense-gnp-n{n}-p{p}"),
            gen::gnp(n, p, &mut gen::seeded_rng(seed)),
        );
    }

    Collection {
        name: "dimacs10&snap",
        instances,
    }
}

/// All three collections at the given scale.
pub fn all_collections(scale: Scale) -> Vec<Collection> {
    vec![
        real_world_like(scale),
        facebook_like(scale),
        dimacs_like(scale),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_collections_are_nonempty_and_deterministic() {
        for f in [real_world_like, facebook_like, dimacs_like] {
            let a = f(Scale::Quick);
            let b = f(Scale::Quick);
            assert!(!a.instances.is_empty());
            assert_eq!(a.instances.len(), b.instances.len());
            for (x, y) in a.instances.iter().zip(&b.instances) {
                assert_eq!(x.name, y.name);
                assert_eq!(x.graph, y.graph);
            }
        }
    }

    #[test]
    fn full_collections_have_stated_sizes() {
        assert_eq!(real_world_like(Scale::Full).instances.len(), 23);
        assert_eq!(facebook_like(Scale::Full).instances.len(), 14);
        assert_eq!(dimacs_like(Scale::Full).instances.len(), 12);
    }

    #[test]
    fn instance_names_are_unique() {
        for col in all_collections(Scale::Full) {
            let mut names: Vec<&str> = col.instances.iter().map(|i| i.name.as_str()).collect();
            names.sort_unstable();
            names.dedup();
            assert_eq!(names.len(), col.instances.len(), "{}", col.name);
        }
    }
}
