//! Shared logic for the Figure 7/8 binaries: "#solved instances vs time
//! limit" curves per k, for the five-algorithm ablation line-up.

use crate::collections::Collection;
use crate::runner::{ablation_algos, cross_check_sizes, run_matrix, solved_count};
use crate::table;
use std::time::Duration;

/// The sub-limits at which the curves are sampled, as fractions of the
/// maximum limit (mirrors the paper's log-spaced x axis).
const FRACTIONS: [f64; 8] = [0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 0.6, 1.0];

/// Runs the ablation matrix once at the maximum limit and prints, for every
/// k, the solved-count series at each sampled sub-limit.
pub fn solved_vs_limit_report(
    collection: &Collection,
    ks: &[usize],
    limit: Duration,
    threads: usize,
) {
    let algos = ablation_algos();
    eprintln!(
        "[figure] running {} ({} instances × {} algos × {} ks)…",
        collection.name,
        collection.instances.len(),
        algos.len(),
        ks.len()
    );
    let results = run_matrix(collection, &algos, ks, limit, threads);
    let issues = cross_check_sizes(&results);
    assert!(issues.is_empty(), "solvers disagree: {issues:?}");

    for &k in ks {
        let mut rows = vec![{
            let mut h = vec![format!("k = {k} | limit (s)")];
            h.extend(
                FRACTIONS
                    .iter()
                    .map(|f| table::fmt_secs(limit.as_secs_f64() * f)),
            );
            h
        }];
        for algo in &algos {
            let mut row = vec![algo.name.to_string()];
            for &f in &FRACTIONS {
                let sub = Duration::from_secs_f64(limit.as_secs_f64() * f);
                row.push(solved_count(&results, algo.name, k, sub).to_string());
            }
            rows.push(row);
        }
        println!("{}", table::render(&rows));
    }
}
