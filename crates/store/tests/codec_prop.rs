//! Property tests for the store's CRC-framed record codec: arbitrary
//! records round-trip exactly, and a file damaged by truncation or a
//! single flipped byte replays to exactly the frames before the damage —
//! never a panic, never a bad record, and the [`codec::ReplayReport`]
//! counters account for the drop.

use kdc_store::codec::{self, Record, ReplayReport};
use proptest::prelude::*;

/// Embedded strings: anything printable except the `\x1f` field separator
/// (the encoder sanitizes that one away, which would break exact
/// round-trip equality without weakening the codec property).
const SAFE: &str = "[a-zA-Z0-9 ._/=:-]{0,24}";

/// One arbitrary record. The vendored proptest has no `prop_oneof`, so a
/// generated discriminant picks the variant and the shared field pool
/// fills it in.
fn arb_record() -> impl Strategy<Value = Record> {
    let ids = proptest::collection::vec(any::<u64>(), 0..12);
    ((0u32..3, SAFE, SAFE), (any::<u64>(), ids, SAFE, SAFE)).prop_map(
        |((variant, first, second), (number, vertices, status, stats))| match variant {
            0 => Record::Graph {
                name: first,
                source_path: second,
                content_hash: number,
            },
            1 => Record::Witness {
                graph: first,
                k: number,
                vertices,
            },
            _ => Record::Memo {
                graph: first,
                k: number,
                preset: second,
                vertices,
                status,
                stats,
            },
        },
    )
}

/// Byte size of one framed record (`len` + `crc` + payload).
fn frame_size(rec: &Record) -> usize {
    8 + codec::encode_record(rec).len()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn payloads_roundtrip_exactly(rec in arb_record()) {
        let payload = codec::encode_record(&rec);
        prop_assert_eq!(codec::decode_record(&payload).unwrap(), rec);
    }

    #[test]
    fn clean_files_replay_completely(recs in proptest::collection::vec(arb_record(), 0..8)) {
        let bytes = codec::render_file(&recs);
        let (got, report) = codec::replay(&bytes);
        prop_assert_eq!(&got[..], &recs[..]);
        prop_assert_eq!(report, ReplayReport {
            records: recs.len(),
            torn_dropped: 0,
            corrupt_dropped: 0,
            valid_len: bytes.len(),
        });
    }

    /// Cutting the file at *any* byte offset — a mid-append crash —
    /// recovers exactly the frames that were fully on disk, counts the
    /// cut frame as torn (unless the cut landed on a frame boundary),
    /// and never reports corruption.
    #[test]
    fn truncation_recovers_exactly_the_full_frames(
        recs in proptest::collection::vec(arb_record(), 0..8),
        cut_seed in any::<usize>(),
    ) {
        let bytes = codec::render_file(&recs);
        let cut = cut_seed % (bytes.len() + 1); // 0..=len inclusive
        let (got, report) = codec::replay(&bytes[..cut]);
        if cut == 0 {
            // Nothing written yet: a clean first boot, not damage.
            prop_assert!(got.is_empty());
            prop_assert_eq!(report, ReplayReport::default());
        } else if cut < codec::HEADER.len() {
            prop_assert!(got.is_empty());
            prop_assert_eq!(report.torn_dropped, 1);
            prop_assert_eq!(report.corrupt_dropped, 0);
        } else {
            let mut pos = codec::HEADER.len();
            let mut complete = 0usize;
            for rec in &recs {
                let size = frame_size(rec);
                if pos + size > cut {
                    break;
                }
                pos += size;
                complete += 1;
            }
            prop_assert_eq!(&got[..], &recs[..complete]);
            prop_assert_eq!(report.corrupt_dropped, 0);
            prop_assert_eq!(report.torn_dropped, u64::from(pos != cut));
            prop_assert_eq!(report.valid_len, pos);
        }
    }

    /// Flipping any single byte anywhere in the file recovers exactly the
    /// frames *before* the damaged one and reports exactly one drop
    /// (torn when the flip stretches a frame past end-of-file, corrupt
    /// otherwise) — bit rot can only ever cost the suffix.
    #[test]
    fn single_byte_corruption_recovers_the_prefix(
        recs in proptest::collection::vec(arb_record(), 1..8),
        flip_seed in any::<usize>(),
        mask in 1u8..=255u8,
    ) {
        let mut bytes = codec::render_file(&recs);
        let at = flip_seed % bytes.len();
        bytes[at] ^= mask;
        let (got, report) = codec::replay(&bytes);
        if at < codec::HEADER.len() {
            prop_assert!(got.is_empty());
            prop_assert_eq!(report.corrupt_dropped, 1);
            prop_assert_eq!(report.torn_dropped, 0);
        } else {
            let mut pos = codec::HEADER.len();
            let mut before_damage = 0usize;
            for rec in &recs {
                let size = frame_size(rec);
                if at < pos + size {
                    break;
                }
                pos += size;
                before_damage += 1;
            }
            prop_assert_eq!(&got[..], &recs[..before_damage]);
            prop_assert_eq!(report.torn_dropped + report.corrupt_dropped, 1);
        }
    }

    /// Replay is total on arbitrary bytes: no panic, a self-consistent
    /// report, and the valid prefix it claims replays back cleanly to the
    /// same records (replay is idempotent on its own output).
    #[test]
    fn replay_is_total_and_idempotent(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let (got, report) = codec::replay(&bytes);
        prop_assert_eq!(report.records, got.len());
        prop_assert!(report.valid_len <= bytes.len());
        prop_assert!(report.torn_dropped + report.corrupt_dropped <= 1);
        if report.valid_len >= codec::HEADER.len() {
            let (again, clean) = codec::replay(&bytes[..report.valid_len]);
            prop_assert_eq!(again, got);
            prop_assert_eq!(clean.torn_dropped + clean.corrupt_dropped, 0);
        }
    }
}
