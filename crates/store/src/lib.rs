#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # kdc_store — crash-safe durable state for the kDC daemon
//!
//! A versioned, checksummed on-disk store for the daemon's warm session
//! state: per-graph best-known witnesses and proven-optimal memo entries,
//! keyed to the graph's source path and content hash so stale state for a
//! changed input is never replayed. Two files live in the state directory:
//!
//! - `snapshot.kds` — the compacted full state, rewritten atomically
//!   (tmp-write + rename) by [`Store::compact`];
//! - `journal.kdj` — an append-only log of facts proven since the last
//!   compaction, one CRC-framed record per [`Store::append`].
//!
//! Both files share the codec in [`codec`]: an 8-byte header followed by
//! length-prefixed, CRC-32-framed records. [`Store::open`] replays the
//! snapshot then the journal, truncating each at the first torn or corrupt
//! frame (counted, never propagated), folds the surviving records into
//! [`GraphState`]s, and immediately re-compacts — so damage discovered on
//! one boot is physically gone by the next.
//!
//! Durability model: a journal append is a single buffered write + flush of
//! one frame. A crash (SIGKILL) can tear at most the record being written,
//! which replay drops; everything previously flushed survives. `fsync` is
//! deliberately not issued per append — the store defends against process
//! death, and the periodic snapshot (`sync_all` before rename) bounds the
//! window a power loss could cost.
//!
//! Fault injection: every write passes the `store_write` point and replay
//! passes `store_read` (see `kdc_faults`); the `torn` action truncates a
//! journal append mid-record, which is how the chaos soak proves torn-tail
//! recovery end to end. Counters are mirrored into the global metrics
//! registry as `kdc_store_*_total`.
//!
//! The store's internal mutex (`store`) is rank 8 in `LOCK_ORDER.md`: a
//! leaf below every daemon lock except the metrics registry, so callers
//! collect what they want to persist *before* calling in.

pub mod codec;

pub use codec::{Record, ReplayReport};

use std::collections::BTreeMap;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

/// Appends between automatic compactions (see [`Store::append`]).
pub const COMPACT_EVERY: u64 = 32;

/// Snapshot file name inside the state directory.
pub const SNAPSHOT_FILE: &str = "snapshot.kds";

/// Journal file name inside the state directory.
pub const JOURNAL_FILE: &str = "journal.kdj";

/// FNV-1a 64-bit hash of a byte slice — the graph content hash recorded in
/// [`Record::Graph`] and revalidated on recovery.
pub fn content_hash(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One proven-optimal memo entry of a [`GraphState`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MemoState {
    /// Defect budget of the memoized query.
    pub k: u64,
    /// Options preset the proof ran under.
    pub preset: String,
    /// Optimal witness vertex ids.
    pub vertices: Vec<u64>,
    /// Solve status token.
    pub status: String,
    /// Opaque compact-encoded search stats.
    pub stats: String,
}

/// The folded durable state of one graph: identity plus everything worth
/// rehydrating into a warm `Session`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GraphState {
    /// Cache name the graph was registered under.
    pub name: String,
    /// Source path the graph was parsed from.
    pub source_path: String,
    /// [`content_hash`] of the source file bytes at solve time.
    pub content_hash: u64,
    /// Best-known witness per defect budget `k` (ascending `k`).
    pub witnesses: Vec<(u64, Vec<u64>)>,
    /// Proven-optimal memo entries (ascending `(k, preset)`).
    pub memos: Vec<MemoState>,
}

impl GraphState {
    /// Flattens this state back into the records that reproduce it.
    pub fn records(&self) -> Vec<Record> {
        let mut out = Vec::with_capacity(1 + self.witnesses.len() + self.memos.len());
        out.push(Record::Graph {
            name: self.name.clone(),
            source_path: self.source_path.clone(),
            content_hash: self.content_hash,
        });
        for (k, vertices) in &self.witnesses {
            out.push(Record::Witness {
                graph: self.name.clone(),
                k: *k,
                vertices: vertices.clone(),
            });
        }
        for m in &self.memos {
            out.push(Record::Memo {
                graph: self.name.clone(),
                k: m.k,
                preset: m.preset.clone(),
                vertices: m.vertices.clone(),
                status: m.status.clone(),
                stats: m.stats.clone(),
            });
        }
        out
    }
}

/// Folds a replayed record stream into per-graph state, last write wins.
/// Witness and memo records for a graph with no preceding [`Record::Graph`]
/// identity are dropped — without a source path and hash they could never
/// be validated on recovery.
pub fn fold(records: &[Record]) -> Vec<GraphState> {
    let mut graphs: BTreeMap<String, GraphState> = BTreeMap::new();
    for rec in records {
        match rec {
            Record::Graph {
                name,
                source_path,
                content_hash,
            } => {
                let entry = graphs.entry(name.clone()).or_default();
                entry.name = name.clone();
                entry.source_path = source_path.clone();
                entry.content_hash = *content_hash;
            }
            Record::Witness { graph, k, vertices } => {
                if let Some(entry) = graphs.get_mut(graph) {
                    match entry.witnesses.binary_search_by_key(k, |&(wk, _)| wk) {
                        Ok(i) => entry.witnesses[i].1 = vertices.clone(),
                        Err(i) => entry.witnesses.insert(i, (*k, vertices.clone())),
                    }
                }
            }
            Record::Memo {
                graph,
                k,
                preset,
                vertices,
                status,
                stats,
            } => {
                if let Some(entry) = graphs.get_mut(graph) {
                    let state = MemoState {
                        k: *k,
                        preset: preset.clone(),
                        vertices: vertices.clone(),
                        status: status.clone(),
                        stats: stats.clone(),
                    };
                    match entry
                        .memos
                        .binary_search_by(|m| (m.k, m.preset.as_str()).cmp(&(*k, preset)))
                    {
                        Ok(i) => entry.memos[i] = state,
                        Err(i) => entry.memos.insert(i, state),
                    }
                }
            }
        }
    }
    graphs.into_values().collect()
}

/// Snapshot of the store's own counters (also mirrored as
/// `kdc_store_*_total` in the global metrics registry).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreCounters {
    /// Records appended to the journal.
    pub journal_appends: u64,
    /// Snapshot files written by compaction.
    pub snapshot_writes: u64,
    /// Opens that found prior on-disk state to replay.
    pub recoveries: u64,
    /// Torn (interrupted) records truncated on replay.
    pub torn_records_dropped: u64,
    /// Corrupt (checksum/parse-failed) records truncated on replay.
    pub corrupt_records_dropped: u64,
}

/// Global-registry twins of the store counters, registered once.
struct StoreObs {
    journal_appends: kdc_obs::Counter,
    snapshot_writes: kdc_obs::Counter,
    recoveries: kdc_obs::Counter,
    torn_records_dropped: kdc_obs::Counter,
    corrupt_records_dropped: kdc_obs::Counter,
}

fn store_obs() -> &'static StoreObs {
    static OBS: OnceLock<StoreObs> = OnceLock::new();
    OBS.get_or_init(|| {
        let reg = kdc_obs::registry();
        StoreObs {
            journal_appends: reg.register_counter("kdc_store_journal_appends_total"),
            snapshot_writes: reg.register_counter("kdc_store_snapshot_writes_total"),
            recoveries: reg.register_counter("kdc_store_recoveries_total"),
            torn_records_dropped: reg.register_counter("kdc_store_torn_records_dropped_total"),
            corrupt_records_dropped: reg
                .register_counter("kdc_store_corrupt_records_dropped_total"),
        }
    })
}

fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// State guarded by the store mutex: the file handles are reopened per
/// operation, so only the compaction cadence needs protecting.
struct StoreInner {
    appends_since_compact: u64,
}

/// A durable state store rooted at one state directory.
pub struct Store {
    dir: PathBuf,
    /// Rank 8 in `LOCK_ORDER.md`: leaf lock; collect state to persist
    /// before calling into the store.
    store: Mutex<StoreInner>,
    journal_appends: AtomicU64,
    snapshot_writes: AtomicU64,
    recoveries: AtomicU64,
    torn_records_dropped: AtomicU64,
    corrupt_records_dropped: AtomicU64,
}

impl std::fmt::Debug for Store {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Store").field("dir", &self.dir).finish()
    }
}

/// Maps a `store_read`/`store_write` fault to an error string, handling
/// the shared actions (delay sleeps, panic panics) in place. Returns
/// `Some(reason)` when the operation must fail.
fn fault_gate(point: kdc_faults::Point) -> Option<&'static str> {
    match kdc_faults::check(point)? {
        kdc_faults::Action::Delay(d) => {
            std::thread::sleep(d);
            None
        }
        kdc_faults::Action::Panic => kdc_faults::panic_now(point),
        kdc_faults::Action::TornWrite => Some("torn"),
        kdc_faults::Action::Error | kdc_faults::Action::DropConnection => Some("error"),
    }
}

impl Store {
    /// Opens (creating if needed) the store at `dir`, replays
    /// `snapshot.kds` then `journal.kdj`, and returns the recovered
    /// per-graph state. Torn and corrupt tails are truncated and counted;
    /// the surviving state is immediately re-compacted so the next boot
    /// starts from clean files. An armed `store_read` error fault makes
    /// recovery fall back cold (as an unreadable disk would).
    ///
    /// # Errors
    /// Only filesystem failures (directory creation, compaction rewrite)
    /// are errors; damaged state never is.
    pub fn open(dir: &Path) -> Result<(Store, Vec<GraphState>), String> {
        fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create state dir {}: {e}", dir.display()))?;
        let store = Store {
            dir: dir.to_path_buf(),
            store: Mutex::new(StoreInner {
                appends_since_compact: 0,
            }),
            journal_appends: AtomicU64::new(0),
            snapshot_writes: AtomicU64::new(0),
            recoveries: AtomicU64::new(0),
            torn_records_dropped: AtomicU64::new(0),
            corrupt_records_dropped: AtomicU64::new(0),
        };
        let unreadable = fault_gate(kdc_faults::Point::StoreRead).is_some();
        let mut records = Vec::new();
        let mut had_state = false;
        if !unreadable {
            for file in [SNAPSHOT_FILE, JOURNAL_FILE] {
                let Ok(bytes) = fs::read(store.dir.join(file)) else {
                    continue;
                };
                had_state = true;
                let (recs, report) = codec::replay(&bytes);
                records.extend(recs);
                if report.torn_dropped > 0 {
                    store
                        .torn_records_dropped
                        .fetch_add(report.torn_dropped, Ordering::Relaxed);
                    store_obs().torn_records_dropped.add(report.torn_dropped);
                }
                if report.corrupt_dropped > 0 {
                    store
                        .corrupt_records_dropped
                        .fetch_add(report.corrupt_dropped, Ordering::Relaxed);
                    store_obs()
                        .corrupt_records_dropped
                        .add(report.corrupt_dropped);
                }
            }
        }
        let recovered = fold(&records);
        if had_state {
            store.recoveries.fetch_add(1, Ordering::Relaxed);
            store_obs().recoveries.inc();
        }
        // Normalize whatever survived into fresh files; best effort when a
        // write fault is armed (the journal is left untouched on failure).
        if let Err(e) = store.compact(&recovered) {
            eprintln!("kdc_store: startup compaction skipped: {e}");
        }
        Ok((store, recovered))
    }

    /// The state directory this store is rooted at.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Appends one record to the journal (buffered write + flush). Returns
    /// `true` when [`COMPACT_EVERY`] appends have accumulated and the
    /// caller should [`Store::compact`]. A `torn` fault writes a partial
    /// frame before failing, leaving exactly the tail replay truncates.
    ///
    /// # Errors
    /// Filesystem failures and injected `store_write` faults.
    pub fn append(&self, rec: &Record) -> Result<bool, String> {
        let framed = codec::frame_record(rec);
        let path = self.dir.join(JOURNAL_FILE);
        let mut inner = lock_unpoisoned(&self.store);
        let write = |bytes: &[u8]| -> Result<(), String> {
            let mut file = fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .map_err(|e| format!("cannot open journal {}: {e}", path.display()))?;
            if file
                .metadata()
                .map_err(|e| format!("cannot stat journal: {e}"))?
                .len()
                == 0
            {
                file.write_all(&codec::HEADER)
                    .map_err(|e| format!("cannot write journal header: {e}"))?;
            }
            file.write_all(bytes)
                .map_err(|e| format!("cannot append to journal: {e}"))?;
            file.flush()
                .map_err(|e| format!("cannot flush journal: {e}"))
        };
        match fault_gate(kdc_faults::Point::StoreWrite) {
            Some("torn") => {
                let cut = (framed.len() / 2).max(1);
                let _ = write(&framed[..cut]);
                return Err("fault injected: torn journal append".to_string());
            }
            Some(_) => return Err("fault injected: store_write error".to_string()),
            None => {}
        }
        write(&framed)?;
        self.journal_appends.fetch_add(1, Ordering::Relaxed);
        store_obs().journal_appends.inc();
        inner.appends_since_compact += 1;
        Ok(inner.appends_since_compact >= COMPACT_EVERY)
    }

    /// Rewrites the snapshot from `states` (tmp-write, `sync_all`, rename)
    /// and truncates the journal. On failure the journal is left intact,
    /// so no fact is lost; a `torn` fault tears the snapshot itself, which
    /// the next open truncates and re-covers from the journal.
    ///
    /// # Errors
    /// Filesystem failures and injected `store_write` faults.
    pub fn compact(&self, states: &[GraphState]) -> Result<(), String> {
        let mut records = Vec::new();
        for state in states {
            records.extend(state.records());
        }
        let bytes = codec::render_file(&records);
        let snap = self.dir.join(SNAPSHOT_FILE);
        let journal = self.dir.join(JOURNAL_FILE);
        let tmp_snap = self.dir.join("tmp-snapshot.kds");
        let tmp_journal = self.dir.join("tmp-journal.kdj");
        let mut inner = lock_unpoisoned(&self.store);
        let replace = |tmp: &Path, target: &Path, bytes: &[u8]| -> Result<(), String> {
            let mut file = fs::File::create(tmp)
                .map_err(|e| format!("cannot create {}: {e}", tmp.display()))?;
            file.write_all(bytes)
                .map_err(|e| format!("cannot write {}: {e}", tmp.display()))?;
            file.sync_all()
                .map_err(|e| format!("cannot sync {}: {e}", tmp.display()))?;
            fs::rename(tmp, target)
                .map_err(|e| format!("cannot rename {} into place: {e}", tmp.display()))
        };
        match fault_gate(kdc_faults::Point::StoreWrite) {
            Some("torn") => {
                let cut = (bytes.len() / 2).max(1);
                let _ = replace(&tmp_snap, &snap, &bytes[..cut.min(bytes.len())]);
                return Err("fault injected: torn snapshot write".to_string());
            }
            Some(_) => return Err("fault injected: store_write error".to_string()),
            None => {}
        }
        replace(&tmp_snap, &snap, &bytes)?;
        replace(&tmp_journal, &journal, &codec::HEADER)?;
        inner.appends_since_compact = 0;
        self.snapshot_writes.fetch_add(1, Ordering::Relaxed);
        store_obs().snapshot_writes.inc();
        Ok(())
    }

    /// Snapshot of this store's counters.
    pub fn counters(&self) -> StoreCounters {
        StoreCounters {
            journal_appends: self.journal_appends.load(Ordering::Relaxed),
            snapshot_writes: self.snapshot_writes.load(Ordering::Relaxed),
            recoveries: self.recoveries.load(Ordering::Relaxed),
            torn_records_dropped: self.torn_records_dropped.load(Ordering::Relaxed),
            corrupt_records_dropped: self.corrupt_records_dropped.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fault state is process-global; tests that arm it must not interleave.
    static FAULT_GUARD: Mutex<()> = Mutex::new(());

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("kdc_store_test_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_state() -> GraphState {
        GraphState {
            name: "pg".to_string(),
            source_path: "/tmp/pg.dimacs".to_string(),
            content_hash: 7,
            witnesses: vec![(3, vec![0, 1, 2, 5])],
            memos: vec![MemoState {
                k: 3,
                preset: "kdc".to_string(),
                vertices: vec![0, 1, 2, 5],
                status: "optimal".to_string(),
                stats: "nodes=9".to_string(),
            }],
        }
    }

    #[test]
    fn append_then_reopen_recovers_state() {
        let dir = tmp_dir("roundtrip");
        let (store, recovered) = Store::open(&dir).unwrap();
        assert!(recovered.is_empty());
        assert_eq!(
            store.counters().recoveries,
            0,
            "first boot is not a recovery"
        );
        for rec in sample_state().records() {
            store.append(&rec).unwrap();
        }
        assert_eq!(store.counters().journal_appends, 3);
        drop(store);

        let (store, recovered) = Store::open(&dir).unwrap();
        assert_eq!(recovered, vec![sample_state()]);
        let c = store.counters();
        assert_eq!(c.recoveries, 1);
        assert_eq!(c.torn_records_dropped + c.corrupt_records_dropped, 0);
        // Recovery compacted: journal is back to a bare header.
        let journal = fs::read(dir.join(JOURNAL_FILE)).unwrap();
        assert_eq!(journal, codec::HEADER);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_journal_tail_is_truncated_on_reopen() {
        let dir = tmp_dir("torn");
        let (store, _) = Store::open(&dir).unwrap();
        let records = sample_state().records();
        for rec in &records {
            store.append(rec).unwrap();
        }
        drop(store);
        // Tear the last frame by hand, as a mid-append SIGKILL would.
        let path = dir.join(JOURNAL_FILE);
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 4]).unwrap();

        let (store, recovered) = Store::open(&dir).unwrap();
        assert_eq!(store.counters().torn_records_dropped, 1);
        // The memo (last record) is gone; identity and witness survive.
        let mut expect = sample_state();
        expect.memos.clear();
        assert_eq!(recovered, vec![expect.clone()]);
        drop(store);
        // The torn tail was compacted away: a third open is clean.
        let (store, recovered) = Store::open(&dir).unwrap();
        assert_eq!(store.counters().torn_records_dropped, 0);
        assert_eq!(recovered, vec![expect]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_folds_duplicates_and_resets_cadence() {
        let dir = tmp_dir("compact");
        let (store, _) = Store::open(&dir).unwrap();
        let state = sample_state();
        for rec in state.records() {
            store.append(&rec).unwrap();
        }
        // A better witness for the same k overrides on fold.
        store
            .append(&Record::Witness {
                graph: "pg".to_string(),
                k: 3,
                vertices: vec![0, 1, 2, 5, 9],
            })
            .unwrap();
        let mut expect = state.clone();
        expect.witnesses = vec![(3, vec![0, 1, 2, 5, 9])];
        store.compact(&[expect.clone()]).unwrap();
        assert_eq!(store.counters().snapshot_writes, 2, "open + explicit");
        drop(store);
        let (_store, recovered) = Store::open(&dir).unwrap();
        assert_eq!(recovered, vec![expect]);
        assert!(
            !fs::read_dir(&dir)
                .unwrap()
                .any(|e| { e.unwrap().file_name().to_string_lossy().starts_with("tmp-") }),
            "compaction must not leak tmp files"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_write_fault_leaves_a_replayable_tail() {
        let _g = FAULT_GUARD.lock().unwrap_or_else(PoisonError::into_inner);
        let dir = tmp_dir("fault_torn");
        let (store, _) = Store::open(&dir).unwrap();
        let records = sample_state().records();
        store.append(&records[0]).unwrap();
        kdc_faults::install_plan("store_write:torn:n=1").unwrap();
        let err = store.append(&records[1]).unwrap_err();
        assert!(err.contains("torn"), "{err}");
        kdc_faults::disarm_all();
        // The journal now ends in half a frame; the good prefix survives.
        drop(store);
        let (store, recovered) = Store::open(&dir).unwrap();
        assert_eq!(store.counters().torn_records_dropped, 1);
        assert_eq!(recovered.len(), 1);
        assert_eq!(recovered[0].name, "pg");
        assert!(recovered[0].witnesses.is_empty(), "torn witness dropped");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn read_fault_falls_back_cold() {
        let _g = FAULT_GUARD.lock().unwrap_or_else(PoisonError::into_inner);
        let dir = tmp_dir("fault_read");
        let (store, _) = Store::open(&dir).unwrap();
        for rec in sample_state().records() {
            store.append(&rec).unwrap();
        }
        drop(store);
        kdc_faults::install_plan("store_read:error:n=1").unwrap();
        let (store, recovered) = Store::open(&dir).unwrap();
        kdc_faults::disarm_all();
        assert!(recovered.is_empty(), "unreadable state must start cold");
        assert_eq!(store.counters().recoveries, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn append_reports_compaction_due() {
        let dir = tmp_dir("cadence");
        let (store, _) = Store::open(&dir).unwrap();
        let rec = Record::Graph {
            name: "g".to_string(),
            source_path: "p".to_string(),
            content_hash: 1,
        };
        for i in 1..=COMPACT_EVERY {
            let due = store.append(&rec).unwrap();
            assert_eq!(due, i == COMPACT_EVERY, "append {i}");
        }
        store.compact(&[]).unwrap();
        assert!(!store.append(&rec).unwrap(), "cadence resets after compact");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn content_hash_is_stable_and_input_sensitive() {
        assert_eq!(content_hash(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(content_hash(b"p edge 3 2"), content_hash(b"p edge 3 3"));
        assert_eq!(content_hash(b"abc"), content_hash(b"abc"));
    }
}
