//! The on-disk record codec: CRC-framed, length-prefixed records behind an
//! 8-byte file header, shared by the snapshot and the journal.
//!
//! ## File layout
//!
//! ```text
//! file   := header frame*
//! header := magic(7) version(1)            -- b"KDCSTOR" 0x01
//! frame  := len(u32 LE) crc(u32 LE) payload(len bytes)
//! ```
//!
//! `crc` is CRC-32 (IEEE polynomial) over the payload alone. [`replay`]
//! walks frames in order and **stops at the first bad frame**: a frame that
//! runs past end-of-file is *torn* (an interrupted append), a complete frame
//! whose checksum or payload does not parse is *corrupt*. Either way the
//! valid prefix before the bad frame is returned intact and the tail is
//! reported dropped, never propagated — a single byte of damage can only
//! ever cost the records at and after the damage, which the journal
//! contract (append-only, compacted into snapshots) already tolerates.
//!
//! ## Payload encoding
//!
//! Record payloads are a line of UTF-8 fields separated by `\x1f` (unit
//! separator), the first field being the record tag. Strings embedded in a
//! record (paths, presets, opaque stats) must not contain `\x1f`, which
//! [`encode_record`] enforces by replacing it with `?` — the store never
//! produces such strings itself.

/// File magic: seven bytes of magic plus one format-version byte.
pub const HEADER: [u8; 8] = *b"KDCSTOR\x01";

/// Upper bound on a single record payload; a `len` beyond this is treated
/// as corruption rather than an instruction to allocate gigabytes.
pub const MAX_RECORD_LEN: u32 = 16 * 1024 * 1024;

/// Field separator inside a payload (ASCII unit separator).
const SEP: char = '\x1f';

/// One durable fact. The store's files are a sequence of these; later
/// records override earlier ones record-by-record (last write wins).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Record {
    /// Identity of a graph the daemon solved on: cache name, the file it
    /// was parsed from, and the FNV-1a hash of that file's bytes.
    Graph {
        /// Cache name the graph was registered under.
        name: String,
        /// Source path the graph was parsed from.
        source_path: String,
        /// [`content_hash`](crate::content_hash) of the source file bytes.
        content_hash: u64,
    },
    /// A best-known k-defective clique witness for `graph` at defect
    /// budget `k`.
    Witness {
        /// Cache name of the graph this witness belongs to.
        graph: String,
        /// Defect budget the witness was found under.
        k: u64,
        /// Witness vertex ids.
        vertices: Vec<u64>,
    },
    /// A proven-optimal memo entry for `(graph, k, preset)`.
    Memo {
        /// Cache name of the graph this memo belongs to.
        graph: String,
        /// Defect budget of the memoized query.
        k: u64,
        /// Options preset the proof ran under.
        preset: String,
        /// Optimal witness vertex ids.
        vertices: Vec<u64>,
        /// Solve status token (see `kdc::Status::as_token`).
        status: String,
        /// Opaque compact-encoded search stats.
        stats: String,
    },
}

/// CRC-32 (IEEE 802.3 polynomial, reflected), table-driven.
pub fn crc32(bytes: &[u8]) -> u32 {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        t
    });
    let mut crc = !0u32;
    for &b in bytes {
        crc = table[((crc ^ u32::from(b)) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Strips the field separator out of an embedded string so a hostile path
/// or preset cannot smuggle extra fields into a payload.
fn clean(s: &str) -> String {
    if s.contains(SEP) {
        s.replace(SEP, "?")
    } else {
        s.to_string()
    }
}

fn push_ids(out: &mut String, ids: &[u64]) {
    for (i, id) in ids.iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(&id.to_string());
    }
}

/// Encodes one record payload (no framing).
pub fn encode_record(rec: &Record) -> Vec<u8> {
    let mut s = String::new();
    match rec {
        Record::Graph {
            name,
            source_path,
            content_hash,
        } => {
            s.push('G');
            s.push(SEP);
            s.push_str(&clean(name));
            s.push(SEP);
            s.push_str(&clean(source_path));
            s.push(SEP);
            s.push_str(&content_hash.to_string());
        }
        Record::Witness { graph, k, vertices } => {
            s.push('W');
            s.push(SEP);
            s.push_str(&clean(graph));
            s.push(SEP);
            s.push_str(&k.to_string());
            s.push(SEP);
            push_ids(&mut s, vertices);
        }
        Record::Memo {
            graph,
            k,
            preset,
            vertices,
            status,
            stats,
        } => {
            s.push('M');
            s.push(SEP);
            s.push_str(&clean(graph));
            s.push(SEP);
            s.push_str(&k.to_string());
            s.push(SEP);
            s.push_str(&clean(preset));
            s.push(SEP);
            push_ids(&mut s, vertices);
            s.push(SEP);
            s.push_str(&clean(status));
            s.push(SEP);
            s.push_str(&clean(stats));
        }
    }
    s.into_bytes()
}

fn parse_ids(field: &str) -> Result<Vec<u64>, String> {
    if field.is_empty() {
        return Ok(Vec::new());
    }
    field
        .split(' ')
        .map(|t| t.parse::<u64>().map_err(|_| format!("bad vertex id {t:?}")))
        .collect()
}

/// Decodes one record payload.
///
/// # Errors
/// Describes the malformation; [`replay`] maps any error here to a corrupt
/// record.
pub fn decode_record(payload: &[u8]) -> Result<Record, String> {
    let text = std::str::from_utf8(payload).map_err(|_| "payload is not UTF-8".to_string())?;
    let fields: Vec<&str> = text.split(SEP).collect();
    match fields.as_slice() {
        ["G", name, source_path, hash] => Ok(Record::Graph {
            name: (*name).to_string(),
            source_path: (*source_path).to_string(),
            content_hash: hash
                .parse()
                .map_err(|_| format!("bad content hash {hash:?}"))?,
        }),
        ["W", graph, k, ids] => Ok(Record::Witness {
            graph: (*graph).to_string(),
            k: k.parse().map_err(|_| format!("bad k {k:?}"))?,
            vertices: parse_ids(ids)?,
        }),
        ["M", graph, k, preset, ids, status, stats] => Ok(Record::Memo {
            graph: (*graph).to_string(),
            k: k.parse().map_err(|_| format!("bad k {k:?}"))?,
            preset: (*preset).to_string(),
            vertices: parse_ids(ids)?,
            status: (*status).to_string(),
            stats: (*stats).to_string(),
        }),
        _ => Err(format!(
            "unknown record shape (tag {:?}, {} fields)",
            fields.first().copied().unwrap_or(""),
            fields.len()
        )),
    }
}

/// Wraps an encoded payload in its `len`+`crc` frame.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Encodes and frames one record.
pub fn frame_record(rec: &Record) -> Vec<u8> {
    frame(&encode_record(rec))
}

/// Renders a complete store file: header plus one frame per record.
pub fn render_file(records: &[Record]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&HEADER);
    for rec in records {
        out.extend_from_slice(&frame_record(rec));
    }
    out
}

/// What [`replay`] recovered and what it had to drop.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReplayReport {
    /// Records recovered (the valid prefix).
    pub records: usize,
    /// 1 when the file ended inside a frame (an interrupted append).
    pub torn_dropped: u64,
    /// 1 when a complete frame failed its checksum or did not parse
    /// (includes a missing or foreign header).
    pub corrupt_dropped: u64,
    /// Byte length of the valid prefix (header plus intact frames).
    pub valid_len: usize,
}

/// Replays a store file, returning the longest valid prefix of records and
/// a report on anything dropped. Never panics on arbitrary input.
pub fn replay(bytes: &[u8]) -> (Vec<Record>, ReplayReport) {
    let mut report = ReplayReport::default();
    let mut records = Vec::new();
    if bytes.len() < HEADER.len() {
        // An empty file (first boot) is clean; a short non-empty one is torn.
        if !bytes.is_empty() {
            report.torn_dropped = 1;
        }
        return (records, report);
    }
    if bytes[..HEADER.len()] != HEADER {
        report.corrupt_dropped = 1;
        return (records, report);
    }
    let mut at = HEADER.len();
    report.valid_len = at;
    loop {
        let rest = &bytes[at..];
        if rest.is_empty() {
            break;
        }
        if rest.len() < 8 {
            report.torn_dropped = 1;
            break;
        }
        let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]);
        let want = u32::from_le_bytes([rest[4], rest[5], rest[6], rest[7]]);
        if len > MAX_RECORD_LEN {
            report.corrupt_dropped = 1;
            break;
        }
        let end = 8 + len as usize;
        if rest.len() < end {
            report.torn_dropped = 1;
            break;
        }
        let payload = &rest[8..end];
        if crc32(payload) != want {
            report.corrupt_dropped = 1;
            break;
        }
        match decode_record(payload) {
            Ok(rec) => records.push(rec),
            Err(_) => {
                report.corrupt_dropped = 1;
                break;
            }
        }
        at += end;
        report.valid_len = at;
    }
    report.records = records.len();
    (records, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<Record> {
        vec![
            Record::Graph {
                name: "pg".to_string(),
                source_path: "/tmp/pg.dimacs".to_string(),
                content_hash: 0xDEAD_BEEF_CAFE_F00D,
            },
            Record::Witness {
                graph: "pg".to_string(),
                k: 3,
                vertices: vec![0, 5, 7, 12],
            },
            Record::Memo {
                graph: "pg".to_string(),
                k: 3,
                preset: "kdc".to_string(),
                vertices: vec![0, 5, 7, 12],
                status: "optimal".to_string(),
                stats: "nodes=42 leaves=7".to_string(),
            },
        ]
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The classic check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn records_roundtrip_through_payloads() {
        for rec in sample_records() {
            let payload = encode_record(&rec);
            assert_eq!(decode_record(&payload).unwrap(), rec);
        }
        // Empty witness sets survive too.
        let empty = Record::Witness {
            graph: "g".to_string(),
            k: 0,
            vertices: Vec::new(),
        };
        assert_eq!(decode_record(&encode_record(&empty)).unwrap(), empty);
    }

    #[test]
    fn replay_recovers_a_clean_file() {
        let recs = sample_records();
        let bytes = render_file(&recs);
        let (got, report) = replay(&bytes);
        assert_eq!(got, recs);
        assert_eq!(
            report,
            ReplayReport {
                records: 3,
                torn_dropped: 0,
                corrupt_dropped: 0,
                valid_len: bytes.len(),
            }
        );
    }

    #[test]
    fn replay_truncates_a_torn_tail() {
        let recs = sample_records();
        let bytes = render_file(&recs);
        // Cut mid-way through the final frame.
        let cut = bytes.len() - 3;
        let (got, report) = replay(&bytes[..cut]);
        assert_eq!(got, recs[..2]);
        assert_eq!(report.torn_dropped, 1);
        assert_eq!(report.corrupt_dropped, 0);
    }

    #[test]
    fn replay_stops_at_a_corrupt_frame() {
        let recs = sample_records();
        let mut bytes = render_file(&recs);
        // Flip a payload byte of the second frame.
        let first_end = HEADER.len() + 8 + encode_record(&recs[0]).len();
        bytes[first_end + 8] ^= 0x40;
        let (got, report) = replay(&bytes);
        assert_eq!(got, recs[..1]);
        assert_eq!(report.corrupt_dropped, 1);
        assert_eq!(report.torn_dropped, 0);
    }

    #[test]
    fn replay_rejects_a_foreign_header_without_panicking() {
        let (got, report) = replay(b"NOTASTORE-FILE");
        assert!(got.is_empty());
        assert_eq!(report.corrupt_dropped, 1);
        let (got, report) = replay(b"");
        assert!(got.is_empty());
        assert_eq!(report, ReplayReport::default());
        let (got, report) = replay(b"KDC");
        assert!(got.is_empty());
        assert_eq!(report.torn_dropped, 1);
    }

    #[test]
    fn oversized_length_is_corruption_not_allocation() {
        let mut bytes = Vec::from(HEADER);
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        let (got, report) = replay(&bytes);
        assert!(got.is_empty());
        assert_eq!(report.corrupt_dropped, 1);
    }
}
