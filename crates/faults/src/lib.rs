#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! # kdc_faults — a process-wide fault-injection plan
//!
//! The daemon's failure handling (admission control, idle timeouts, drain,
//! the watchdog) is only trustworthy if its failure modes are *reachable on
//! demand*. This crate provides the substrate: a fixed set of named
//! injection [`Point`]s threaded through `kdc_service`, each of which can be
//! armed with one [`Action`] (typed error, delay, panic, connection drop)
//! and a firing [`Trigger`] (per-hit probability, or exactly the Nth hit).
//!
//! The design contract mirrors `kdc_obs::enabled()`: **when no point is
//! armed, every [`check`] call is one relaxed atomic load and a branch** —
//! no locks, no allocation, no RNG. All state is a fixed array of atomics,
//! so arming and checking are lock-free from any thread.
//!
//! Plans are configured three ways, all sharing one grammar:
//!
//! * programmatically — [`arm`] / [`disarm_all`] (tests, the chaos soak);
//! * from the environment — [`install_from_env`] reads `KDC_FAULTS`
//!   (`kdc serve` calls this at startup);
//! * over the wire — the daemon's debug-only `FAULTS` verb forwards to
//!   [`install_plan`] / [`status`].
//!
//! ## Plan grammar
//!
//! ```text
//! KDC_FAULTS=<rule>[,<rule>...]
//! rule    := <point>:<action>[:<trigger>]
//! point   := accept | conn_read | conn_write | job_start | solve_node
//!          | cache_insert | store_write | store_read
//! action  := error | delay=<ms> | panic | drop | torn
//! trigger := p=<0..1> | n=<N>          (default p=1, i.e. every hit)
//! ```
//!
//! Examples: `conn_read:error:p=0.01` fails 1% of request-line reads;
//! `job_start:delay=50:p=0.2` stalls a fifth of job pickups by 50 ms;
//! `cache_insert:panic:n=3` panics exactly on the third insertion;
//! `store_write:torn:n=1` truncates the first journal append mid-record.
//!
//! The crate decides *whether* and *what* to inject; the call site decides
//! *how* (a connection handler maps [`Action::DropConnection`] to a socket
//! close, the worker pool maps it to a failed job). The one shared effect
//! lives here: [`panic_now`] is the single deliberate panic, so daemon code
//! never carries a `panic!` of its own.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::time::Duration;

/// Named injection points threaded through the daemon.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Point {
    /// Connection admission: top of each connection-handler thread.
    Accept,
    /// After each request line is read off a connection.
    ConnRead,
    /// Before each response line is written to a connection.
    ConnWrite,
    /// Worker pickup: before a dequeued job spec is dispatched.
    JobStart,
    /// Solver progress: each search event emitted while a job runs.
    SolveNode,
    /// Graph-cache insertion (`LOAD` and direct inserts).
    CacheInsert,
    /// Durable-store write: each journal append and snapshot write.
    StoreWrite,
    /// Durable-store read: startup replay of snapshot + journal.
    StoreRead,
}

impl Point {
    /// Every point, in declaration order.
    pub const ALL: [Point; 8] = [
        Point::Accept,
        Point::ConnRead,
        Point::ConnWrite,
        Point::JobStart,
        Point::SolveNode,
        Point::CacheInsert,
        Point::StoreWrite,
        Point::StoreRead,
    ];

    /// The wire name used by plans and `FAULTS` output.
    pub fn as_str(self) -> &'static str {
        match self {
            Point::Accept => "accept",
            Point::ConnRead => "conn_read",
            Point::ConnWrite => "conn_write",
            Point::JobStart => "job_start",
            Point::SolveNode => "solve_node",
            Point::CacheInsert => "cache_insert",
            Point::StoreWrite => "store_write",
            Point::StoreRead => "store_read",
        }
    }

    /// Parses a wire name.
    ///
    /// # Errors
    /// Returns the list of valid names when `s` is not one of them.
    pub fn parse(s: &str) -> Result<Point, String> {
        Point::ALL
            .into_iter()
            .find(|p| p.as_str() == s)
            .ok_or_else(|| {
                let names: Vec<&str> = Point::ALL.iter().map(|p| p.as_str()).collect();
                format!("unknown fault point {s:?} (one of: {})", names.join(", "))
            })
    }
}

/// What an armed point does when it fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Action {
    /// Fail the operation with a typed error the caller reports.
    Error,
    /// Sleep for the given duration before proceeding normally.
    Delay(Duration),
    /// Panic on the executing thread (via [`panic_now`]).
    Panic,
    /// Sever the connection; non-connection points treat this as [`Action::Error`].
    DropConnection,
    /// Truncate the write mid-record, leaving a torn tail on disk
    /// (`store_write` only); every other point treats this as
    /// [`Action::Error`].
    TornWrite,
}

/// How an armed point decides whether a given hit fires.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Trigger {
    /// Fire each hit independently with this probability (clamped to 0..=1).
    Probability(f64),
    /// Fire exactly once, on the Nth hit (1-based) since arming.
    Nth(u64),
}

const ACTION_NONE: u8 = 0;
const ACTION_ERROR: u8 = 1;
const ACTION_DELAY: u8 = 2;
const ACTION_PANIC: u8 = 3;
const ACTION_DROP: u8 = 4;
const ACTION_TORN: u8 = 5;

/// Per-point armed state. Everything is a relaxed atomic: arming and
/// checking never take a lock, and a disarmed point costs one `u8` load
/// past the global kill switch.
struct PointState {
    /// `ACTION_*` discriminant; `ACTION_NONE` = disarmed.
    action: AtomicU8,
    /// Firing probability in parts-per-million (probability mode).
    prob_ppm: AtomicU32,
    /// Fire exactly on this hit count (hit-count mode; 0 = probability mode).
    nth: AtomicU64,
    /// Delay length for `ACTION_DELAY`.
    delay_ms: AtomicU64,
    /// Times the point was traversed while armed.
    hits: AtomicU64,
    /// Times the point actually fired.
    fired: AtomicU64,
}

impl PointState {
    const fn idle() -> PointState {
        PointState {
            action: AtomicU8::new(ACTION_NONE),
            prob_ppm: AtomicU32::new(0),
            nth: AtomicU64::new(0),
            delay_ms: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            fired: AtomicU64::new(0),
        }
    }
}

static POINTS: [PointState; 8] = [
    PointState::idle(),
    PointState::idle(),
    PointState::idle(),
    PointState::idle(),
    PointState::idle(),
    PointState::idle(),
    PointState::idle(),
    PointState::idle(),
];

/// Global kill switch: false (the default) compiles every [`check`] down to
/// one relaxed load and a never-taken branch.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Deterministic per-process RNG state for probability triggers.
static RNG: AtomicU64 = AtomicU64::new(0x243f_6a88_85a3_08d3);

/// Whether any fault point is currently armed. One relaxed atomic load —
/// the same kill-switch idiom as `kdc_obs::enabled()`.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Seeds the probability-trigger RNG (splitmix64 over a shared counter).
/// Chaos tests call this so a failing soak replays with the same seed.
pub fn set_seed(seed: u64) {
    RNG.store(seed, Ordering::Relaxed);
}

fn next_rand() -> u64 {
    // splitmix64 over an atomic counter: statistically fine for firing
    // decisions and deterministic for a given seed and hit order.
    let mut z = RNG
        .fetch_add(0x9e37_79b9_7f4a_7c15, Ordering::Relaxed)
        .wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Tests `point` against the installed plan. `None` when disabled, the
/// point is disarmed, or the trigger decides not to fire; `Some(action)`
/// when the call site must inject. The disabled path is branch-only.
#[inline]
pub fn check(point: Point) -> Option<Action> {
    if !enabled() {
        return None;
    }
    check_armed(point)
}

fn check_armed(point: Point) -> Option<Action> {
    let s = &POINTS[point as usize];
    let action = s.action.load(Ordering::Relaxed);
    if action == ACTION_NONE {
        return None;
    }
    let hit = s.hits.fetch_add(1, Ordering::Relaxed) + 1;
    let nth = s.nth.load(Ordering::Relaxed);
    let fire = if nth > 0 {
        hit == nth
    } else {
        let ppm = u64::from(s.prob_ppm.load(Ordering::Relaxed));
        ppm > 0 && next_rand() % 1_000_000 < ppm
    };
    if !fire {
        return None;
    }
    s.fired.fetch_add(1, Ordering::Relaxed);
    Some(match action {
        ACTION_ERROR => Action::Error,
        ACTION_DELAY => Action::Delay(Duration::from_millis(s.delay_ms.load(Ordering::Relaxed))),
        ACTION_PANIC => Action::Panic,
        ACTION_TORN => Action::TornWrite,
        _ => Action::DropConnection,
    })
}

/// The single deliberate panic of the fault layer, so daemon code carries
/// no `panic!` of its own. Never returns.
pub fn panic_now(point: Point) -> ! {
    // kdc-lint: allow(no_panic) — panicking is this function's entire
    // purpose; every Action::Panic injection funnels through here.
    panic!("kdc_faults: injected panic at {}", point.as_str())
}

/// Arms `point` with `action` fired per `trigger`, resetting the point's
/// hit/fired counters and flipping the global switch on.
pub fn arm(point: Point, action: Action, trigger: Trigger) {
    let s = &POINTS[point as usize];
    let (code, delay_ms) = match action {
        Action::Error => (ACTION_ERROR, 0),
        Action::Delay(d) => (ACTION_DELAY, d.as_millis().min(u128::from(u64::MAX)) as u64),
        Action::Panic => (ACTION_PANIC, 0),
        Action::DropConnection => (ACTION_DROP, 0),
        Action::TornWrite => (ACTION_TORN, 0),
    };
    match trigger {
        Trigger::Probability(p) => {
            let ppm = (p.clamp(0.0, 1.0) * 1_000_000.0).round() as u32;
            s.prob_ppm.store(ppm, Ordering::Relaxed);
            s.nth.store(0, Ordering::Relaxed);
        }
        Trigger::Nth(n) => {
            s.prob_ppm.store(0, Ordering::Relaxed);
            s.nth.store(n.max(1), Ordering::Relaxed);
        }
    }
    s.delay_ms.store(delay_ms, Ordering::Relaxed);
    s.hits.store(0, Ordering::Relaxed);
    s.fired.store(0, Ordering::Relaxed);
    // Publish the action last: a concurrent check sees either the old plan
    // or the fully-written new one.
    s.action.store(code, Ordering::Relaxed);
    ENABLED.store(true, Ordering::Relaxed);
}

/// Disarms every point and turns the global switch off. Hit/fired counters
/// are left readable until the next [`arm`] of the same point.
pub fn disarm_all() {
    ENABLED.store(false, Ordering::Relaxed);
    for s in &POINTS {
        s.action.store(ACTION_NONE, Ordering::Relaxed);
    }
}

/// Total injections fired across every point since their last arming.
pub fn injected_total() -> u64 {
    POINTS.iter().map(|s| s.fired.load(Ordering::Relaxed)).sum()
}

/// One rule of a parsed plan.
type Rule = (Point, Action, Trigger);

fn parse_rule(rule: &str) -> Result<Rule, String> {
    let mut parts = rule.splitn(3, ':');
    let point = Point::parse(parts.next().unwrap_or_default().trim())?;
    let action_raw = parts
        .next()
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .ok_or_else(|| format!("rule {rule:?} is missing an action (point:action[:trigger])"))?;
    let action = match action_raw.split_once('=') {
        None => match action_raw {
            "error" => Action::Error,
            "panic" => Action::Panic,
            "drop" => Action::DropConnection,
            "torn" => Action::TornWrite,
            other => {
                return Err(format!(
                    "unknown fault action {other:?} (error | delay=<ms> | panic | drop | torn)"
                ))
            }
        },
        Some(("delay", ms)) => {
            let ms: u64 = ms
                .parse()
                .map_err(|_| format!("invalid delay {ms:?} in rule {rule:?} (whole ms)"))?;
            Action::Delay(Duration::from_millis(ms))
        }
        Some((other, _)) => {
            return Err(format!(
                "unknown fault action {other:?} (error | delay=<ms> | panic | drop | torn)"
            ))
        }
    };
    let trigger = match parts.next().map(str::trim) {
        None | Some("") => Trigger::Probability(1.0),
        Some(t) => match t.split_once('=') {
            Some(("p", p)) => {
                let p: f64 = p
                    .parse()
                    .map_err(|_| format!("invalid probability {p:?} in rule {rule:?}"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("probability {p} out of [0,1] in rule {rule:?}"));
                }
                Trigger::Probability(p)
            }
            Some(("n", n)) => {
                let n: u64 = n
                    .parse()
                    .map_err(|_| format!("invalid hit count {n:?} in rule {rule:?}"))?;
                if n == 0 {
                    return Err(format!("hit count must be >= 1 in rule {rule:?}"));
                }
                Trigger::Nth(n)
            }
            _ => {
                return Err(format!(
                    "unknown trigger {t:?} in rule {rule:?} (p=<0..1> | n=<N>)"
                ))
            }
        },
    };
    Ok((point, action, trigger))
}

/// Parses and installs a full plan (see the crate docs for the grammar),
/// replacing whatever was armed before. Returns the number of rules armed;
/// an empty plan disarms everything.
///
/// # Errors
/// Returns a description of the first malformed rule; on error the
/// previous plan is left untouched.
pub fn install_plan(plan: &str) -> Result<usize, String> {
    let mut rules: Vec<Rule> = Vec::new();
    for rule in plan.split(',').map(str::trim).filter(|r| !r.is_empty()) {
        rules.push(parse_rule(rule)?);
    }
    disarm_all();
    for &(point, action, trigger) in &rules {
        arm(point, action, trigger);
    }
    Ok(rules.len())
}

/// Installs the plan from the `KDC_FAULTS` environment variable; unset or
/// empty means no faults. Returns the number of rules armed.
///
/// # Errors
/// Propagates [`install_plan`] errors for a malformed variable.
pub fn install_from_env() -> Result<usize, String> {
    match std::env::var("KDC_FAULTS") {
        Ok(plan) if !plan.trim().is_empty() => install_plan(&plan),
        _ => Ok(0),
    }
}

/// Renders the armed state of every point as a single whitespace-free
/// token (for the daemon's `FAULTS` verb): `point=action/trigger/hits/fired`
/// entries joined by `;`, or `off` when nothing is armed.
pub fn status() -> String {
    if !enabled() {
        return "off".to_string();
    }
    let mut parts: Vec<String> = Vec::new();
    for point in Point::ALL {
        let s = &POINTS[point as usize];
        let action = s.action.load(Ordering::Relaxed);
        if action == ACTION_NONE {
            continue;
        }
        let action_str = match action {
            ACTION_ERROR => "error".to_string(),
            ACTION_DELAY => format!("delay={}", s.delay_ms.load(Ordering::Relaxed)),
            ACTION_PANIC => "panic".to_string(),
            ACTION_TORN => "torn".to_string(),
            _ => "drop".to_string(),
        };
        let nth = s.nth.load(Ordering::Relaxed);
        let trigger = if nth > 0 {
            format!("n={nth}")
        } else {
            format!(
                "p={}",
                f64::from(s.prob_ppm.load(Ordering::Relaxed)) / 1_000_000.0
            )
        };
        parts.push(format!(
            "{}={action_str}/{trigger}/hits={}/fired={}",
            point.as_str(),
            s.hits.load(Ordering::Relaxed),
            s.fired.load(Ordering::Relaxed)
        ));
    }
    if parts.is_empty() {
        "off".to_string()
    } else {
        parts.join(";")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// The plan is process-global; tests that arm it must not interleave.
    static GUARD: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        GUARD
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn disabled_is_none_for_every_point() {
        let _g = locked();
        disarm_all();
        assert!(!enabled());
        for p in Point::ALL {
            assert_eq!(check(p), None);
        }
    }

    #[test]
    fn always_on_rule_fires_every_hit() {
        let _g = locked();
        arm(Point::ConnRead, Action::Error, Trigger::Probability(1.0));
        assert!(enabled());
        for _ in 0..5 {
            assert_eq!(check(Point::ConnRead), Some(Action::Error));
        }
        assert_eq!(check(Point::ConnWrite), None, "other points stay idle");
        disarm_all();
        assert_eq!(check(Point::ConnRead), None);
    }

    #[test]
    fn nth_trigger_fires_exactly_once() {
        let _g = locked();
        arm(
            Point::CacheInsert,
            Action::Delay(Duration::from_millis(7)),
            Trigger::Nth(3),
        );
        assert_eq!(check(Point::CacheInsert), None);
        assert_eq!(check(Point::CacheInsert), None);
        assert_eq!(
            check(Point::CacheInsert),
            Some(Action::Delay(Duration::from_millis(7)))
        );
        assert_eq!(
            check(Point::CacheInsert),
            None,
            "n= fires once, not from N on"
        );
        disarm_all();
    }

    #[test]
    fn probability_trigger_is_seed_deterministic_and_in_range() {
        let _g = locked();
        set_seed(42);
        arm(Point::JobStart, Action::Panic, Trigger::Probability(0.25));
        let fires: Vec<bool> = (0..1000)
            .map(|_| check(Point::JobStart).is_some())
            .collect();
        let count = fires.iter().filter(|&&f| f).count();
        assert!(
            (150..350).contains(&count),
            "p=0.25 over 1000 hits fired {count} times"
        );
        // Same seed, same hit order → same decisions.
        set_seed(42);
        arm(Point::JobStart, Action::Panic, Trigger::Probability(0.25));
        let replay: Vec<bool> = (0..1000)
            .map(|_| check(Point::JobStart).is_some())
            .collect();
        assert_eq!(fires, replay);
        disarm_all();
    }

    #[test]
    fn plan_grammar_roundtrips() {
        let _g = locked();
        let n = install_plan(
            "accept:delay=5:p=0.5, conn_read:error, job_start:panic:n=2, \
             cache_insert:drop:p=0.01, store_write:torn:n=1",
        )
        .unwrap();
        assert_eq!(n, 5);
        assert!(enabled());
        let s = status();
        assert!(s.contains("accept=delay=5/p=0.5"), "{s}");
        assert!(s.contains("conn_read=error/p=1"), "{s}");
        assert!(s.contains("job_start=panic/n=2"), "{s}");
        assert!(s.contains("cache_insert=drop/p=0.01"), "{s}");
        assert!(s.contains("store_write=torn/n=1"), "{s}");
        assert!(!s.contains(' '), "status must be a single token: {s}");
        assert_eq!(install_plan("").unwrap(), 0);
        assert!(!enabled());
        assert_eq!(status(), "off");
    }

    #[test]
    fn malformed_plans_are_rejected_and_leave_state_armed() {
        let _g = locked();
        install_plan("conn_read:error").unwrap();
        for bad in [
            "nowhere:error",
            "conn_read",
            "conn_read:frobnicate",
            "conn_read:delay=fast",
            "conn_read:error:p=2",
            "conn_read:error:p=-0.1",
            "conn_read:error:n=0",
            "conn_read:error:often",
        ] {
            assert!(install_plan(bad).is_err(), "{bad:?} must be rejected");
        }
        assert!(enabled(), "a rejected plan must not clobber the armed one");
        disarm_all();
    }

    #[test]
    fn injected_total_counts_fires() {
        let _g = locked();
        install_plan("conn_write:error:n=1").unwrap();
        // Other points may hold stale `fired` counts from earlier tests
        // (counters survive disarm until the next arm), so assert the delta.
        let before = injected_total();
        assert_eq!(check(Point::ConnWrite), Some(Action::Error));
        assert_eq!(check(Point::ConnWrite), None);
        assert_eq!(injected_total(), before + 1);
        disarm_all();
    }

    #[test]
    fn point_names_roundtrip() {
        for p in Point::ALL {
            assert_eq!(Point::parse(p.as_str()).unwrap(), p);
        }
        assert!(Point::parse("bogus").is_err());
    }
}
