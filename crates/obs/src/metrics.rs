//! Process-global metrics registry: counters, gauges and log-linear
//! histograms with Prometheus text exposition.
//!
//! Series are registered by name (optionally with one label pair) and the
//! returned handles are cheap clones sharing the underlying atomics, so hot
//! paths record without touching the registry lock. The registry lock (the
//! `series` mutex, rank 9 in `LOCK_ORDER.md`) is only taken by
//! `register_*` calls and by [`Registry::render_prometheus`].

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// Number of histogram buckets: values 0..=3 get unit buckets, then each
/// power-of-two octave `[2^m, 2^{m+1})` for `m in 2..=63` is split into 4
/// linear sub-buckets, giving `4 + 62 * 4 = 252` fixed boundaries shared by
/// every histogram (which is what makes them mergeable).
pub const NUM_BUCKETS: usize = 252;

/// Sub-buckets per octave (power of two).
const SUBS: u64 = 4;

/// Maps a sample to its bucket index. Monotone non-decreasing in `value`.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value < SUBS {
        return value as usize;
    }
    let msb = 63 - value.leading_zeros() as usize; // >= 2
    let sub = ((value >> (msb - 2)) & (SUBS - 1)) as usize;
    (msb - 1) * SUBS as usize + sub
}

/// Inclusive lower bound of bucket `i`.
#[inline]
pub fn bucket_lo(i: usize) -> u64 {
    if i < SUBS as usize {
        return i as u64;
    }
    let msb = i / SUBS as usize + 1;
    let sub = (i % SUBS as usize) as u64;
    (1u64 << msb) + sub * (1u64 << (msb - 2))
}

/// Width of bucket `i` (number of distinct sample values it covers).
#[inline]
pub fn bucket_width(i: usize) -> u64 {
    if i < SUBS as usize {
        1
    } else {
        1u64 << (i / SUBS as usize - 1)
    }
}

/// Inclusive upper bound of bucket `i`, saturating at `u64::MAX`.
#[inline]
pub fn bucket_hi(i: usize) -> u64 {
    bucket_lo(i).saturating_add(bucket_width(i) - 1)
}

/// Monotonically increasing counter handle.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Increments by one (no-op while observability is disabled).
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n` (no-op while observability is disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Signed gauge handle (e.g. queue depth).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Adds `n` (no-op while observability is disabled).
    #[inline]
    pub fn add(&self, n: i64) {
        if crate::enabled() {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Subtracts `n` (no-op while observability is disabled).
    #[inline]
    pub fn sub(&self, n: i64) {
        self.add(-n);
    }

    /// Sets the gauge to `v` (no-op while observability is disabled).
    pub fn set(&self, v: i64) {
        if crate::enabled() {
            self.0.store(v, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Shared histogram storage: fixed log-linear buckets plus count and sum.
#[derive(Debug)]
struct HistogramCore {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl HistogramCore {
    fn new() -> Self {
        HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// Log-linear latency histogram handle. All histograms share the same fixed
/// bucket boundaries, so snapshots merge bucketwise across workers.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramCore>);

impl Default for Histogram {
    fn default() -> Self {
        Histogram(Arc::new(HistogramCore::new()))
    }
}

impl Histogram {
    /// Records one sample (no-op while observability is disabled).
    #[inline]
    pub fn observe(&self, value: u64) {
        if !crate::enabled() {
            return;
        }
        self.0.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Takes a consistent-enough snapshot for rendering and quantiles.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .0
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.0.count.load(Ordering::Relaxed),
            sum: self.0.sum.load(Ordering::Relaxed),
        }
    }
}

/// Plain (non-atomic) histogram state: the mergeable value object.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts, indexed by [`bucket_index`].
    pub buckets: Vec<u64>,
    /// Total number of samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Builds a snapshot from raw samples (test and merge-law convenience).
    pub fn from_samples(samples: &[u64]) -> Self {
        let mut s = HistogramSnapshot::default();
        for &v in samples {
            s.buckets[bucket_index(v)] += 1;
            s.count += 1;
            s.sum = s.sum.wrapping_add(v);
        }
        s
    }

    /// Bucketwise merge: associative and commutative by construction.
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        let mut out = self.clone();
        for (a, b) in out.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        out.count += other.count;
        out.sum = out.sum.wrapping_add(other.sum);
        out
    }

    /// Estimated quantile `q` in `[0, 1]`: the inclusive upper bound of the
    /// smallest bucket whose cumulative count reaches rank `ceil(q * count)`.
    /// Overestimates the true quantile by at most one bucket width.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            cum += b;
            if cum >= rank {
                return bucket_hi(i);
            }
        }
        bucket_hi(NUM_BUCKETS - 1)
    }
}

/// What a registered series stores.
#[derive(Clone, Debug)]
enum SeriesEntry {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl SeriesEntry {
    fn kind(&self) -> &'static str {
        match self {
            SeriesEntry::Counter(_) => "counter",
            SeriesEntry::Gauge(_) => "gauge",
            SeriesEntry::Histogram(_) => "histogram",
        }
    }
}

/// Series identity: base name plus at most one label pair.
type SeriesKey = (String, Option<(String, String)>);

/// Process-global metrics registry.
///
/// Registration is idempotent get-or-create keyed on `(name, label)`; the
/// returned handle shares storage with every other handle for the same key.
/// Registering an existing key as a different kind returns a fresh detached
/// handle (recording to it is harmless but it is never exported) — callers
/// are expected to keep one kind per name, which tests pin.
pub struct Registry {
    /// Rank 8 in `LOCK_ORDER.md`: leaf lock, never held across other locks.
    series: Mutex<BTreeMap<SeriesKey, SeriesEntry>>,
}

impl fmt::Debug for Registry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let n = self
            .series
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len();
        f.debug_struct("Registry").field("series", &n).finish()
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// Creates an empty registry. Most callers want [`registry`] instead.
    pub fn new() -> Self {
        Registry {
            series: Mutex::new(BTreeMap::new()),
        }
    }

    fn entry(
        &self,
        name: &str,
        label: Option<(&str, &str)>,
        make: fn() -> SeriesEntry,
    ) -> SeriesEntry {
        let key: SeriesKey = (
            name.to_string(),
            label.map(|(k, v)| (k.to_string(), v.to_string())),
        );
        let mut map = self.series.lock().unwrap_or_else(PoisonError::into_inner);
        let entry = map.entry(key).or_insert_with(make);
        if std::mem::discriminant(entry) == std::mem::discriminant(&make()) {
            entry.clone()
        } else {
            make()
        }
    }

    /// Gets or creates the counter `name`.
    pub fn register_counter(&self, name: &str) -> Counter {
        match self.entry(name, None, || SeriesEntry::Counter(Counter::default())) {
            SeriesEntry::Counter(c) => c,
            _ => Counter::default(),
        }
    }

    /// Gets or creates the counter `name{label_key="label_value"}`.
    pub fn register_counter_labeled(
        &self,
        name: &str,
        label_key: &str,
        label_value: &str,
    ) -> Counter {
        match self.entry(name, Some((label_key, label_value)), || {
            SeriesEntry::Counter(Counter::default())
        }) {
            SeriesEntry::Counter(c) => c,
            _ => Counter::default(),
        }
    }

    /// Gets or creates the gauge `name`.
    pub fn register_gauge(&self, name: &str) -> Gauge {
        match self.entry(name, None, || SeriesEntry::Gauge(Gauge::default())) {
            SeriesEntry::Gauge(g) => g,
            _ => Gauge::default(),
        }
    }

    /// Gets or creates the histogram `name`.
    pub fn register_histogram(&self, name: &str) -> Histogram {
        match self.entry(name, None, || SeriesEntry::Histogram(Histogram::default())) {
            SeriesEntry::Histogram(h) => h,
            _ => Histogram::default(),
        }
    }

    /// Gets or creates the histogram `name{label_key="label_value"}`.
    pub fn register_histogram_labeled(
        &self,
        name: &str,
        label_key: &str,
        label_value: &str,
    ) -> Histogram {
        match self.entry(name, Some((label_key, label_value)), || {
            SeriesEntry::Histogram(Histogram::default())
        }) {
            SeriesEntry::Histogram(h) => h,
            _ => Histogram::default(),
        }
    }

    /// Renders every registered series in Prometheus text exposition
    /// format (v0.0.4): `# TYPE` headers, counter/gauge sample lines, and
    /// `_bucket{le=".."}` / `_sum` / `_count` triples for histograms.
    /// Histogram buckets are emitted up to the last non-empty one plus
    /// `+Inf`, keeping the payload proportional to the data.
    pub fn render_prometheus(&self) -> String {
        let map = self.series.lock().unwrap_or_else(PoisonError::into_inner);
        let mut out = String::new();
        let mut last_name: Option<&str> = None;
        for ((name, label), entry) in map.iter() {
            if last_name != Some(name.as_str()) {
                out.push_str("# TYPE ");
                out.push_str(name);
                out.push(' ');
                out.push_str(entry.kind());
                out.push('\n');
                last_name = Some(name.as_str());
            }
            let label_str = label
                .as_ref()
                .map(|(k, v)| format!("{k}=\"{v}\""))
                .unwrap_or_default();
            match entry {
                SeriesEntry::Counter(c) => {
                    push_sample(&mut out, name, &label_str, &c.get().to_string());
                }
                SeriesEntry::Gauge(g) => {
                    push_sample(&mut out, name, &label_str, &g.get().to_string());
                }
                SeriesEntry::Histogram(h) => {
                    let snap = h.snapshot();
                    let last = snap
                        .buckets
                        .iter()
                        .rposition(|&b| b > 0)
                        .map_or(0, |i| i + 1);
                    let mut cum = 0u64;
                    for i in 0..last {
                        cum += snap.buckets[i];
                        let le = format!(
                            "{}le=\"{}\"",
                            if label_str.is_empty() {
                                String::new()
                            } else {
                                format!("{label_str},")
                            },
                            bucket_hi(i)
                        );
                        push_sample(&mut out, &format!("{name}_bucket"), &le, &cum.to_string());
                    }
                    let inf = format!(
                        "{}le=\"+Inf\"",
                        if label_str.is_empty() {
                            String::new()
                        } else {
                            format!("{label_str},")
                        }
                    );
                    push_sample(
                        &mut out,
                        &format!("{name}_bucket"),
                        &inf,
                        &snap.count.to_string(),
                    );
                    push_sample(
                        &mut out,
                        &format!("{name}_sum"),
                        &label_str,
                        &snap.sum.to_string(),
                    );
                    push_sample(
                        &mut out,
                        &format!("{name}_count"),
                        &label_str,
                        &snap.count.to_string(),
                    );
                }
            }
        }
        out
    }
}

fn push_sample(out: &mut String, name: &str, labels: &str, value: &str) {
    out.push_str(name);
    if !labels.is_empty() {
        out.push('{');
        out.push_str(labels);
        out.push('}');
    }
    out.push(' ');
    out.push_str(value);
    out.push('\n');
}

/// The process-global registry, created on first use.
pub fn registry() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_scheme_is_consistent() {
        for i in 0..NUM_BUCKETS {
            assert_eq!(bucket_index(bucket_lo(i)), i, "lo of bucket {i}");
            assert_eq!(bucket_index(bucket_hi(i)), i, "hi of bucket {i}");
            if i > 0 {
                assert_eq!(bucket_hi(i - 1) + 1, bucket_lo(i), "contiguous at {i}");
            }
        }
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn registry_is_idempotent_and_renders() {
        let reg = Registry::new();
        let a = reg.register_counter("kdc_test_hits_total");
        let b = reg.register_counter("kdc_test_hits_total");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        let g = reg.register_gauge("kdc_test_depth");
        g.set(5);
        g.sub(2);
        let h = reg.register_histogram_labeled("kdc_test_wait_ns", "queue", "solve");
        h.observe(7);
        h.observe(900);
        let text = reg.render_prometheus();
        assert!(
            text.contains("# TYPE kdc_test_hits_total counter"),
            "{text}"
        );
        assert!(text.contains("kdc_test_hits_total 3"), "{text}");
        assert!(text.contains("kdc_test_depth 3"), "{text}");
        assert!(text.contains("# TYPE kdc_test_wait_ns histogram"), "{text}");
        assert!(
            text.contains("kdc_test_wait_ns_bucket{queue=\"solve\",le=\"+Inf\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("kdc_test_wait_ns_sum{queue=\"solve\"} 907"),
            "{text}"
        );
    }

    #[test]
    fn disabled_recording_is_a_no_op() {
        let c = Counter::default();
        let h = Histogram::default();
        crate::set_enabled(false);
        c.inc();
        h.observe(10);
        crate::set_enabled(true);
        assert_eq!(c.get(), 0);
        assert_eq!(h.snapshot().count, 0);
        c.inc();
        assert_eq!(c.get(), 1);
    }

    #[test]
    fn quantile_tracks_medians() {
        let s = HistogramSnapshot::from_samples(&[1, 2, 3, 4, 100]);
        let p50 = s.quantile(0.5);
        assert!((3..=3).contains(&p50), "p50 = {p50}");
        let p99 = s.quantile(0.99);
        assert!(
            p99 >= 100 && p99 - 100 <= bucket_width(bucket_index(100)),
            "p99 = {p99}"
        );
    }
}
