//! Phase tracing: named spans recorded into a bounded, preallocated ring
//! buffer, exportable as chrome://tracing JSON.
//!
//! A [`Tracer`] is a cheap `Arc` clone shared by every thread working on
//! one job. Recording a span is a clock read plus one short mutex-guarded
//! ring write — no allocation after construction, which keeps the solver's
//! hot-path allocation guard intact. When the ring is full the oldest
//! spans are overwritten and counted in `dropped`.

use std::cell::RefCell;
use std::fmt;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

/// Default ring capacity per tracer (spans).
pub const DEFAULT_CAPACITY: usize = 4096;

/// One completed span.
#[derive(Clone, Copy, Debug)]
pub struct SpanRecord {
    /// Phase name (static so recording never allocates).
    pub name: &'static str,
    /// Start offset from the tracer's epoch, in nanoseconds.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Small process-unique id of the recording thread.
    pub tid: u64,
}

/// Aggregated per-phase totals, used by `--profile` and the slow-query log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PhaseTotal {
    /// Phase name.
    pub name: &'static str,
    /// Number of spans recorded under this name.
    pub count: u64,
    /// Total nanoseconds across those spans.
    pub total_ns: u64,
}

struct Ring {
    spans: Vec<SpanRecord>,
    /// Next overwrite position once the ring is full.
    head: usize,
    /// Spans overwritten after the ring filled.
    dropped: u64,
}

struct TracerInner {
    ring: Mutex<Ring>,
    epoch: Instant,
    cap: usize,
}

/// A bounded span recorder. Clones share the same ring.
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tracer")
            .field("cap", &self.inner.cap)
            .finish()
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new()
    }
}

static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    static CURRENT: RefCell<Option<Tracer>> = const { RefCell::new(None) };
}

impl Tracer {
    /// Creates a tracer with the default ring capacity.
    pub fn new() -> Self {
        Tracer::with_capacity(DEFAULT_CAPACITY)
    }

    /// Creates a tracer whose ring holds at most `cap` spans. The ring is
    /// allocated up front; recording never allocates.
    pub fn with_capacity(cap: usize) -> Self {
        let cap = cap.max(1);
        Tracer {
            inner: Arc::new(TracerInner {
                ring: Mutex::new(Ring {
                    spans: Vec::with_capacity(cap),
                    head: 0,
                    dropped: 0,
                }),
                epoch: Instant::now(),
                cap,
            }),
        }
    }

    /// Starts a span; it is recorded when the returned guard drops.
    #[must_use = "the span is recorded when the guard drops"]
    pub fn span(&self, name: &'static str) -> Span {
        Span {
            tracer: self.clone(),
            name,
            start: Instant::now(),
        }
    }

    /// Installs this tracer as the current one for this thread, restoring
    /// the previous tracer when the returned guard drops. Enables the free
    /// function [`span`] in code that has no `Tracer` in scope.
    #[must_use = "the previous tracer is restored when the guard drops"]
    pub fn set_current(&self) -> CurrentGuard {
        let prev = CURRENT.with(|c| c.replace(Some(self.clone())));
        CurrentGuard { prev }
    }

    fn record(&self, name: &'static str, start: Instant, end: Instant) {
        let start_ns = start
            .saturating_duration_since(self.inner.epoch)
            .as_nanos()
            .min(u128::from(u64::MAX)) as u64;
        let dur_ns = end
            .saturating_duration_since(start)
            .as_nanos()
            .min(u128::from(u64::MAX)) as u64;
        let tid = TID.with(|t| *t);
        let rec = SpanRecord {
            name,
            start_ns,
            dur_ns,
            tid,
        };
        let mut ring = self
            .inner
            .ring
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if ring.spans.len() < self.inner.cap {
            ring.spans.push(rec);
        } else {
            let head = ring.head;
            ring.spans[head] = rec;
            ring.head = (head + 1) % self.inner.cap;
            ring.dropped += 1;
        }
    }

    /// Number of spans currently held (bounded by the ring capacity).
    pub fn len(&self) -> usize {
        self.inner
            .ring
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .spans
            .len()
    }

    /// True when no span has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of spans overwritten after the ring filled.
    pub fn dropped(&self) -> u64 {
        self.inner
            .ring
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .dropped
    }

    /// Per-phase totals, sorted by name for deterministic output.
    pub fn summary(&self) -> Vec<PhaseTotal> {
        let ring = self
            .inner
            .ring
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let mut totals: Vec<PhaseTotal> = Vec::new();
        for s in &ring.spans {
            match totals.iter_mut().find(|t| t.name == s.name) {
                Some(t) => {
                    t.count += 1;
                    t.total_ns += s.dur_ns;
                }
                None => totals.push(PhaseTotal {
                    name: s.name,
                    count: 1,
                    total_ns: s.dur_ns,
                }),
            }
        }
        totals.sort_by_key(|t| t.name);
        totals
    }

    /// Exports the recorded spans as a compact (single-line, no spaces)
    /// chrome://tracing JSON array of complete (`"ph":"X"`) events with
    /// microsecond timestamps. Load via chrome://tracing or Perfetto.
    pub fn export_chrome_json(&self) -> String {
        let ring = self
            .inner
            .ring
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let mut spans: Vec<SpanRecord> = ring.spans.clone();
        drop(ring);
        spans.sort_by_key(|s| s.start_ns);
        let mut out = String::with_capacity(spans.len() * 64 + 2);
        out.push('[');
        for (i, s) in spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{}.{:03},\"dur\":{}.{:03},\"pid\":1,\"tid\":{}}}",
                s.name,
                s.start_ns / 1000,
                s.start_ns % 1000,
                s.dur_ns / 1000,
                s.dur_ns % 1000,
                s.tid
            );
        }
        out.push(']');
        out
    }
}

/// RAII guard returned by [`Tracer::span`]; records the span on drop.
pub struct Span {
    tracer: Tracer,
    name: &'static str,
    start: Instant,
}

impl Drop for Span {
    fn drop(&mut self) {
        self.tracer.record(self.name, self.start, Instant::now());
    }
}

impl fmt::Debug for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Span").field("name", &self.name).finish()
    }
}

/// Restores the thread's previous current tracer on drop.
pub struct CurrentGuard {
    prev: Option<Tracer>,
}

impl Drop for CurrentGuard {
    fn drop(&mut self) {
        let prev = self.prev.take();
        CURRENT.with(|c| *c.borrow_mut() = prev);
    }
}

impl fmt::Debug for CurrentGuard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CurrentGuard").finish()
    }
}

/// A span against the thread's current tracer, or a no-op when none is
/// installed. Hold the returned guard for the duration of the phase.
#[must_use = "the span is recorded when the guard drops"]
pub fn span(name: &'static str) -> MaybeSpan {
    let tracer = CURRENT.with(|c| c.borrow().clone());
    MaybeSpan(tracer.map(|t| t.span(name)))
}

/// Either a live [`Span`] or a no-op, from the free function [`span`].
#[derive(Debug)]
pub struct MaybeSpan(Option<Span>);

impl MaybeSpan {
    /// True when a tracer was installed and the span will be recorded.
    pub fn is_recording(&self) -> bool {
        self.0.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_and_export() {
        let t = Tracer::new();
        {
            let _outer = t.span("peel");
            let _inner = t.span("tighten");
        }
        assert_eq!(t.len(), 2);
        let summary = t.summary();
        assert_eq!(summary.len(), 2);
        assert!(summary.iter().any(|p| p.name == "peel" && p.count == 1));
        let json = t.export_chrome_json();
        assert!(json.starts_with('[') && json.ends_with(']'), "{json}");
        assert!(json.contains("\"name\":\"tighten\""), "{json}");
        assert!(!json.contains(' '), "compact: {json}");
    }

    #[test]
    fn ring_is_bounded() {
        let t = Tracer::with_capacity(4);
        for _ in 0..10 {
            let _s = t.span("x");
        }
        assert_eq!(t.len(), 4);
        assert_eq!(t.dropped(), 6);
    }

    #[test]
    fn current_tracer_scopes_free_spans() {
        assert!(!span("orphan").is_recording());
        let t = Tracer::new();
        {
            let _g = t.set_current();
            let _s = span("scoped");
            assert!(_s.is_recording());
        }
        assert!(!span("after").is_recording());
        assert_eq!(t.len(), 1);
        assert_eq!(t.summary()[0].name, "scoped");
    }
}
