//! `kdc_obs` — std-only observability layer for the kDC suite.
//!
//! Three pieces, all dependency-free:
//!
//! - [`metrics`]: a process-global registry of atomic counters, gauges and
//!   log-linear latency histograms. Handles are cheap `Arc`-backed clones;
//!   recording is a relaxed atomic op guarded by one global enable flag, so
//!   the layer is near-free when disabled via [`set_enabled`].
//! - [`trace`]: lightweight phase spans recorded into a bounded,
//!   preallocated ring buffer per [`trace::Tracer`], exportable as
//!   chrome://tracing JSON.
//! - Naming: every series follows `kdc_<subsystem>_<name>` snake-case,
//!   enforced by the `metric_names` rule in `kdc_lint`.
//!
//! The registry's internal lock is rank 9 in `LOCK_ORDER.md`: it is a leaf
//! lock — no other lock in the workspace is ever acquired while it is held.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics;
pub mod trace;

pub use metrics::{registry, Counter, Gauge, Histogram, HistogramSnapshot, Registry};
pub use trace::{span, MaybeSpan, PhaseTotal, Span, Tracer};

use std::sync::atomic::{AtomicBool, Ordering};

/// Global observability switch. Defaults to enabled.
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Returns whether metric recording is currently enabled.
///
/// This is a single relaxed load; recording sites branch on it so the
/// disabled path costs one predictable branch.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Enables or disables metric recording process-wide.
///
/// Registration and reading remain available while disabled; only the
/// recording fast paths (`inc`, `add`, `observe`, bound timing) become
/// no-ops. Used by the bench harness to measure instrumentation overhead.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}
