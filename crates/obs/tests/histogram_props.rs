//! Property tests for the log-linear histogram math (ISSUE 7 satellite):
//! bucket monotonicity, merge associativity/commutativity, and the quantile
//! bracket guarantee, at 256 cases each.

use kdc_obs::metrics::{bucket_hi, bucket_index, bucket_lo, bucket_width, NUM_BUCKETS};
use kdc_obs::HistogramSnapshot;
use proptest::collection::vec;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// bucket_index is monotone non-decreasing and consistent with the
    /// bucket boundary functions.
    #[test]
    fn bucket_monotonicity(a in any::<u64>(), b in any::<u64>()) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(bucket_index(lo) <= bucket_index(hi));
        let i = bucket_index(lo);
        prop_assert!(i < NUM_BUCKETS);
        prop_assert!(bucket_lo(i) <= lo && lo <= bucket_hi(i));
        prop_assert_eq!(bucket_hi(i).saturating_sub(bucket_lo(i)) + 1, bucket_width(i));
    }

    /// Merging is commutative and associative bucketwise.
    #[test]
    fn merge_laws(
        xs in vec(0u64..1_000_000_000, 0..64),
        ys in vec(0u64..1_000_000_000, 0..64),
        zs in vec(0u64..1_000_000_000, 0..64),
    ) {
        let (a, b, c) = (
            HistogramSnapshot::from_samples(&xs),
            HistogramSnapshot::from_samples(&ys),
            HistogramSnapshot::from_samples(&zs),
        );
        prop_assert_eq!(a.merge(&b), b.merge(&a));
        prop_assert_eq!(a.merge(&b).merge(&c), a.merge(&b.merge(&c)));
        // Merging equals histogramming the concatenation.
        let mut all = xs.clone();
        all.extend_from_slice(&ys);
        prop_assert_eq!(a.merge(&b), HistogramSnapshot::from_samples(&all));
    }

    /// The reported p99 (and p50) bracket the true quantile from above
    /// within one bucket width.
    #[test]
    fn quantile_brackets_truth(
        mut samples in vec(0u64..10_000_000_000, 1..256),
        q in 0.01f64..1.0,
    ) {
        let snap = HistogramSnapshot::from_samples(&samples);
        samples.sort_unstable();
        for q in [q, 0.5, 0.99] {
            let rank = ((q * samples.len() as f64).ceil() as usize)
                .clamp(1, samples.len());
            let truth = samples[rank - 1];
            let est = snap.quantile(q);
            prop_assert!(est >= truth, "q={q}: est {est} < truth {truth}");
            prop_assert!(
                est - truth <= bucket_width(bucket_index(truth)),
                "q={q}: est {est} overshoots truth {truth} by more than one bucket"
            );
        }
    }
}
