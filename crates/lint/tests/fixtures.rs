//! Fixture-based self-tests: every rule must fire on its violation
//! fixture (exact lines) and stay silent on the torture fixture.

use kdc_lint::rules::LockOrder;
use kdc_lint::{check_source, Workspace};
use std::path::Path;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// The repo's real lock manifest, so fixture expectations track it.
fn repo_lock_order() -> LockOrder {
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../LOCK_ORDER.md");
    LockOrder::parse(&std::fs::read_to_string(manifest).expect("LOCK_ORDER.md"))
}

fn lines_of(findings: &[kdc_lint::rules::Finding], rule: &str) -> Vec<u32> {
    findings
        .iter()
        .filter(|f| f.rule == rule)
        .map(|f| f.line)
        .collect()
}

#[test]
fn l1_no_panic_fixture() {
    let src = fixture("l1_panic.rs");
    let findings = check_source("crates/service/src/fixture.rs", &src, &LockOrder::default());
    let lines = lines_of(&findings, "no_panic");
    assert_eq!(lines.len(), 5, "exactly the five violations: {findings:?}");
    for (line, what) in lines
        .iter()
        .zip(["unwrap", "expect", "panic", "todo", "unimplemented"])
    {
        let f = findings.iter().find(|f| f.line == *line).unwrap();
        assert!(f.message.contains(what), "line {line}: {}", f.message);
    }
    // The allow-comment site and the unwrap_or_else site are silent.
    assert!(
        !findings
            .iter()
            .any(|f| f.snippet.contains("unwrap_or_else")),
        "unwrap_or_else is not unwrap"
    );
    // Outside daemon scope the same file is clean.
    let elsewhere = check_source("crates/graph/src/fixture.rs", &src, &LockOrder::default());
    assert!(lines_of(&elsewhere, "no_panic").is_empty());
}

#[test]
fn l2_no_unsafe_fixture() {
    let src = fixture("l2_unsafe.rs");
    // As a library crate root: the unsafe token AND the missing forbid.
    let findings = check_source("crates/graph/src/lib.rs", &src, &LockOrder::default());
    let lines = lines_of(&findings, "no_unsafe");
    assert_eq!(lines.len(), 2, "{findings:?}");
    assert!(findings
        .iter()
        .any(|f| f.message.contains("forbid(unsafe_code)")));
    assert!(findings.iter().any(|f| f.snippet.contains("unsafe {")));
    // As a non-root module: only the token finding remains.
    let findings = check_source("crates/graph/src/other.rs", &src, &LockOrder::default());
    assert_eq!(lines_of(&findings, "no_unsafe").len(), 1);
}

#[test]
fn l3_lock_order_fixture() {
    let src = fixture("l3_lock.rs");
    let findings = check_source("crates/service/src/fixture.rs", &src, &repo_lock_order());
    let lines = lines_of(&findings, "lock_order");
    assert_eq!(lines.len(), 2, "inversion + recursion only: {findings:?}");
    let inversion = findings.iter().find(|f| f.line == lines[0]).unwrap();
    assert!(
        inversion.message.contains("rank 1") && inversion.message.contains("rank-2"),
        "{}",
        inversion.message
    );
    // Without a manifest the rule is inert.
    let silent = check_source("crates/service/src/fixture.rs", &src, &LockOrder::default());
    assert!(lines_of(&silent, "lock_order").is_empty());
}

#[test]
fn l4_hot_path_alloc_fixture() {
    let src = fixture("l4_alloc.rs");
    let findings = check_source("crates/core/src/fixture.rs", &src, &LockOrder::default());
    let lines = lines_of(&findings, "hot_path_alloc");
    assert_eq!(lines.len(), 5, "{findings:?}");
    for what in ["collect", "to_vec", "with_capacity", "new", "format"] {
        assert!(
            findings
                .iter()
                .any(|f| f.rule == "hot_path_alloc" && f.message.contains(what)),
            "missing {what}: {findings:?}"
        );
    }
    // The clean hot-path fn and the cold fn contribute nothing.
    assert!(!findings.iter().any(|f| f.snippet.contains("cold_path")));
}

#[test]
fn l5_doc_errors_fixture() {
    let src = fixture("l5_doc.rs");
    let findings = check_source("crates/api/src/fixture.rs", &src, &LockOrder::default());
    let lines = lines_of(&findings, "doc_errors");
    assert_eq!(lines.len(), 1, "{findings:?}");
    let f = findings.iter().find(|f| f.rule == "doc_errors").unwrap();
    assert!(f.message.contains("parse_thing"), "{}", f.message);
    // Outside crates/api the rule does not apply.
    let elsewhere = check_source("crates/core/src/fixture.rs", &src, &LockOrder::default());
    assert!(lines_of(&elsewhere, "doc_errors").is_empty());
}

#[test]
fn l6_metric_names_fixture() {
    let src = fixture("l6_metric.rs");
    let findings = check_source("crates/obs/src/fixture.rs", &src, &LockOrder::default());
    let lines = lines_of(&findings, "metric_names");
    assert_eq!(lines.len(), 4, "exactly the four violations: {findings:?}");
    for what in [
        "session_hits_total",
        "kdc_hits",
        "kdc_queue_Depth",
        "kdc__hits_total",
    ] {
        assert!(
            findings
                .iter()
                .any(|f| f.rule == "metric_names" && f.message.contains(what)),
            "missing {what}: {findings:?}"
        );
    }
    // Valid names, definitions, dynamic names, the allow comment and the
    // test region contribute nothing.
    assert!(
        !findings
            .iter()
            .any(|f| f.message.contains("kdc_session_hits_total")
                || f.message.contains("legacy_scrape_name")),
        "{findings:?}"
    );
}

#[test]
fn lexer_torture_is_clean_under_every_rule() {
    let src = fixture("lexer_torture.rs");
    // Daemon scope + crate root + lock manifest: the harshest combination.
    let findings = check_source("crates/service/src/fixture.rs", &src, &repo_lock_order());
    assert!(findings.is_empty(), "false positives: {findings:?}");
}

#[test]
fn binary_fails_naming_rule_file_and_line() {
    // End-to-end through the real binary on a throwaway mini-tree, so the
    // CI contract (nonzero exit, rule+file+line in output) is pinned.
    let dir = std::env::temp_dir().join(format!("kdc_lint_fixture_{}", std::process::id()));
    let src_dir = dir.join("crates/service/src");
    std::fs::create_dir_all(&src_dir).expect("mkdir");
    std::fs::write(dir.join("Cargo.toml"), "[workspace]\n").expect("write");
    std::fs::write(
        src_dir.join("bad.rs"),
        "fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n",
    )
    .expect("write");
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_kdc_lint"))
        .args(["check", "--root"])
        .arg(&dir)
        .output()
        .expect("run kdc_lint");
    assert!(!out.status.success(), "must exit nonzero on findings");
    let stdout = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(stdout.contains("no_panic"), "{stdout}");
    assert!(stdout.contains("crates/service/src/bad.rs:2"), "{stdout}");

    // And --json round-trips the same finding machine-readably.
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_kdc_lint"))
        .args(["check", "--json", "--root"])
        .arg(&dir)
        .output()
        .expect("run kdc_lint --json");
    std::fs::remove_dir_all(&dir).ok();
    assert!(!out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.trim_start().starts_with('['), "{stdout}");
    assert!(stdout.contains("\"rule\": \"no_panic\""), "{stdout}");
    assert!(
        stdout.contains("\"file\": \"crates/service/src/bad.rs\""),
        "{stdout}"
    );
    assert!(stdout.contains("\"line\": 2"), "{stdout}");
}

#[test]
fn whole_tree_is_clean() {
    // The acceptance gate: zero findings on the committed tree. Uses the
    // same entry point as the CI job.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let ws = Workspace::open(&root).expect("workspace");
    assert!(
        ws.lock_order().len() >= 8,
        "LOCK_ORDER.md must declare the hierarchy (incl. the obs registry)"
    );
    let findings = ws.check_all().expect("lint run");
    assert!(
        findings.is_empty(),
        "tree has findings:\n{}",
        kdc_lint::render_text(&findings)
    );
}
