//! The runtime half of `hot_path_alloc`: a counting global allocator
//! asserts the PR 3 zero-allocation claims directly instead of inferring
//! them from reuse counters.
//!
//! Two claims are pinned:
//! 1. after a warm-up pass, re-solving the same ego instances through
//!    `SubproblemArena` performs **zero** heap allocations (the arena and
//!    the hollow engine own all their buffers at steady state);
//! 2. a warm `Ctcp::tighten` at an already-reached bound allocates
//!    nothing (the bucket queues are drained in place).
//!
//! Everything runs inside ONE `#[test]` so no concurrent test thread can
//! pollute the counter, and the counter only counts between explicit
//! enable/disable fences. This file deliberately lives outside the lint
//! walker's `src/` scope: a `GlobalAlloc` impl is the one place the
//! workspace needs `unsafe`, and it is test-only code.

use kdc::decompose::SubproblemArena;
use kdc::SolverConfig;
use kdc_graph::ctcp::Ctcp;
use kdc_graph::gen;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

static COUNTING: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // Frees are not counted: steady state may drop nothing anyway,
        // and the claim under test is about *acquiring* memory.
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Runs `f` with allocation counting on; returns how many allocations
/// (malloc/calloc/realloc) it performed.
fn count_allocs<R>(f: impl FnOnce() -> R) -> (u64, R) {
    ALLOCS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    let r = f();
    COUNTING.store(false, Ordering::SeqCst);
    (ALLOCS.load(Ordering::SeqCst), r)
}

/// One pass of the ego-subproblem loop over every vertex: universe =
/// v ∪ N(v) in reduced ids, exactly like the decomposition worker's
/// distance-≤2 build but deterministic and self-contained.
fn ego_pass(arena: &mut SubproblemArena, adj: &[Vec<u32>], lb: usize) -> u64 {
    let mut solved = 0;
    for v in 0..adj.len() as u32 {
        arena.begin_instance();
        arena.admit(v);
        for &w in &adj[v as usize] {
            arena.admit(w);
        }
        for &w in &adj[v as usize] {
            for &x in &adj[w as usize] {
                arena.admit(x);
            }
        }
        if arena.universe_len() > lb {
            arena.solve_instance(adj, v, lb, None);
            solved += 1;
        }
    }
    solved
}

#[test]
fn warm_paths_do_not_allocate() {
    let mut rng = gen::seeded_rng(20230617);
    let g = gen::gnp(120, 0.12, &mut rng);
    let k = 2;
    let adj: Vec<Vec<u32>> = (0..g.n() as u32).map(|v| g.neighbors(v).to_vec()).collect();

    // ---- claim 1: steady-state arena re-solves -------------------------
    let mut arena = SubproblemArena::new(g.n(), k, SolverConfig::kdc());
    let lb = 4;
    let warm_solved = ego_pass(&mut arena, &adj, lb);
    assert!(warm_solved > 10, "graph too sparse to exercise the arena");
    let reuses_before = arena.reuses();
    let (allocs, resolved) = count_allocs(|| ego_pass(&mut arena, &adj, lb));
    assert_eq!(resolved, warm_solved, "same instances both passes");
    assert_eq!(
        arena.reuses() - reuses_before,
        warm_solved,
        "every warm instance must be an arena reuse"
    );
    assert_eq!(
        allocs, 0,
        "steady-state ego re-solves must perform zero heap allocations"
    );

    // ---- claim 2: warm Ctcp::tighten on an already-tight graph ---------
    let mut ctcp = Ctcp::with_rules(&g, k, true, true);
    let removed = ctcp.tighten(lb);
    assert!(
        removed.vertices.len() as u64 + removed.edges > 0,
        "warm-up tighten should remove something at lb={lb}"
    );
    let (allocs, removed) = count_allocs(|| ctcp.tighten(lb));
    assert_eq!(removed.vertices.len(), 0, "already at fixpoint");
    assert_eq!(removed.edges, 0, "already at fixpoint");
    assert_eq!(
        allocs, 0,
        "warm tighten at a reached bound must perform zero heap allocations"
    );
}
