//! Property-based robustness tests for the hand-rolled lexer: arbitrary
//! byte soup must never panic it, and code assembled from known pieces
//! must lex to exactly the idents that live *outside* literals and
//! comments — the property every rule depends on.

use kdc_lint::lexer::{lex, TokKind};
use proptest::prelude::*;

/// Idents the lexer reports for `src`.
fn idents(src: &str) -> Vec<String> {
    lex(src)
        .tokens
        .iter()
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.clone())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn lexing_never_panics(src in "[ -~\n\t]{0,300}") {
        // Printable-ASCII soup: unterminated strings, stray quotes, half
        // comments — the lexer must consume it all without panicking.
        let _ = lex(&src);
    }

    #[test]
    fn concealed_idents_stay_concealed(
        payload in "[a-z_]{1,12}",
        container in 0usize..6,
    ) {
        // Wrap a would-be ident in each literal/comment form; it must not
        // surface as an Ident token.
        let src = match container {
            0 => format!("let x = \"{payload}\";"),
            1 => format!("let x = r#\"{payload}\"#;"),
            2 => format!("let x = b\"{payload}\";"),
            3 => format!("// {payload}\nlet x = 1;"),
            4 => format!("/* {payload} */ let x = 1;"),
            5 => format!("/* outer /* {payload} */ */ let x = 1;"),
            _ => unreachable!(),
        };
        let found = idents(&src);
        prop_assert!(
            !found.iter().any(|i| i == &payload) || payload == "let" || payload == "x",
            "{payload:?} leaked out of container {container}: {found:?}"
        );
        // The surrounding code is still seen.
        prop_assert!(found.iter().any(|i| i == "let"), "lost code around {container}: {found:?}");
    }

    #[test]
    fn visible_idents_stay_visible(words in proptest::collection::vec("[a-z_]{1,10}", 1..8)) {
        // Idents joined by whitespace and noise literals lex back exactly.
        let mut src = String::new();
        for (i, w) in words.iter().enumerate() {
            if i % 2 == 0 {
                src.push_str("\"noise // string\" ");
            } else {
                src.push_str("/* noise */ ");
            }
            src.push_str(w);
            src.push(' ');
        }
        prop_assert_eq!(idents(&src), words);
    }

    #[test]
    fn line_numbers_are_monotone(src in "[ -~\n]{0,300}") {
        let lexed = lex(&src);
        let mut last = 1;
        for t in &lexed.tokens {
            prop_assert!(t.line >= last, "line went backwards at {:?}", t.text);
            last = t.line;
        }
        let line_count = src.lines().count() as u32;
        for t in &lexed.tokens {
            prop_assert!(t.line <= line_count.max(1), "line {} beyond file end", t.line);
        }
    }
}
