// Fixture: L3 lock_order violations against the repo's LOCK_ORDER.md
// ranks (state=1, entries=2, ctcp=3).

fn inverted(&self) {
    let guard = self.entries.write(); // rank 2 acquired first
    let q = self.state.lock(); // finding: rank 1 while rank 2 live
    drop(q);
    drop(guard);
}

fn recursive(&self) {
    let a = self.state.lock();
    let b = self.state.lock(); // finding: rank 1 while rank 1 live
    drop(b);
    drop(a);
}

fn in_order(&self) {
    let a = self.state.lock(); // rank 1
    let b = self.entries.read(); // rank 2 after rank 1: fine
    drop(b);
    drop(a);
}

fn released_first(&self) {
    let guard = self.entries.write();
    drop(guard);
    let q = self.state.lock(); // fine: rank-2 guard dropped above
    drop(q);
}

fn temporaries_die_at_semicolon(&self) {
    let n = self.entries.read().len();
    let q = self.state.lock(); // fine: the read() temporary is gone
    drop(q);
    let _ = n;
}

fn scoped_guard(&self) {
    {
        let guard = self.entries.write();
        drop(guard);
    }
    let q = self.state.lock(); // fine: block-scoped guard ended
    drop(q);
}
