// Fixture: L2 no_unsafe violations. Checked as a library crate root, so
// the missing #![forbid(unsafe_code)] is itself a finding.

fn peek(xs: &[u32]) -> u32 {
    unsafe { *xs.as_ptr() } // finding: unsafe token
}

fn strings_do_not_count() -> &'static str {
    "unsafe is fine inside a string literal"
}
