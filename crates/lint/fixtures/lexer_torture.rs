// Fixture: lexer stress file. Every scary token below is inside a
// literal or a comment, so a correct lexer reports ZERO findings even
// under daemon-path scoping.

/* block comment mentioning unwrap() and unsafe
   /* nested block comment: panic!("still a comment") */
   still outer */

fn literals_only() -> usize {
    let plain = "contains .unwrap() and panic!(\"x\") and unsafe";
    let raw = r#"raw with "quotes" and .expect("y") and // no comment"#;
    let rawer = r##"even r#"nested-looking"# raw strings"##;
    let bytes = b"byte string with todo!()";
    let raw_bytes = br#"raw bytes with unimplemented!()"#;
    let quote_char = '"';
    let slash_char = '/';
    let escaped_quote = '\'';
    let newline = '\n';
    let byte_char = b'!';
    let lifetime_test: &'static str = "lifetime, not a char literal";
    plain.len()
        + raw.len()
        + rawer.len()
        + bytes.len()
        + raw_bytes.len()
        + (quote_char as usize)
        + (slash_char as usize)
        + (escaped_quote as usize)
        + (newline as usize)
        + (byte_char as usize)
        + lifetime_test.len()
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoping_makes_this_invisible() {
        Some(1).unwrap();
        panic!("test regions are exempt from no_panic");
    }
}
