// Fixture: L1 no_panic violations in a daemon-scope file. Checked by
// tests/fixtures.rs under the fabricated path crates/service/src/fixture.rs.

fn handles_request(input: Option<u32>) -> u32 {
    let a = input.unwrap(); // finding: .unwrap()
    let b = input.expect("always set"); // finding: .expect()
    if a + b == 0 {
        panic!("zero"); // finding: panic!
    }
    todo!() // finding: todo!
}

fn not_yet() {
    unimplemented!() // finding: unimplemented!
}

fn escape_hatch(input: Option<u32>) -> u32 {
    // kdc-lint: allow(no_panic) — fixture demonstrates the escape hatch.
    input.unwrap()
}

fn false_positive_guards(input: Option<u32>) -> u32 {
    // None of these may be flagged: not method calls / different idents.
    let s = "call .unwrap() inside a string";
    let c = input.unwrap_or_else(|| s.len() as u32);
    c
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap() {
        Some(1u32).unwrap();
        std::panic::catch_unwind(|| panic!("fine in tests")).ok();
    }
}
