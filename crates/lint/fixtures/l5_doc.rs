// Fixture: L5 doc_errors violations. Checked under a fabricated
// crates/api/src path.

/// Parses a thing. No Errors section, so this is a finding.
pub fn parse_thing(s: &str) -> Result<u32, String> {
    s.parse().map_err(|_| "nope".to_string())
}

/// Documented properly.
///
/// # Errors
///
/// Fails when `s` is not a number.
pub fn parse_documented(s: &str) -> Result<u32, String> {
    s.parse().map_err(|_| "nope".to_string())
}

/// Not pub: no doc obligation.
fn parse_private(s: &str) -> Result<u32, String> {
    s.parse().map_err(|_| "nope".to_string())
}

/// Restricted visibility: no doc obligation either.
pub(crate) fn parse_crate(s: &str) -> Result<u32, String> {
    s.parse().map_err(|_| "nope".to_string())
}

/// Infallible: no obligation.
pub fn no_result(s: &str) -> usize {
    s.len()
}
