// Fixture: L4 hot_path_alloc violations inside an annotated function.

// kdc-lint: hot-path
fn sweep(&mut self, xs: &[u32]) -> usize {
    let grown: Vec<u32> = xs.iter().copied().collect(); // finding: collect
    let copy = xs.to_vec(); // finding: to_vec
    let buf = Vec::with_capacity(xs.len()); // finding: Vec::with_capacity
    let boxed = Box::new(xs.len()); // finding: Box::new
    let label = format!("{} items", xs.len()); // finding: format!
    grown.len() + copy.len() + buf.capacity() + *boxed + label.len()
}

// kdc-lint: hot-path
fn clean_sweep(&mut self, xs: &mut [u32]) {
    // In-place work: nothing here may be flagged.
    for x in xs.iter_mut() {
        *x = x.wrapping_add(1);
    }
}

fn cold_path_allocates_freely(xs: &[u32]) -> Vec<u32> {
    xs.iter().copied().collect()
}
