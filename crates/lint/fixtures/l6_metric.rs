//! Fixture for the `metric_names` rule: the violation shapes (missing
//! `kdc_` prefix, too few segments, uppercase, empty segment) plus every
//! escape (valid names, definitions, dynamic names, the allow comment,
//! test regions).

struct Registry;

impl Registry {
    // Definitions are not call sites: `&self` follows the paren.
    fn register_counter(&self, name: &'static str) -> usize {
        name.len()
    }
    fn register_gauge(&self, name: &'static str) -> usize {
        name.len()
    }
}

fn bad(reg: &Registry) -> usize {
    reg.register_counter("session_hits_total") // no kdc_ prefix
        + reg.register_counter("kdc_hits") // only two segments
        + reg.register_gauge("kdc_queue_Depth") // uppercase
        + reg.register_counter("kdc__hits_total") // empty segment
}

fn good(reg: &Registry) -> usize {
    reg.register_counter("kdc_session_hits_total")
        + reg.register_gauge("kdc_service_queue_depth")
        + reg.register_counter("kdc_core_bound_ns_total")
        // The batch-execution trio registered by the session layer.
        + reg.register_counter("kdc_session_batch_ctcp_shares_total")
        + reg.register_counter("kdc_session_batch_witness_seeds_total")
        + reg.register_counter("kdc_session_batch_memo_dedups_total")
        // The durable-store family registered by kdc_store.
        + reg.register_counter("kdc_store_journal_appends_total")
        + reg.register_counter("kdc_store_snapshot_writes_total")
        + reg.register_counter("kdc_store_recoveries_total")
        + reg.register_counter("kdc_store_torn_records_dropped_total")
        + reg.register_counter("kdc_store_corrupt_records_dropped_total")
        // kdc-lint: allow(metric_names) — grandfathered external scrape name.
        + reg.register_counter("legacy_scrape_name")
}

fn dynamic(reg: &Registry, name: &'static str) -> usize {
    // Non-literal first argument: out of the rule's syntactic reach.
    reg.register_counter(name)
}

#[cfg(test)]
mod tests {
    #[test]
    fn scratch_names_are_fine_in_tests() {
        let reg = super::Registry;
        assert_eq!(reg.register_counter("x"), 1);
    }
}
