//! The rule catalog: six token-pattern rules over a [`FileContext`].
//!
//! | rule             | scope                       | what it flags |
//! |------------------|-----------------------------|---------------|
//! | `no_panic`       | `kdc_service`, `kdc_api`, `kdc_faults`, `kdc_store` | `.unwrap()` / `.expect(` / `panic!` / `todo!` / `unimplemented!` outside tests |
//! | `no_unsafe`      | whole tree                  | any `unsafe` token; missing `#![forbid(unsafe_code)]` in a library crate root |
//! | `lock_order`     | whole tree                  | acquiring a lower-ranked lock (per `LOCK_ORDER.md`) while a higher-ranked guard is live |
//! | `hot_path_alloc` | `// kdc-lint: hot-path` fns | allocating calls (`Vec::new`, `with_capacity`, `to_vec`, `collect()`, `format!`, …) |
//! | `doc_errors`     | `kdc_api`                   | `pub fn … -> Result` without an `# Errors` doc section |
//! | `metric_names`   | whole tree                  | `register_*("…")` call sites whose series name is not `kdc_<subsystem>_<name>` snake-case |
//!
//! Every rule honours `// kdc-lint: allow(<rule>)` on the offending
//! statement (see [`FileContext::allowed`]) and skips test regions where
//! noted. Rules are purely syntactic — they see tokens, not types — so
//! they are tuned to have zero false positives on this tree rather than
//! zero false negatives in general.

use crate::context::FileContext;
use crate::lexer::{TokKind, Token};
use std::collections::HashMap;

/// One lint finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier (`no_panic`, `no_unsafe`, …).
    pub rule: &'static str,
    /// Repo-relative file path.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Trimmed source line.
    pub snippet: String,
    /// Human-readable explanation.
    pub message: String,
}

fn finding(ctx: &FileContext, rule: &'static str, line: u32, message: String) -> Finding {
    Finding {
        rule,
        file: ctx.path.clone(),
        line,
        snippet: ctx.snippet(line).to_string(),
        message,
    }
}

/// True when `ctx` belongs to a daemon-path crate (L1 scope).
fn in_daemon_scope(path: &str) -> bool {
    path.starts_with("crates/service/src/")
        || path.starts_with("crates/api/src/")
        || path.starts_with("crates/faults/src/")
        || path.starts_with("crates/store/src/")
}

/// L1 — no panics in daemon request/job paths. A worker that panics on a
/// poisoned lock or a malformed request takes a thread out of the pool
/// instead of answering `ERR`; the daemon crates must return typed errors.
pub fn no_panic(ctx: &FileContext, out: &mut Vec<Finding>) {
    if !in_daemon_scope(&ctx.path) {
        return;
    }
    let toks = &ctx.lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || ctx.in_test(t.line) || ctx.allowed("no_panic", t.line) {
            continue;
        }
        let method_call =
            i > 0 && toks[i - 1].text == "." && toks.get(i + 1).is_some_and(|n| n.text == "(");
        let bang = toks.get(i + 1).is_some_and(|n| n.text == "!");
        let hit = match t.text.as_str() {
            "unwrap" | "expect" => method_call,
            "panic" | "todo" | "unimplemented" => bang,
            _ => false,
        };
        if hit {
            let what = if method_call {
                format!(".{}()", t.text)
            } else {
                format!("{}!", t.text)
            };
            out.push(finding(
                ctx,
                "no_panic",
                t.line,
                format!("{what} in daemon path code; return a typed error or recover"),
            ));
        }
    }
}

/// L2 — the tree stays `unsafe`-free. Flags any `unsafe` token anywhere
/// (tests included: an unsafe test is still compiled into the crate), and
/// separately checks that library crate roots carry
/// `#![forbid(unsafe_code)]` so the compiler enforces the same thing.
pub fn no_unsafe(ctx: &FileContext, is_crate_root: bool, out: &mut Vec<Finding>) {
    let toks = &ctx.lexed.tokens;
    for t in toks {
        if t.kind == TokKind::Ident && t.text == "unsafe" && !ctx.allowed("no_unsafe", t.line) {
            out.push(finding(
                ctx,
                "no_unsafe",
                t.line,
                "`unsafe` token; the workspace is unsafe-free by policy".to_string(),
            ));
        }
    }
    if is_crate_root {
        let has_forbid = toks.windows(8).any(|w| {
            w[0].text == "#"
                && w[1].text == "!"
                && w[2].text == "["
                && w[3].text == "forbid"
                && w[4].text == "("
                && w[5].text == "unsafe_code"
                && w[6].text == ")"
                && w[7].text == "]"
        });
        if !has_forbid && !ctx.allowed("no_unsafe", 1) {
            out.push(finding(
                ctx,
                "no_unsafe",
                1,
                "library crate root lacks #![forbid(unsafe_code)]".to_string(),
            ));
        }
    }
}

/// The declared lock hierarchy, parsed from `LOCK_ORDER.md` lines of the
/// form `` 1. `state` — rationale ``. Lower rank locks first.
#[derive(Clone, Debug, Default)]
pub struct LockOrder {
    ranks: HashMap<String, u32>,
}

impl LockOrder {
    /// Parses the manifest text. Unrecognized lines are ignored so the
    /// manifest stays a readable document, not a config file.
    pub fn parse(manifest: &str) -> LockOrder {
        let mut ranks = HashMap::new();
        for line in manifest.lines() {
            let line = line.trim();
            let Some(dot) = line.find('.') else { continue };
            let Ok(rank) = line[..dot].trim().parse::<u32>() else {
                continue;
            };
            let rest = &line[dot + 1..];
            let Some(open) = rest.find('`') else { continue };
            let Some(close) = rest[open + 1..].find('`') else {
                continue;
            };
            let name = rest[open + 1..open + 1 + close].trim();
            if !name.is_empty() {
                ranks.insert(name.to_string(), rank);
            }
        }
        LockOrder { ranks }
    }

    /// Rank of a receiver name, if it is a declared lock field.
    pub fn rank(&self, name: &str) -> Option<u32> {
        self.ranks.get(name).copied()
    }

    /// Number of declared locks.
    pub fn len(&self) -> usize {
        self.ranks.len()
    }

    /// Whether the manifest declared no locks.
    pub fn is_empty(&self) -> bool {
        self.ranks.is_empty()
    }
}

/// A guard tracked by the L3 scan.
struct LiveGuard {
    rank: u32,
    /// The `let` binding name (empty for a temporary).
    binding: String,
    /// Brace depth of the block the guard lives in.
    depth: usize,
    /// Temporaries die at the next `;`, bindings at end of block.
    temp: bool,
}

/// L3 — lock-hierarchy discipline. Purely syntactic shadow of the runtime
/// `TrackedMutex` checker: inside each function, watch for
/// `<recv>.lock()` / `.read()` / `.write()` where `<recv>`'s last
/// identifier is a declared lock name, keep let-bound guards live until
/// their block closes (or `drop(name)`), temporaries until the next `;`,
/// and flag any acquisition whose rank is ≤ a live guard's rank.
pub fn lock_order(ctx: &FileContext, order: &LockOrder, out: &mut Vec<Finding>) {
    if order.is_empty() {
        return;
    }
    let toks = &ctx.lexed.tokens;
    let mut i = 0;
    while i < toks.len() {
        if toks[i].kind == TokKind::Ident && toks[i].text == "fn" && !ctx.in_test(toks[i].line) {
            if let Some((body_start, body_end)) = fn_body(toks, i) {
                scan_fn_for_lock_order(ctx, order, toks, body_start, body_end, out);
                i = body_end;
                continue;
            }
        }
        i += 1;
    }
}

/// Given `tokens[at]` == `fn`, returns the body's `(open_idx, close_idx)`.
fn fn_body(toks: &[Token], at: usize) -> Option<(usize, usize)> {
    let mut depth = 0usize;
    let mut j = at + 1;
    while let Some(t) = toks.get(j) {
        match t.text.as_str() {
            ";" if depth == 0 => return None, // trait method declaration
            "(" | "[" | "<" => depth += 1,
            ")" | "]" | ">" => depth = depth.saturating_sub(1),
            "{" if depth == 0 => {
                // Find the matching close brace.
                let mut d = 0usize;
                for (k, u) in toks.iter().enumerate().skip(j) {
                    match u.text.as_str() {
                        "{" => d += 1,
                        "}" => {
                            d = d.saturating_sub(1);
                            if d == 0 {
                                return Some((j, k));
                            }
                        }
                        _ => {}
                    }
                }
                return Some((j, toks.len() - 1));
            }
            _ => {}
        }
        j += 1;
    }
    None
}

fn scan_fn_for_lock_order(
    ctx: &FileContext,
    order: &LockOrder,
    toks: &[Token],
    body_start: usize,
    body_end: usize,
    out: &mut Vec<Finding>,
) {
    let mut guards: Vec<LiveGuard> = Vec::new();
    let mut depth = 0usize;
    // Start of the current statement (for `let` binding detection).
    let mut stmt_start = body_start + 1;
    let mut i = body_start;
    while i <= body_end {
        let t = &toks[i];
        match t.text.as_str() {
            "{" => {
                depth += 1;
                stmt_start = i + 1;
            }
            "}" => {
                depth = depth.saturating_sub(1);
                guards.retain(|g| g.depth <= depth);
                stmt_start = i + 1;
            }
            ";" => {
                guards.retain(|g| !g.temp);
                stmt_start = i + 1;
            }
            "drop"
                if toks.get(i + 1).is_some_and(|n| n.text == "(")
                    && toks.get(i + 3).is_some_and(|n| n.text == ")") =>
            {
                if let Some(name) = toks.get(i + 2) {
                    guards.retain(|g| g.binding != name.text);
                }
            }
            "lock" | "read" | "write"
                if i > body_start
                    && toks[i - 1].text == "."
                    && toks.get(i + 1).is_some_and(|n| n.text == "(")
                    && toks.get(i + 2).is_some_and(|n| n.text == ")") =>
            {
                // Receiver: the identifier right before the `.`.
                let recv = toks
                    .get(i.wrapping_sub(2))
                    .filter(|r| r.kind == TokKind::Ident);
                if let Some(rank) = recv.and_then(|r| order.rank(&r.text)) {
                    let recv_name = &recv.map(|r| r.text.clone()).unwrap_or_default();
                    if !ctx.in_test(t.line) && !ctx.allowed("lock_order", t.line) {
                        if let Some(held) = guards
                            .iter()
                            .filter(|g| g.rank >= rank)
                            .max_by_key(|g| g.rank)
                        {
                            out.push(finding(
                                ctx,
                                "lock_order",
                                t.line,
                                format!(
                                    "acquires `{recv_name}` (rank {rank}) while a rank-{} guard is live; see LOCK_ORDER.md",
                                    held.rank
                                ),
                            ));
                        }
                    }
                    // Track the new guard: let-bound only when the call is
                    // the whole right-hand side of a `let` (`let g =
                    // x.lock();`). A chained call (`x.lock().len()`)
                    // consumes the guard within the statement, so it stays
                    // a temporary whatever the statement binds.
                    let ends_stmt = toks.get(i + 3).is_some_and(|n| n.text == ";");
                    let binding = if ends_stmt {
                        let_binding(toks, stmt_start, i)
                    } else {
                        String::new()
                    };
                    guards.push(LiveGuard {
                        rank,
                        temp: binding.is_empty(),
                        binding,
                        depth,
                    });
                }
            }
            _ => {}
        }
        i += 1;
    }
}

/// If the statement starting at `stmt_start` (and containing index `at`)
/// is `let [mut] <name> = …`, returns `<name>`; empty string otherwise.
fn let_binding(toks: &[Token], stmt_start: usize, at: usize) -> String {
    let mut j = stmt_start;
    if toks.get(j).is_some_and(|t| t.text == "let") {
        j += 1;
        if toks.get(j).is_some_and(|t| t.text == "mut") {
            j += 1;
        }
        if j < at {
            if let Some(name) = toks.get(j).filter(|t| t.kind == TokKind::Ident) {
                return name.text.clone();
            }
        }
    }
    String::new()
}

/// Allocating call patterns flagged by L4 inside hot-path functions.
const ALLOC_METHODS: &[&str] = &["collect", "to_vec", "to_string", "to_owned", "clone_into"];
const ALLOC_MACROS: &[&str] = &["format", "vec"];
const ALLOC_TYPES: &[&str] = &[
    "Vec", "Box", "String", "VecDeque", "HashMap", "HashSet", "BTreeMap",
];
const ALLOC_CTORS: &[&str] = &["new", "with_capacity", "from", "from_iter"];

/// L4 — no allocation in hot paths. A `// kdc-lint: hot-path` comment
/// marks the next `fn`; inside its body every allocating pattern is
/// flagged. The point is the steady-state claims of PR 3: kernel sweeps,
/// arena re-primes and `Ctcp::tighten` must stay allocation-free, and a
/// stray `collect()` in a refactor should fail CI, not a profile.
pub fn hot_path_alloc(ctx: &FileContext, out: &mut Vec<Finding>) {
    let toks = &ctx.lexed.tokens;
    for c in &ctx.lexed.comments {
        // Exact line-comment directive only: doc comments *describing*
        // the annotation (like this crate's own rule table) must not
        // mark the next function as hot.
        if !c.text.trim_start().starts_with("// kdc-lint: hot-path") {
            continue;
        }
        // The annotated function: first `fn` token after the comment.
        let Some(fn_idx) = toks
            .iter()
            .position(|t| t.line > c.line && t.kind == TokKind::Ident && t.text == "fn")
        else {
            continue;
        };
        let Some((body_start, body_end)) = fn_body(toks, fn_idx) else {
            continue;
        };
        for i in body_start..=body_end {
            let t = &toks[i];
            if t.kind != TokKind::Ident || ctx.allowed("hot_path_alloc", t.line) {
                continue;
            }
            let prev_dot = i > 0 && toks[i - 1].text == ".";
            let next = toks.get(i + 1).map(|n| n.text.as_str());
            let method_hit =
                prev_dot && next == Some("(") && ALLOC_METHODS.contains(&t.text.as_str());
            let macro_hit = next == Some("!") && ALLOC_MACROS.contains(&t.text.as_str());
            let ctor_hit = ALLOC_TYPES.contains(&t.text.as_str())
                && next == Some(":")
                && toks.get(i + 2).is_some_and(|n| n.text == ":")
                && toks
                    .get(i + 3)
                    .is_some_and(|n| ALLOC_CTORS.contains(&n.text.as_str()));
            if method_hit || macro_hit || ctor_hit {
                let what = if ctor_hit {
                    format!("{}::{}", t.text, toks[i + 3].text)
                } else if macro_hit {
                    format!("{}!", t.text)
                } else {
                    format!(".{}()", t.text)
                };
                out.push(finding(
                    ctx,
                    "hot_path_alloc",
                    t.line,
                    format!("allocating call `{what}` in a hot-path function"),
                ));
            }
        }
    }
}

/// L5 — documented failure modes. Every `pub fn` in `kdc_api` whose
/// return type mentions `Result` must carry an `# Errors` section in its
/// doc comment; the API crate is the embedding surface, and "when does
/// this fail" is the first question an embedder asks.
pub fn doc_errors(ctx: &FileContext, out: &mut Vec<Finding>) {
    if !ctx.path.starts_with("crates/api/src/") {
        return;
    }
    let toks = &ctx.lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || t.text != "pub" || ctx.in_test(t.line) {
            continue;
        }
        // `pub(crate)` and friends are not public API.
        if toks.get(i + 1).is_some_and(|n| n.text == "(") {
            continue;
        }
        // Find `fn` within the next couple of tokens (`pub fn`, and
        // `pub const fn` / `pub async fn` for future-proofing).
        let mut j = i + 1;
        while toks
            .get(j)
            .is_some_and(|n| matches!(n.text.as_str(), "const" | "async" | "unsafe" | "extern"))
        {
            j += 1;
        }
        if toks.get(j).is_none_or(|n| n.text != "fn") {
            continue;
        }
        let Some(name) = toks.get(j + 1) else {
            continue;
        };
        // Signature: tokens up to the body `{` (or `;`), looking for
        // `-> … Result …`.
        let Some((body_start, _)) = fn_body(toks, j) else {
            continue;
        };
        let mut returns_result = false;
        let mut saw_arrow = false;
        for w in toks[j..body_start].windows(2) {
            if w[0].text == "-" && w[1].text == ">" {
                saw_arrow = true;
            }
            if saw_arrow && w[1].kind == TokKind::Ident && w[1].text == "Result" {
                returns_result = true;
                break;
            }
        }
        if !returns_result || ctx.allowed("doc_errors", t.line) {
            continue;
        }
        if !doc_block_above(ctx, t.line).contains("# Errors") {
            out.push(finding(
                ctx,
                "doc_errors",
                t.line,
                format!(
                    "pub fn `{}` returns Result but its doc comment has no `# Errors` section",
                    name.text
                ),
            ));
        }
    }
}

/// L6 — metric naming. Every `register_*("…")` call site must register a
/// series named `kdc_<subsystem>_<name>`: the `kdc_` prefix plus at least
/// two more non-empty snake-case segments of lowercase letters and
/// digits. One namespace across every surface means a Prometheus scrape
/// is greppable (`kdc_session_*`, `kdc_service_*`, `kdc_core_*`) and two
/// crates can never claim the same series with different spellings.
///
/// Purely syntactic: only call sites whose *first argument is a string
/// literal* are checked. Definitions (`fn register_counter(&self, …)`)
/// put `&self` after the paren, and dynamic names (`register_counter(n)`)
/// are out of reach by design — every current registration site in the
/// tree uses a literal.
pub fn metric_names(ctx: &FileContext, out: &mut Vec<Finding>) {
    let toks = &ctx.lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || !t.text.starts_with("register_") {
            continue;
        }
        let Some(lit) = toks
            .get(i + 1)
            .filter(|n| n.text == "(")
            .and_then(|_| toks.get(i + 2))
            .filter(|n| n.kind == TokKind::Literal && n.text.starts_with('"'))
        else {
            continue;
        };
        if ctx.in_test(t.line) || ctx.allowed("metric_names", t.line) {
            continue;
        }
        let name = lit.text.trim_matches('"');
        if !valid_metric_name(name) {
            out.push(finding(
                ctx,
                "metric_names",
                t.line,
                format!(
                    "metric name {name:?} is not `kdc_<subsystem>_<name>` snake-case \
                     (kdc_ prefix, >= 3 segments of [a-z0-9])"
                ),
            ));
        }
    }
}

/// `kdc_<subsystem>_<name>`: at least three non-empty `_`-separated
/// segments of ASCII lowercase/digits, the first being `kdc`.
fn valid_metric_name(name: &str) -> bool {
    let segments: Vec<&str> = name.split('_').collect();
    segments.len() >= 3
        && segments[0] == "kdc"
        && segments.iter().all(|s| {
            !s.is_empty()
                && s.bytes()
                    .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit())
        })
}

/// The contiguous `///` doc-comment block above `line`, skipping
/// attribute lines (`#[…]`) between the docs and the item.
fn doc_block_above(ctx: &FileContext, line: u32) -> String {
    let mut docs = Vec::new();
    let mut l = line.saturating_sub(1);
    while l >= 1 {
        let text = ctx.snippet(l);
        if text.starts_with("///") {
            docs.push(text.to_string());
        } else if text.starts_with("#[")
            || text.starts_with("#![")
            || text.ends_with(']') && text.starts_with('#')
        {
            // attribute between docs and item — keep climbing
        } else {
            break;
        }
        l -= 1;
    }
    docs.join("\n")
}
