//! A small hand-rolled Rust lexer: just enough syntax to lint safely.
//!
//! The rules in this crate are token-pattern matchers, so the one job of
//! the lexer is to never hand them a token that was really inside a
//! comment, a string, or a char literal. That means getting the awkward
//! corners right: nested block comments, raw strings (`r#"…"#` with any
//! number of hashes, plus the `b`/`c` prefixes), byte/char literals that
//! contain `"` or `//`, and the `'a` lifetime vs `'a'` char ambiguity.
//! Everything else — numbers, idents, one-character punctuation — is
//! deliberately simple; the rules do their own multi-token matching.

/// What kind of token a [`Token`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `unsafe`, `state`, `r#match`, …).
    Ident,
    /// A single punctuation character (`.`, `!`, `(`, `::` is two of these).
    Punct,
    /// String/char/number literal. The rules only care that its *contents*
    /// are opaque, so the text is the raw literal.
    Literal,
    /// A lifetime such as `'a` (distinguished from the char literal `'a'`).
    Lifetime,
}

/// One token with its 1-based source line.
#[derive(Clone, Debug)]
pub struct Token {
    /// The kind of token.
    pub kind: TokKind,
    /// The token text (single char for `Punct`).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
}

/// One comment (line or block) with the 1-based line it starts on. Block
/// comment text keeps its newlines; directives only appear in line
/// comments in practice but both are searched.
#[derive(Clone, Debug)]
pub struct Comment {
    /// 1-based line of the `//` or `/*`.
    pub line: u32,
    /// Full comment text including the delimiters.
    pub text: String,
}

/// The result of lexing one file: code tokens and comments, separately.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-comment tokens in source order.
    pub tokens: Vec<Token>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src`. Unterminated literals or comments never panic: the lexer
/// consumes to end-of-file and returns what it has, because a linter that
/// dies on malformed input is itself a CI liability.
pub fn lex(src: &str) -> Lexed {
    Lexer {
        chars: src.chars().collect(),
        i: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    i: usize,
    line: u32,
    out: Lexed,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.i).copied();
        if let Some(c) = c {
            if c == '\n' {
                self.line += 1;
            }
            self.i += 1;
        }
        c
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32) {
        self.out.tokens.push(Token { kind, text, line });
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                _ if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                '"' => self.string(line, '"'),
                '\'' => self.lifetime_or_char(line),
                _ if c.is_ascii_digit() => self.number(line),
                _ if is_ident_start(c) => self.ident_or_prefixed_literal(line),
                _ => {
                    self.bump();
                    self.push(TokKind::Punct, c.to_string(), line);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.out.comments.push(Comment { line, text });
    }

    fn block_comment(&mut self, line: u32) {
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.out.comments.push(Comment { line, text });
    }

    /// A cooked (escape-processing) string body, opening quote included.
    fn string(&mut self, line: u32, quote: char) {
        let mut text = String::new();
        text.push(quote);
        self.bump(); // opening quote
        while let Some(c) = self.peek(0) {
            if c == '\\' {
                text.push(c);
                self.bump();
                if let Some(e) = self.bump() {
                    text.push(e);
                }
            } else if c == quote {
                text.push(c);
                self.bump();
                break;
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.push(TokKind::Literal, text, line);
    }

    /// A raw string body: `#`s already counted, cursor on the opening `"`.
    /// No escapes; terminated by `"` followed by `hashes` `#`s.
    fn raw_string(&mut self, line: u32, hashes: usize) {
        let mut text = String::from('"');
        self.bump(); // opening quote
        while let Some(c) = self.peek(0) {
            if c == '"' {
                let mut all = true;
                for h in 0..hashes {
                    if self.peek(1 + h) != Some('#') {
                        all = false;
                        break;
                    }
                }
                if all {
                    for _ in 0..=hashes {
                        if let Some(t) = self.bump() {
                            text.push(t);
                        }
                    }
                    break;
                }
            }
            text.push(c);
            self.bump();
        }
        self.push(TokKind::Literal, text, line);
    }

    fn lifetime_or_char(&mut self, line: u32) {
        // `'a` (lifetime) iff the quote is followed by an identifier char
        // that is NOT itself followed by a closing quote (`'a'` is a char).
        let next = self.peek(1);
        let after = self.peek(2);
        if let Some(n) = next {
            if is_ident_start(n) && after != Some('\'') {
                self.bump(); // '
                let mut text = String::from('\'');
                while let Some(c) = self.peek(0) {
                    if !is_ident_continue(c) {
                        break;
                    }
                    text.push(c);
                    self.bump();
                }
                self.push(TokKind::Lifetime, text, line);
                return;
            }
        }
        // Char literal: consume to the closing quote, skipping escapes.
        let mut text = String::from('\'');
        self.bump(); // opening '
        while let Some(c) = self.peek(0) {
            if c == '\\' {
                text.push(c);
                self.bump();
                if let Some(e) = self.bump() {
                    text.push(e);
                }
            } else if c == '\'' {
                text.push(c);
                self.bump();
                break;
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.push(TokKind::Literal, text, line);
    }

    fn number(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if is_ident_continue(c) {
                text.push(c);
                self.bump();
            } else if c == '.'
                && self.peek(1).is_some_and(|d| d.is_ascii_digit())
                && !text.contains('.')
            {
                // `1.5` but not `0..n` (the second `.` is not a digit).
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Literal, text, line);
    }

    /// An identifier, or one of the literal prefixes `r"…"`, `r#"…"#`,
    /// `b"…"`, `br#"…"#`, `b'x'`, `c"…"`, `cr#"…"#`, or a raw ident
    /// `r#ident`.
    fn ident_or_prefixed_literal(&mut self, line: u32) {
        let c = self.peek(0).unwrap_or(' ');
        let d = self.peek(1);
        match (c, d) {
            // b'x' — byte char literal.
            ('b', Some('\'')) => {
                self.bump(); // b
                self.lifetime_or_char(line);
            }
            // b"…" / c"…" — cooked strings with a prefix.
            ('b' | 'c', Some('"')) => {
                self.bump();
                self.string(line, '"');
            }
            // br / cr — raw strings with a prefix.
            ('b' | 'c', Some('r')) if matches!(self.peek(2), Some('"' | '#')) => {
                let mut hashes = 0;
                while self.peek(2 + hashes) == Some('#') {
                    hashes += 1;
                }
                if self.peek(2 + hashes) == Some('"') {
                    self.bump(); // b/c
                    self.bump(); // r
                    for _ in 0..hashes {
                        self.bump();
                    }
                    self.raw_string(line, hashes);
                } else {
                    self.plain_ident(line);
                }
            }
            // r"…" — raw string, no hashes.
            ('r', Some('"')) => {
                self.bump();
                self.raw_string(line, 0);
            }
            // r#… — raw string (r#"…"#) or raw identifier (r#match).
            ('r', Some('#')) => {
                let mut hashes = 0;
                while self.peek(1 + hashes) == Some('#') {
                    hashes += 1;
                }
                if self.peek(1 + hashes) == Some('"') {
                    self.bump(); // r
                    for _ in 0..hashes {
                        self.bump();
                    }
                    self.raw_string(line, hashes);
                } else if hashes == 1 && self.peek(2).is_some_and(is_ident_start) {
                    self.bump(); // r
                    self.bump(); // #
                    self.plain_ident(line);
                } else {
                    self.plain_ident(line);
                }
            }
            _ => self.plain_ident(line),
        }
    }

    fn plain_ident(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if !is_ident_continue(c) {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(TokKind::Ident, text, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.clone())
            .collect()
    }

    #[test]
    fn strings_hide_their_contents() {
        let l = lex(r#"let s = "unwrap() // not a comment";"#);
        assert_eq!(
            idents(r#"let s = "unwrap() // not a comment";"#),
            ["let", "s"]
        );
        assert!(
            l.comments.is_empty(),
            "string body must not become a comment"
        );
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = r####"let s = r#"say "unwrap()" loudly"#; done()"####;
        assert_eq!(idents(src), ["let", "s", "done"]);
    }

    #[test]
    fn byte_and_c_string_prefixes() {
        assert_eq!(
            idents(r#"let a = b"panic!"; let c2 = c"todo!";"#),
            ["let", "a", "let", "c2"]
        );
        let src = r####"let a = br#"unsafe"#;"####;
        assert_eq!(idents(src), ["let", "a"]);
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner */ still comment */ fn after() {}";
        let l = lex(src);
        assert_eq!(idents(src), ["fn", "after"]);
        assert_eq!(l.comments.len(), 1);
        assert!(l.comments[0].text.contains("inner"));
    }

    #[test]
    fn char_literals_with_quote_and_slashes() {
        // '"' and '/' must not open a string or comment.
        let src = "let q = '\"'; let s = '/'; let e = '\\''; next()";
        assert_eq!(idents(src), ["let", "q", "let", "s", "let", "e", "next"]);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let src = "fn f<'a>(x: &'a str) { let c = 'a'; }";
        let l = lex(src);
        let lifetimes: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, ["'a", "'a"]);
        let chars: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Literal && t.text.starts_with('\''))
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(chars, ["'a'"]);
    }

    #[test]
    fn byte_char_literal() {
        assert_eq!(
            idents("let b1 = b'x'; let b2 = b'\\''; end()"),
            ["let", "b1", "let", "b2", "end"]
        );
    }

    #[test]
    fn raw_identifiers() {
        let src = "let r#match = 1; use r#fn::thing;";
        assert_eq!(idents(src), ["let", "match", "use", "fn", "thing"]);
    }

    #[test]
    fn line_numbers_advance_through_multiline_literals() {
        let src = "let a = \"two\nlines\";\nunwrap_target()";
        let l = lex(src);
        let t = l.tokens.iter().find(|t| t.text == "unwrap_target").unwrap();
        assert_eq!(t.line, 3);
    }

    #[test]
    fn ranges_are_not_floats() {
        let src = "for i in 0..10 { f(1.5); }";
        let l = lex(src);
        let lits: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Literal)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lits, ["0", "10", "1.5"]);
    }

    #[test]
    fn unterminated_input_does_not_panic() {
        lex("let s = \"never closed");
        lex("/* never closed");
        lex("let c = 'x");
        lex("let s = r#\"never closed");
    }
}
