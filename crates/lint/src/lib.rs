#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! # kdc_lint — the workspace's own static-analysis pass
//!
//! A std-only linter purpose-built for this repository: a hand-rolled
//! Rust [`lexer`], a per-file [`context`] (test-region scoping,
//! `// kdc-lint: allow(<rule>)` escape hatches), and six [`rules`] that
//! encode the invariants the daemon and the hot paths depend on — no
//! panics in request paths, no `unsafe`, a declared lock hierarchy, no
//! allocation in annotated kernels, documented failure modes on the
//! public API, and one `kdc_<subsystem>_<name>` namespace for every
//! registered metric. `cargo run -p kdc_lint -- check` gates CI; `--json`
//! emits machine-readable findings for baseline diffing.
//!
//! The runtime half of the same invariants lives elsewhere:
//! `kdc_service::sync::{TrackedMutex, TrackedRwLock}` enforce the lock
//! hierarchy dynamically in debug builds, and `tests/alloc_guard.rs`
//! here asserts the zero-allocation claims with a counting global
//! allocator.

pub mod context;
pub mod lexer;
pub mod rules;

use context::FileContext;
use rules::{Finding, LockOrder};
use std::path::{Path, PathBuf};

/// A whole-tree lint run: the repo root plus the parsed lock manifest.
pub struct Workspace {
    root: PathBuf,
    lock_order: LockOrder,
}

impl Workspace {
    /// Opens the workspace at `root` (the directory holding the top-level
    /// `Cargo.toml`). Reads `LOCK_ORDER.md` if present; a missing
    /// manifest just disables the `lock_order` rule.
    pub fn open(root: &Path) -> std::io::Result<Workspace> {
        if !root.join("Cargo.toml").is_file() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::NotFound,
                format!(
                    "{} does not look like the repo root (no Cargo.toml)",
                    root.display()
                ),
            ));
        }
        let manifest = std::fs::read_to_string(root.join("LOCK_ORDER.md")).unwrap_or_default();
        Ok(Workspace {
            root: root.to_path_buf(),
            lock_order: LockOrder::parse(&manifest),
        })
    }

    /// The parsed lock hierarchy (empty when `LOCK_ORDER.md` is absent).
    pub fn lock_order(&self) -> &LockOrder {
        &self.lock_order
    }

    /// The `.rs` files the pass covers: `src/` of the facade package and
    /// of every crate under `crates/`, sorted for deterministic output.
    /// Vendored crates, integration tests, benches and lint fixtures are
    /// out of scope by construction (none live under a covered `src/`).
    pub fn source_files(&self) -> std::io::Result<Vec<PathBuf>> {
        let mut files = Vec::new();
        collect_rs(&self.root.join("src"), &mut files)?;
        let crates_dir = self.root.join("crates");
        if crates_dir.is_dir() {
            let mut entries: Vec<_> = std::fs::read_dir(&crates_dir)?
                .filter_map(Result::ok)
                .map(|e| e.path())
                .collect();
            entries.sort();
            for krate in entries {
                collect_rs(&krate.join("src"), &mut files)?;
            }
        }
        files.sort();
        Ok(files)
    }

    /// Lints one file (path may be absolute or root-relative).
    pub fn check_file(&self, path: &Path) -> std::io::Result<Vec<Finding>> {
        let abs = if path.is_absolute() {
            path.to_path_buf()
        } else {
            self.root.join(path)
        };
        let src = std::fs::read_to_string(&abs)?;
        let rel = abs
            .strip_prefix(&self.root)
            .unwrap_or(&abs)
            .to_string_lossy()
            .replace('\\', "/");
        Ok(check_source(&rel, &src, &self.lock_order))
    }

    /// Lints the whole tree; findings are sorted by (file, line, rule).
    pub fn check_all(&self) -> std::io::Result<Vec<Finding>> {
        let mut findings = Vec::new();
        for file in self.source_files()? {
            findings.extend(self.check_file(&file)?);
        }
        findings.sort_by(|a, b| {
            (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule))
        });
        Ok(findings)
    }
}

/// Recursively collects `.rs` files under `dir` (no-op if absent).
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<_> = std::fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Runs every rule on one file's source. `rel_path` selects rule scope
/// (daemon crates for `no_panic`, `crates/api` for `doc_errors`, library
/// crate roots for the `forbid(unsafe_code)` anchor).
pub fn check_source(rel_path: &str, src: &str, order: &LockOrder) -> Vec<Finding> {
    let ctx = FileContext::new(rel_path.to_string(), src);
    let is_crate_root = rel_path == "src/lib.rs"
        || (rel_path.starts_with("crates/") && rel_path.ends_with("/src/lib.rs"));
    let mut findings = Vec::new();
    rules::no_panic(&ctx, &mut findings);
    rules::no_unsafe(&ctx, is_crate_root, &mut findings);
    rules::lock_order(&ctx, order, &mut findings);
    rules::hot_path_alloc(&ctx, &mut findings);
    rules::doc_errors(&ctx, &mut findings);
    rules::metric_names(&ctx, &mut findings);
    findings
}

/// Renders findings as text, one per line: `rule file:line snippet`.
pub fn render_text(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&format!(
            "{}: {}:{}: {} — `{}`\n",
            f.rule, f.file, f.line, f.message, f.snippet
        ));
    }
    out
}

/// Renders findings as a JSON array (hand-rolled; the linter is std-only
/// by design so CI can never lose it to a dependency break).
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"snippet\": \"{}\", \"message\": \"{}\"}}",
            json_escape(f.rule),
            json_escape(&f.file),
            f.line,
            json_escape(&f.snippet),
            json_escape(&f.message)
        ));
    }
    if !findings.is_empty() {
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

/// Escapes a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
