//! CLI for the workspace linter.
//!
//! ```text
//! kdc_lint check [--json] [--root DIR] [FILE …]
//! ```
//!
//! With no `FILE` arguments the whole tree is checked. Exit code 0 means
//! no findings; 1 means findings (printed to stdout); 2 means usage or
//! I/O error. CI runs `cargo run -p kdc_lint -- check`.

use kdc_lint::Workspace;
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: kdc_lint check [--json] [--root DIR] [FILE ...]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(("check", rest)) = args.split_first().map(|(a, r)| (a.as_str(), r)) else {
        return usage();
    };
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut files: Vec<PathBuf> = Vec::new();
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => match it.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage(),
            },
            flag if flag.starts_with('-') => return usage(),
            file => files.push(PathBuf::from(file)),
        }
    }
    // Default root: the workspace this binary was built from, so
    // `cargo run -p kdc_lint -- check` works from any directory.
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .canonicalize()
            .unwrap_or_else(|_| PathBuf::from("."))
    });
    let ws = match Workspace::open(&root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("kdc_lint: {e}");
            return ExitCode::from(2);
        }
    };
    let findings = if files.is_empty() {
        ws.check_all()
    } else {
        files.iter().try_fold(Vec::new(), |mut acc, f| {
            acc.extend(ws.check_file(f)?);
            Ok(acc)
        })
    };
    let findings = match findings {
        Ok(f) => f,
        Err(e) => {
            eprintln!("kdc_lint: {e}");
            return ExitCode::from(2);
        }
    };
    if json {
        print!("{}", kdc_lint::render_json(&findings));
    } else if findings.is_empty() {
        println!("kdc_lint: clean");
    } else {
        print!("{}", kdc_lint::render_text(&findings));
        println!("kdc_lint: {} finding(s)", findings.len());
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
