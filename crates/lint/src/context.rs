//! Per-file analysis context: test-region scoping and allow-directives.
//!
//! Rules never look at raw source; they look at a [`FileContext`], which
//! pre-computes the two pieces of scoping every rule shares — which lines
//! are test code (`#[cfg(test)]` / `#[test]` / `mod tests`) and which
//! lines are covered by a `// kdc-lint: allow(<rule>)` escape hatch.

use crate::lexer::{Lexed, TokKind, Token};

/// A lexed file plus the scoping facts rules need.
pub struct FileContext {
    /// Repo-relative path with forward slashes.
    pub path: String,
    /// Source lines (1-based access via [`FileContext::snippet`]).
    pub lines: Vec<String>,
    /// The lexed token/comment streams.
    pub lexed: Lexed,
    /// Inclusive line ranges that are test code.
    test_ranges: Vec<(u32, u32)>,
    /// `(rule, first_line, last_line)` coverage of allow-directives.
    allows: Vec<(String, u32, u32)>,
}

impl FileContext {
    /// Builds the context for one file.
    pub fn new(path: String, src: &str) -> FileContext {
        let lexed = crate::lexer::lex(src);
        let lines: Vec<String> = src.lines().map(str::to_string).collect();
        let test_ranges = find_test_ranges(&lexed.tokens);
        let allows = find_allows(&lexed);
        FileContext {
            path,
            lines,
            lexed,
            test_ranges,
            allows,
        }
    }

    /// The trimmed source text of 1-based `line` (empty if out of range).
    pub fn snippet(&self, line: u32) -> &str {
        self.lines
            .get(line as usize - 1)
            .map(|l| l.trim())
            .unwrap_or("")
    }

    /// Whether `line` is inside a test region.
    pub fn in_test(&self, line: u32) -> bool {
        self.test_ranges
            .iter()
            .any(|&(a, b)| a <= line && line <= b)
    }

    /// Whether an `allow(<rule>)` directive covers `line`.
    pub fn allowed(&self, rule: &str, line: u32) -> bool {
        self.allows
            .iter()
            .any(|(r, a, b)| r == rule && *a <= line && line <= *b)
    }
}

/// Inclusive line ranges of items under `#[cfg(test)]` / `#[test]`, plus
/// any `mod tests { … }` block. The range runs from the attribute to the
/// matching close brace of the item body.
fn find_test_ranges(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let start = tokens[i].line;
        if let Some(after) = match_test_attr(tokens, i) {
            if let Some((_, end_line)) = body_after(tokens, after) {
                ranges.push((start, end_line));
                // Continue scanning *after* the attribute (nested test
                // items inside are already covered by this range).
                i = after;
                continue;
            }
        }
        if tokens[i].kind == TokKind::Ident
            && tokens[i].text == "mod"
            && tokens.get(i + 1).is_some_and(|t| t.text == "tests")
        {
            if let Some((_, end_line)) = body_after(tokens, i + 2) {
                ranges.push((start, end_line));
            }
        }
        i += 1;
    }
    ranges
}

/// If `tokens[i..]` opens a `#[cfg(test)]` or `#[test]` attribute, returns
/// the index just past its closing `]`.
fn match_test_attr(tokens: &[Token], i: usize) -> Option<usize> {
    if tokens.get(i)?.text != "#" || tokens.get(i + 1)?.text != "[" {
        return None;
    }
    // Find the matching `]` (attributes can nest brackets: cfg_attr etc.).
    let mut depth = 0usize;
    let mut end = i + 1;
    let mut is_test = false;
    for (j, t) in tokens.iter().enumerate().skip(i + 1) {
        match t.text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    end = j;
                    break;
                }
            }
            _ => {}
        }
        if t.kind == TokKind::Ident {
            // `#[test]`, `#[cfg(test)]`, `#[cfg(all(test, …))]` …
            if t.text == "test"
                && (j == i + 2 || tokens[i + 2].text == "cfg" || tokens[i + 2].text == "cfg_attr")
            {
                is_test = true;
            }
        }
    }
    (is_test && end > i + 1).then_some(end + 1)
}

/// Finds the item body opened by the first `{` at or after `from`
/// (skipping further attributes and the item header); returns
/// `(index_past_close, close_line)`. Bails on a `;` at header level
/// (e.g. `mod foo;`).
fn body_after(tokens: &[Token], from: usize) -> Option<(usize, u32)> {
    let mut j = from;
    // Skip over any further attributes.
    while tokens.get(j).is_some_and(|t| t.text == "#")
        && tokens.get(j + 1).is_some_and(|t| t.text == "[")
    {
        let mut depth = 0usize;
        while let Some(t) = tokens.get(j) {
            match t.text.as_str() {
                "[" => depth += 1,
                "]" => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        j += 1;
    }
    // Scan the item header for its opening brace.
    let mut depth = 0usize;
    while let Some(t) = tokens.get(j) {
        match t.text.as_str() {
            ";" if depth == 0 => return None,
            "(" | "[" => depth += 1,
            ")" | "]" => depth = depth.saturating_sub(1),
            "{" if depth == 0 => return close_of_brace(tokens, j),
            _ => {}
        }
        j += 1;
    }
    None
}

/// Given `tokens[open]` == `{`, returns `(index_past_close, close_line)`.
fn close_of_brace(tokens: &[Token], open: usize) -> Option<(usize, u32)> {
    let mut depth = 0usize;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        match t.text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return Some((j + 1, t.line));
                }
            }
            _ => {}
        }
    }
    // Unbalanced file: treat the rest of it as the body.
    tokens.last().map(|t| (tokens.len(), t.line))
}

/// Collects `kdc-lint: allow(<rule>)` directives. A directive covers its
/// own line through the end of the statement that follows it: the line of
/// the next `;`, `{` or `}` token after the comment (so a trailing
/// comment covers its own statement, and a standalone comment covers a
/// multi-line statement below it, which is how rustfmt lays them out).
fn find_allows(lexed: &Lexed) -> Vec<(String, u32, u32)> {
    let mut out = Vec::new();
    for c in &lexed.comments {
        let Some(pos) = c.text.find("kdc-lint: allow(") else {
            continue;
        };
        let rest = &c.text[pos + "kdc-lint: allow(".len()..];
        let Some(close) = rest.find(')') else {
            continue;
        };
        let rule = rest[..close].trim().to_string();
        let end = lexed
            .tokens
            .iter()
            .find(|t| t.line > c.line && matches!(t.text.as_str(), ";" | "{" | "}"))
            .map(|t| t.line)
            .unwrap_or(c.line + 1);
        out.push((rule, c.line, end));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_mod_is_scoped() {
        let src = "fn live() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { y.unwrap(); }\n}\nfn live2() {}\n";
        let ctx = FileContext::new("x.rs".into(), src);
        assert!(!ctx.in_test(1));
        assert!(ctx.in_test(2), "attribute line itself is in the region");
        assert!(ctx.in_test(5));
        assert!(ctx.in_test(6));
        assert!(!ctx.in_test(7));
    }

    #[test]
    fn test_attr_on_fn_is_scoped() {
        let src = "fn live() {}\n#[test]\nfn t() {\n    boom();\n}\nfn live2() {}\n";
        let ctx = FileContext::new("x.rs".into(), src);
        assert!(!ctx.in_test(1));
        assert!(ctx.in_test(4));
        assert!(!ctx.in_test(6));
    }

    #[test]
    fn allow_covers_following_statement() {
        let src = "// kdc-lint: allow(no_panic) — reason\nfoo()\n    .expect(\"fine\");\nbar().expect(\"not fine\");\n";
        let ctx = FileContext::new("x.rs".into(), src);
        assert!(ctx.allowed("no_panic", 1));
        assert!(ctx.allowed("no_panic", 3));
        assert!(!ctx.allowed("no_panic", 4));
        assert!(!ctx.allowed("other_rule", 1));
    }

    #[test]
    fn trailing_allow_covers_its_own_line() {
        let src = "foo().expect(\"fine\"); // kdc-lint: allow(no_panic)\n";
        let ctx = FileContext::new("x.rs".into(), src);
        assert!(ctx.allowed("no_panic", 1));
    }
}
