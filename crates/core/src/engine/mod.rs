//! The branch-and-bound engine behind kDC (Algorithms 1 and 2).
//!
//! # Representation
//!
//! The engine owns a *universe* of `n` vertices (the preprocessed, relabelled
//! graph) and a permutation array `vs` partitioned into three regions:
//!
//! ```text
//!        0 … s_end       s_end … cand_end      cand_end … n
//!      [   S (partial) |   candidates        |   removed   ]
//! ```
//!
//! Moving a vertex between regions is a swap plus a boundary bump, and every
//! move is recorded on a LIFO trail so backtracking restores state exactly.
//!
//! # Incrementally maintained quantities
//!
//! * `deg[v]`  — degree of `v` among *alive* vertices (S ∪ candidates);
//!   frozen while `v` is removed (correct on restore because undo is LIFO);
//! * `non_nbr_s[v]` — `|N̄_S(v)|`, the number of `v`'s non-neighbours inside
//!   `S` (the paper's central per-vertex quantity);
//! * `missing_in_s` — `|Ē(S)|`, missing edges inside `S`;
//! * `edges_alive` — edges among alive vertices, giving the O(1) leaf test
//!   `C(alive, 2) − edges_alive ≤ k`.
//!
//! Reduction rules live in [`reductions`], upper bounds in [`bounds`].

mod bounds;
mod reductions;
#[cfg(test)]
mod stress_tests;

use crate::config::{BranchPolicy, SolverConfig};
use crate::stats::SearchStats;
use kdc_graph::bitset::{
    self, for_each_bit_and, for_each_bit_and_not, popcount_and, BitMatrix, BitSet,
};
use kdc_graph::scratch::Marker;
use std::time::Instant;

/// Budget (in `u64` words) for the adjacency-list path's lazily built
/// per-vertex neighbour masks: universes with `n · ⌈n/64⌉` beyond this run
/// the scalar kernel instead (the cache would cost more memory than the
/// sweeps save). 2^23 words = 64 MiB.
const LIST_MASK_WORDS_LIMIT: usize = 1 << 23;

/// Trail entries; undone in reverse order.
#[derive(Clone, Copy, Debug)]
enum Op {
    /// A candidate was moved into S.
    AddS(u32),
    /// A candidate was removed from the graph.
    RemoveCand(u32),
}

/// Outcome of applying the reduction pipeline to the current instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Reduced {
    /// The instance cannot contain a solution better than `lb`.
    Pruned,
    /// The alive graph is itself a k-defective clique (leaf rule).
    Leaf,
    /// Branching is required.
    Open,
}

/// Reusable scratch for the bucket-queue degeneracy ranking of the root
/// universe (an allocation-free [`Engine::reset`] needs the ranking without
/// a per-instance heap).
#[derive(Default)]
struct RankScratch {
    deg: Vec<u32>,
    vert: Vec<u32>,
    pos: Vec<u32>,
    bucket_start: Vec<u32>,
    next_slot: Vec<u32>,
}

/// The search engine over a fixed universe graph.
///
/// The universe adjacency is stored as a flat CSR (`adj_off`/`adj_dat`) so a
/// long-lived engine can be re-primed for a new universe via
/// [`Engine::reset`] without allocating: every buffer is cleared and
/// refilled in place, retaining its capacity across instances (the
/// steady-state contract of the decomposition arena).
pub(crate) struct Engine {
    pub(crate) k: usize,
    n: usize,
    /// Static sorted adjacency over the universe, CSR layout:
    /// `adj_dat[adj_off[v] .. adj_off[v + 1]]` is the sorted row of `v`.
    adj_off: Vec<u32>,
    adj_dat: Vec<u32>,
    /// Optional dense adjacency for `n ≤ matrix_limit`.
    matrix: Option<BitMatrix>,
    /// Parked matrix buffer while the current universe is too large for the
    /// dense path, so a later small universe can reuse the allocation.
    matrix_spare: Option<BitMatrix>,
    /// Alive-candidate membership mask (kept in sync with the partition; used
    /// by bit-parallel intersections).
    cand_mask: BitSet,
    /// Alive-vertex membership mask (`S ∪ candidates`), the word-kernel
    /// companion of `cand_mask`: the non-neighbour sweeps of `add_to_s` and
    /// the neighbour sweeps of `remove_cand` intersect adjacency rows
    /// against it instead of probing `pos` per vertex.
    alive_mask: BitSet,
    /// Words per cached neighbour-mask row on the adjacency-list path
    /// (`0` = cache disabled: a matrix is present, the word kernel is off,
    /// or the universe exceeds [`LIST_MASK_WORDS_LIMIT`]).
    nbr_mask_words: usize,
    /// Flat `n × nbr_mask_words` storage for the lazily built rows.
    nbr_mask_data: Vec<u64>,
    /// Per-vertex build stamp: a row is valid iff its stamp equals
    /// `nbr_mask_serial` (O(1) whole-cache invalidation on reset).
    nbr_mask_epoch: Vec<u32>,
    nbr_mask_serial: u32,

    vs: Vec<u32>,
    pos: Vec<usize>,
    s_end: usize,
    cand_end: usize,

    deg: Vec<u32>,
    non_nbr_s: Vec<u32>,
    missing_in_s: usize,
    edges_alive: usize,

    trail: Vec<Op>,

    /// Best solution found by this engine (universe ids; may be empty).
    best: Vec<u32>,
    /// External lower bound (e.g. the heuristic solution size); the engine
    /// only reports solutions strictly larger than this floor.
    lb_floor: usize,
    /// §6 enumeration mode: keep the `pool_r` largest *maximal* k-defective
    /// cliques instead of a single optimum (0 = disabled).
    pool_r: usize,
    /// The enumeration pool, sorted by size descending.
    pool: Vec<Vec<u32>>,

    pub(crate) config: SolverConfig,
    pub(crate) stats: SearchStats,
    /// Whether per-bound wall-clock attribution is on, sampled from
    /// [`kdc_obs::enabled`] at construction so the per-node decision is a
    /// plain field load rather than an atomic.
    pub(crate) obs_timing: bool,

    /// Rank of each vertex in a degeneracy ordering of the universe graph
    /// (colouring order for UB1: descending rank = reverse degeneracy order).
    root_rank: Vec<u32>,
    /// Universe vertices pre-sorted by descending `root_rank` (so a filtered
    /// scan yields candidates already in colouring order).
    order_by_rank: Vec<u32>,
    /// Scratch: flat per-colour-class bitsets (`num_classes × words`) for the
    /// matrix colouring path.
    scratch_classes: Vec<u64>,
    /// Scratch: secondary pair buffer for the two-pass counting sort.
    scratch_pairs_tmp: Vec<(u32, u32)>,

    mark: Marker,
    /// Scratch: candidates sorted by `non_nbr_s` (UB3/RR3) or by colour (UB1).
    scratch_cands: Vec<u32>,
    /// Scratch: per-vertex colour during UB1.
    scratch_color: Vec<u32>,
    /// Scratch: counting-sort buckets.
    scratch_buckets: Vec<u32>,
    /// Scratch: per-colour "used" stamps during greedy colouring.
    scratch_used: Vec<u32>,
    scratch_serial: u32,
    /// Scratch: (colour, |N̄_S|) pairs for UB1.
    scratch_pairs: Vec<(u32, u32)>,
    /// Scratch: bucket-queue state for [`Engine::recompute_root_order`].
    rank_scratch: RankScratch,

    /// Called whenever the incumbent improves (new best size passed in);
    /// returning `true` aborts the run with [`Engine::rebuild_requested`]
    /// set, signalling the caller to re-extract a tightened universe and
    /// restart. Installed by the solver's CTCP re-tightening loop.
    improve_hook: Option<Box<dyn FnMut(usize) -> bool + Send>>,
    /// Whether the last abort was a voluntary stop-for-rebuild (see
    /// `improve_hook`), as opposed to a limit or cancellation.
    rebuild_requested: bool,

    depth: usize,
    aborted: bool,
    abort_status: crate::stats::Status,
    deadline: Option<Instant>,
    node_limit: Option<u64>,
}

impl Engine {
    /// Builds an engine over a universe given by sorted adjacency lists.
    pub(crate) fn new(adj: Vec<Vec<u32>>, k: usize, config: SolverConfig, lb_floor: usize) -> Self {
        let n = adj.len();
        let mut off = Vec::with_capacity(n + 1);
        let mut dat = Vec::with_capacity(adj.iter().map(Vec::len).sum());
        off.push(0u32);
        for row in &adj {
            dat.extend_from_slice(row);
            off.push(dat.len() as u32);
        }
        let mut engine = Self::hollow(k, config);
        engine.reset(&off, &dat, lb_floor);
        engine
    }

    /// An engine with zero-capacity buffers and no universe. Must be primed
    /// with [`Engine::reset`] before use; exists so arenas can allocate the
    /// struct once per worker and grow it on first reset.
    pub(crate) fn hollow(k: usize, config: SolverConfig) -> Self {
        Engine {
            k,
            n: 0,
            adj_off: Vec::new(),
            adj_dat: Vec::new(),
            matrix: None,
            matrix_spare: None,
            cand_mask: BitSet::new(0),
            alive_mask: BitSet::new(0),
            nbr_mask_words: 0,
            nbr_mask_data: Vec::new(),
            nbr_mask_epoch: Vec::new(),
            nbr_mask_serial: 0,
            vs: Vec::new(),
            pos: Vec::new(),
            s_end: 0,
            cand_end: 0,
            deg: Vec::new(),
            non_nbr_s: Vec::new(),
            missing_in_s: 0,
            edges_alive: 0,
            trail: Vec::new(),
            best: Vec::new(),
            lb_floor: 0,
            pool_r: 0,
            pool: Vec::new(),
            stats: SearchStats::default(),
            obs_timing: kdc_obs::enabled(),
            root_rank: Vec::new(),
            order_by_rank: Vec::new(),
            scratch_classes: Vec::new(),
            scratch_pairs_tmp: Vec::new(),
            mark: Marker::new(0),
            scratch_cands: Vec::new(),
            scratch_color: Vec::new(),
            scratch_buckets: Vec::new(),
            scratch_used: Vec::new(),
            scratch_serial: 0,
            scratch_pairs: Vec::new(),
            rank_scratch: RankScratch::default(),
            improve_hook: None,
            rebuild_requested: false,
            depth: 0,
            aborted: false,
            abort_status: crate::stats::Status::Optimal,
            deadline: None,
            node_limit: None,
            config,
        }
    }

    /// Re-primes the engine for a new universe given as a CSR adjacency
    /// (`data[offsets[v]..offsets[v + 1]]` = sorted row of `v`), clearing
    /// every piece of per-run state in place. In steady state (capacities
    /// already grown by earlier universes of at least this size) this
    /// performs no heap allocation — the contract the decomposition arena's
    /// `arena_reuses` counter asserts.
    pub(crate) fn reset(&mut self, offsets: &[u32], data: &[u32], lb_floor: usize) {
        let n = offsets.len() - 1;
        debug_assert!((0..n).all(|v| {
            data[offsets[v] as usize..offsets[v + 1] as usize]
                .windows(2)
                .all(|w| w[0] < w[1])
        }));
        self.n = n;
        self.adj_off.clear();
        self.adj_off.extend_from_slice(offsets);
        self.adj_dat.clear();
        self.adj_dat.extend_from_slice(data);

        if n > 0 && n <= self.config.matrix_limit {
            let mut mx = match self.matrix.take().or_else(|| self.matrix_spare.take()) {
                Some(mut mx) => {
                    mx.reset(n, n);
                    mx
                }
                None => BitMatrix::new(n, n),
            };
            for u in 0..n {
                for i in offsets[u] as usize..offsets[u + 1] as usize {
                    mx.set(u, data[i] as usize);
                }
            }
            self.matrix = Some(mx);
        } else if let Some(mx) = self.matrix.take() {
            self.matrix_spare = Some(mx);
        }

        self.cand_mask.reset_full(n);
        self.alive_mask.reset_full(n);
        // List-path neighbour-mask cache: lazily built rows, invalidated as a
        // whole by bumping the serial (no O(n · words) clear per reset).
        let row_words = bitset::words_for(n);
        self.nbr_mask_words = if self.config.word_kernel
            && self.matrix.is_none()
            && n > 0
            && n.checked_mul(row_words)
                .is_some_and(|total| total <= LIST_MASK_WORDS_LIMIT)
        {
            row_words
        } else {
            0
        };
        if self.nbr_mask_words > 0 {
            let need = n * self.nbr_mask_words;
            if self.nbr_mask_data.len() < need {
                self.nbr_mask_data.resize(need, 0);
            }
            if self.nbr_mask_epoch.len() < n {
                self.nbr_mask_epoch.resize(n, 0);
            }
            self.nbr_mask_serial = self.nbr_mask_serial.wrapping_add(1);
            if self.nbr_mask_serial == 0 {
                self.nbr_mask_epoch.fill(0);
                self.nbr_mask_serial = 1;
            }
        }
        self.vs.clear();
        self.vs.extend(0..n as u32);
        self.pos.clear();
        self.pos.extend(0..n);
        self.s_end = 0;
        self.cand_end = n;
        self.deg.clear();
        self.deg.extend((0..n).map(|v| offsets[v + 1] - offsets[v]));
        self.non_nbr_s.clear();
        self.non_nbr_s.resize(n, 0);
        self.missing_in_s = 0;
        self.edges_alive = data.len() / 2;
        self.trail.clear();
        self.best.clear();
        self.lb_floor = lb_floor;
        self.pool.clear();
        self.stats = SearchStats::default();
        self.recompute_root_order();
        self.mark.ensure_capacity(n);
        self.scratch_cands.clear();
        self.scratch_color.clear();
        self.scratch_color.resize(n, 0);
        self.scratch_buckets.clear();
        self.scratch_used.clear();
        self.scratch_pairs.clear();
        self.scratch_pairs_tmp.clear();
        self.scratch_classes.clear();
        self.depth = 0;
        self.aborted = false;
        self.rebuild_requested = false;
        self.abort_status = crate::stats::Status::Optimal;
        self.deadline = self.config.time_limit.map(|d| Instant::now() + d);
        self.node_limit = self.config.node_limit;
    }

    /// The sorted universe row of `v`.
    #[inline]
    fn nbrs(&self, v: u32) -> &[u32] {
        &self.adj_dat[self.adj_off[v as usize] as usize..self.adj_off[v as usize + 1] as usize]
    }

    /// `(start, end)` indices of `v`'s row in `adj_dat` (for loops that must
    /// mutate other fields while walking the row).
    #[inline]
    fn row_range(&self, v: u32) -> (usize, usize) {
        (
            self.adj_off[v as usize] as usize,
            self.adj_off[v as usize + 1] as usize,
        )
    }

    /// Recomputes `root_rank` and `order_by_rank` for the current universe
    /// with the reusable bucket-queue peel (no per-call heap allocation in
    /// steady state). Ties among equal-degree vertices follow bucket order,
    /// which is deterministic for a given universe.
    fn recompute_root_order(&mut self) {
        let n = self.n;
        let rs = &mut self.rank_scratch;
        rs.deg.clear();
        rs.deg
            .extend((0..n).map(|v| self.adj_off[v + 1] - self.adj_off[v]));
        let max_deg = rs.deg.iter().copied().max().unwrap_or(0) as usize;
        rs.bucket_start.clear();
        rs.bucket_start.resize(max_deg + 2, 0);
        for &d in &rs.deg {
            rs.bucket_start[d as usize + 1] += 1;
        }
        for i in 1..rs.bucket_start.len() {
            rs.bucket_start[i] += rs.bucket_start[i - 1];
        }
        rs.next_slot.clear();
        rs.next_slot.extend_from_slice(&rs.bucket_start);
        rs.vert.clear();
        rs.vert.resize(n, 0);
        rs.pos.clear();
        rs.pos.resize(n, 0);
        for v in 0..n {
            let d = rs.deg[v] as usize;
            rs.vert[rs.next_slot[d] as usize] = v as u32;
            rs.pos[v] = rs.next_slot[d];
            rs.next_slot[d] += 1;
        }
        self.root_rank.clear();
        self.root_rank.resize(n, 0);
        for i in 0..n {
            let v = rs.vert[i];
            self.root_rank[v as usize] = i as u32;
            let start = self.adj_off[v as usize] as usize;
            let end = self.adj_off[v as usize + 1] as usize;
            for idx in start..end {
                let w = self.adj_dat[idx] as usize;
                if (rs.pos[w] as usize) <= i {
                    continue; // already peeled
                }
                let dw = rs.deg[w] as usize;
                let pw = rs.pos[w] as usize;
                let front = (rs.bucket_start[dw] as usize).max(i + 1);
                let u = rs.vert[front];
                if u as usize != w {
                    rs.vert.swap(front, pw);
                    rs.pos[w] = front as u32;
                    rs.pos[u as usize] = pw as u32;
                }
                rs.bucket_start[dw] = front as u32 + 1;
                rs.deg[w] -= 1;
            }
        }
        // Descending rank = reverse peel order (colouring order for UB1).
        self.order_by_rank.clear();
        self.order_by_rank.extend(rs.vert.iter().rev().copied());
    }

    /// Replaces the deadline (e.g. to make the limit cover heuristic +
    /// preprocessing time as in the paper's "processing time" metric).
    pub(crate) fn override_deadline(&mut self, deadline: Option<Instant>) {
        self.deadline = deadline;
    }

    /// Why the search aborted (meaningful only when [`Engine::run`] returned
    /// `false`).
    pub(crate) fn abort_status(&self) -> crate::stats::Status {
        self.abort_status
    }

    /// Moves the accumulated statistics out of the engine.
    pub(crate) fn take_stats(&mut self) -> SearchStats {
        std::mem::take(&mut self.stats)
    }

    /// Runs the search from the root instance `(G, ∅)`. Returns `true` if the
    /// search ran to completion (no limit hit).
    pub(crate) fn run(&mut self) -> bool {
        self.search();
        !self.aborted
    }

    /// The best solution found that beats the floor, in universe ids.
    pub(crate) fn best(&self) -> &[u32] {
        &self.best
    }

    /// Current pruning lower bound: best known solution size, or in
    /// enumeration mode one less than the pool's smallest member (so ties
    /// with the r-th best are not cut off).
    #[inline]
    pub(crate) fn lb(&self) -> usize {
        if self.pool_r > 0 {
            if self.pool.len() >= self.pool_r {
                self.pool.last().map_or(0, |c| c.len()).saturating_sub(1)
            } else {
                0
            }
        } else {
            self.lb_floor.max(self.best.len())
        }
    }

    /// Enables §6 enumeration mode: collect the `r` largest maximal
    /// k-defective cliques. Must be called before [`Engine::run`].
    pub(crate) fn enable_pool(&mut self, r: usize) {
        assert!(r > 0, "pool size must be positive");
        self.pool_r = r;
    }

    /// Takes the enumeration pool (sorted by size descending).
    pub(crate) fn take_pool(&mut self) -> Vec<Vec<u32>> {
        std::mem::take(&mut self.pool)
    }

    /// Whether the engine runs in §6 enumeration mode.
    #[inline]
    pub(crate) fn pool_mode(&self) -> bool {
        self.pool_r > 0
    }

    // ---- region predicates -------------------------------------------------

    #[inline]
    fn is_cand(&self, v: u32) -> bool {
        let p = self.pos[v as usize];
        p >= self.s_end && p < self.cand_end
    }

    #[inline]
    fn alive(&self, v: u32) -> bool {
        self.pos[v as usize] < self.cand_end
    }

    /// Number of alive vertices `|V(g)|`.
    #[inline]
    pub(crate) fn alive_count(&self) -> usize {
        self.cand_end
    }

    /// Number of candidates `|V(g) \ S|`.
    #[inline]
    fn cand_count(&self) -> usize {
        self.cand_end - self.s_end
    }

    /// Adjacency test over the universe (binary search probes the smaller
    /// of the two rows on the list path).
    #[inline]
    pub(crate) fn has_edge(&self, u: u32, v: u32) -> bool {
        match &self.matrix {
            Some(mx) => mx.get(u as usize, v as usize),
            None => {
                let (a, b) = if self.nbrs(u).len() <= self.nbrs(v).len() {
                    (u, v)
                } else {
                    (v, u)
                };
                self.nbrs(a).binary_search(&b).is_ok()
            }
        }
    }

    // ---- word kernel -------------------------------------------------------

    /// Whether the per-node hot path runs as masked word sweeps: the word
    /// kernel is configured on and a word-granular adjacency representation
    /// exists (dense matrix, or the list-path neighbour-mask cache).
    #[inline]
    fn word_kernel_active(&self) -> bool {
        self.config.word_kernel && (self.matrix.is_some() || self.nbr_mask_words > 0)
    }

    /// Ensures the cached neighbour mask of `v` is built (list path only);
    /// returns its range in `nbr_mask_data`. Each universe pays the O(words
    /// + deg) build at most once per vertex per reset.
    fn ensure_nbr_mask(&mut self, v: u32) -> (usize, usize) {
        debug_assert!(self.nbr_mask_words > 0);
        let start = v as usize * self.nbr_mask_words;
        let end = start + self.nbr_mask_words;
        if self.nbr_mask_epoch[v as usize] != self.nbr_mask_serial {
            let row = &mut self.nbr_mask_data[start..end];
            row.fill(0);
            let from = self.adj_off[v as usize] as usize;
            let to = self.adj_off[v as usize + 1] as usize;
            for &w in &self.adj_dat[from..to] {
                row[w as usize / 64] |= 1u64 << (w as usize % 64);
            }
            self.nbr_mask_epoch[v as usize] = self.nbr_mask_serial;
        }
        (start, end)
    }

    /// The word-granular adjacency row of `v`: the matrix row when dense,
    /// the (already built — call [`Engine::ensure_nbr_mask`] first) cached
    /// neighbour mask otherwise.
    #[inline]
    fn word_row(&self, v: u32) -> &[u64] {
        match &self.matrix {
            Some(mx) => mx.row(v as usize),
            None => {
                debug_assert_eq!(self.nbr_mask_epoch[v as usize], self.nbr_mask_serial);
                let start = v as usize * self.nbr_mask_words;
                &self.nbr_mask_data[start..start + self.nbr_mask_words]
            }
        }
    }

    /// Word sweep behind `add_to_s`/its undo: adds `delta` (±1 as a wrapping
    /// `u32`) to `non_nbr_s[w]` for every alive non-neighbour `w ≠ v` of `v`.
    // kdc-lint: hot-path
    fn sweep_alive_non_neighbors(&mut self, v: u32, delta: u32) {
        if self.matrix.is_none() {
            self.ensure_nbr_mask(v);
        }
        // Disjoint field borrows: the row aliases only the adjacency storage.
        let row: &[u64] = match &self.matrix {
            Some(mx) => mx.row(v as usize),
            None => {
                let start = v as usize * self.nbr_mask_words;
                &self.nbr_mask_data[start..start + self.nbr_mask_words]
            }
        };
        let non_nbr_s = &mut self.non_nbr_s;
        for_each_bit_and_not(self.alive_mask.words(), row, |w| {
            non_nbr_s[w] = non_nbr_s[w].wrapping_add(delta);
        });
        // v is alive and not its own neighbour, so the sweep touched it;
        // the scalar loop excludes it.
        let own = &mut self.non_nbr_s[v as usize];
        *own = own.wrapping_sub(delta);
    }

    /// Word sweep behind `remove_cand`/its undo: adds `delta` (±1 as a
    /// wrapping `u32`) to `deg[w]` for every alive neighbour `w` of `v`.
    /// `alive_mask` must not contain vertices the scalar predicate
    /// (`pos[w] < cand_end`) would exclude — both call sites hold that.
    // kdc-lint: hot-path
    fn sweep_alive_neighbors(&mut self, v: u32, delta: u32) {
        if self.matrix.is_none() {
            self.ensure_nbr_mask(v);
        }
        let row: &[u64] = match &self.matrix {
            Some(mx) => mx.row(v as usize),
            None => {
                let start = v as usize * self.nbr_mask_words;
                &self.nbr_mask_data[start..start + self.nbr_mask_words]
            }
        };
        let deg = &mut self.deg;
        for_each_bit_and(self.alive_mask.words(), row, |w| {
            deg[w] = deg[w].wrapping_add(delta);
        });
    }

    // ---- trailed operations ------------------------------------------------

    #[inline]
    fn swap_vs(&mut self, a: usize, b: usize) {
        if a != b {
            self.vs.swap(a, b);
            self.pos[self.vs[a] as usize] = a;
            self.pos[self.vs[b] as usize] = b;
        }
    }

    /// Moves candidate `v` into S (left branch / RR2).
    fn add_to_s(&mut self, v: u32) {
        debug_assert!(self.is_cand(v));
        let p = self.pos[v as usize];
        self.swap_vs(p, self.s_end);
        self.s_end += 1;
        self.missing_in_s += self.non_nbr_s[v as usize] as usize;
        // Every alive non-neighbour of v gains one S-non-neighbour.
        if self.word_kernel_active() {
            self.sweep_alive_non_neighbors(v, 1);
        } else {
            self.mark.reset();
            let (start, end) = self.row_range(v);
            for i in start..end {
                let w = self.adj_dat[i];
                self.mark.mark(w as usize);
            }
            for i in 0..self.cand_end {
                let w = self.vs[i];
                if w != v && !self.mark.is_marked(w as usize) {
                    self.non_nbr_s[w as usize] += 1;
                }
            }
        }
        self.cand_mask.remove(v as usize);
        self.trail.push(Op::AddS(v));
    }

    /// Removes candidate `v` from the graph (right branch / RR1/RR3–RR5).
    /// Degrees of remaining alive vertices are decremented incrementally on
    /// both adjacency representations — never re-derived from scratch.
    fn remove_cand(&mut self, v: u32) {
        debug_assert!(self.is_cand(v));
        let p = self.pos[v as usize];
        self.swap_vs(p, self.cand_end - 1);
        self.cand_end -= 1;
        self.edges_alive -= self.deg[v as usize] as usize;
        if self.word_kernel_active() {
            // `alive_mask` still contains v here, but v ∉ row(v), so the
            // sweep set equals the scalar predicate's.
            self.sweep_alive_neighbors(v, 1u32.wrapping_neg());
        } else {
            let (start, end) = self.row_range(v);
            for i in start..end {
                let w = self.adj_dat[i];
                if self.pos[w as usize] < self.cand_end {
                    self.deg[w as usize] -= 1;
                }
            }
        }
        self.cand_mask.remove(v as usize);
        self.alive_mask.remove(v as usize);
        self.trail.push(Op::RemoveCand(v));
    }

    /// Undoes trail operations until the trail shrinks to `checkpoint`.
    fn undo_to(&mut self, checkpoint: usize) {
        while self.trail.len() > checkpoint {
            match self.trail.pop().expect("trail underflow") {
                Op::AddS(v) => {
                    debug_assert_eq!(self.pos[v as usize], self.s_end - 1);
                    if self.word_kernel_active() {
                        self.sweep_alive_non_neighbors(v, 1u32.wrapping_neg());
                    } else {
                        self.mark.reset();
                        let (start, end) = self.row_range(v);
                        for i in start..end {
                            let w = self.adj_dat[i];
                            self.mark.mark(w as usize);
                        }
                        for i in 0..self.cand_end {
                            let w = self.vs[i];
                            if w != v && !self.mark.is_marked(w as usize) {
                                self.non_nbr_s[w as usize] -= 1;
                            }
                        }
                    }
                    self.missing_in_s -= self.non_nbr_s[v as usize] as usize;
                    self.s_end -= 1;
                    self.cand_mask.insert(v as usize);
                }
                Op::RemoveCand(v) => {
                    debug_assert_eq!(self.pos[v as usize], self.cand_end);
                    if self.word_kernel_active() {
                        // v is not yet back in `alive_mask`, matching the
                        // scalar predicate (pos[v] == cand_end).
                        self.sweep_alive_neighbors(v, 1);
                    } else {
                        let (start, end) = self.row_range(v);
                        for i in start..end {
                            let w = self.adj_dat[i];
                            if self.pos[w as usize] < self.cand_end {
                                self.deg[w as usize] += 1;
                            }
                        }
                    }
                    self.edges_alive += self.deg[v as usize] as usize;
                    self.cand_end += 1;
                    self.cand_mask.insert(v as usize);
                    self.alive_mask.insert(v as usize);
                }
            }
        }
    }

    // ---- search ------------------------------------------------------------

    fn search(&mut self) {
        self.stats.nodes += 1;
        self.stats.max_depth = self.stats.max_depth.max(self.depth);
        // Per-node deadline check: a node costs Ω(alive) work, so the clock
        // read is noise, and coarser checks overshoot small limits on large
        // instances where single nodes are milliseconds.
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                self.aborted = true;
                self.abort_status = crate::stats::Status::TimedOut;
            }
        }
        if let Some(limit) = self.node_limit {
            if self.stats.nodes >= limit {
                self.aborted = true;
                self.abort_status = crate::stats::Status::NodeLimitReached;
            }
        }
        if let Some(flag) = &self.config.cancel {
            if flag.is_cancelled() {
                self.aborted = true;
                self.abort_status = crate::stats::Status::Cancelled;
            }
        }
        if self.aborted {
            return;
        }
        #[cfg(debug_assertions)]
        self.assert_invariants();

        let cp = self.trail.len();
        match self.reduce() {
            Reduced::Pruned => {
                self.undo_to(cp);
                return;
            }
            Reduced::Leaf => {
                self.stats.leaves += 1;
                self.record_alive_solution();
                self.undo_to(cp);
                return;
            }
            Reduced::Open => {}
        }

        // Anytime improvement: S itself is always a valid k-defective clique.
        if self.pool_r == 0 && self.s_end > self.lb() {
            self.best.clear();
            self.best.extend_from_slice(&self.vs[..self.s_end]);
            self.notify_improved();
            if self.aborted {
                self.undo_to(cp);
                return;
            }
        }

        if self.any_bound_enabled() {
            let lb = self.lb();
            let (ub, ub1_was_min, kdclub_was_min) = self.upper_bound(lb);
            if ub <= self.lb() {
                self.stats.bound_prunes += 1;
                if ub1_was_min {
                    self.stats.ub1_prunes += 1;
                }
                if kdclub_was_min {
                    self.stats.kdclub_prunes += 1;
                }
                self.undo_to(cp);
                return;
            }
        }

        let b = self.pick_branch_vertex();
        let cp2 = self.trail.len();

        // Left branch: include b (BR guarantees S ∪ b is feasible because
        // RR1 ran to fixpoint first).
        self.add_to_s(b);
        self.depth += 1;
        self.search();
        self.depth -= 1;
        self.undo_to(cp2);

        // Right branch: exclude b.
        self.remove_cand(b);
        self.depth += 1;
        self.search();
        self.depth -= 1;
        self.undo_to(cp2);

        self.undo_to(cp);
    }

    /// Records the whole alive set as the incumbent if it improves on `lb`.
    /// In enumeration mode, inserts it into the pool when globally maximal.
    fn record_alive_solution(&mut self) {
        if self.pool_r > 0 {
            if self.cand_end > self.lb() && self.alive_is_globally_maximal() {
                let sol = self.vs[..self.cand_end].to_vec();
                let idx = self.pool.partition_point(|c| c.len() >= sol.len());
                self.pool.insert(idx, sol);
                self.pool.truncate(self.pool_r);
            }
        } else if self.cand_end > self.lb() {
            self.best.clear();
            self.best.extend_from_slice(&self.vs[..self.cand_end]);
            self.notify_improved();
        }
    }

    /// Runs the improvement hook (if any) after `best` grew; a `true`
    /// return requests a stop-for-rebuild abort.
    fn notify_improved(&mut self) {
        let new_size = self.best.len();
        if let Some(hook) = self.improve_hook.as_mut() {
            if hook(new_size) {
                self.aborted = true;
                self.rebuild_requested = true;
            }
        }
    }

    /// Installs the incumbent-improvement hook (see [`Engine::reset`] docs;
    /// survives resets so the solver's re-tightening loop installs it once).
    pub(crate) fn set_improve_hook(&mut self, hook: Box<dyn FnMut(usize) -> bool + Send>) {
        self.improve_hook = Some(hook);
    }

    /// Whether the last run aborted voluntarily to let the caller rebuild a
    /// tightened universe (as opposed to hitting a limit).
    pub(crate) fn rebuild_requested(&self) -> bool {
        self.rebuild_requested
    }

    /// Whether the alive set is maximal with respect to the *whole universe*
    /// graph (needed in enumeration mode because a branching-removed vertex
    /// may still extend it; such supersets are found in sibling subtrees, so
    /// non-maximal leaves are simply skipped).
    fn alive_is_globally_maximal(&mut self) -> bool {
        let alive = self.cand_end;
        let missing = alive * alive.saturating_sub(1) / 2 - self.edges_alive;
        debug_assert!(missing <= self.k);
        let word = self.word_kernel_active();
        for u in 0..self.n as u32 {
            if self.alive(u) {
                continue;
            }
            // |N(u) ∩ alive| as a masked popcount on the word paths; the
            // removed vertex's `deg` entry is frozen at removal time, so the
            // live count cannot be read off the degree array.
            let nbrs_in = if word {
                if self.matrix.is_none() {
                    self.ensure_nbr_mask(u);
                }
                popcount_and(self.word_row(u), self.alive_mask.words())
            } else {
                self.nbrs(u).iter().filter(|&&w| self.alive(w)).count()
            };
            if missing + (alive - nbrs_in) <= self.k {
                return false;
            }
        }
        true
    }

    /// Whether any upper bound is configured.
    fn any_bound_enabled(&self) -> bool {
        let c = &self.config;
        c.enable_ub1 || c.enable_ub2 || c.enable_ub3 || c.use_eq2_bound || c.enable_kdclub
    }

    /// Branching rule BR (§3.1.1): prefer a candidate with at least one
    /// non-neighbour in S; tie-break per the configured policy.
    fn pick_branch_vertex(&self) -> u32 {
        debug_assert!(self.cand_count() > 0, "branching on an empty candidate set");
        let cands = &self.vs[self.s_end..self.cand_end];
        match self.config.branch_policy {
            BranchPolicy::MaxNonNeighbors => {
                let mut best = cands[0];
                let mut best_nn = self.non_nbr_s[best as usize];
                for &v in &cands[1..] {
                    let nn = self.non_nbr_s[v as usize];
                    if nn > best_nn {
                        best = v;
                        best_nn = nn;
                    }
                }
                if best_nn > 0 {
                    best
                } else {
                    // All candidates fully adjacent to S: arbitrary choice;
                    // min alive degree works well in practice.
                    *cands
                        .iter()
                        .min_by_key(|&&v| self.deg[v as usize])
                        .expect("nonempty")
                }
            }
            BranchPolicy::FirstEligible => cands
                .iter()
                .copied()
                .find(|&v| self.non_nbr_s[v as usize] > 0)
                .unwrap_or(cands[0]),
            BranchPolicy::MinDegree => {
                let eligible: Option<u32> = cands
                    .iter()
                    .copied()
                    .filter(|&v| self.non_nbr_s[v as usize] > 0)
                    .min_by_key(|&v| self.deg[v as usize]);
                eligible.unwrap_or_else(|| {
                    *cands
                        .iter()
                        .min_by_key(|&&v| self.deg[v as usize])
                        .expect("nonempty")
                })
            }
            BranchPolicy::MaxDegreeAny => *cands
                .iter()
                .max_by_key(|&&v| self.deg[v as usize])
                .expect("nonempty"),
        }
    }

    // ---- probing and test accessors -------------------------------------------

    /// Forces a candidate into S (instance construction for [`crate::probe`]).
    pub(crate) fn force_into_s(&mut self, v: u32) {
        self.add_to_s(v);
    }

    /// Test hook: force a candidate into S.
    #[cfg(test)]
    pub(crate) fn add_to_s_for_test(&mut self, v: u32) {
        self.add_to_s(v);
    }

    /// Test hook: `|Ē(S)|`.
    #[cfg(test)]
    pub(crate) fn missing_in_s_for_test(&self) -> usize {
        self.missing_in_s
    }

    /// Test hook: `|S|`.
    #[cfg(test)]
    pub(crate) fn s_len_for_test(&self) -> usize {
        self.s_end
    }

    /// Test hook: some candidate that can feasibly join S, if any.
    #[cfg(test)]
    pub(crate) fn first_feasible_candidate_for_test(&self) -> Option<u32> {
        self.vs[self.s_end..self.cand_end]
            .iter()
            .copied()
            .find(|&v| self.missing_in_s + self.non_nbr_s[v as usize] as usize <= self.k)
    }

    // ---- debug invariants ----------------------------------------------------

    /// Recomputes all incremental quantities from scratch and compares.
    /// Debug builds only; quadratic, so sampled by node count.
    #[cfg(debug_assertions)]
    fn assert_invariants(&self) {
        if self.stats.nodes % 64 != 1 || self.n > 512 {
            return;
        }
        // Membership goes through the `pos`-based predicates rather than
        // materialised sets: the checker runs inside the alloc-guard test's
        // counting window, so it must not heap-allocate itself.
        let mut edges = 0usize;
        for i in 0..self.cand_end {
            let v = self.vs[i];
            let d = self.nbrs(v).iter().filter(|&&w| self.alive(w)).count();
            assert_eq!(d, self.deg[v as usize] as usize, "deg[{v}] stale");
            edges += d;
            let nn = self.vs[..self.s_end]
                .iter()
                .filter(|&&u| u != v && !self.nbrs(v).contains(&u))
                .count();
            assert_eq!(
                nn, self.non_nbr_s[v as usize] as usize,
                "non_nbr_s[{v}] stale"
            );
        }
        assert_eq!(edges / 2, self.edges_alive, "edges_alive stale");
        let mut missing = 0usize;
        for i in 0..self.s_end {
            let u = self.vs[i];
            for &w in &self.vs[i + 1..self.s_end] {
                if !self.nbrs(u).contains(&w) {
                    missing += 1;
                }
            }
        }
        assert_eq!(missing, self.missing_in_s, "missing_in_s stale");
        assert!(self.missing_in_s <= self.k, "S must stay k-defective");
        for v in 0..self.n as u32 {
            assert_eq!(self.cand_mask.contains(v as usize), self.is_cand(v));
            assert_eq!(self.alive_mask.contains(v as usize), self.alive(v));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine_from_edges(n: usize, edges: &[(u32, u32)], k: usize) -> Engine {
        let g = kdc_graph::Graph::from_edges(n, edges);
        let adj: Vec<Vec<u32>> = (0..n as u32).map(|v| g.neighbors(v).to_vec()).collect();
        Engine::new(adj, k, SolverConfig::kdc_t(), 0)
    }

    #[test]
    fn trail_roundtrip_restores_state() {
        let mut e = engine_from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)], 1);
        let deg0 = e.deg.clone();
        let cp = e.trail.len();
        e.add_to_s(0);
        assert_eq!(e.s_end, 1);
        assert_eq!(e.non_nbr_s[2], 1, "2 is not adjacent to 0");
        assert_eq!(e.non_nbr_s[1], 0, "1 is adjacent to 0");
        e.remove_cand(2);
        assert_eq!(e.cand_end, 4);
        assert_eq!(e.deg[1], 1, "1 lost neighbour 2");
        e.add_to_s(1);
        assert_eq!(e.missing_in_s, 0);
        e.undo_to(cp);
        assert_eq!(e.s_end, 0);
        assert_eq!(e.cand_end, 5);
        assert_eq!(e.deg, deg0);
        assert_eq!(e.non_nbr_s, vec![0; 5]);
        assert_eq!(e.missing_in_s, 0);
        assert_eq!(e.edges_alive, 5);
    }

    #[test]
    fn missing_in_s_accumulates() {
        let mut e = engine_from_edges(4, &[(0, 1), (2, 3)], 3);
        e.add_to_s(0);
        e.add_to_s(2); // not adjacent to 0 → 1 missing edge
        assert_eq!(e.missing_in_s, 1);
        e.add_to_s(3); // adjacent to 2, not to 0 → 2 missing
        assert_eq!(e.missing_in_s, 2);
        let lens = e.trail.len();
        e.undo_to(lens - 1);
        assert_eq!(e.missing_in_s, 1);
    }

    #[test]
    fn kdc_t_solves_cycle5() {
        // C5 with k=1 → optimum 3.
        let mut e = engine_from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)], 1);
        assert!(e.run());
        assert_eq!(e.best().len(), 3);
    }

    #[test]
    fn kdc_t_solves_figure2() {
        let g = kdc_graph::named::figure2();
        // k = 0,1: the K5; k = 2: {v1..v6}; k = 3,4: still 6 (any 7-set
        // crossing the two groups misses ≥ 6 edges, and {v1..v7} misses 5);
        // k = 5: {v1..v7}.
        for (k, expected) in [(0usize, 5usize), (1, 5), (2, 6), (3, 6), (4, 6), (5, 7)] {
            let adj: Vec<Vec<u32>> = (0..g.n() as u32).map(|v| g.neighbors(v).to_vec()).collect();
            let mut e = Engine::new(adj, k, SolverConfig::kdc_t(), 0);
            assert!(e.run());
            assert_eq!(e.best().len(), expected, "k = {k}");
            assert!(g.is_k_defective_clique(e.best(), k));
        }
    }

    #[test]
    fn lb_floor_suppresses_smaller_solutions() {
        let mut e = engine_from_edges(3, &[(0, 1), (1, 2), (0, 2)], 0);
        e.lb_floor = 3; // the triangle itself does not beat the floor
        assert!(e.run());
        assert!(e.best().is_empty());
    }

    #[test]
    fn matrix_and_list_paths_agree() {
        let g = kdc_graph::gen::gnp(30, 0.35, &mut kdc_graph::gen::seeded_rng(17));
        let adj: Vec<Vec<u32>> = (0..g.n() as u32).map(|v| g.neighbors(v).to_vec()).collect();
        for k in [0usize, 1, 3] {
            let mut cfg_list = SolverConfig::kdc_t();
            cfg_list.matrix_limit = 0; // force adjacency-list path
            let mut e1 = Engine::new(adj.clone(), k, cfg_list, 0);
            let mut e2 = Engine::new(adj.clone(), k, SolverConfig::kdc_t(), 0);
            assert!(e1.run() && e2.run());
            assert_eq!(e1.best().len(), e2.best().len(), "k = {k}");
            // Identical configurations must also explore identical trees.
            assert_eq!(e1.stats.nodes, e2.stats.nodes);
        }
    }
}
