//! Upper bounds (§3.2.1).
//!
//! * **UB1** — improved colouring bound: colour the candidates greedily in
//!   reverse degeneracy order; inside each colour class sort vertices by
//!   `|N̄_S(·)|` ascending and give the j-th vertex weight
//!   `w = |N̄_S(v)| + (j − 1)`; the instance bound is `|S|` plus the longest
//!   prefix of all weights (ascending) whose sum fits in `k − |Ē(S)|`.
//! * **UB2** — `min_{u ∈ S} d_g(u) + 1 + k` \[11\].
//! * **UB3** — `|S|` plus the longest ascending prefix of `|N̄_S(·)|` values
//!   fitting in `k − |Ē(S)|` \[16\].
//! * **Eq. (2)** — the original MADEC colouring bound
//!   `|S| + Σ_i min(⌊(1+√(8k+1))/2⌋, |π_i|)`, kept for the MADEC-like
//!   baseline and for tightness experiments; UB1 is never larger.
//! * **KD-Club bound** — a KD-Club-style \[Jin et al., AAAI 2024\] per-node
//!   re-colouring: instead of reusing the static root-universe colouring
//!   order, the *current* candidate subgraph is re-coloured with the
//!   non-neighbours of `S` packed first (ordered by `|N̄_S(·)|` descending,
//!   then current alive degree descending), and the budget `k − |Ē(S)|` is
//!   distributed greedily across the resulting colour classes. Fresh classes
//!   track the reduced subgraph, so the costly vertices concentrate in few
//!   classes and pick up larger within-class penalties — usually a tighter
//!   bound, always a sound one (any proper colouring yields valid classes).
//!   Evaluated only when UB1–UB3 fail to prune, so it can shrink the tree
//!   but never loosen it.

use super::Engine;
use crate::stats::bound;

/// Nanoseconds since `*t` (updating it to now), or 0 when timing is off.
/// The per-bound cost attribution in [`Engine::upper_bound`] threads one
/// running timestamp through the stages so each executed stage costs at
/// most one extra clock read.
#[inline]
fn lap_ns(t: &mut Option<std::time::Instant>) -> u64 {
    match t {
        Some(prev) => {
            let now = std::time::Instant::now();
            let ns = now.duration_since(*prev).as_nanos() as u64;
            *prev = now;
            ns
        }
        None => 0,
    }
}

impl Engine {
    /// Computes an upper bound for the current instance, evaluating the
    /// cheap bounds (UB2, UB3) first, the colouring bounds (UB1/Eq. (2))
    /// when the cheap ones fail to prune against `lb`, and the KD-Club
    /// re-colouring bound last of the standard set. Returns
    /// `(bound, ub1_was_strictly_needed, kdclub_was_strictly_needed)`; each
    /// flag records that the bound was strictly smaller than every other
    /// enabled bound (used by the ablation statistics and the `--stats`
    /// prune counters).
    pub(crate) fn upper_bound(&mut self, lb: usize) -> (usize, bool, bool) {
        let s = self.s_end;
        debug_assert!(self.missing_in_s <= self.k);
        let budget = self.k - self.missing_in_s;

        let mut best = usize::MAX;
        let mut t = if self.obs_timing {
            Some(std::time::Instant::now())
        } else {
            None
        };

        if self.config.enable_ub2 && s > 0 {
            let min_deg = self.vs[..s]
                .iter()
                .map(|&u| self.deg[u as usize] as usize)
                .min()
                .expect("S nonempty");
            best = best.min(min_deg + 1 + self.k);
            let bc = &mut self.stats.bound_costs[bound::UB2];
            bc.invocations += 1;
            bc.ns += lap_ns(&mut t);
            if best <= lb {
                bc.prunes += 1;
                return (best, false, false);
            }
        }

        if self.config.enable_ub3 {
            self.sort_cands_by_non_nbr();
            let mut left = budget;
            let mut cnt = 0usize;
            for &v in &self.scratch_cands {
                let nn = self.non_nbr_s[v as usize] as usize;
                if nn > left {
                    break;
                }
                left -= nn;
                cnt += 1;
            }
            best = best.min(s + cnt);
            let bc = &mut self.stats.bound_costs[bound::UB3];
            bc.invocations += 1;
            bc.ns += lap_ns(&mut t);
            if best <= lb {
                bc.prunes += 1;
                return (best, false, false);
            }
        }

        let mut ub1_flag = false;
        if self.config.enable_ub1 || self.config.use_eq2_bound {
            let (ub1, eq2, _) = self.coloring_bounds(budget);
            if self.config.use_eq2_bound {
                best = best.min(eq2);
            }
            if self.config.enable_ub1 {
                if ub1 < best {
                    ub1_flag = true;
                }
                best = best.min(ub1);
            }
            // Cost attribution lumps UB1 and the Eq. (2) replacement
            // together: exactly one colouring family is active per preset.
            let bc = &mut self.stats.bound_costs[bound::UB1];
            bc.invocations += 1;
            bc.ns += lap_ns(&mut t);
            if best <= lb {
                bc.prunes += 1;
                return (best, ub1_flag, false);
            }
        }

        // KD-Club re-colouring: the most expensive colouring bound, so it
        // only runs on instances every cheaper bound failed to close.
        let mut kdclub_flag = false;
        if self.config.enable_kdclub {
            let ubk = self.kdclub_bound(budget);
            if ubk < best {
                kdclub_flag = true;
                ub1_flag = false;
                best = ubk;
            }
            let bc = &mut self.stats.bound_costs[bound::KDCLUB];
            bc.invocations += 1;
            bc.ns += lap_ns(&mut t);
            if best <= lb {
                bc.prunes += 1;
                return (best, ub1_flag, kdclub_flag);
            }
        }

        // UB4 — the RR4-derived second-order bound the paper sketches but
        // does not deploy (§3.2.2: "an upper bound could be designed based
        // on RR4 … time-consuming"). Optional; evaluated last because it is
        // the most expensive. When it is the strict minimum, the earlier
        // flags no longer name the deciding bound and are cleared.
        if self.config.enable_ub4 && s > 0 {
            let ub4 = self.ub4_second_order();
            if ub4 < best {
                ub1_flag = false;
                kdclub_flag = false;
                best = ub4;
            }
            let bc = &mut self.stats.bound_costs[bound::UB4];
            bc.invocations += 1;
            bc.ns += lap_ns(&mut t);
            // Every earlier stage returns on a prune, so reaching this
            // point with `best <= lb` means UB4 closed the instance.
            if best <= lb {
                bc.prunes += 1;
            }
        }

        (best, ub1_flag, kdclub_flag)
    }

    /// UB4: every solution strictly containing S includes some candidate
    /// `v`, and any solution containing `S ∪ v` is bounded by the RR4 pair
    /// bound against the most recently added S-vertex; hence the instance
    /// bound is the maximum of `|S|` and the per-candidate bounds. O(m).
    fn ub4_second_order(&mut self) -> usize {
        debug_assert!(self.s_end > 0);
        let u = self.vs[self.s_end - 1];
        self.prepare_rr4_marks(u);
        let mut best = self.s_end; // the solution S itself
        for i in self.s_end..self.cand_end {
            let v = self.vs[i];
            best = best.max(self.rr4_pair_bound(u, v));
        }
        best
    }

    /// Test hook for the colouring bounds: `(UB1, Eq. (2), num_colors)`.
    #[cfg(test)]
    pub(crate) fn coloring_bounds_for_test(&mut self) -> (usize, usize, usize) {
        let budget = self.k - self.missing_in_s_for_test();
        self.coloring_bounds(budget)
    }

    /// Computes all four bounds regardless of configuration:
    /// `(UB1, Eq. (2), UB2-or-MAX, UB3)`. Used by [`crate::probe`].
    pub(crate) fn all_bounds(&mut self) -> (usize, usize, usize, usize) {
        let budget = self.k - self.missing_in_s;
        let s = self.s_end;
        let ub2 = if s > 0 {
            let min_deg = self.vs[..s]
                .iter()
                .map(|&u| self.deg[u as usize] as usize)
                .min()
                .expect("S nonempty");
            min_deg + 1 + self.k
        } else {
            usize::MAX
        };
        self.sort_cands_by_non_nbr();
        let mut left = budget;
        let mut cnt = 0usize;
        for i in 0..self.scratch_cands.len() {
            let nn = self.non_nbr_s[self.scratch_cands[i] as usize] as usize;
            if nn > left {
                break;
            }
            left -= nn;
            cnt += 1;
        }
        let ub3 = s + cnt;
        let (ub1, eq2, _) = self.coloring_bounds(budget);
        (ub1, eq2, ub2, ub3)
    }

    /// Greedy colouring of the candidate set in reverse degeneracy order of
    /// the root universe, then both colouring-based bounds:
    /// `(UB1, Eq. (2), num_colors)`.
    fn coloring_bounds(&mut self, budget: usize) -> (usize, usize, usize) {
        let s = self.s_end;
        let num_cands = self.cand_end - self.s_end;
        if num_cands == 0 {
            return (s, s, 0);
        }

        // Candidates in descending root-degeneracy rank (= reverse
        // degeneracy order restricted to the alive candidates). When the
        // universe is not much larger than the candidate set, a filtered
        // scan over the pre-sorted universe beats re-sorting per node.
        self.scratch_cands.clear();
        if self.n <= 8 * num_cands {
            for i in 0..self.order_by_rank.len() {
                let v = self.order_by_rank[i];
                if self.is_cand(v) {
                    self.scratch_cands.push(v);
                }
            }
        } else {
            self.scratch_cands
                .extend_from_slice(&self.vs[self.s_end..self.cand_end]);
            let root_rank = &self.root_rank;
            self.scratch_cands
                .sort_unstable_by_key(|&v| std::cmp::Reverse(root_rank[v as usize]));
        }
        debug_assert_eq!(self.scratch_cands.len(), num_cands);

        // Greedy first-fit colouring.
        let num_colors = self.color_scratch_cands();

        let (taken, eq2_sum) = self.distribute_budget_over_classes(budget, num_colors);

        // UB1: longest ascending-weight prefix fitting in the budget.
        let ub1 = s + taken;

        // Eq. (2): each class contributes up to ⌊(1+√(8k+1))/2⌋ vertices,
        // independently of S and of the other classes.
        let eq2 = s + eq2_sum;

        (ub1, eq2, num_colors)
    }

    /// KD-Club-style bound: re-colour the *current* candidate subgraph with
    /// the non-neighbours of S packed first (|N̄_S| descending, then current
    /// alive degree descending, vertex id as the final total-order
    /// tie-break), then distribute `budget = k − |Ē(S)|` greedily across the
    /// fresh colour classes exactly as UB1 does. Sound for any proper
    /// colouring; tighter than UB1 whenever the per-node classes pack the
    /// costly vertices better than the stale root-order classes.
    pub(crate) fn kdclub_bound(&mut self, budget: usize) -> usize {
        let s = self.s_end;
        if self.cand_end == self.s_end {
            return s;
        }
        self.scratch_cands.clear();
        self.scratch_cands
            .extend_from_slice(&self.vs[self.s_end..self.cand_end]);
        let non_nbr_s = &self.non_nbr_s;
        let deg = &self.deg;
        self.scratch_cands.sort_unstable_by_key(|&v| {
            (
                std::cmp::Reverse(non_nbr_s[v as usize]),
                std::cmp::Reverse(deg[v as usize]),
                v,
            )
        });
        let num_colors = self.color_scratch_cands();
        let (taken, _) = self.distribute_budget_over_classes(budget, num_colors);
        s + taken
    }

    /// First-fit colours `scratch_cands` in its current order through
    /// whichever machinery fits the representation; returns the number of
    /// colours used (`scratch_color[v]` holds each candidate's class).
    fn color_scratch_cands(&mut self) -> usize {
        let words = self.matrix.as_ref().map_or(usize::MAX, |m| m.row(0).len());
        let num_colors = if words <= 16 {
            self.color_candidates_matrix(words)
        } else {
            self.color_candidates_lists()
        };
        num_colors as usize
    }

    /// The shared tail of every class-based colouring bound: given coloured
    /// `scratch_cands`, sorts the (colour, |N̄_S|) pairs, assigns the j-th
    /// member of a class the weight `|N̄_S| + (j − 1)` and greedily takes the
    /// longest ascending-weight prefix whose sum fits in `budget`. Returns
    /// `(taken, eq2_sum)` where `eq2_sum` is the fused Eq. (2) per-class cap
    /// `Σ_i min(⌊(1+√(8k+1))/2⌋, |π_i|)`.
    fn distribute_budget_over_classes(
        &mut self,
        budget: usize,
        num_colors: usize,
    ) -> (usize, usize) {
        // Pairs (colour, |N̄_S|) sorted by colour then non-neighbour count:
        // two stable counting sorts (by nn, then by colour).
        self.scratch_pairs.clear();
        for idx in 0..self.scratch_cands.len() {
            let v = self.scratch_cands[idx];
            self.scratch_pairs
                .push((self.scratch_color[v as usize], self.non_nbr_s[v as usize]));
        }
        self.counting_sort_pairs(num_colors);

        // Weights, clamped to budget + 1 ("never takeable"), counting-sorted.
        // The Eq. (2) per-class cap is fused into the same pairs walk so no
        // per-node allocation is needed.
        self.scratch_buckets.clear();
        self.scratch_buckets.resize(budget + 2, 0);
        let d_max = ((1.0 + ((8 * self.k + 1) as f64).sqrt()) / 2.0).floor() as usize;
        let mut eq2_sum = 0usize;
        let mut prev_color = u32::MAX;
        let mut j = 0usize;
        for &(color, nn) in &self.scratch_pairs {
            if color != prev_color {
                prev_color = color;
                j = 0;
            }
            if j < d_max {
                eq2_sum += 1;
            }
            let w = (nn as usize + j).min(budget + 1);
            self.scratch_buckets[w] += 1;
            j += 1;
        }

        // Longest ascending-weight prefix fitting in the budget.
        let mut left = budget;
        let mut taken = 0usize;
        for w in 0..=budget {
            let cnt = self.scratch_buckets[w] as usize;
            if cnt == 0 {
                continue;
            }
            let fit = match left.checked_div(w) {
                Some(quota) => cnt.min(quota),
                None => cnt, // weight 0: all fit for free
            };
            taken += fit;
            left -= fit * w;
            if fit < cnt {
                break;
            }
        }
        (taken, eq2_sum)
    }

    /// First-fit colouring of `scratch_cands` (already in colouring order)
    /// via per-class bitsets over the dense adjacency matrix: vertex `v`
    /// joins the first class whose member mask does not intersect `row(v)`.
    /// Returns the number of colours.
    fn color_candidates_matrix(&mut self, words: usize) -> u32 {
        let mx = self.matrix.as_ref().expect("matrix path");
        self.scratch_classes.clear();
        let mut num_colors = 0u32;
        for idx in 0..self.scratch_cands.len() {
            let v = self.scratch_cands[idx] as usize;
            let row = mx.row(v);
            let mut color = num_colors;
            'classes: for c in 0..num_colors as usize {
                let class = &self.scratch_classes[c * words..(c + 1) * words];
                for (cw, rw) in class.iter().zip(row) {
                    if cw & rw != 0 {
                        continue 'classes;
                    }
                }
                color = c as u32;
                break;
            }
            if color == num_colors {
                num_colors += 1;
                self.scratch_classes.resize(num_colors as usize * words, 0);
            }
            self.scratch_classes[color as usize * words + v / 64] |= 1u64 << (v % 64);
            self.scratch_color[v] = color;
        }
        num_colors
    }

    /// First-fit colouring of `scratch_cands` via adjacency lists and
    /// colour-usage stamps (the sparse/large-universe path). Returns the
    /// number of colours.
    fn color_candidates_lists(&mut self) -> u32 {
        let num_cands = self.scratch_cands.len();
        for idx in 0..num_cands {
            let v = self.scratch_cands[idx];
            self.scratch_color[v as usize] = u32::MAX;
        }
        self.scratch_used.resize(num_cands + 1, 0);
        let mut num_colors = 0u32;
        for idx in 0..num_cands {
            let v = self.scratch_cands[idx];
            self.scratch_serial += 1;
            let serial = self.scratch_serial;
            let (start, end) = self.row_range(v);
            for i in start..end {
                let w = self.adj_dat[i];
                if self.is_cand(w) {
                    let c = self.scratch_color[w as usize];
                    if c != u32::MAX {
                        self.scratch_used[c as usize] = serial;
                    }
                }
            }
            let mut c = 0u32;
            while self.scratch_used[c as usize] == serial {
                c += 1;
            }
            self.scratch_color[v as usize] = c;
            num_colors = num_colors.max(c + 1);
        }
        num_colors
    }

    /// Stable two-pass counting sort of `scratch_pairs` by (colour, nn):
    /// first by `nn` (values ≤ k + 1 after the RR1 fixpoint), then by colour.
    fn counting_sort_pairs(&mut self, num_colors: usize) {
        let n = self.scratch_pairs.len();
        // Pass 1: by nn.
        self.scratch_buckets.clear();
        self.scratch_buckets.resize(self.k + 2, 0);
        for &(_, nn) in &self.scratch_pairs {
            self.scratch_buckets[(nn as usize).min(self.k + 1)] += 1;
        }
        let mut acc = 0u32;
        for b in self.scratch_buckets.iter_mut() {
            let c = *b;
            *b = acc;
            acc += c;
        }
        self.scratch_pairs_tmp.clear();
        self.scratch_pairs_tmp.resize(n, (0, 0));
        for i in 0..n {
            let pair = self.scratch_pairs[i];
            let slot = &mut self.scratch_buckets[(pair.1 as usize).min(self.k + 1)];
            self.scratch_pairs_tmp[*slot as usize] = pair;
            *slot += 1;
        }
        // Pass 2: by colour (stable, preserving nn order within a colour).
        self.scratch_buckets.clear();
        self.scratch_buckets.resize(num_colors.max(1), 0);
        for &(c, _) in &self.scratch_pairs_tmp {
            self.scratch_buckets[c as usize] += 1;
        }
        let mut acc = 0u32;
        for b in self.scratch_buckets.iter_mut() {
            let cnt = *b;
            *b = acc;
            acc += cnt;
        }
        for i in 0..n {
            let pair = self.scratch_pairs_tmp[i];
            let slot = &mut self.scratch_buckets[pair.0 as usize];
            self.scratch_pairs[*slot as usize] = pair;
            *slot += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::config::SolverConfig;
    use crate::engine::Engine;

    fn engine(g: &kdc_graph::Graph, k: usize, cfg: SolverConfig) -> Engine {
        let adj: Vec<Vec<u32>> = (0..g.n() as u32).map(|v| g.neighbors(v).to_vec()).collect();
        Engine::new(adj, k, cfg, 0)
    }

    /// Builds the Figure 5 instance: S = two isolated vertices, candidates a
    /// complete 3-partite graph, k = 3.
    fn figure5_engine(cfg: SolverConfig) -> Engine {
        let (g, s) = kdc_graph::named::figure5();
        let mut e = engine(&g, 3, cfg);
        for v in s {
            e.add_to_s_for_test(v);
        }
        e
    }

    #[test]
    fn example_3_7_ub1_is_three() {
        let mut cfg = SolverConfig::kdc_t();
        cfg.enable_ub1 = true;
        let mut e = figure5_engine(cfg);
        assert_eq!(e.missing_in_s_for_test(), 1);
        let (ub, ub1_needed, _) = e.upper_bound(0);
        assert_eq!(ub, 3, "UB1 of Example 3.7");
        assert!(ub1_needed);
    }

    #[test]
    fn example_3_6_eq2_is_eleven() {
        let mut cfg = SolverConfig::kdc_t();
        cfg.use_eq2_bound = true;
        let mut e = figure5_engine(cfg);
        let (ub, _, _) = e.upper_bound(0);
        assert_eq!(ub, 11, "Eq. (2) of Example 3.6");
    }

    #[test]
    fn ub1_never_exceeds_eq2_or_s_plus_c_plus_k() {
        // §3.2.1 claims UB1 ≤ Eq.(2) and UB1 ≤ |S| + c + k − |Ē(S)|.
        let mut rng = kdc_graph::gen::seeded_rng(99);
        for _ in 0..30 {
            let g = kdc_graph::gen::gnp(24, 0.45, &mut rng);
            for k in [1usize, 3, 6] {
                let mut cfg = SolverConfig::kdc_t();
                cfg.enable_ub1 = true;
                cfg.use_eq2_bound = true;
                let mut e = engine(&g, k, cfg);
                // Grow a small random-ish S via the branching vertex.
                for _ in 0..3 {
                    if let Some(v) = e.first_feasible_candidate_for_test() {
                        e.add_to_s_for_test(v);
                    }
                }
                let (ub1, eq2, colors) = e.coloring_bounds_for_test();
                assert!(ub1 <= eq2, "UB1 {ub1} > Eq2 {eq2}");
                let s = e.s_len_for_test();
                let miss = e.missing_in_s_for_test();
                assert!(ub1 <= s + colors + k - miss);
            }
        }
    }

    #[test]
    fn ub2_on_figure5() {
        // Isolated S vertices have alive degree 0 → UB2 = 0 + 1 + k = 4.
        let mut cfg = SolverConfig::kdc_t();
        cfg.enable_ub2 = true;
        let mut e = figure5_engine(cfg);
        let (ub, _, _) = e.upper_bound(0);
        assert_eq!(ub, 4);
    }

    #[test]
    fn ub3_on_figure5() {
        // Every candidate has 2 non-neighbours in S; budget = k − |Ē(S)| = 2
        // → exactly one candidate fits → UB3 = 3.
        let mut cfg = SolverConfig::kdc_t();
        cfg.enable_ub3 = true;
        let mut e = figure5_engine(cfg);
        let (ub, _, _) = e.upper_bound(0);
        assert_eq!(ub, 3);
    }

    #[test]
    fn matrix_and_list_coloring_paths_agree() {
        // Both paths implement first-fit colouring over the same order, so
        // the resulting bounds must be identical.
        let mut rng = kdc_graph::gen::seeded_rng(314);
        for trial in 0..20 {
            let g = kdc_graph::gen::gnp(40, 0.35, &mut rng);
            for k in [1usize, 4] {
                let mut with_matrix = SolverConfig::kdc_t();
                with_matrix.enable_ub1 = true;
                let mut without = with_matrix.clone();
                without.matrix_limit = 0;

                let mut e1 = engine(&g, k, with_matrix);
                let mut e2 = engine(&g, k, without);
                // Grow identical S in both.
                for _ in 0..2 {
                    let v1 = e1.first_feasible_candidate_for_test();
                    let v2 = e2.first_feasible_candidate_for_test();
                    assert_eq!(v1, v2);
                    if let Some(v) = v1 {
                        e1.add_to_s_for_test(v);
                        e2.add_to_s_for_test(v);
                    }
                }
                let b1 = e1.coloring_bounds_for_test();
                let b2 = e2.coloring_bounds_for_test();
                assert_eq!(b1, b2, "trial {trial} k {k}");
            }
        }
    }

    #[test]
    fn ub4_is_sound_and_exactness_is_preserved() {
        // UB4 must dominate the true instance optimum at every probed state,
        // and enabling it must not change solver answers.
        let mut rng = kdc_graph::gen::seeded_rng(316);
        for _ in 0..10 {
            let g = kdc_graph::gen::gnp(16, 0.5, &mut rng);
            for k in [1usize, 3] {
                let reference = crate::Solver::new(&g, k, SolverConfig::kdc()).solve();
                let with_ub4 = crate::Solver::new(&g, k, SolverConfig::kdc().with_ub4()).solve();
                assert_eq!(reference.size(), with_ub4.size());

                // Root-with-one-vertex probe: UB4 ≥ optimum of (g, {v}).
                let mut e = engine(&g, k, SolverConfig::kdc_t().with_ub4());
                e.add_to_s_for_test(0);
                let ub4 = e.ub4_second_order();
                // Brute-force the instance optimum containing vertex 0.
                let n = g.n();
                let mut opt = 0usize;
                for mask in 0u32..(1 << n) {
                    if mask & 1 == 0 {
                        continue;
                    }
                    let set: Vec<u32> = (0..n as u32).filter(|&v| mask >> v & 1 == 1).collect();
                    if g.is_k_defective_clique(&set, k) {
                        opt = opt.max(set.len());
                    }
                }
                assert!(ub4 >= opt, "UB4 {ub4} below instance optimum {opt} (k={k})");
            }
        }
    }

    #[test]
    fn all_branch_policies_stay_exact() {
        use crate::config::BranchPolicy;
        let mut rng = kdc_graph::gen::seeded_rng(315);
        for _ in 0..8 {
            let g = kdc_graph::gen::gnp(18, 0.45, &mut rng);
            for k in [0usize, 2] {
                let mut sizes = Vec::new();
                for policy in [
                    BranchPolicy::MaxNonNeighbors,
                    BranchPolicy::FirstEligible,
                    BranchPolicy::MinDegree,
                    BranchPolicy::MaxDegreeAny,
                ] {
                    let mut cfg = SolverConfig::kdc();
                    cfg.branch_policy = policy;
                    let sol = crate::Solver::new(&g, k, cfg).solve();
                    sizes.push(sol.size());
                }
                assert!(sizes.windows(2).all(|w| w[0] == w[1]), "{sizes:?}");
            }
        }
    }

    #[test]
    fn bounds_are_sound_on_random_instances() {
        // Root bound must dominate the true optimum (computed by the same
        // engine run to completion).
        let mut rng = kdc_graph::gen::seeded_rng(7);
        for trial in 0..15 {
            let g = kdc_graph::gen::gnp(18, 0.5, &mut rng);
            for k in [0usize, 2, 4] {
                let mut exact = engine(&g, k, SolverConfig::kdc_t());
                assert!(exact.run());
                let opt = exact.best().len();

                let mut cfg = SolverConfig::kdc_t();
                cfg.enable_ub1 = true;
                cfg.enable_ub2 = true;
                cfg.enable_ub3 = true;
                cfg.use_eq2_bound = true;
                let mut e = engine(&g, k, cfg);
                let (ub, _, _) = e.upper_bound(0);
                assert!(
                    ub >= opt,
                    "trial {trial} k {k}: root bound {ub} below optimum {opt}"
                );
            }
        }
    }
}
