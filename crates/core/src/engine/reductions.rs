//! Reduction rules applied at every search node (§3.1.1 and §3.2.2).
//!
//! * **RR1** (excess-removal): remove candidate `u` with `|Ē(S ∪ u)| > k`.
//! * **RR2** (high-degree): greedily add candidate `u` with `|Ē(S ∪ u)| ≤ k`
//!   and `d_g(u) ≥ |V(g)| − 2` to `S` (Lemma 3.1).
//! * **RR3** (degree-sequence): remove candidates that even the UB3
//!   relaxation cannot extend past `lb`.
//! * **RR4** (second-order): pair the most recently added S-vertex `u` with
//!   each candidate `v` and bound the instance `(g, S ∪ v)` through the
//!   common/exclusive-neighbourhood decomposition.
//! * **RR5** (core rule): remove candidates of alive degree `< lb − k`;
//!   if a vertex of `S` violates it, the whole instance is pruned (UB2).
//!
//! RR1/RR2/RR5 are iterated to a joint fixpoint; RR4 runs once per node
//! (§3.2.3) and RR3 afterwards, each followed by another fixpoint pass if
//! they removed anything. After the pipeline, Lemma 3.3 holds: every
//! candidate has `|Ē(S ∪ u)| ≤ k` and at least two non-neighbours in `g`.

use super::{Engine, Reduced};

impl Engine {
    /// Applies the configured reduction pipeline. Returns the node outcome.
    pub(crate) fn reduce(&mut self) -> Reduced {
        if self.missing_in_s > self.k {
            // Cannot happen when RR1 runs to fixpoint before branching, but
            // serves as a cheap safety net for exotic configurations.
            return Reduced::Pruned;
        }
        if self.fixpoint_rr125() == Reduced::Pruned {
            return Reduced::Pruned;
        }
        // RR4 and RR3 run once per node (§3.2.3 applies them in linear time
        // rather than to a fixpoint); a single follow-up RR1/RR2/RR5 pass
        // restores Lemma 3.3 if they removed anything.
        let mut removed_any = false;
        if self.config.enable_rr4 && self.s_end > 0 {
            let removed = self.apply_rr4();
            self.stats.rr4_removals += removed;
            removed_any |= removed > 0;
        }
        if self.config.enable_rr3 {
            let removed = self.apply_rr3();
            self.stats.rr3_removals += removed;
            removed_any |= removed > 0;
        }
        if removed_any && self.fixpoint_rr125() == Reduced::Pruned {
            return Reduced::Pruned;
        }
        // Leaf rule (Line 5 of Algorithm 1): the alive graph itself is a
        // k-defective clique.
        let a = self.alive_count();
        if a * a.saturating_sub(1) / 2 - self.edges_alive <= self.k {
            return Reduced::Leaf;
        }
        Reduced::Open
    }

    /// RR1 + RR2 + RR5 to a joint fixpoint.
    fn fixpoint_rr125(&mut self) -> Reduced {
        let lb = self.lb();
        let rr5_threshold = if self.config.enable_rr5 && lb > self.k {
            Some((lb - self.k) as u32) // remove if deg < lb − k
        } else {
            None
        };
        loop {
            let mut changed = false;

            // Removal scan: RR1 and RR5 over candidates. `remove_cand` swaps
            // the last candidate into position `i`, so `i` is not advanced
            // after a removal.
            let mut i = self.s_end;
            while i < self.cand_end {
                let v = self.vs[i];
                if self.missing_in_s + self.non_nbr_s[v as usize] as usize > self.k {
                    self.remove_cand(v);
                    self.stats.rr1_removals += 1;
                    changed = true;
                    continue;
                }
                if let Some(t) = rr5_threshold {
                    if self.deg[v as usize] < t {
                        self.remove_cand(v);
                        self.stats.rr5_removals += 1;
                        changed = true;
                        continue;
                    }
                }
                i += 1;
            }

            // RR5 on S: a too-low-degree S vertex dooms the instance.
            if let Some(t) = rr5_threshold {
                for i in 0..self.s_end {
                    if self.deg[self.vs[i] as usize] < t {
                        self.stats.s_vertex_prunes += 1;
                        return Reduced::Pruned;
                    }
                }
            }

            // RR2: greedily add near-universal feasible candidates. In §6
            // enumeration mode the threshold tightens to d_g(u) ≥ |V(g)| − 1
            // (only truly universal vertices), which preserves *all* maximal
            // solutions instead of just one maximum.
            if self.config.enable_rr2 {
                let slack = if self.pool_mode() { 1 } else { 2 };
                let mut i = self.s_end;
                while i < self.cand_end {
                    let v = self.vs[i];
                    let feasible =
                        self.missing_in_s + self.non_nbr_s[v as usize] as usize <= self.k;
                    if feasible && self.deg[v as usize] as usize + slack >= self.alive_count() {
                        self.add_to_s(v);
                        self.stats.rr2_additions += 1;
                        changed = true;
                        // `add_to_s` swapped the old boundary vertex into
                        // position i when i > old s_end; reprocess from the
                        // new boundary if the swap left i inside S.
                        if i < self.s_end {
                            i = self.s_end;
                        }
                        continue;
                    }
                    i += 1;
                }
            }

            if !changed {
                return Reduced::Open;
            }
        }
    }

    /// RR3 (degree-sequence): order candidates by `|N̄_S(·)|` ascending; with
    /// `t = lb − |S|`, any candidate ranked past `t` whose non-neighbour
    /// count exceeds `k − |Ē(S)| − Σ_{j ≤ t} |N̄_S(v_j)|` cannot appear in a
    /// solution larger than `lb` and is removed. Returns the removal count.
    fn apply_rr3(&mut self) -> u64 {
        let lb = self.lb();
        if lb <= self.s_end {
            // t ≤ 0: the rule degenerates to RR1 (already applied).
            return 0;
        }
        let t = lb - self.s_end;
        let num_cands = self.cand_end - self.s_end;
        if t >= num_cands {
            return 0;
        }
        self.sort_cands_by_non_nbr();
        let prefix: usize = self.scratch_cands[..t]
            .iter()
            .map(|&v| self.non_nbr_s[v as usize] as usize)
            .sum();
        let threshold = self.k as i64 - self.missing_in_s as i64 - prefix as i64;
        let mut removed = 0u64;
        // Values ascend, so the violating region is a suffix.
        for idx in t..num_cands {
            let v = self.scratch_cands[idx];
            if self.non_nbr_s[v as usize] as i64 > threshold {
                for j in idx..num_cands {
                    let w = self.scratch_cands[j];
                    self.remove_cand(w);
                    removed += 1;
                }
                break;
            }
        }
        removed
    }

    /// Prepares the scratch marks needed by [`Engine::rr4_pair_bound`] when
    /// no bit-matrix is available: marks `u`'s candidate neighbours. On the
    /// word kernel the pair bound intersects cached neighbour masks instead,
    /// so there is nothing to prepare.
    pub(crate) fn prepare_rr4_marks(&mut self, u: u32) {
        if self.matrix.is_some() || self.word_kernel_active() {
            return;
        }
        self.mark.reset();
        let (start, end) = self.row_range(u);
        for i in start..end {
            let w = self.adj_dat[i];
            if self.is_cand(w) {
                self.mark.mark(w as usize);
            }
        }
    }

    /// The second-order bound for the pair `(u ∈ S, v ∈ candidates)` of RR4:
    /// an upper bound on any k-defective clique containing `S ∪ v`, via
    /// common neighbours `cn`, exclusive neighbours `xn` and common
    /// non-neighbours `cnon` of `u` and `v` in `V(g) \ (S ∪ v)`.
    ///
    /// Requires [`Engine::prepare_rr4_marks`]`(u)` beforehand on the scalar
    /// adjacency-list path; membership is re-checked live (via `is_cand`
    /// there, via `cand_mask` on the word paths), so interleaved candidate
    /// removals stay consistent.
    pub(crate) fn rr4_pair_bound(&mut self, u: u32, v: u32) -> usize {
        let s = self.s_end;
        let nbrs_in_s_u = (s - 1) - self.non_nbr_s[u as usize] as usize;
        let missing_sp = self.missing_in_s + self.non_nbr_s[v as usize] as usize;
        debug_assert!(missing_sp <= self.k, "RR1 fixpoint must precede RR4");

        let uv_adjacent = self.has_edge(u, v);
        // |N_{S̄'}(u)|: u's alive neighbours outside S, minus v if adjacent.
        let cand_nbrs_u = self.deg[u as usize] as usize - nbrs_in_s_u;
        let a_size = cand_nbrs_u - usize::from(uv_adjacent);
        // |N_{S̄'}(v)|: v's alive neighbours outside S (u ∈ S is excluded
        // via nbrs-in-S accounting).
        let nbrs_in_s_v = s - self.non_nbr_s[v as usize] as usize;
        let b_size = self.deg[v as usize] as usize - nbrs_in_s_v;

        // v ∉ row(v) and u ∉ cand_mask, so the masked intersections are
        // exactly N(u) ∩ N(v) ∩ (candidates \ {v}).
        let cn = if let Some(mx) = &self.matrix {
            mx.row_row_mask_intersection_len(u as usize, v as usize, &self.cand_mask)
        } else if self.word_kernel_active() {
            let (us, ue) = self.ensure_nbr_mask(u);
            let (vs, ve) = self.ensure_nbr_mask(v);
            kdc_graph::bitset::popcount_and3(
                &self.nbr_mask_data[us..ue],
                &self.nbr_mask_data[vs..ve],
                self.cand_mask.words(),
            )
        } else {
            self.nbrs(v)
                .iter()
                .filter(|&&w| self.is_cand(w) && self.mark.is_marked(w as usize))
                .count()
        };

        let total_sp = (self.cand_end - self.s_end) - 1; // |S̄'|
        let xn = a_size + b_size - 2 * cn;
        // |S̄'| − |A ∪ B| with |A ∪ B| = a + b − cn ≤ |S̄'|; keep the
        // addition first so unsigned arithmetic cannot underflow.
        let cnon = (total_sp + cn) - (a_size + b_size);
        let k_rem = self.k - missing_sp;

        // min(k_rem, xn + min(cnon, max(0, ⌊(k_rem − xn)/2⌋)))
        let half = if k_rem > xn { (k_rem - xn) / 2 } else { 0 };
        (s + 1) + cn + k_rem.min(xn + cnon.min(half))
    }

    /// RR4 (second-order): with `u` the most recently added S-vertex, bound
    /// each instance `(g, S ∪ v)` and remove `v` when the bound cannot beat
    /// `lb`. Returns the removal count.
    fn apply_rr4(&mut self) -> u64 {
        let u = self.vs[self.s_end - 1];
        let lb = self.lb();
        self.prepare_rr4_marks(u);

        let mut removed = 0u64;
        let mut i = self.s_end;
        while i < self.cand_end {
            let v = self.vs[i];
            if self.rr4_pair_bound(u, v) <= lb {
                self.remove_cand(v);
                removed += 1;
                continue;
            }
            i += 1;
        }
        removed
    }

    /// Counting-sorts the candidates by `non_nbr_s` ascending into
    /// `scratch_cands`. Values are ≤ k after the RR1 fixpoint.
    pub(crate) fn sort_cands_by_non_nbr(&mut self) {
        let num = self.cand_end - self.s_end;
        self.scratch_buckets.clear();
        self.scratch_buckets.resize(self.k + 2, 0);
        for i in self.s_end..self.cand_end {
            let v = self.vs[i];
            let nn = (self.non_nbr_s[v as usize] as usize).min(self.k + 1);
            self.scratch_buckets[nn] += 1;
        }
        let mut acc = 0u32;
        for b in self.scratch_buckets.iter_mut() {
            let c = *b;
            *b = acc;
            acc += c;
        }
        self.scratch_cands.clear();
        self.scratch_cands.resize(num, 0);
        for i in self.s_end..self.cand_end {
            let v = self.vs[i];
            let nn = (self.non_nbr_s[v as usize] as usize).min(self.k + 1);
            self.scratch_cands[self.scratch_buckets[nn] as usize] = v;
            self.scratch_buckets[nn] += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::config::SolverConfig;
    use crate::engine::{Engine, Reduced};

    fn engine(g: &kdc_graph::Graph, k: usize, cfg: SolverConfig, lb: usize) -> Engine {
        let adj: Vec<Vec<u32>> = (0..g.n() as u32).map(|v| g.neighbors(v).to_vec()).collect();
        Engine::new(adj, k, cfg, lb)
    }

    #[test]
    fn example_3_2_rr2_greedily_fills_s() {
        // Figure 4, k = 3: RR2 must iteratively move v1..v5 into S at the
        // root (v1 is universal; g1 vertices have degree n − 2 and stay
        // feasible as they join).
        let g = kdc_graph::named::figure4();
        let mut e = engine(&g, 3, SolverConfig::kdc_t(), 0);
        let outcome = e.reduce();
        assert_eq!(outcome, Reduced::Open);
        assert_eq!(e.s_end, 5, "S = {{v1..v5}}");
        let mut s: Vec<u32> = e.vs[..e.s_end].to_vec();
        s.sort_unstable();
        assert_eq!(s, vec![0, 1, 2, 3, 4]);
        assert_eq!(e.missing_in_s, 2, "C4 misses (v2,v4) and (v3,v5)");
    }

    #[test]
    fn example_3_2_rr1_after_branching() {
        // Continue Example 3.2: include v6 then v8; S misses 3 edges and RR1
        // must remove v7 and v9.
        let g = kdc_graph::named::figure4();
        let mut e = engine(&g, 3, SolverConfig::kdc_t(), 0);
        assert_eq!(e.reduce(), Reduced::Open);
        e.add_to_s(5); // v6
        assert_eq!(e.reduce(), Reduced::Open, "RR1/RR2 have no effect on S1");
        assert_eq!(e.s_end, 6);
        e.add_to_s(7); // v8
        assert_eq!(e.missing_in_s, 3);
        let outcome = e.reduce();
        // v7 and v9 each have a non-neighbour among {v6, v8}; adding either
        // would exceed k = 3 → RR1 removes both → alive = S → leaf.
        assert_eq!(outcome, Reduced::Leaf);
        assert_eq!(e.alive_count(), 7);
        assert!(!e.vs[..e.alive_count()].contains(&6));
        assert!(!e.vs[..e.alive_count()].contains(&8));
    }

    #[test]
    fn lemma_3_3_holds_after_fixpoint() {
        // After RR1+RR2 fixpoint every candidate has ≥ 2 non-neighbours in g
        // and |Ē(S ∪ u)| ≤ k.
        let mut rng = kdc_graph::gen::seeded_rng(33);
        for _ in 0..10 {
            let g = kdc_graph::gen::gnp(25, 0.5, &mut rng);
            let mut e = engine(&g, 2, SolverConfig::kdc_t(), 0);
            if e.reduce() != Reduced::Open {
                continue;
            }
            for i in e.s_end..e.cand_end {
                let v = e.vs[i];
                assert!(
                    e.missing_in_s + e.non_nbr_s[v as usize] as usize <= 2,
                    "RR1 violated for {v}"
                );
                assert!(
                    e.deg[v as usize] as usize + 2 < e.alive_count(),
                    "RR2 violated for {v}: deg {} alive {}",
                    e.deg[v as usize],
                    e.alive_count()
                );
            }
        }
    }

    #[test]
    fn rr5_peels_low_degree_candidates() {
        // Star K1,5 with a triangle attached: with lb = 3, k = 1 every
        // vertex of alive degree < 2 is dropped.
        let g = kdc_graph::Graph::from_edges(
            7,
            &[(0, 1), (0, 2), (0, 3), (0, 4), (0, 5), (0, 6), (5, 6)],
        );
        let mut cfg = SolverConfig::kdc();
        cfg.enable_rr3 = false;
        cfg.enable_rr4 = false;
        cfg.enable_ub1 = false;
        let mut e = engine(&g, 1, cfg, 3);
        let out = e.reduce();
        // Leaves 1..4 have degree 1 < lb − k = 2 → removed; the triangle
        // {0,5,6} plus nothing else remains and is 1-defective → leaf.
        assert_eq!(out, Reduced::Leaf);
        let mut alive: Vec<u32> = e.vs[..e.alive_count()].to_vec();
        alive.sort_unstable();
        assert_eq!(alive, vec![0, 5, 6]);
    }

    #[test]
    fn rr3_removes_hopeless_candidates() {
        // Triangle {0,1,2} plus edge {3,4}; S = {3}, lb = 3, k = 1. The UB3
        // ordering is (4 | 0,1,2) with non-neighbour counts (0 | 1,1,1) and
        // prefix sum 0 + 1 = 1 for t = lb − |S| = 2, so the threshold is
        // k − |Ē(S)| − 1 = 0 and the two candidates ranked past t (each with
        // one S-non-neighbour) are removed by RR3.
        let g = kdc_graph::Graph::from_edges(5, &[(0, 1), (1, 2), (0, 2), (3, 4)]);
        let mut cfg = SolverConfig::kdc();
        cfg.enable_rr5 = false;
        cfg.enable_rr4 = false;
        let mut e = engine(&g, 1, cfg, 3);
        e.add_to_s(3);
        let _ = e.reduce();
        assert!(
            e.stats.rr3_removals >= 2,
            "RR3 removed {} vertices",
            e.stats.rr3_removals
        );
    }

    #[test]
    fn counting_sort_orders_by_non_nbr() {
        let g = kdc_graph::Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2)]);
        let mut e = engine(&g, 3, SolverConfig::kdc_t(), 0);
        e.add_to_s(1);
        e.add_to_s(2);
        // non_nbr_s: v0 → 0, v3 → 2.
        e.sort_cands_by_non_nbr();
        assert_eq!(e.scratch_cands, vec![0, 3]);
    }
}
