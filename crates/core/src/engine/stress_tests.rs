//! Edge-case and stress tests for the engine, exercising regimes the main
//! test suite does not reach: extreme k, adversarial structures, deep
//! recursion and repeated solve reuse.

use crate::config::SolverConfig;
use crate::solver::Solver;
use kdc_graph::{gen, Graph};

/// Replays an interleaved add/remove/undo script on two engines over the
/// same universe — the word kernel and the scalar kernel, both forced onto
/// the adjacency-list path — and asserts after every operation that the
/// incrementally maintained quantities agree with each other *and* with a
/// from-scratch recount. This pins the contract that candidate removal
/// decrements degrees incrementally on the list path (mirroring the matrix
/// path) instead of re-deriving them.
#[test]
fn list_path_word_and_scalar_kernels_maintain_identical_state() {
    use crate::engine::Engine;
    let mut rng = gen::seeded_rng(424);
    for trial in 0..6 {
        let g = gen::gnp(40, 0.35, &mut rng);
        let adj: Vec<Vec<u32>> = (0..g.n() as u32).map(|v| g.neighbors(v).to_vec()).collect();
        let mut word_cfg = SolverConfig::kdc_t();
        word_cfg.matrix_limit = 0; // force the list path on both
        let scalar_cfg = word_cfg.clone().with_scalar_kernel();
        let k = 3usize;
        let mut ew = Engine::new(adj.clone(), k, word_cfg, 0);
        let mut es = Engine::new(adj.clone(), k, scalar_cfg, 0);
        assert!(ew.word_kernel_active(), "list path must use cached masks");
        assert!(!es.word_kernel_active());

        let assert_state = |ew: &Engine, es: &Engine, step: usize| {
            assert_eq!(ew.deg, es.deg, "trial {trial} step {step}: deg");
            assert_eq!(
                ew.non_nbr_s, es.non_nbr_s,
                "trial {trial} step {step}: non_nbr_s"
            );
            assert_eq!(ew.missing_in_s, es.missing_in_s);
            assert_eq!(ew.edges_alive, es.edges_alive);
            assert_eq!(ew.vs, es.vs, "identical op sequences keep vs aligned");
            // From-scratch recount of alive degrees on the word engine.
            let alive: Vec<u32> = ew.vs[..ew.cand_end].to_vec();
            for &v in &alive {
                let expect = adj[v as usize].iter().filter(|w| alive.contains(w)).count();
                assert_eq!(
                    ew.deg[v as usize] as usize, expect,
                    "trial {trial} step {step}: incremental deg[{v}] diverged from recount"
                );
            }
        };

        let mut checkpoints = Vec::new();
        for step in 0..60 {
            let cands = ew.cand_end - ew.s_end;
            if cands == 0 {
                break;
            }
            match step % 5 {
                // Right-branch removal: the satellite's target operation.
                0 | 1 | 3 => {
                    let pick = ew.vs[ew.s_end + (step * 7) % cands];
                    ew.remove_cand(pick);
                    es.remove_cand(pick);
                }
                // Left branch: include a feasible candidate if any.
                2 => {
                    let (a, b) = (
                        ew.first_feasible_candidate_for_test(),
                        es.first_feasible_candidate_for_test(),
                    );
                    assert_eq!(a, b);
                    if let Some(v) = a {
                        ew.add_to_s(v);
                        es.add_to_s(v);
                    } else {
                        checkpoints.push(ew.trail.len());
                    }
                }
                // Periodic backtrack over a random span.
                _ => {
                    if let Some(cp) = checkpoints.pop() {
                        ew.undo_to(cp);
                        es.undo_to(cp);
                    } else {
                        checkpoints.push(ew.trail.len());
                    }
                }
            }
            assert_state(&ew, &es, step);
        }
        // Full unwind restores the root state exactly.
        ew.undo_to(0);
        es.undo_to(0);
        assert_state(&ew, &es, usize::MAX);
        assert_eq!(ew.edges_alive, g.m());
    }
}

#[test]
fn k_larger_than_all_possible_missing_edges() {
    // With k ≥ C(n,2), everything is one big k-defective clique.
    let g = gen::gnp(12, 0.3, &mut gen::seeded_rng(1));
    let k = 12 * 11 / 2;
    let sol = Solver::new(&g, k, SolverConfig::kdc()).solve();
    assert_eq!(sol.size(), 12);
    assert!(sol.is_optimal());
}

#[test]
fn star_graphs() {
    // Star K_{1,n}: any two leaves are non-adjacent, so a k-defective clique
    // holds the centre plus s leaves iff s(s−1)/2 ≤ k.
    let n_leaves = 10;
    let edges: Vec<(u32, u32)> = (1..=n_leaves).map(|l| (0, l)).collect();
    let g = Graph::from_edges(n_leaves as usize + 1, &edges);
    for (k, expected) in [(0usize, 2usize), (1, 3), (3, 4), (6, 5), (10, 6)] {
        let sol = Solver::new(&g, k, SolverConfig::kdc()).solve();
        assert_eq!(sol.size(), expected, "k = {k}");
    }
}

#[test]
fn two_disjoint_cliques() {
    // Two K6's: the solution never crosses (crossing any vertex pair costs
    // ≥ 6 missing edges at k ≤ 5).
    let mut edges = Vec::new();
    for base in [0u32, 6] {
        for a in 0..6 {
            for b in (a + 1)..6 {
                edges.push((base + a, base + b));
            }
        }
    }
    let g = Graph::from_edges(12, &edges);
    for k in 0..=5 {
        let sol = Solver::new(&g, k, SolverConfig::kdc()).solve();
        assert_eq!(sol.size(), 6, "k = {k}");
    }
    // k = 6: one foreign vertex misses exactly 6 edges against a K6 +
    // 0 internal → 7 vertices with 6 missing edges.
    let sol = Solver::new(&g, 6, SolverConfig::kdc()).solve();
    assert_eq!(sol.size(), 7);
}

#[test]
fn crown_graph_adversarial_for_coloring() {
    // Crown graph (complete bipartite minus a perfect matching): colouring
    // bounds are weak here; correctness must not depend on them.
    let n_side = 6u32;
    let mut edges = Vec::new();
    for a in 0..n_side {
        for b in 0..n_side {
            if a != b {
                edges.push((a, n_side + b));
            }
        }
    }
    let g = Graph::from_edges(2 * n_side as usize, &edges);
    let expected = [2usize, 3, 4, 4, 5, 5]; // confirmed by the brute force below
    for (k, &expected_size) in expected.iter().enumerate() {
        let sol = Solver::new(&g, k, SolverConfig::kdc()).solve();
        // Cross-check with an inline brute force.
        let n = g.n();
        let mut best = 0usize;
        for mask in 1u32..(1 << n) {
            let set: Vec<u32> = (0..n as u32).filter(|&v| mask >> v & 1 == 1).collect();
            if g.is_k_defective_clique(&set, k) {
                best = best.max(set.len());
            }
        }
        assert_eq!(sol.size(), best, "k = {k}");
        assert_eq!(sol.size(), expected_size, "expected table k = {k}");
    }
}

#[test]
fn long_path_collapses_in_preprocessing() {
    // On a 2000-vertex path the heuristic finds the optimum (3 consecutive
    // vertices, one missing edge) and the (lb − k)-core reduction empties
    // the graph entirely — the search must handle an empty universe.
    let n = 2_000u32;
    let edges: Vec<(u32, u32)> = (0..n - 1).map(|i| (i, i + 1)).collect();
    let g = Graph::from_edges(n as usize, &edges);
    let sol = Solver::new(&g, 1, SolverConfig::kdc()).solve();
    assert_eq!(sol.size(), 3);
    assert!(sol.is_optimal());
    assert_eq!(sol.stats.preprocessed_n, 0, "2-core of a path is empty");
}

#[test]
fn deep_recursion_trail_consistency() {
    // A moderately dense graph solved without any lb-based reductions
    // (kDC-t) exercises long include/exclude chains with full undo.
    let g = gen::gnp(26, 0.6, &mut gen::seeded_rng(4));
    let a = Solver::new(&g, 2, SolverConfig::kdc_t()).solve();
    let b = Solver::new(&g, 2, SolverConfig::kdc()).solve();
    assert_eq!(a.size(), b.size());
    assert!(a.stats.max_depth >= 10, "depth {}", a.stats.max_depth);
}

#[test]
fn repeated_solves_are_deterministic() {
    let g = gen::gnp(40, 0.3, &mut gen::seeded_rng(2));
    let a = Solver::new(&g, 3, SolverConfig::kdc()).solve();
    let b = Solver::new(&g, 3, SolverConfig::kdc()).solve();
    assert_eq!(a.vertices, b.vertices);
    assert_eq!(a.stats.nodes, b.stats.nodes);
}

#[test]
fn turan_style_worst_case_for_rr2() {
    // Complete multipartite with parts of size 3: every vertex has exactly
    // 2 non-neighbours, the boundary of Lemma 3.3 — RR2 must not fire at
    // the root. Optima: pick s_i per part with Σ C(s_i, 2) ≤ k.
    let g = gen::complete_multipartite(&[3, 3, 3, 3]);
    for (k, expected) in [(0usize, 4usize), (1, 5), (2, 6), (3, 7)] {
        let sol = Solver::new(&g, k, SolverConfig::kdc()).solve();
        assert_eq!(sol.size(), expected, "k = {k}");
    }
}

#[test]
fn all_k_values_on_one_graph_are_monotone_and_optimal() {
    let g = gen::community(
        &gen::CommunityParams {
            communities: 3,
            community_size: 15,
            p_in: 0.7,
            p_out: 0.05,
        },
        &mut gen::seeded_rng(3),
    );
    let mut prev = 0usize;
    for k in 0..=12 {
        let sol = Solver::new(&g, k, SolverConfig::kdc()).solve();
        assert!(sol.is_optimal());
        assert!(sol.size() >= prev);
        assert!(g.is_k_defective_clique(&sol.vertices, k));
        prev = sol.size();
    }
}

#[test]
fn graph_with_self_contained_components() {
    // Disconnected graph: solver must look at the right component per k.
    let mut edges = Vec::new();
    // Component A: K5.
    for a in 0..5u32 {
        for b in (a + 1)..5 {
            edges.push((a, b));
        }
    }
    // Component B: C7 (cycle) — good for k ≥ 2 only in small pieces.
    for i in 0..7u32 {
        edges.push((5 + i, 5 + (i + 1) % 7));
    }
    let g = Graph::from_edges(12, &edges);
    assert_eq!(Solver::new(&g, 0, SolverConfig::kdc()).solve().size(), 5);
    assert_eq!(Solver::new(&g, 3, SolverConfig::kdc()).solve().size(), 5);
    // k = 10: K5 + any 1 more vertex misses 5 edges; 2 more miss ≥ 10 …
    let sol = Solver::new(&g, 10, SolverConfig::kdc()).solve();
    assert!(g.is_k_defective_clique(&sol.vertices, 10));
    assert!(sol.size() >= 6);
}
