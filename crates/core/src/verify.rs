//! Independent verification utilities for k-defective cliques.
//!
//! These functions re-derive everything from the graph's adjacency structure
//! (no solver state), so tests can use them as a second opinion on solver
//! output.

use kdc_graph::graph::{Graph, VertexId};
use kdc_graph::scratch::Marker;

/// Number of missing edges inside `set` (the paper's `|Ē(S)|`).
pub fn missing_edges(g: &Graph, set: &[VertexId]) -> usize {
    g.missing_edges_within(set)
}

/// Whether `set` induces a k-defective clique (Definition 2.2).
pub fn is_k_defective(g: &Graph, set: &[VertexId], k: usize) -> bool {
    g.is_k_defective_clique(set, k)
}

/// Whether `set` is a *maximal* k-defective clique: it is k-defective and no
/// vertex outside extends it. Runs in O(n + m + |set|²).
pub fn is_maximal_k_defective(g: &Graph, set: &[VertexId], k: usize) -> bool {
    if !is_k_defective(g, set, k) {
        return false;
    }
    let missing = missing_edges(g, set);
    let mut member = Marker::new(g.n());
    for &v in set {
        member.mark(v as usize);
    }
    for u in g.vertices() {
        if member.is_marked(u as usize) {
            continue;
        }
        let nbrs_in = g
            .neighbors(u)
            .iter()
            .filter(|&&w| member.is_marked(w as usize))
            .count();
        // Adding u introduces |set| − nbrs_in new missing edges.
        if missing + (set.len() - nbrs_in) <= k {
            return false;
        }
    }
    true
}

/// Greedily extends a k-defective clique to a maximal one (adding vertices
/// that introduce the fewest missing edges first).
pub fn extend_to_maximal(g: &Graph, set: &[VertexId], k: usize) -> Vec<VertexId> {
    assert!(is_k_defective(g, set, k));
    let mut current = set.to_vec();
    let mut missing = missing_edges(g, set);
    let mut member = Marker::new(g.n());
    for &v in &current {
        member.mark(v as usize);
    }
    loop {
        let mut best: Option<(usize, VertexId)> = None;
        for u in g.vertices() {
            if member.is_marked(u as usize) {
                continue;
            }
            let nbrs_in = g
                .neighbors(u)
                .iter()
                .filter(|&&w| member.is_marked(w as usize))
                .count();
            let added = current.len() - nbrs_in;
            if missing + added <= k && best.is_none_or(|(b, _)| added < b) {
                best = Some((added, u));
            }
        }
        match best {
            Some((added, u)) => {
                current.push(u);
                member.mark(u as usize);
                missing += added;
            }
            None => break,
        }
    }
    current.sort_unstable();
    current
}

/// The fraction of `set`'s vertices that have at least one non-neighbour
/// inside `set` (Table 7's "not fully connected" percentage). Returns 0 for
/// sets of size ≤ 1.
pub fn fraction_not_fully_connected(g: &Graph, set: &[VertexId]) -> f64 {
    if set.len() <= 1 {
        return 0.0;
    }
    let mut member = Marker::new(g.n());
    for &v in set {
        member.mark(v as usize);
    }
    let not_full = set
        .iter()
        .filter(|&&v| {
            let nbrs_in = g
                .neighbors(v)
                .iter()
                .filter(|&&w| member.is_marked(w as usize))
                .count();
            nbrs_in + 1 < set.len()
        })
        .count();
    not_full as f64 / set.len() as f64
}

/// A portable, human-readable certificate for a claimed k-defective clique:
/// the graph's shape fingerprint, `k`, and the vertex set. Lets results be
/// stored and re-checked later (`kdc solve … | kdc verify …`) without any
/// serialization dependency.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Certificate {
    /// The k the solution was computed for.
    pub k: usize,
    /// Vertex count of the graph the certificate refers to.
    pub n: usize,
    /// Edge count of the graph the certificate refers to.
    pub m: usize,
    /// The claimed k-defective clique (sorted).
    pub vertices: Vec<VertexId>,
    /// Whether the producer claimed optimality (checked only for internal
    /// consistency — verification proves validity, not maximality).
    pub claimed_optimal: bool,
}

impl Certificate {
    /// Builds a certificate from a solution against its graph.
    pub fn new(g: &Graph, k: usize, vertices: &[VertexId], claimed_optimal: bool) -> Self {
        let mut vs = vertices.to_vec();
        vs.sort_unstable();
        Certificate {
            k,
            n: g.n(),
            m: g.m(),
            vertices: vs,
            claimed_optimal,
        }
    }

    /// Serialises to the text format:
    ///
    /// ```text
    /// kdc-certificate v1
    /// k <k> n <n> m <m> optimal <0|1>
    /// <v1> <v2> … <vs>
    /// ```
    pub fn to_text(&self) -> String {
        let verts: Vec<String> = self.vertices.iter().map(u32::to_string).collect();
        format!(
            "kdc-certificate v1\nk {} n {} m {} optimal {}\n{}\n",
            self.k,
            self.n,
            self.m,
            u8::from(self.claimed_optimal),
            verts.join(" ")
        )
    }

    /// Parses the text format produced by [`Certificate::to_text`].
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut lines = text.lines();
        match lines.next() {
            Some("kdc-certificate v1") => {}
            other => return Err(format!("bad header {other:?}")),
        }
        let meta = lines.next().ok_or("missing metadata line")?;
        let tokens: Vec<&str> = meta.split_whitespace().collect();
        let field = |name: &str| -> Result<usize, String> {
            let idx = tokens
                .iter()
                .position(|t| *t == name)
                .ok_or_else(|| format!("missing field {name}"))?;
            tokens
                .get(idx + 1)
                .ok_or_else(|| format!("missing value for {name}"))?
                .parse()
                .map_err(|_| format!("invalid value for {name}"))
        };
        let (k, n, m) = (field("k")?, field("n")?, field("m")?);
        let optimal = field("optimal")? != 0;
        let verts_line = lines.next().unwrap_or("");
        let mut vertices = Vec::new();
        for tok in verts_line.split_whitespace() {
            vertices.push(
                tok.parse::<u32>()
                    .map_err(|_| format!("bad vertex {tok:?}"))?,
            );
        }
        Ok(Certificate {
            k,
            n,
            m,
            vertices,
            claimed_optimal: optimal,
        })
    }

    /// Checks the certificate against a graph: shape must match and the
    /// vertex set must be a valid k-defective clique. Returns the number of
    /// missing edges on success.
    pub fn check(&self, g: &Graph) -> Result<usize, String> {
        if g.n() != self.n || g.m() != self.m {
            return Err(format!(
                "graph shape mismatch: certificate says n={} m={}, graph has n={} m={}",
                self.n,
                self.m,
                g.n(),
                g.m()
            ));
        }
        if let Some(&v) = self.vertices.iter().find(|&&v| v as usize >= g.n()) {
            return Err(format!("vertex {v} out of range"));
        }
        let mut sorted = self.vertices.clone();
        sorted.dedup();
        if sorted.len() != self.vertices.len() {
            return Err("duplicate vertices".into());
        }
        let missing = missing_edges(g, &self.vertices);
        if missing > self.k {
            return Err(format!(
                "not a {}-defective clique: {} missing edges",
                self.k, missing
            ));
        }
        Ok(missing)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdc_graph::{gen, named};

    #[test]
    fn maximality_on_figure2() {
        let g = named::figure2();
        // The K5 is a maximal 1-defective clique (any 6th vertex adds ≥ 5
        // missing edges).
        assert!(is_maximal_k_defective(&g, &[7, 8, 9, 10, 11], 1));
        // A K4 inside the K5 is not maximal.
        assert!(!is_maximal_k_defective(&g, &[7, 8, 9, 10], 1));
        // A non-k-defective set is not a maximal k-defective clique.
        assert!(!is_maximal_k_defective(&g, &[0, 1, 2, 3, 4, 5], 1));
    }

    #[test]
    fn extend_reaches_maximality() {
        let mut rng = gen::seeded_rng(3);
        for _ in 0..10 {
            let g = gen::gnp(25, 0.4, &mut rng);
            for k in [0usize, 1, 3] {
                let base = vec![0 as VertexId];
                let ext = extend_to_maximal(&g, &base, k);
                assert!(ext.contains(&0));
                assert!(is_maximal_k_defective(&g, &ext, k));
            }
        }
    }

    #[test]
    fn certificate_roundtrip_and_check() {
        let g = named::figure2();
        let cert = Certificate::new(&g, 2, &[5, 0, 1, 2, 3, 4], true);
        assert_eq!(cert.vertices, vec![0, 1, 2, 3, 4, 5], "sorted on build");
        let text = cert.to_text();
        let back = Certificate::from_text(&text).unwrap();
        assert_eq!(back, cert);
        assert_eq!(back.check(&g), Ok(2));
    }

    #[test]
    fn certificate_rejects_bad_claims() {
        let g = named::figure2();
        // Not 1-defective: {v1..v6} misses two edges.
        let bad = Certificate::new(&g, 1, &[0, 1, 2, 3, 4, 5], false);
        assert!(bad.check(&g).unwrap_err().contains("missing edges"));
        // Wrong graph shape.
        let other = gen::complete(5);
        let cert = Certificate::new(&g, 2, &[0, 1], false);
        assert!(cert.check(&other).unwrap_err().contains("shape mismatch"));
        // Out-of-range vertex.
        let mut rogue = cert.clone();
        rogue.vertices = vec![99];
        assert!(rogue.check(&g).unwrap_err().contains("out of range"));
        // Malformed text.
        assert!(Certificate::from_text("nope").is_err());
        assert!(Certificate::from_text("kdc-certificate v1\nk x n 1 m 0 optimal 1\n\n").is_err());
        assert!(Certificate::from_text("kdc-certificate v1\n").is_err());
    }

    #[test]
    fn fraction_not_fully_connected_cases() {
        let g = named::figure2();
        // K5: everyone fully connected.
        assert_eq!(fraction_not_fully_connected(&g, &[7, 8, 9, 10, 11]), 0.0);
        // {v1..v6} misses (v2,v4) and (v1,v5): 4 of 6 vertices are deficient.
        let f = fraction_not_fully_connected(&g, &[0, 1, 2, 3, 4, 5]);
        assert!((f - 4.0 / 6.0).abs() < 1e-12);
        // Singletons are trivially fully connected.
        assert_eq!(fraction_not_fully_connected(&g, &[0]), 0.0);
    }
}
