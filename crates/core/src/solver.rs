//! The top-level kDC solver (Algorithm 2):
//!
//! 1. heuristically compute a large initial k-defective clique (§3.3);
//! 2. reduce the input graph with RR5 (core) and RR6 (truss) using the
//!    initial solution size as the lower bound, via the incremental CTCP
//!    reducer ([`kdc_graph::ctcp`]) instead of a from-scratch fixpoint;
//! 3. branch-and-bound on the reduced, relabelled universe — and whenever
//!    the incumbent improves mid-search, re-tighten the reducer; if that
//!    removes anything, restart on the (strictly smaller) universe.
//!
//! Long-running services install a resident reducer + best-known witness
//! via [`SolverConfig::shared_ctcp`] / [`SolverConfig::seed_solution`], so
//! warm solves resume tightening where the previous solve stopped.

use crate::config::{InitialHeuristic, SolveEvent, SolverConfig};
use crate::engine::Engine;
use crate::heuristic;
use crate::stats::{SearchStats, Solution, Status};
use kdc_graph::ctcp::Ctcp;
use kdc_graph::degeneracy;
use kdc_graph::graph::{Graph, VertexId};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Exact maximum k-defective clique solver.
///
/// ```
/// use kdc::{Solver, SolverConfig};
/// use kdc_graph::Graph;
///
/// let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
/// let sol = Solver::new(&g, 1, SolverConfig::kdc()).solve();
/// assert_eq!(sol.size(), 3);
/// assert!(sol.is_optimal());
/// ```
pub struct Solver<'g> {
    graph: &'g Graph,
    k: usize,
    config: SolverConfig,
}

impl<'g> Solver<'g> {
    /// Creates a solver for the maximum `k`-defective clique of `graph`.
    pub fn new(graph: &'g Graph, k: usize, config: SolverConfig) -> Self {
        Solver { graph, k, config }
    }

    /// Runs the solve and returns the best solution found together with its
    /// optimality status and search statistics.
    pub fn solve(self) -> Solution {
        let Solver { graph, k, config } = self;
        let t_start = Instant::now();
        let deadline = config.time_limit.map(|d| t_start + d);

        // Line 1 of Algorithm 2: initial solution, possibly beaten by an
        // installed known-solution seed (warm service solves).
        let trace = config.trace.clone();
        let peel_span = trace.as_ref().map(|t| t.span("peel"));
        let mut best = initial_solution(graph, k, &config);
        drop(peel_span);
        debug_assert!(graph.is_k_defective_clique(&best, k));
        if let Some(seed) = &config.seed_solution {
            if seed.len() > best.len() && valid_seed(graph, seed, k) {
                best = seed.clone();
            }
        }
        let lb0 = best.len();
        if lb0 > 0 {
            if let Some(hook) = &config.on_event {
                hook.emit(SolveEvent::Incumbent { size: lb0 });
            }
        }

        // Line 2: preprocessing through the (possibly resident) incremental
        // CTCP reducer. Removals are counted per-solve through the shared
        // pair of atomics (a resident reducer also serves concurrent
        // solves, so its global counters cannot be attributed to this run).
        let mut stats = SearchStats::default();
        let mut ctcp = resident_ctcp(graph, k, &config, lb0);
        let removed = Arc::new((AtomicU64::new(0), AtomicU64::new(0)));
        {
            let _tighten_span = trace.as_ref().map(|t| t.span("tighten"));
            let mut c = ctcp.lock().expect("poisoned");
            let rem = c.tighten(lb0);
            if !rem.is_empty() {
                if let Some(hook) = &config.on_event {
                    hook.emit(SolveEvent::Retighten {
                        vertices: rem.vertices.len() as u64,
                        edges: rem.edges,
                    });
                }
            }
            removed
                .0
                .fetch_add(rem.vertices.len() as u64, Ordering::Relaxed);
            removed.1.fetch_add(rem.edges, Ordering::Relaxed);
        }
        let preprocess_time = t_start.elapsed();

        // Line 3: branch and bound over the reduced universe. Whenever the
        // incumbent improves, the engine re-tightens the reducer through the
        // improvement hook; if that shrinks the universe, the run aborts and
        // restarts on the smaller instance (each restart is paid for by at
        // least one removal, so there are at most n + m of them).
        let t_search = Instant::now();
        let status;
        loop {
            // A caller-proven upper bound met by the incumbent ends the
            // search: nothing larger exists, so the incumbent is optimal.
            // Checked before each (re)build, so a capped warm solve seeded
            // at the cap never extracts a universe at all.
            if config.known_ub.is_some_and(|ub| best.len() >= ub) {
                status = Status::Optimal;
                break;
            }
            // Atomically verify-and-extract: a resident reducer may have
            // been tightened past our incumbent by a concurrent solve, in
            // which case its universe no longer contains every solution
            // larger than *our* bound — fall back to a private reducer for
            // the rest of this solve.
            let (adj, keep) = {
                let c = ctcp.lock().expect("poisoned");
                if c.lb() > best.len() {
                    drop(c);
                    ctcp = Arc::new(Mutex::new(Ctcp::with_rules(
                        graph,
                        k,
                        config.enable_rr5,
                        config.enable_rr6,
                    )));
                    let mut c = ctcp.lock().expect("poisoned");
                    c.tighten(best.len());
                    c.extract_universe()
                } else {
                    c.extract_universe()
                }
            };
            stats.universe_rebuilds += 1;
            if stats.universe_rebuilds == 1 {
                stats.preprocessed_n = keep.len();
                stats.preprocessed_m = adj.iter().map(Vec::len).sum::<usize>() / 2;
            }
            if let Some(hook) = &config.on_event {
                hook.emit(SolveEvent::Restart {
                    universe: keep.len(),
                });
            }
            let mut engine = Engine::new(adj, k, config.clone(), best.len());
            engine.override_deadline(deadline);
            let hook_ctcp = Arc::clone(&ctcp);
            let hook_removed = Arc::clone(&removed);
            let hook_events = config.on_event.clone();
            let hook_trace = trace.clone();
            let hook_cap = config.known_ub;
            engine.set_improve_hook(Box::new(move |new_lb| {
                if let Some(events) = &hook_events {
                    events.emit(SolveEvent::Incumbent { size: new_lb });
                }
                let _tighten_span = hook_trace.as_ref().map(|t| t.span("tighten"));
                let rem = hook_ctcp.lock().expect("poisoned").tighten(new_lb);
                hook_removed
                    .0
                    .fetch_add(rem.vertices.len() as u64, Ordering::Relaxed);
                hook_removed.1.fetch_add(rem.edges, Ordering::Relaxed);
                if !rem.is_empty() {
                    if let Some(events) = &hook_events {
                        events.emit(SolveEvent::Retighten {
                            vertices: rem.vertices.len() as u64,
                            edges: rem.edges,
                        });
                    }
                    true
                } else {
                    // Reaching the known upper bound aborts the engine via
                    // the rebuild path; the loop head then declares
                    // optimality instead of rebuilding.
                    hook_cap.is_some_and(|ub| new_lb >= ub)
                }
            }));
            let branch_span = trace.as_ref().map(|t| t.span("branch"));
            let completed = engine.run();
            drop(branch_span);
            if engine.best().len() > best.len() {
                best = engine.best().iter().map(|&v| keep[v as usize]).collect();
            }
            stats.absorb(&engine.take_stats());
            if completed {
                status = Status::Optimal;
                break;
            }
            if engine.rebuild_requested() {
                continue;
            }
            status = engine.abort_status();
            break;
        }
        let search_time = t_search.elapsed();

        let mut vertices = best;
        vertices.sort_unstable();
        debug_assert!(graph.is_k_defective_clique(&vertices, k));

        stats.ctcp_vertex_removals = removed.0.load(Ordering::Relaxed);
        stats.ctcp_edge_removals = removed.1.load(Ordering::Relaxed);
        stats.initial_solution_size = lb0;
        stats.preprocess_time = preprocess_time;
        stats.search_time = search_time;

        Solution {
            vertices,
            status,
            stats,
        }
    }
}

/// Whether `seed` is a usable known solution for `(g, k)`: in-range,
/// duplicate-free and k-defective. Seeds travel across service boundaries,
/// so they are fully validated rather than trusted. Range and duplicates
/// are checked *before* the clique test, which would panic on either.
pub(crate) fn valid_seed(g: &Graph, seed: &[VertexId], k: usize) -> bool {
    if seed.iter().any(|&v| v as usize >= g.n()) {
        return false;
    }
    let mut sorted = seed.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    sorted.len() == seed.len() && g.is_k_defective_clique(seed, k)
}

/// The CTCP reducer for this solve: the installed resident one when it
/// matches this graph, `k`, rule configuration and can be resumed at `lb`
/// (its recorded bound must not exceed what this solve justifies); a fresh
/// one otherwise.
pub(crate) fn resident_ctcp(
    g: &Graph,
    k: usize,
    config: &SolverConfig,
    lb: usize,
) -> Arc<Mutex<Ctcp>> {
    if let Some(shared) = &config.shared_ctcp {
        let usable = {
            let c = shared.lock().expect("poisoned");
            c.n() == g.n()
                && c.k() == k
                && c.rules() == (config.enable_rr5, config.enable_rr6)
                && c.lb() <= lb
        };
        if usable {
            return Arc::clone(shared);
        }
    }
    Arc::new(Mutex::new(Ctcp::with_rules(
        g,
        k,
        config.enable_rr5,
        config.enable_rr6,
    )))
}

/// Convenience wrapper: solve with the default kDC configuration.
pub fn max_defective_clique(graph: &Graph, k: usize) -> Solution {
    Solver::new(graph, k, SolverConfig::kdc()).solve()
}

/// Result of running only Lines 1–2 of Algorithm 2 (heuristic +
/// preprocessing), as compared in Table 4 of the paper.
#[derive(Clone, Debug)]
pub struct PreprocessReport {
    /// The initial solution `C0`.
    pub initial: Vec<VertexId>,
    /// Vertices surviving preprocessing (`n0`).
    pub n0: usize,
    /// Edges surviving preprocessing (`m0`).
    pub m0: usize,
}

/// Runs the heuristic and the RR5/RR6 preprocessing without searching.
pub fn preprocess_report(graph: &Graph, k: usize, config: &SolverConfig) -> PreprocessReport {
    let initial = initial_solution(graph, k, config);
    let mut ctcp = Ctcp::with_rules(graph, k, config.enable_rr5, config.enable_rr6);
    ctcp.tighten(initial.len());
    PreprocessReport {
        initial,
        n0: ctcp.alive_n(),
        m0: ctcp.alive_m(),
    }
}

/// Line 1 of Algorithm 2: the configured initial-solution heuristic. Reuses
/// the config's shared peeling of the input graph when one is installed
/// (resident services cache it per graph), peeling from scratch otherwise.
pub(crate) fn initial_solution(graph: &Graph, k: usize, config: &SolverConfig) -> Vec<VertexId> {
    if config.heuristic == InitialHeuristic::None {
        return Vec::new();
    }
    let fresh;
    let peeling = match &config.shared_peeling {
        Some(shared) => shared.as_ref(),
        None => {
            fresh = degeneracy::peel(graph);
            &fresh
        }
    };
    match config.heuristic {
        InitialHeuristic::None => unreachable!("handled above"),
        InitialHeuristic::Degen => heuristic::degen_with(graph, k, peeling),
        InitialHeuristic::DegenOpt => heuristic::degen_opt_with(graph, k, peeling),
        InitialHeuristic::DegenOptLocalSearch => heuristic::degen_opt_ls_with(graph, k, peeling),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdc_graph::{gen, named};

    #[test]
    fn solves_figure2_for_all_k() {
        let g = named::figure2();
        for (k, expected) in [(0usize, 5usize), (1, 5), (2, 6), (3, 6), (4, 6), (5, 7)] {
            let sol = Solver::new(&g, k, SolverConfig::kdc()).solve();
            assert_eq!(sol.size(), expected, "k = {k}");
            assert!(sol.is_optimal());
            assert!(g.is_k_defective_clique(&sol.vertices, k));
        }
    }

    #[test]
    fn all_presets_agree_on_random_graphs() {
        let mut rng = gen::seeded_rng(2024);
        type Preset = (&'static str, fn() -> SolverConfig);
        let presets: Vec<Preset> = vec![
            ("kdc", SolverConfig::kdc),
            ("kdc_t", SolverConfig::kdc_t),
            ("no_ub1", SolverConfig::without_ub1),
            ("no_rr34", SolverConfig::without_rr3_rr4),
            ("no_ub1_rr34", SolverConfig::without_ub1_rr3_rr4),
            ("degen", SolverConfig::degen),
            ("kdbb", SolverConfig::kdbb_like),
            ("madec", SolverConfig::madec_like),
        ];
        for trial in 0..8 {
            let g = gen::gnp(22, 0.4, &mut rng);
            for k in [0usize, 1, 3, 5] {
                let reference = Solver::new(&g, k, SolverConfig::kdc_t()).solve();
                for (name, cfg) in &presets {
                    let sol = Solver::new(&g, k, cfg()).solve();
                    assert_eq!(
                        sol.size(),
                        reference.size(),
                        "preset {name} disagrees (trial {trial}, k {k})"
                    );
                    assert!(g.is_k_defective_clique(&sol.vertices, k));
                    assert!(sol.is_optimal());
                }
            }
        }
    }

    #[test]
    fn planted_clique_is_found_exactly() {
        let mut rng = gen::seeded_rng(5);
        let (g, planted) = gen::planted_defective_clique(150, 14, 3, 0.04, &mut rng);
        let sol = max_defective_clique(&g, 3);
        assert!(sol.size() >= planted.len(), "planted clique missed");
        assert!(g.is_k_defective_clique(&sol.vertices, 3));
    }

    #[test]
    fn k_zero_equals_maximum_clique_on_figure2() {
        let g = named::figure2();
        let sol = max_defective_clique(&g, 0);
        assert_eq!(sol.size(), 5);
        assert_eq!(sol.vertices, vec![7, 8, 9, 10, 11]);
    }

    #[test]
    fn empty_and_trivial_graphs() {
        let sol = max_defective_clique(&Graph::empty(0), 3);
        assert_eq!(sol.size(), 0);
        assert!(sol.is_optimal());

        let sol = max_defective_clique(&Graph::empty(1), 0);
        assert_eq!(sol.size(), 1);

        // Isolated vertices: any s with s(s−1)/2 ≤ k fit together.
        let sol = max_defective_clique(&Graph::empty(10), 3);
        assert_eq!(sol.size(), 3);

        let sol = max_defective_clique(&gen::complete(8), 5);
        assert_eq!(sol.size(), 8);
    }

    #[test]
    fn node_limit_reports_nonoptimal() {
        let mut rng = gen::seeded_rng(11);
        let g = gen::gnp(60, 0.5, &mut rng);
        let cfg = SolverConfig::kdc_t().with_node_limit(10);
        let sol = Solver::new(&g, 3, cfg).solve();
        assert_eq!(sol.status, Status::NodeLimitReached);
        // Best-effort solution is still valid.
        assert!(g.is_k_defective_clique(&sol.vertices, 3));
    }

    #[test]
    fn shared_peeling_matches_fresh_peeling() {
        use kdc_graph::degeneracy;
        use std::sync::Arc;
        let mut rng = gen::seeded_rng(14);
        for _ in 0..4 {
            let g = gen::gnp(40, 0.3, &mut rng);
            let peeling = Arc::new(degeneracy::peel(&g));
            for k in [0usize, 2] {
                let fresh = Solver::new(&g, k, SolverConfig::kdc()).solve();
                let shared_cfg = SolverConfig::kdc().with_shared_peeling(peeling.clone());
                let shared = Solver::new(&g, k, shared_cfg.clone()).solve();
                // The heuristics are deterministic in the ordering, so the
                // results are identical, not merely equal-sized.
                assert_eq!(fresh.vertices, shared.vertices, "k = {k}");
                let decomposed = crate::decompose::solve_decomposed(&g, k, shared_cfg, 2);
                assert_eq!(fresh.size(), decomposed.size(), "k = {k}");
            }
        }
    }

    #[test]
    fn cancel_flag_aborts_with_best_effort_solution() {
        use crate::config::CancelFlag;
        let mut rng = gen::seeded_rng(13);
        let g = gen::gnp(80, 0.5, &mut rng);
        // Pre-raised flag: the engine must abort at its very first node and
        // still hand back the (valid) heuristic solution.
        let flag = CancelFlag::new();
        flag.cancel();
        let sol = Solver::new(&g, 3, SolverConfig::kdc().with_cancel(flag)).solve();
        assert_eq!(sol.status, Status::Cancelled);
        assert!(g.is_k_defective_clique(&sol.vertices, 3));

        // An un-raised flag must not disturb the solve.
        let flag = CancelFlag::new();
        let sol = Solver::new(&g, 3, SolverConfig::kdc().with_cancel(flag.clone())).solve();
        assert!(sol.is_optimal());
        assert!(!flag.is_cancelled());
    }

    #[test]
    fn time_limit_reports_timeout() {
        let mut rng = gen::seeded_rng(12);
        // A hard dense instance with a tiny limit.
        let g = gen::gnp(120, 0.6, &mut rng);
        let cfg = SolverConfig::kdc_t().with_time_limit(std::time::Duration::from_millis(1));
        let sol = Solver::new(&g, 10, cfg).solve();
        assert!(matches!(sol.status, Status::TimedOut | Status::Optimal));
    }

    #[test]
    fn preprocessing_shrinks_planted_instances() {
        let mut rng = gen::seeded_rng(77);
        let (g, _) = gen::planted_defective_clique(400, 16, 2, 0.02, &mut rng);
        let sol = Solver::new(&g, 2, SolverConfig::kdc()).solve();
        assert!(
            sol.stats.preprocessed_n < g.n() / 2,
            "preprocessing too weak: {} of {}",
            sol.stats.preprocessed_n,
            g.n()
        );
        assert!(sol.stats.initial_solution_size >= 10);
    }

    #[test]
    fn stats_are_populated() {
        let g = named::figure2();
        let sol = Solver::new(&g, 2, SolverConfig::kdc()).solve();
        assert!(sol.stats.nodes >= 1);
        assert!(sol.stats.initial_solution_size >= 5);
        assert!(
            sol.stats.universe_rebuilds >= 1,
            "the root universe is always extracted once"
        );
        // Per-bound telemetry: some bound is evaluated during the search,
        // and prune counts can never exceed invocation counts.
        let costs = &sol.stats.bound_costs;
        assert!(costs.iter().map(|bc| bc.invocations).sum::<u64>() > 0);
        assert!(costs.iter().all(|bc| bc.prunes <= bc.invocations));
        assert_eq!(
            costs.iter().map(|bc| bc.prunes).sum::<u64>(),
            sol.stats.bound_prunes,
            "stage attribution must cover exactly the bound prunes"
        );
    }

    #[test]
    fn ctcp_counters_track_preprocessing() {
        let mut rng = gen::seeded_rng(78);
        let (g, _) = gen::planted_defective_clique(400, 16, 2, 0.02, &mut rng);
        let sol = Solver::new(&g, 2, SolverConfig::kdc()).solve();
        assert!(sol.is_optimal());
        assert!(sol.stats.ctcp_vertex_removals > 0);
        assert!(sol.stats.ctcp_edge_removals > 0);
        // preprocessed_n reflects the first extraction, before any
        // mid-search re-tighten.
        assert!(sol.stats.preprocessed_n <= g.n() - sol.stats.ctcp_vertex_removals as usize + 1);
    }

    #[test]
    fn seed_solution_raises_the_initial_bound() {
        let mut rng = gen::seeded_rng(91);
        let g = gen::gnp(40, 0.4, &mut rng);
        let first = Solver::new(&g, 2, SolverConfig::kdc()).solve();
        assert!(first.is_optimal());
        let seeded_cfg = SolverConfig::kdc().with_seed_solution(first.vertices.clone());
        let second = Solver::new(&g, 2, seeded_cfg).solve();
        assert!(second.is_optimal());
        assert_eq!(second.size(), first.size());
        assert_eq!(
            second.stats.initial_solution_size,
            first.size(),
            "the seed must become the initial bound"
        );

        // A hostile seed (duplicates / out-of-range / infeasible) is ignored.
        for bad in [
            vec![0u32, 0, 1],
            vec![0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 999],
        ] {
            let cfg = SolverConfig::kdc().with_seed_solution(bad);
            let sol = Solver::new(&g, 2, cfg).solve();
            assert_eq!(sol.size(), first.size());
            assert!(sol.is_optimal());
        }
    }

    #[test]
    fn known_ub_cap_stops_early_with_identical_witness() {
        let mut rng = gen::seeded_rng(94);
        let g = gen::gnp(45, 0.4, &mut rng);
        for k in [0usize, 2] {
            let cold = Solver::new(&g, k, SolverConfig::kdc()).solve();
            assert!(cold.is_optimal());
            let opt = cold.size();

            // Cap at the true optimum: the search stops the moment the
            // incumbent gets there, and the witness is byte-identical to
            // the uncapped run (the cap never alters pruning).
            let capped = Solver::new(&g, k, SolverConfig::kdc().with_known_ub(opt)).solve();
            assert!(capped.is_optimal());
            assert_eq!(capped.vertices, cold.vertices, "k = {k}");
            assert!(capped.stats.nodes <= cold.stats.nodes);

            // Seeded *at* the cap: the whole search is skipped — no
            // universe is ever extracted, no node is ever visited.
            let skip_cfg = SolverConfig::kdc()
                .with_seed_solution(cold.vertices.clone())
                .with_known_ub(opt);
            let skipped = Solver::new(&g, k, skip_cfg).solve();
            assert!(skipped.is_optimal());
            assert_eq!(skipped.vertices, cold.vertices);
            assert_eq!(skipped.stats.nodes, 0, "capped seed skips the search");
            assert_eq!(skipped.stats.universe_rebuilds, 0);

            // A cap above the optimum never fires and changes nothing.
            let loose = Solver::new(&g, k, SolverConfig::kdc().with_known_ub(opt + 1)).solve();
            assert!(loose.is_optimal());
            assert_eq!(loose.vertices, cold.vertices);
        }
    }

    #[test]
    fn shared_ctcp_resumes_across_solves() {
        use kdc_graph::ctcp::Ctcp;
        use std::sync::{Arc, Mutex};
        let mut rng = gen::seeded_rng(92);
        let (g, _) = gen::planted_defective_clique(300, 14, 2, 0.03, &mut rng);
        let k = 2;

        let cold = Solver::new(&g, k, SolverConfig::kdc()).solve();
        assert!(cold.is_optimal());

        // Warm pair: one resident reducer plus the cold result as seed.
        let resident = Arc::new(Mutex::new(Ctcp::new(&g, k)));
        let warm_cfg = SolverConfig::kdc()
            .with_shared_ctcp(resident.clone())
            .with_seed_solution(cold.vertices.clone());
        let warm1 = Solver::new(&g, k, warm_cfg.clone()).solve();
        assert!(warm1.is_optimal());
        assert_eq!(warm1.size(), cold.size());
        assert_eq!(warm1.vertices, cold.vertices, "byte-identical result");
        assert!(
            warm1.stats.ctcp_vertex_removals > 0,
            "first warm solve pays"
        );

        let warm2 = Solver::new(&g, k, warm_cfg).solve();
        assert!(warm2.is_optimal());
        assert_eq!(warm2.vertices, cold.vertices);
        assert_eq!(
            warm2.stats.ctcp_vertex_removals, 0,
            "resumed reducer is already at the fixpoint"
        );
        assert_eq!(warm2.stats.ctcp_edge_removals, 0);

        // A mismatched resident reducer (wrong k) is ignored, not misused.
        let wrong = Arc::new(Mutex::new(Ctcp::new(&g, k + 1)));
        let sol = Solver::new(&g, k, SolverConfig::kdc().with_shared_ctcp(wrong)).solve();
        assert_eq!(sol.size(), cold.size());
        assert!(sol.is_optimal());
    }

    #[test]
    fn mid_search_retighten_restarts_are_sound() {
        // No-heuristic configurations start at lb = 0 and improve the
        // incumbent many times mid-search, exercising the re-tighten +
        // rebuild loop; the answer must match the fully warm-started solver.
        let mut rng = gen::seeded_rng(93);
        for trial in 0..4 {
            let g = gen::gnp(45, 0.35, &mut rng);
            for k in [0usize, 2] {
                let mut cfg = SolverConfig::kdc();
                cfg.heuristic = InitialHeuristic::None;
                let cold = Solver::new(&g, k, cfg).solve();
                let reference = Solver::new(&g, k, SolverConfig::kdc()).solve();
                assert_eq!(cold.size(), reference.size(), "trial {trial} k {k}");
                assert!(cold.is_optimal());
                assert!(g.is_k_defective_clique(&cold.vertices, k));
            }
        }
    }

    #[test]
    fn monotone_in_k() {
        let mut rng = gen::seeded_rng(31);
        for _ in 0..5 {
            let g = gen::gnp(30, 0.3, &mut rng);
            let mut prev = 0;
            for k in 0..8 {
                let s = max_defective_clique(&g, k).size();
                assert!(s >= prev, "size must be monotone in k");
                prev = s;
            }
        }
    }
}
