//! The top-level kDC solver (Algorithm 2):
//!
//! 1. heuristically compute a large initial k-defective clique (§3.3);
//! 2. reduce the input graph with RR5 (core) and RR6 (truss) using the
//!    initial solution size as the lower bound (§3.2.3);
//! 3. branch-and-bound on the reduced, relabelled universe.

use crate::config::{InitialHeuristic, SolverConfig};
use crate::engine::Engine;
use crate::heuristic;
use crate::stats::{Solution, Status};
use kdc_graph::graph::{Graph, VertexId};
use kdc_graph::{degeneracy, truss};
use std::time::Instant;

/// Exact maximum k-defective clique solver.
///
/// ```
/// use kdc::{Solver, SolverConfig};
/// use kdc_graph::Graph;
///
/// let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
/// let sol = Solver::new(&g, 1, SolverConfig::kdc()).solve();
/// assert_eq!(sol.size(), 3);
/// assert!(sol.is_optimal());
/// ```
pub struct Solver<'g> {
    graph: &'g Graph,
    k: usize,
    config: SolverConfig,
}

impl<'g> Solver<'g> {
    /// Creates a solver for the maximum `k`-defective clique of `graph`.
    pub fn new(graph: &'g Graph, k: usize, config: SolverConfig) -> Self {
        Solver { graph, k, config }
    }

    /// Runs the solve and returns the best solution found together with its
    /// optimality status and search statistics.
    pub fn solve(self) -> Solution {
        let Solver { graph, k, config } = self;
        let t_start = Instant::now();
        let deadline = config.time_limit.map(|d| t_start + d);

        // Line 1 of Algorithm 2: initial solution.
        let initial = initial_solution(graph, k, &config);
        debug_assert!(graph.is_k_defective_clique(&initial, k));
        let lb0 = initial.len();

        // Line 2: preprocessing.
        let (adj, keep) = preprocess(graph, k, lb0, &config);
        let preprocessed_n = keep.len();
        let preprocessed_m = adj.iter().map(Vec::len).sum::<usize>() / 2;
        let preprocess_time = t_start.elapsed();

        // Line 3: branch and bound over the reduced universe.
        let t_search = Instant::now();
        let mut engine = Engine::new(adj, k, config, lb0);
        engine.override_deadline(deadline);
        let completed = engine.run();
        let search_time = t_search.elapsed();

        let mut vertices: Vec<VertexId> = if engine.best().len() > lb0 {
            engine.best().iter().map(|&v| keep[v as usize]).collect()
        } else {
            initial
        };
        vertices.sort_unstable();
        debug_assert!(graph.is_k_defective_clique(&vertices, k));

        let mut stats = engine.take_stats();
        stats.initial_solution_size = lb0;
        stats.preprocessed_n = preprocessed_n;
        stats.preprocessed_m = preprocessed_m;
        stats.preprocess_time = preprocess_time;
        stats.search_time = search_time;

        let status = if completed {
            Status::Optimal
        } else {
            engine.abort_status()
        };
        Solution {
            vertices,
            status,
            stats,
        }
    }
}

/// Convenience wrapper: solve with the default kDC configuration.
pub fn max_defective_clique(graph: &Graph, k: usize) -> Solution {
    Solver::new(graph, k, SolverConfig::kdc()).solve()
}

/// Result of running only Lines 1–2 of Algorithm 2 (heuristic +
/// preprocessing), as compared in Table 4 of the paper.
#[derive(Clone, Debug)]
pub struct PreprocessReport {
    /// The initial solution `C0`.
    pub initial: Vec<VertexId>,
    /// Vertices surviving preprocessing (`n0`).
    pub n0: usize,
    /// Edges surviving preprocessing (`m0`).
    pub m0: usize,
}

/// Runs the heuristic and the RR5/RR6 preprocessing without searching.
pub fn preprocess_report(graph: &Graph, k: usize, config: &SolverConfig) -> PreprocessReport {
    let initial = initial_solution(graph, k, config);
    let (adj, keep) = preprocess(graph, k, initial.len(), config);
    PreprocessReport {
        initial,
        n0: keep.len(),
        m0: adj.iter().map(Vec::len).sum::<usize>() / 2,
    }
}

/// Line 1 of Algorithm 2: the configured initial-solution heuristic. Reuses
/// the config's shared peeling of the input graph when one is installed
/// (resident services cache it per graph), peeling from scratch otherwise.
pub(crate) fn initial_solution(graph: &Graph, k: usize, config: &SolverConfig) -> Vec<VertexId> {
    if config.heuristic == InitialHeuristic::None {
        return Vec::new();
    }
    let fresh;
    let peeling = match &config.shared_peeling {
        Some(shared) => shared.as_ref(),
        None => {
            fresh = degeneracy::peel(graph);
            &fresh
        }
    };
    match config.heuristic {
        InitialHeuristic::None => unreachable!("handled above"),
        InitialHeuristic::Degen => heuristic::degen_with(graph, k, peeling),
        InitialHeuristic::DegenOpt => heuristic::degen_opt_with(graph, k, peeling),
        InitialHeuristic::DegenOptLocalSearch => heuristic::degen_opt_ls_with(graph, k, peeling),
    }
}

/// Line 2 of Algorithm 2: reduce `g` with RR5 (to the (lb−k)-core) and RR6
/// (to the (lb−k+1)-truss), then drop newly under-degree vertices with one
/// more core pass. Returns the reduced universe as sorted adjacency lists
/// plus the new→old id map.
fn preprocess(
    g: &Graph,
    k: usize,
    lb: usize,
    config: &SolverConfig,
) -> (Vec<Vec<u32>>, Vec<VertexId>) {
    // RR5: vertices of degree < lb − k cannot be in a solution of size
    // > lb; keep the (lb − k)-core.
    let (mut current, mut keep): (Graph, Vec<VertexId>) = if config.enable_rr5 && lb > k {
        degeneracy::k_core(g, lb - k)
    } else {
        (g.clone(), g.vertices().collect())
    };

    // RR6: edges with fewer than lb − k − 1 common neighbours cannot be in a
    // solution of size > lb; keep the (lb − k + 1)-truss.
    if config.enable_rr6 && lb > k + 1 {
        let trussed = truss::truss_filter(&current, (lb - k - 1) as u32);
        // Edge removals lower degrees: re-peel to the (lb − k)-core (a
        // strictly beneficial extra pass; the paper applies RR5 before RR6
        // only, but the truss is a subgraph of the core anyway and this pass
        // merely discards now-isolated vertices).
        let (cored, sub_keep) = if config.enable_rr5 && lb > k {
            degeneracy::k_core(&trussed, lb - k)
        } else {
            let ids: Vec<VertexId> = trussed.vertices().collect();
            (trussed, ids)
        };
        keep = sub_keep.iter().map(|&v| keep[v as usize]).collect();
        current = cored;
    }

    let adj: Vec<Vec<u32>> = (0..current.n() as u32)
        .map(|v| current.neighbors(v).to_vec())
        .collect();
    (adj, keep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdc_graph::{gen, named};

    #[test]
    fn solves_figure2_for_all_k() {
        let g = named::figure2();
        for (k, expected) in [(0usize, 5usize), (1, 5), (2, 6), (3, 6), (4, 6), (5, 7)] {
            let sol = Solver::new(&g, k, SolverConfig::kdc()).solve();
            assert_eq!(sol.size(), expected, "k = {k}");
            assert!(sol.is_optimal());
            assert!(g.is_k_defective_clique(&sol.vertices, k));
        }
    }

    #[test]
    fn all_presets_agree_on_random_graphs() {
        let mut rng = gen::seeded_rng(2024);
        type Preset = (&'static str, fn() -> SolverConfig);
        let presets: Vec<Preset> = vec![
            ("kdc", SolverConfig::kdc),
            ("kdc_t", SolverConfig::kdc_t),
            ("no_ub1", SolverConfig::without_ub1),
            ("no_rr34", SolverConfig::without_rr3_rr4),
            ("no_ub1_rr34", SolverConfig::without_ub1_rr3_rr4),
            ("degen", SolverConfig::degen),
            ("kdbb", SolverConfig::kdbb_like),
            ("madec", SolverConfig::madec_like),
        ];
        for trial in 0..8 {
            let g = gen::gnp(22, 0.4, &mut rng);
            for k in [0usize, 1, 3, 5] {
                let reference = Solver::new(&g, k, SolverConfig::kdc_t()).solve();
                for (name, cfg) in &presets {
                    let sol = Solver::new(&g, k, cfg()).solve();
                    assert_eq!(
                        sol.size(),
                        reference.size(),
                        "preset {name} disagrees (trial {trial}, k {k})"
                    );
                    assert!(g.is_k_defective_clique(&sol.vertices, k));
                    assert!(sol.is_optimal());
                }
            }
        }
    }

    #[test]
    fn planted_clique_is_found_exactly() {
        let mut rng = gen::seeded_rng(5);
        let (g, planted) = gen::planted_defective_clique(150, 14, 3, 0.04, &mut rng);
        let sol = max_defective_clique(&g, 3);
        assert!(sol.size() >= planted.len(), "planted clique missed");
        assert!(g.is_k_defective_clique(&sol.vertices, 3));
    }

    #[test]
    fn k_zero_equals_maximum_clique_on_figure2() {
        let g = named::figure2();
        let sol = max_defective_clique(&g, 0);
        assert_eq!(sol.size(), 5);
        assert_eq!(sol.vertices, vec![7, 8, 9, 10, 11]);
    }

    #[test]
    fn empty_and_trivial_graphs() {
        let sol = max_defective_clique(&Graph::empty(0), 3);
        assert_eq!(sol.size(), 0);
        assert!(sol.is_optimal());

        let sol = max_defective_clique(&Graph::empty(1), 0);
        assert_eq!(sol.size(), 1);

        // Isolated vertices: any s with s(s−1)/2 ≤ k fit together.
        let sol = max_defective_clique(&Graph::empty(10), 3);
        assert_eq!(sol.size(), 3);

        let sol = max_defective_clique(&gen::complete(8), 5);
        assert_eq!(sol.size(), 8);
    }

    #[test]
    fn node_limit_reports_nonoptimal() {
        let mut rng = gen::seeded_rng(11);
        let g = gen::gnp(60, 0.5, &mut rng);
        let cfg = SolverConfig::kdc_t().with_node_limit(10);
        let sol = Solver::new(&g, 3, cfg).solve();
        assert_eq!(sol.status, Status::NodeLimitReached);
        // Best-effort solution is still valid.
        assert!(g.is_k_defective_clique(&sol.vertices, 3));
    }

    #[test]
    fn shared_peeling_matches_fresh_peeling() {
        use kdc_graph::degeneracy;
        use std::sync::Arc;
        let mut rng = gen::seeded_rng(14);
        for _ in 0..4 {
            let g = gen::gnp(40, 0.3, &mut rng);
            let peeling = Arc::new(degeneracy::peel(&g));
            for k in [0usize, 2] {
                let fresh = Solver::new(&g, k, SolverConfig::kdc()).solve();
                let shared_cfg = SolverConfig::kdc().with_shared_peeling(peeling.clone());
                let shared = Solver::new(&g, k, shared_cfg.clone()).solve();
                // The heuristics are deterministic in the ordering, so the
                // results are identical, not merely equal-sized.
                assert_eq!(fresh.vertices, shared.vertices, "k = {k}");
                let decomposed = crate::decompose::solve_decomposed(&g, k, shared_cfg, 2);
                assert_eq!(fresh.size(), decomposed.size(), "k = {k}");
            }
        }
    }

    #[test]
    fn cancel_flag_aborts_with_best_effort_solution() {
        use crate::config::CancelFlag;
        let mut rng = gen::seeded_rng(13);
        let g = gen::gnp(80, 0.5, &mut rng);
        // Pre-raised flag: the engine must abort at its very first node and
        // still hand back the (valid) heuristic solution.
        let flag = CancelFlag::new();
        flag.cancel();
        let sol = Solver::new(&g, 3, SolverConfig::kdc().with_cancel(flag)).solve();
        assert_eq!(sol.status, Status::Cancelled);
        assert!(g.is_k_defective_clique(&sol.vertices, 3));

        // An un-raised flag must not disturb the solve.
        let flag = CancelFlag::new();
        let sol = Solver::new(&g, 3, SolverConfig::kdc().with_cancel(flag.clone())).solve();
        assert!(sol.is_optimal());
        assert!(!flag.is_cancelled());
    }

    #[test]
    fn time_limit_reports_timeout() {
        let mut rng = gen::seeded_rng(12);
        // A hard dense instance with a tiny limit.
        let g = gen::gnp(120, 0.6, &mut rng);
        let cfg = SolverConfig::kdc_t().with_time_limit(std::time::Duration::from_millis(1));
        let sol = Solver::new(&g, 10, cfg).solve();
        assert!(matches!(sol.status, Status::TimedOut | Status::Optimal));
    }

    #[test]
    fn preprocessing_shrinks_planted_instances() {
        let mut rng = gen::seeded_rng(77);
        let (g, _) = gen::planted_defective_clique(400, 16, 2, 0.02, &mut rng);
        let sol = Solver::new(&g, 2, SolverConfig::kdc()).solve();
        assert!(
            sol.stats.preprocessed_n < g.n() / 2,
            "preprocessing too weak: {} of {}",
            sol.stats.preprocessed_n,
            g.n()
        );
        assert!(sol.stats.initial_solution_size >= 10);
    }

    #[test]
    fn stats_are_populated() {
        let g = named::figure2();
        let sol = Solver::new(&g, 2, SolverConfig::kdc()).solve();
        assert!(sol.stats.nodes >= 1);
        assert!(sol.stats.initial_solution_size >= 5);
    }

    #[test]
    fn monotone_in_k() {
        let mut rng = gen::seeded_rng(31);
        for _ in 0..5 {
            let g = gen::gnp(30, 0.3, &mut rng);
            let mut prev = 0;
            for k in 0..8 {
                let s = max_defective_clique(&g, k).size();
                assert!(s >= prev, "size must be monotone in k");
                prev = s;
            }
        }
    }
}
