//! Public probing API for the engine's upper bounds.
//!
//! The experiment harness (and the §3.2.1 tightness study) needs to evaluate
//! UB1, UB2, UB3 and the Eq. (2) baseline bound on a concrete instance
//! `(g, S)` without running a search. This module constructs a throwaway
//! engine, installs `S`, and reports every bound.

use crate::config::SolverConfig;
use crate::engine::Engine;
use kdc_graph::graph::{Graph, VertexId};

/// All upper bounds of an instance `(g, S)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RootBounds {
    /// UB1 — the paper's improved colouring bound (§3.2.1).
    pub ub1: usize,
    /// Eq. (2) — the original MADEC colouring bound \[11\].
    pub eq2: usize,
    /// UB2 — `min_{u∈S} d_g(u) + 1 + k`; `None` when `S` is empty.
    pub ub2: Option<usize>,
    /// UB3 — the non-neighbour prefix bound \[16\].
    pub ub3: usize,
}

impl RootBounds {
    /// The tightest available bound.
    pub fn best(&self) -> usize {
        self.ub1
            .min(self.eq2)
            .min(self.ub3)
            .min(self.ub2.unwrap_or(usize::MAX))
    }
}

/// Computes every upper bound for the instance `(g, S)`.
///
/// ```
/// use kdc_graph::named;
///
/// // The paper's Figure 5 instance: Eq. (2) = 11, but UB1 = 3 (Ex. 3.6/3.7).
/// let (g, s) = named::figure5();
/// let b = kdc::probe::root_bounds(&g, &s, 3);
/// assert_eq!((b.ub1, b.eq2), (3, 11));
/// ```
///
/// # Panics
/// Panics if `s` is not a k-defective clique of `g` (the instance would be
/// infeasible) or contains out-of-range/duplicate vertices.
pub fn root_bounds(g: &Graph, s: &[VertexId], k: usize) -> RootBounds {
    assert!(
        g.is_k_defective_clique(s, k),
        "S must induce a k-defective clique"
    );
    let adj: Vec<Vec<u32>> = (0..g.n() as u32).map(|v| g.neighbors(v).to_vec()).collect();
    let mut engine = Engine::new(adj, k, SolverConfig::kdc(), 0);
    for &v in s {
        engine.force_into_s(v);
    }
    let (ub1, eq2, ub2, ub3) = engine.all_bounds();
    RootBounds {
        ub1,
        eq2,
        ub2: (ub2 != usize::MAX).then_some(ub2),
        ub3,
    }
}

/// Micro-benchmark helper: evaluates all bounds `iters` times on the same
/// engine state and returns the elapsed wall time. Used by the criterion
/// benches to measure per-node bound cost in isolation.
pub fn bench_bounds(g: &Graph, s: &[VertexId], k: usize, iters: u32) -> std::time::Duration {
    let adj: Vec<Vec<u32>> = (0..g.n() as u32).map(|v| g.neighbors(v).to_vec()).collect();
    let mut engine = Engine::new(adj, k, SolverConfig::kdc(), 0);
    for &v in s {
        engine.force_into_s(v);
    }
    let t0 = std::time::Instant::now();
    let mut sink = 0usize;
    for _ in 0..iters {
        let (a, b, c, d) = engine.all_bounds();
        sink = sink.wrapping_add(a + b + c.min(1 << 20) + d);
    }
    std::hint::black_box(sink);
    t0.elapsed()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdc_graph::named;

    #[test]
    fn figure5_bounds_match_examples() {
        // Examples 3.6/3.7: Eq. (2) = 11, UB1 = 3; UB2 = 4, UB3 = 3.
        let (g, s) = named::figure5();
        let b = root_bounds(&g, &s, 3);
        assert_eq!(b.ub1, 3);
        assert_eq!(b.eq2, 11);
        assert_eq!(b.ub2, Some(4));
        assert_eq!(b.ub3, 3);
        assert_eq!(b.best(), 3);
    }

    #[test]
    fn empty_s_has_no_ub2() {
        let g = named::figure2();
        let b = root_bounds(&g, &[], 1);
        assert_eq!(b.ub2, None);
        // All bounds must dominate the known optimum (5 for k = 1).
        assert!(b.ub1 >= 5 && b.eq2 >= 5 && b.ub3 >= 5);
        assert!(b.ub1 <= b.eq2, "UB1 is tighter than Eq. (2)");
    }

    #[test]
    #[should_panic(expected = "k-defective")]
    fn infeasible_s_panics() {
        let g = named::figure2();
        // {v1, v5, v7(non-nbr of many)} … pick an S with too many missing edges for k = 0.
        let _ = root_bounds(&g, &[0, 4], 0); // (v1,v5) is a non-edge
    }
}
