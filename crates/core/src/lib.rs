#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! # kdc — exact maximum k-defective clique computation
//!
//! A faithful reproduction of **kDC**, the branch-and-bound framework of
//! *Efficient Maximum k-Defective Clique Computation with Improved Time
//! Complexity* (Lijun Chang, SIGMOD 2023).
//!
//! A *k-defective clique* is a vertex set missing at most `k` edges from
//! being complete. kDC computes a maximum one exactly, in `O*(γ_k^n)` time
//! where `γ_k < 2` is the largest real root of `x^(k+3) − 2x^(k+2) + 1 = 0`
//! ([`gamma::gamma_k`]), improving on the previous best `O*(γ_{2k}^n)`.
//!
//! ## Quickstart
//!
//! ```
//! use kdc::{Solver, SolverConfig};
//! use kdc_graph::Graph;
//!
//! // A 5-cycle: max clique = 2, but one allowed missing edge admits 3.
//! let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
//! let sol = Solver::new(&g, 1, SolverConfig::kdc()).solve();
//! assert_eq!(sol.vertices.len(), 3);
//! ```
//!
//! ## Structure
//!
//! * [`solver::Solver`] — Algorithm 2: heuristic → preprocessing → search;
//! * [`config::SolverConfig`] — presets for kDC, kDC-t and every ablation
//!   variant of §4 (`kDC/UB1`, `kDC/RR3&4`, `kDC-Degen`, baselines);
//! * [`heuristic`] — `Degen` / `Degen-opt` initial solutions (§3.3) plus a
//!   local-search refinement;
//! * [`gamma`] — the branching factor γ_k of Theorem 3.5;
//! * [`topr`] — §6 extensions (top-r maximal / top-r diversified / full
//!   maximal enumeration);
//! * [`counting`] — exact per-size counts (the §5 counting problem);
//! * [`decompose`] — parallel ego decomposition for large sparse graphs;
//! * [`probe`] — UB1/UB2/UB3/Eq. (2) evaluation on arbitrary instances;
//! * [`verify`] — independent solution checking and portable certificates;
//! * the engine (branching rule BR, reduction rules RR1–RR5, upper bounds
//!   UB1–UB4 and the Eq. (2) baseline bound) is internal; configure it
//!   through [`config::SolverConfig`].

pub mod config;
pub mod counting;
pub mod decompose;
pub mod gamma;
pub mod heuristic;
pub mod probe;
pub mod solver;
pub mod stats;
pub mod topr;
pub mod verify;

mod engine;

pub use config::{BranchPolicy, CancelFlag, EventHook, InitialHeuristic, SolveEvent, SolverConfig};
pub use gamma::{gamma_k, sigma_k};
pub use solver::{max_defective_clique, Solver};
pub use stats::{bound, BoundCost, SearchStats, Solution, Status};
