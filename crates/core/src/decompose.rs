//! Degeneracy-ordered ego decomposition for very large sparse graphs.
//!
//! The paper's kDC branch-and-bounds over the whole (preprocessed) graph.
//! For graphs whose reduced universe is still large, a classic scalability
//! technique (used e.g. by MC-BRB for cliques) decomposes the problem into
//! one small instance per vertex:
//!
//! For an ordering `v_1 … v_n`, every k-defective clique `C` with
//! `|C| ≥ k + 3` satisfies: any two members share a common neighbour *inside
//! C* (each vertex has ≥ |C| − 1 − k ≥ 2 neighbours in C, and two vertices
//! can jointly miss at most k edges to the other |C| − 2 ≥ k + 1 members).
//! Hence, with `v` the earliest member of `C` in the ordering, `C` lies
//! within distance 2 of `v` *inside the subgraph induced by v and its
//! successors*. Solving, for every `v`, the instance
//!
//! ```text
//! U_v = {v} ∪ { w ≻ v : dist_{G[v ∪ succ(v)]}(v, w) ≤ 2 },  S = {v}
//! ```
//!
//! finds every solution of size ≥ k + 3. The decomposition is therefore
//! exact whenever the initial lower bound satisfies `lb ≥ k + 2` (only
//! solutions strictly larger than `lb` remain interesting); otherwise
//! [`solve_decomposed`] transparently falls back to the global solver.
//!
//! # The shared universe and the per-worker arena
//!
//! All ego subproblems live inside **one** CTCP-reduced universe: the
//! incremental reducer ([`kdc_graph::ctcp`]) is tightened once against the
//! heuristic lower bound and extracted once (`universe_rebuilds = 1`), and
//! the degeneracy ordering is restricted to the survivors. Each worker then
//! owns a `SubproblemArena`: flat CSR buffers, a reusable `Marker`, and
//! one long-lived engine re-primed per vertex via `Engine::reset` — so
//! the per-vertex loop performs **no universe allocation in steady state**
//! (`arena_reuses` counts exactly the instances served this way).
//!
//! Instances are independent, so they are solved on parallel threads
//! (std scoped threads; the incumbent size is shared through an atomic).

use crate::config::{InitialHeuristic, SolveEvent, SolverConfig};
use crate::engine::Engine;
use crate::heuristic;
use crate::stats::{bound, BoundCost, SearchStats, Solution, Status};
use kdc_graph::graph::{Graph, VertexId};
use kdc_graph::scratch::Marker;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Per-worker reusable state for the ego-subproblem loop: universe and
/// relabelling buffers, the flat CSR of the current instance, and one
/// long-lived engine re-primed via `Engine::reset`. After the first
/// instance has grown the buffers, priming another instance of no larger
/// size allocates nothing — a claim checked directly by the counting
/// global-allocator test in `crates/lint/tests/alloc_guard.rs`, which is
/// why the admit/solve cycle is public.
pub struct SubproblemArena {
    engine: Engine,
    /// Current ego universe (reduced ids, sorted ascending once built).
    universe: Vec<u32>,
    /// Membership marker over the reduced universe.
    member: Marker,
    /// reduced id → local id of the current instance (valid only for
    /// marked members, so it never needs clearing).
    local_id: Vec<u32>,
    csr_off: Vec<u32>,
    csr_dat: Vec<u32>,
    /// Whether the engine has been primed at least once.
    primed: bool,
    /// Instances served by re-priming the existing arena.
    reuses: u64,
    /// Instances actually searched.
    instances: u64,
}

impl SubproblemArena {
    /// An arena for ego instances drawn from a reduced universe of
    /// `n_reduced` vertices.
    pub fn new(n_reduced: usize, k: usize, config: SolverConfig) -> Self {
        SubproblemArena {
            engine: Engine::hollow(k, config),
            universe: Vec::new(),
            member: Marker::new(n_reduced),
            local_id: vec![0; n_reduced],
            csr_off: Vec::new(),
            csr_dat: Vec::new(),
            primed: false,
            reuses: 0,
            instances: 0,
        }
    }

    /// Starts a new instance: clears the membership marker and the
    /// universe buffer (no deallocation — capacity is the point).
    pub fn begin_instance(&mut self) {
        self.member.reset();
        self.universe.clear();
    }

    /// Admits `u` (a reduced id) into the current universe unless already
    /// a member; returns whether it was new.
    pub fn admit(&mut self, u: u32) -> bool {
        if self.member.is_marked(u as usize) {
            return false;
        }
        self.member.mark(u as usize);
        self.universe.push(u);
        true
    }

    /// Current universe size.
    pub fn universe_len(&self) -> usize {
        self.universe.len()
    }

    /// Instances served by re-priming existing buffers (everything after
    /// the first, for a worker fed same-or-smaller instances).
    pub fn reuses(&self) -> u64 {
        self.reuses
    }

    /// Size of the best solution found by the most recent instance.
    pub fn best_len(&self) -> usize {
        self.engine.best().len()
    }

    /// Builds the induced-subgraph CSR of `universe` (sorting it ascending
    /// first) from the shared reduced adjacency, primes the engine at floor
    /// `lb` with `v` forced into S, and runs the search. Returns whether the
    /// run completed. This is the steady-state hot path: after warm-up it
    /// must not touch the allocator.
    // kdc-lint: hot-path
    pub fn solve_instance(
        &mut self,
        red_adj: &[Vec<u32>],
        v: u32,
        lb: usize,
        deadline: Option<Instant>,
    ) -> bool {
        self.universe.sort_unstable();
        self.csr_off.clear();
        self.csr_dat.clear();
        self.csr_off.push(0);
        for (li, &u) in self.universe.iter().enumerate() {
            self.local_id[u as usize] = li as u32;
        }
        for &u in &self.universe {
            for &w in &red_adj[u as usize] {
                if self.member.is_marked(w as usize) {
                    self.csr_dat.push(self.local_id[w as usize]);
                }
            }
            self.csr_off.push(self.csr_dat.len() as u32);
        }
        if self.primed {
            self.reuses += 1;
        } else {
            self.primed = true;
        }
        self.instances += 1;
        self.engine.reset(&self.csr_off, &self.csr_dat, lb);
        self.engine.override_deadline(deadline);
        self.engine.force_into_s(self.local_id[v as usize]);
        self.engine.run()
    }
}

/// Exact maximum k-defective clique via parallel ego decomposition.
///
/// `threads = 0` uses all available cores. Falls back to the sequential
/// global [`crate::Solver`] when the initial heuristic bound is below
/// `k + 2` (where the distance-2 containment argument does not apply).
///
/// ```
/// use kdc::{decompose::solve_decomposed, SolverConfig};
/// use kdc_graph::gen;
///
/// let (g, planted) =
///     gen::planted_defective_clique(500, 15, 2, 0.01, &mut gen::seeded_rng(1));
/// let sol = solve_decomposed(&g, 2, SolverConfig::kdc(), 0);
/// assert!(sol.is_optimal());
/// assert!(sol.vertices.len() >= planted.len());
/// ```
pub fn solve_decomposed(g: &Graph, k: usize, config: SolverConfig, threads: usize) -> Solution {
    let t0 = std::time::Instant::now();
    // One peeling serves both the initial heuristic and the decomposition
    // ordering; a shared peeling from the config (resident services) makes
    // this phase free.
    let fresh_peeling;
    let peeling = match &config.shared_peeling {
        Some(shared) => shared.clone(),
        None => {
            fresh_peeling = std::sync::Arc::new(kdc_graph::degeneracy::peel(g));
            fresh_peeling.clone()
        }
    };
    debug_assert_eq!(peeling.order.len(), g.n(), "peeling is for another graph");
    // Initial solution — also the correctness gate; an installed seed
    // (warm service solves) may raise it further.
    let mut initial = match config.heuristic {
        InitialHeuristic::None | InitialHeuristic::Degen => heuristic::degen_with(g, k, &peeling),
        InitialHeuristic::DegenOpt => heuristic::degen_opt_with(g, k, &peeling),
        InitialHeuristic::DegenOptLocalSearch => heuristic::degen_opt_ls_with(g, k, &peeling),
    };
    if let Some(seed) = &config.seed_solution {
        if seed.len() > initial.len() && crate::solver::valid_seed(g, seed, k) {
            initial = seed.clone();
        }
    }
    if initial.len() < k + 2 {
        return crate::Solver::new(g, k, config).solve();
    }
    // The fallback above emits its own events via the sequential solver;
    // from here on this coordinator is the event source.
    if let Some(hook) = &config.on_event {
        hook.emit(SolveEvent::Incumbent {
            size: initial.len(),
        });
    }
    let threads = if threads == 0 {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4)
    } else {
        threads
    };

    // One CTCP-reduced universe shared by every ego subproblem: tighten the
    // (possibly resident) reducer to the initial bound and extract once,
    // atomically — if a concurrent solve already tightened the resident
    // reducer past our bound, its universe may be missing solutions we must
    // find, so fall back to a private reducer.
    let ctcp = crate::solver::resident_ctcp(g, k, &config, initial.len());
    let (removed_v, removed_e, red_adj, keep) = {
        let mut c = ctcp.lock().expect("poisoned");
        let rem = c.tighten(initial.len());
        if c.lb() <= initial.len() {
            let (adj, keep) = c.extract_universe();
            (rem.vertices.len() as u64, rem.edges, adj, keep)
        } else {
            drop(c);
            let mut private =
                kdc_graph::ctcp::Ctcp::with_rules(g, k, config.enable_rr5, config.enable_rr6);
            let rem = private.tighten(initial.len());
            let (adj, keep) = private.extract_universe();
            (rem.vertices.len() as u64, rem.edges, adj, keep)
        }
    };
    let n_red = keep.len();
    let red_m = red_adj.iter().map(Vec::len).sum::<usize>() / 2;
    if let Some(hook) = &config.on_event {
        if removed_v > 0 || removed_e > 0 {
            hook.emit(SolveEvent::Retighten {
                vertices: removed_v,
                edges: removed_e,
            });
        }
        hook.emit(SolveEvent::Restart { universe: n_red });
    }

    // The input ordering restricted to the survivors (any ordering keeps
    // the containment argument valid; the degeneracy restriction keeps the
    // successor sets small), plus ranks and forward adjacency, all in
    // reduced ids.
    let mut red_id: Vec<u32> = vec![u32::MAX; g.n()];
    for (i, &v) in keep.iter().enumerate() {
        red_id[v as usize] = i as u32;
    }
    let order: Vec<u32> = peeling
        .order
        .iter()
        .filter_map(|&v| {
            let r = red_id[v as usize];
            (r != u32::MAX).then_some(r)
        })
        .collect();
    let mut rank: Vec<u32> = vec![0; n_red];
    for (i, &v) in order.iter().enumerate() {
        rank[v as usize] = i as u32;
    }
    let nplus: Vec<Vec<u32>> = (0..n_red as u32)
        .map(|u| {
            red_adj[u as usize]
                .iter()
                .copied()
                .filter(|&w| rank[w as usize] > rank[u as usize])
                .collect()
        })
        .collect();

    let best_size = AtomicUsize::new(initial.len());
    let best_sol: Mutex<Vec<VertexId>> = Mutex::new(initial.clone());
    let next_task = AtomicUsize::new(0);
    let deadline = config.time_limit.map(|d| t0 + d);
    // 0 = ran to completion, 1 = deadline expired, 2 = cancelled.
    let abort_code = AtomicUsize::new(0);
    let total_nodes = AtomicU64::new(0);
    let total_reuses = AtomicU64::new(0);
    let total_instances = AtomicU64::new(0);
    // Per-bound telemetry, merged once per worker at exit (never contended
    // inside the ego loop).
    let bound_totals: Mutex<[BoundCost; bound::COUNT]> = Mutex::new(Default::default());

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                // The arena's engine keeps one config for its whole life;
                // per-instance deadlines go through override_deadline, so
                // the engine must not re-arm a relative limit on reset.
                let mut worker_config = config.clone();
                worker_config.time_limit = None;
                let mut arena = SubproblemArena::new(n_red, k, worker_config);
                let mut local_bounds = [BoundCost::default(); bound::COUNT];
                loop {
                    let i = next_task.fetch_add(1, Ordering::Relaxed);
                    if i >= n_red {
                        break;
                    }
                    if let Some(flag) = &config.cancel {
                        if flag.is_cancelled() {
                            abort_code.store(2, Ordering::Relaxed);
                            break;
                        }
                    }
                    if let Some(d) = deadline {
                        if std::time::Instant::now() >= d {
                            abort_code.fetch_max(1, Ordering::Relaxed);
                            break;
                        }
                    }
                    let v = order[i];
                    let lb = best_size.load(Ordering::Relaxed);
                    // Universe: v + successors within distance 2 through
                    // successor paths.
                    arena.begin_instance();
                    arena.admit(v);
                    for &w in &nplus[v as usize] {
                        arena.admit(w);
                    }
                    let direct = arena.universe.len();
                    let v_rank = rank[v as usize];
                    for di in 1..direct {
                        let w = arena.universe[di];
                        // All successors *of v* adjacent to w (their rank may
                        // be below w's, so w's full neighbour list is needed,
                        // filtered to the ≻ v region).
                        for &x in &red_adj[w as usize] {
                            if rank[x as usize] > v_rank {
                                arena.admit(x);
                            }
                        }
                    }
                    // Solutions containing v of size > lb need ≥ lb + 1
                    // vertices in the universe.
                    if arena.universe.len() <= lb {
                        continue;
                    }

                    let ego_span = config.trace.as_ref().map(|t| t.span("ego"));
                    let finished = arena.solve_instance(&red_adj, v, lb, deadline);
                    drop(ego_span);
                    total_nodes.fetch_add(arena.engine.stats.nodes, Ordering::Relaxed);
                    for (acc, bc) in local_bounds.iter_mut().zip(&arena.engine.stats.bound_costs) {
                        acc.invocations += bc.invocations;
                        acc.prunes += bc.prunes;
                        acc.ns += bc.ns;
                    }
                    if !finished {
                        let code = if arena.engine.abort_status() == Status::Cancelled {
                            2
                        } else {
                            1
                        };
                        abort_code.fetch_max(code, Ordering::Relaxed);
                    }
                    let found = arena.engine.best();
                    if found.len() > lb {
                        let mapped: Vec<VertexId> = found
                            .iter()
                            .map(|&x| keep[arena.universe[x as usize] as usize])
                            .collect();
                        debug_assert!(g.is_k_defective_clique(&mapped, k));
                        let mut guard = best_sol.lock().expect("poisoned");
                        if mapped.len() > guard.len() {
                            best_size.store(mapped.len(), Ordering::Relaxed);
                            if let Some(hook) = &config.on_event {
                                hook.emit(SolveEvent::Incumbent { size: mapped.len() });
                            }
                            *guard = mapped;
                        }
                    }
                }
                total_reuses.fetch_add(arena.reuses, Ordering::Relaxed);
                total_instances.fetch_add(arena.instances, Ordering::Relaxed);
                let mut totals = bound_totals.lock().expect("poisoned");
                for (t, l) in totals.iter_mut().zip(&local_bounds) {
                    t.invocations += l.invocations;
                    t.prunes += l.prunes;
                    t.ns += l.ns;
                }
            });
        }
    });

    let mut vertices = best_sol.into_inner().expect("poisoned");
    vertices.sort_unstable();
    let status = match abort_code.load(Ordering::Relaxed) {
        0 => Status::Optimal,
        1 => Status::TimedOut,
        _ => Status::Cancelled,
    };
    Solution {
        vertices,
        status,
        stats: SearchStats {
            nodes: total_nodes.load(Ordering::Relaxed),
            initial_solution_size: initial.len(),
            preprocessed_n: n_red,
            preprocessed_m: red_m,
            ctcp_vertex_removals: removed_v,
            ctcp_edge_removals: removed_e,
            arena_reuses: total_reuses.load(Ordering::Relaxed),
            universe_rebuilds: 1,
            ego_subproblems: total_instances.load(Ordering::Relaxed),
            bound_costs: bound_totals.into_inner().expect("poisoned"),
            search_time: t0.elapsed(),
            ..Default::default()
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdc_graph::gen;

    #[test]
    fn matches_global_solver_on_random_graphs() {
        let mut rng = gen::seeded_rng(555);
        for trial in 0..10 {
            let g = gen::gnp(40, 0.3, &mut rng);
            for k in [0usize, 1, 3] {
                let a = crate::Solver::new(&g, k, SolverConfig::kdc()).solve();
                let b = solve_decomposed(&g, k, SolverConfig::kdc(), 2);
                assert_eq!(a.size(), b.size(), "trial {trial} k {k}");
                assert!(g.is_k_defective_clique(&b.vertices, k));
                assert!(b.is_optimal());
            }
        }
    }

    #[test]
    fn threads_match_sequential_across_k() {
        // Satellite coverage: multi-threaded decomposition must agree with
        // the sequential global solver on a batch of random graphs for every
        // small k, including the k = 2 gap the older test left open.
        let mut rng = gen::seeded_rng(918);
        for trial in 0..6 {
            let g = gen::gnp(36, 0.35, &mut rng);
            for k in [0usize, 1, 2, 3] {
                let sequential = crate::Solver::new(&g, k, SolverConfig::kdc()).solve();
                let threaded = solve_decomposed(&g, k, SolverConfig::kdc(), 4);
                assert_eq!(
                    sequential.size(),
                    threaded.size(),
                    "trial {trial} k {k}: sequential {} vs decomposed {}",
                    sequential.size(),
                    threaded.size()
                );
                assert!(g.is_k_defective_clique(&threaded.vertices, k));
                assert!(threaded.is_optimal());
            }
        }
    }

    #[test]
    fn cancel_flag_stops_parallel_solve() {
        use crate::config::CancelFlag;
        let mut rng = gen::seeded_rng(919);
        let (g, _) = gen::planted_defective_clique(600, 18, 3, 0.02, &mut rng);
        let flag = CancelFlag::new();
        flag.cancel(); // pre-raised: every worker must bail out immediately
        let sol = solve_decomposed(&g, 3, SolverConfig::kdc().with_cancel(flag), 2);
        assert_eq!(sol.status, Status::Cancelled);
        assert!(g.is_k_defective_clique(&sol.vertices, 3));
    }

    #[test]
    fn falls_back_when_lb_too_small() {
        // A sparse path: heuristic lb < k + 2, so the decomposition is not
        // applicable and the global solver must kick in (still exact).
        let g = Graph::from_edges(8, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7)]);
        let k = 4;
        let sol = solve_decomposed(&g, k, SolverConfig::kdc(), 2);
        let reference = crate::Solver::new(&g, k, SolverConfig::kdc()).solve();
        assert_eq!(sol.size(), reference.size());
    }

    #[test]
    fn community_graph_parallel_solve() {
        let mut rng = gen::seeded_rng(556);
        let g = gen::community(
            &gen::CommunityParams {
                communities: 6,
                community_size: 25,
                p_in: 0.7,
                p_out: 0.01,
            },
            &mut rng,
        );
        for k in [1usize, 3] {
            let a = crate::Solver::new(&g, k, SolverConfig::kdc()).solve();
            let b = solve_decomposed(&g, k, SolverConfig::kdc(), 0);
            assert_eq!(a.size(), b.size(), "k = {k}");
        }
    }

    #[test]
    fn planted_large_sparse_graph() {
        let mut rng = gen::seeded_rng(557);
        let (g, planted) = gen::planted_defective_clique(2_000, 20, 4, 0.005, &mut rng);
        let sol = solve_decomposed(&g, 4, SolverConfig::kdc(), 0);
        assert!(sol.size() >= planted.len());
        assert!(sol.is_optimal());
    }

    #[test]
    fn steady_state_ego_loop_reuses_the_arena() {
        // The structural zero-allocation claim: a single-threaded decomposed
        // solve builds the shared universe exactly once, and every searched
        // ego instance beyond the first re-primes the worker's arena instead
        // of allocating a fresh one.
        let mut rng = gen::seeded_rng(4242);
        let g = gen::community(
            &gen::CommunityParams {
                communities: 8,
                community_size: 20,
                p_in: 0.55,
                p_out: 0.02,
            },
            &mut rng,
        );
        let sol = solve_decomposed(&g, 2, SolverConfig::kdc(), 1);
        assert!(sol.is_optimal());
        assert_eq!(sol.stats.universe_rebuilds, 1, "one shared universe");
        assert!(
            sol.stats.ego_subproblems >= 2,
            "test graph too easy: {} instances",
            sol.stats.ego_subproblems
        );
        assert_eq!(
            sol.stats.arena_reuses,
            sol.stats.ego_subproblems - 1,
            "every instance after the first must reuse the arena"
        );

        // Multi-threaded: at most one non-reuse (first prime) per worker.
        let sol = solve_decomposed(&g, 2, SolverConfig::kdc(), 4);
        assert!(sol.is_optimal());
        assert_eq!(sol.stats.universe_rebuilds, 1);
        assert!(
            sol.stats.ego_subproblems - sol.stats.arena_reuses <= 4,
            "non-reused instances exceed worker count: {} of {}",
            sol.stats.ego_subproblems - sol.stats.arena_reuses,
            sol.stats.ego_subproblems
        );
    }

    #[test]
    fn hostile_seeds_are_rejected_not_panicked() {
        // seed_solution is documented as validated: out-of-range ids and
        // duplicates must be ignored gracefully on the decomposed path too.
        let mut rng = gen::seeded_rng(4711);
        let g = gen::gnp(40, 0.4, &mut rng);
        let reference = solve_decomposed(&g, 2, SolverConfig::kdc(), 2);
        for bad in [
            vec![0u32, 0, 1],                      // duplicate
            vec![0, 1, 2, 3, 4, 5, 6, 7, 8, 9999], // out of range
        ] {
            let cfg = SolverConfig::kdc().with_seed_solution(bad);
            let sol = solve_decomposed(&g, 2, cfg, 2);
            assert_eq!(sol.size(), reference.size());
            assert!(sol.is_optimal());
        }
    }

    #[test]
    fn concurrent_solves_on_one_resident_reducer_stay_sound() {
        // Two solves sharing one resident reducer, racing with very
        // different lower bounds (one seeded at the optimum, one not): the
        // verify-and-extract guard must keep the weakly-bounded solve from
        // searching an over-tightened universe, so both report the true
        // optimum every time.
        use kdc_graph::ctcp::Ctcp;
        use std::sync::{Arc, Mutex};
        let mut rng = gen::seeded_rng(4712);
        let (g, _) = gen::planted_defective_clique(300, 14, 2, 0.03, &mut rng);
        let k = 2;
        let truth = crate::Solver::new(&g, k, SolverConfig::kdc()).solve();
        assert!(truth.is_optimal());
        for _ in 0..8 {
            let resident = Arc::new(Mutex::new(Ctcp::new(&g, k)));
            let strong_cfg = SolverConfig::kdc()
                .with_shared_ctcp(resident.clone())
                .with_seed_solution(truth.vertices.clone());
            // The weak solve starts from the bare Degen heuristic (lower
            // lb) while the strong one immediately tightens to the optimum.
            let mut weak_cfg = SolverConfig::kdc().with_shared_ctcp(resident.clone());
            weak_cfg.heuristic = InitialHeuristic::Degen;
            let (a, b) = std::thread::scope(|scope| {
                let ta = scope.spawn(|| crate::Solver::new(&g, k, strong_cfg).solve());
                let tb = scope.spawn(|| solve_decomposed(&g, k, weak_cfg, 2));
                (ta.join().unwrap(), tb.join().unwrap())
            });
            assert_eq!(a.size(), truth.size(), "strong solve regressed");
            assert_eq!(
                b.size(),
                truth.size(),
                "weak solve saw an over-pruned universe"
            );
            assert!(a.is_optimal() && b.is_optimal());
        }
    }

    #[test]
    fn ctcp_counters_surface_in_decomposed_stats() {
        let mut rng = gen::seeded_rng(77);
        let (g, _) = gen::planted_defective_clique(400, 16, 2, 0.02, &mut rng);
        let sol = solve_decomposed(&g, 2, SolverConfig::kdc(), 2);
        assert!(sol.is_optimal());
        assert!(
            sol.stats.ctcp_vertex_removals > 0,
            "planted instance must shrink"
        );
        assert!(
            sol.stats.ctcp_edge_removals > 0,
            "removed vertices carry their edges with them"
        );
        assert_eq!(
            sol.stats.preprocessed_n,
            g.n() - sol.stats.ctcp_vertex_removals as usize
        );
    }
}
