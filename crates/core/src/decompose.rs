//! Degeneracy-ordered ego decomposition for very large sparse graphs.
//!
//! The paper's kDC branch-and-bounds over the whole (preprocessed) graph.
//! For graphs whose reduced universe is still large, a classic scalability
//! technique (used e.g. by MC-BRB for cliques) decomposes the problem into
//! one small instance per vertex:
//!
//! For a degeneracy ordering `v_1 … v_n`, every k-defective clique `C` with
//! `|C| ≥ k + 3` satisfies: any two members share a common neighbour *inside
//! C* (each vertex has ≥ |C| − 1 − k ≥ 2 neighbours in C, and two vertices
//! can jointly miss at most k edges to the other |C| − 2 ≥ k + 1 members).
//! Hence, with `v` the earliest member of `C` in the ordering, `C` lies
//! within distance 2 of `v` *inside the subgraph induced by v and its
//! successors*. Solving, for every `v`, the instance
//!
//! ```text
//! U_v = {v} ∪ { w ≻ v : dist_{G[v ∪ succ(v)]}(v, w) ≤ 2 },  S = {v}
//! ```
//!
//! finds every solution of size ≥ k + 3. The decomposition is therefore
//! exact whenever the initial lower bound satisfies `lb ≥ k + 2` (only
//! solutions strictly larger than `lb` remain interesting); otherwise
//! [`solve_decomposed`] transparently falls back to the global solver.
//!
//! Instances are independent, so they are solved on parallel threads
//! (std scoped threads; the incumbent size is shared through an atomic).

use crate::config::{InitialHeuristic, SolverConfig};
use crate::engine::Engine;
use crate::heuristic;
use crate::stats::{SearchStats, Solution, Status};
use kdc_graph::degeneracy;
use kdc_graph::graph::{Graph, VertexId};
use kdc_graph::scratch::Marker;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Exact maximum k-defective clique via parallel ego decomposition.
///
/// `threads = 0` uses all available cores. Falls back to the sequential
/// global [`crate::Solver`] when the initial heuristic bound is below
/// `k + 2` (where the distance-2 containment argument does not apply).
///
/// ```
/// use kdc::{decompose::solve_decomposed, SolverConfig};
/// use kdc_graph::gen;
///
/// let (g, planted) =
///     gen::planted_defective_clique(500, 15, 2, 0.01, &mut gen::seeded_rng(1));
/// let sol = solve_decomposed(&g, 2, SolverConfig::kdc(), 0);
/// assert!(sol.is_optimal());
/// assert!(sol.vertices.len() >= planted.len());
/// ```
pub fn solve_decomposed(g: &Graph, k: usize, config: SolverConfig, threads: usize) -> Solution {
    let t0 = std::time::Instant::now();
    // One peeling serves both the initial heuristic and the decomposition
    // ordering; a shared peeling from the config (resident services) makes
    // this phase free.
    let fresh_peeling;
    let peeling = match &config.shared_peeling {
        Some(shared) => shared.clone(),
        None => {
            fresh_peeling = std::sync::Arc::new(degeneracy::peel(g));
            fresh_peeling.clone()
        }
    };
    debug_assert_eq!(peeling.order.len(), g.n(), "peeling is for another graph");
    // Initial solution — also the correctness gate.
    let initial = match config.heuristic {
        InitialHeuristic::None | InitialHeuristic::Degen => heuristic::degen_with(g, k, &peeling),
        InitialHeuristic::DegenOpt => heuristic::degen_opt_with(g, k, &peeling),
        InitialHeuristic::DegenOptLocalSearch => heuristic::degen_opt_ls_with(g, k, &peeling),
    };
    if initial.len() < k + 2 {
        return crate::Solver::new(g, k, config).solve();
    }
    let threads = if threads == 0 {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4)
    } else {
        threads
    };

    let n = g.n();

    // Forward (successor) adjacency under the ordering.
    let nplus: Vec<Vec<VertexId>> = (0..n as VertexId)
        .map(|u| {
            g.neighbors(u)
                .iter()
                .copied()
                .filter(|&w| peeling.rank[w as usize] > peeling.rank[u as usize])
                .collect()
        })
        .collect();

    let best_size = AtomicUsize::new(initial.len());
    let best_sol: Mutex<Vec<VertexId>> = Mutex::new(initial.clone());
    let next_task = AtomicUsize::new(0);
    let deadline = config.time_limit.map(|d| t0 + d);
    // 0 = ran to completion, 1 = deadline expired, 2 = cancelled.
    let abort_code = AtomicUsize::new(0);
    let total_nodes = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut member = Marker::new(n);
                loop {
                    let i = next_task.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    if let Some(flag) = &config.cancel {
                        if flag.is_cancelled() {
                            abort_code.store(2, Ordering::Relaxed);
                            break;
                        }
                    }
                    if let Some(d) = deadline {
                        if std::time::Instant::now() >= d {
                            abort_code.fetch_max(1, Ordering::Relaxed);
                            break;
                        }
                    }
                    let v = peeling.order[i];
                    let lb = best_size.load(Ordering::Relaxed);
                    // Universe: v + successors within distance 2 through
                    // successor paths.
                    member.reset();
                    member.mark(v as usize);
                    let mut universe: Vec<VertexId> = vec![v];
                    for &w in &nplus[v as usize] {
                        if !member.is_marked(w as usize) {
                            member.mark(w as usize);
                            universe.push(w);
                        }
                    }
                    let direct = universe.len();
                    let v_rank = peeling.rank[v as usize];
                    for di in 1..direct {
                        let w = universe[di];
                        // All successors *of v* adjacent to w (their rank may
                        // be below w's, so w's full neighbour list is needed,
                        // filtered to the ≻ v region).
                        for &x in g.neighbors(w) {
                            if peeling.rank[x as usize] > v_rank && !member.is_marked(x as usize) {
                                member.mark(x as usize);
                                universe.push(x);
                            }
                        }
                    }
                    // Solutions containing v of size > lb need ≥ lb + 1
                    // vertices in the universe.
                    if universe.len() <= lb {
                        continue;
                    }

                    let (sub, map) = g.induced_subgraph(&universe);
                    let adj: Vec<Vec<u32>> = (0..sub.n() as u32)
                        .map(|x| sub.neighbors(x).to_vec())
                        .collect();
                    let mut cfg = config.clone();
                    cfg.time_limit =
                        deadline.map(|d| d.saturating_duration_since(std::time::Instant::now()));
                    let mut engine = Engine::new(adj, k, cfg, lb);
                    engine.force_into_s(0); // v is universe[0] → local id 0
                    let finished = engine.run();
                    total_nodes.fetch_add(engine.stats.nodes as usize, Ordering::Relaxed);
                    if !finished {
                        let code = if engine.abort_status() == Status::Cancelled {
                            2
                        } else {
                            1
                        };
                        abort_code.fetch_max(code, Ordering::Relaxed);
                    }
                    let found = engine.best();
                    if found.len() > lb {
                        let mapped: Vec<VertexId> =
                            found.iter().map(|&x| map[x as usize]).collect();
                        debug_assert!(g.is_k_defective_clique(&mapped, k));
                        let mut guard = best_sol.lock().expect("poisoned");
                        if mapped.len() > guard.len() {
                            best_size.store(mapped.len(), Ordering::Relaxed);
                            *guard = mapped;
                        }
                    }
                }
            });
        }
    });

    let mut vertices = best_sol.into_inner().expect("poisoned");
    vertices.sort_unstable();
    let status = match abort_code.load(Ordering::Relaxed) {
        0 => Status::Optimal,
        1 => Status::TimedOut,
        _ => Status::Cancelled,
    };
    Solution {
        vertices,
        status,
        stats: SearchStats {
            nodes: total_nodes.load(Ordering::Relaxed) as u64,
            initial_solution_size: initial.len(),
            search_time: t0.elapsed(),
            ..Default::default()
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdc_graph::gen;

    #[test]
    fn matches_global_solver_on_random_graphs() {
        let mut rng = gen::seeded_rng(555);
        for trial in 0..10 {
            let g = gen::gnp(40, 0.3, &mut rng);
            for k in [0usize, 1, 3] {
                let a = crate::Solver::new(&g, k, SolverConfig::kdc()).solve();
                let b = solve_decomposed(&g, k, SolverConfig::kdc(), 2);
                assert_eq!(a.size(), b.size(), "trial {trial} k {k}");
                assert!(g.is_k_defective_clique(&b.vertices, k));
                assert!(b.is_optimal());
            }
        }
    }

    #[test]
    fn threads_match_sequential_across_k() {
        // Satellite coverage: multi-threaded decomposition must agree with
        // the sequential global solver on a batch of random graphs for every
        // small k, including the k = 2 gap the older test left open.
        let mut rng = gen::seeded_rng(918);
        for trial in 0..6 {
            let g = gen::gnp(36, 0.35, &mut rng);
            for k in [0usize, 1, 2, 3] {
                let sequential = crate::Solver::new(&g, k, SolverConfig::kdc()).solve();
                let threaded = solve_decomposed(&g, k, SolverConfig::kdc(), 4);
                assert_eq!(
                    sequential.size(),
                    threaded.size(),
                    "trial {trial} k {k}: sequential {} vs decomposed {}",
                    sequential.size(),
                    threaded.size()
                );
                assert!(g.is_k_defective_clique(&threaded.vertices, k));
                assert!(threaded.is_optimal());
            }
        }
    }

    #[test]
    fn cancel_flag_stops_parallel_solve() {
        use crate::config::CancelFlag;
        let mut rng = gen::seeded_rng(919);
        let (g, _) = gen::planted_defective_clique(600, 18, 3, 0.02, &mut rng);
        let flag = CancelFlag::new();
        flag.cancel(); // pre-raised: every worker must bail out immediately
        let sol = solve_decomposed(&g, 3, SolverConfig::kdc().with_cancel(flag), 2);
        assert_eq!(sol.status, Status::Cancelled);
        assert!(g.is_k_defective_clique(&sol.vertices, 3));
    }

    #[test]
    fn falls_back_when_lb_too_small() {
        // A sparse path: heuristic lb < k + 2, so the decomposition is not
        // applicable and the global solver must kick in (still exact).
        let g = Graph::from_edges(8, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7)]);
        let k = 4;
        let sol = solve_decomposed(&g, k, SolverConfig::kdc(), 2);
        let reference = crate::Solver::new(&g, k, SolverConfig::kdc()).solve();
        assert_eq!(sol.size(), reference.size());
    }

    #[test]
    fn community_graph_parallel_solve() {
        let mut rng = gen::seeded_rng(556);
        let g = gen::community(
            &gen::CommunityParams {
                communities: 6,
                community_size: 25,
                p_in: 0.7,
                p_out: 0.01,
            },
            &mut rng,
        );
        for k in [1usize, 3] {
            let a = crate::Solver::new(&g, k, SolverConfig::kdc()).solve();
            let b = solve_decomposed(&g, k, SolverConfig::kdc(), 0);
            assert_eq!(a.size(), b.size(), "k = {k}");
        }
    }

    #[test]
    fn planted_large_sparse_graph() {
        let mut rng = gen::seeded_rng(557);
        let (g, planted) = gen::planted_defective_clique(2_000, 20, 4, 0.005, &mut rng);
        let sol = solve_decomposed(&g, 4, SolverConfig::kdc(), 0);
        assert!(sol.size() >= planted.len());
        assert!(sol.is_optimal());
    }
}
