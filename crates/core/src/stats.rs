//! Solver results and search statistics.

use kdc_graph::VertexId;
use std::time::Duration;

/// Termination status of a solve.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Status {
    /// The returned solution is a maximum k-defective clique.
    Optimal,
    /// The wall-clock limit expired; the returned solution is the best found.
    TimedOut,
    /// The node limit was reached; the returned solution is the best found.
    NodeLimitReached,
    /// The solve was cancelled via [`crate::config::CancelFlag`]; the
    /// returned solution is the best found before cancellation.
    Cancelled,
}

impl Status {
    /// The stable wire/storage token for this status (also used by the
    /// daemon protocol and the durable store).
    pub fn as_token(self) -> &'static str {
        match self {
            Status::Optimal => "optimal",
            Status::TimedOut => "timeout",
            Status::NodeLimitReached => "node-limit",
            Status::Cancelled => "cancelled",
        }
    }

    /// Parses a token produced by [`Status::as_token`].
    ///
    /// # Errors
    /// Returns the list of valid tokens when `s` is not one of them.
    pub fn parse_token(s: &str) -> Result<Status, String> {
        match s {
            "optimal" => Ok(Status::Optimal),
            "timeout" => Ok(Status::TimedOut),
            "node-limit" => Ok(Status::NodeLimitReached),
            "cancelled" => Ok(Status::Cancelled),
            other => Err(format!(
                "unknown status token {other:?} (optimal | timeout | node-limit | cancelled)"
            )),
        }
    }
}

/// A solve result: the best k-defective clique found plus bookkeeping.
#[derive(Clone, Debug)]
pub struct Solution {
    /// Vertices of the solution, in original graph ids, sorted ascending.
    pub vertices: Vec<VertexId>,
    /// Whether the solution is proven optimal.
    pub status: Status,
    /// Search statistics.
    pub stats: SearchStats,
}

impl Solution {
    /// Number of vertices in the solution.
    pub fn size(&self) -> usize {
        self.vertices.len()
    }

    /// Whether the solve ran to proven optimality.
    pub fn is_optimal(&self) -> bool {
        self.status == Status::Optimal
    }
}

/// Indices into [`SearchStats::bound_costs`], in evaluation order of
/// the engine's candidate-set upper bounds.
pub mod bound {
    /// UB2 — minimum-S-degree bound (evaluated first, early exit).
    pub const UB2: usize = 0;
    /// UB3 — non-neighbour-prefix bound (second, early exit).
    pub const UB3: usize = 1;
    /// UB1 / Eq. (2) — colouring bound.
    pub const UB1: usize = 2;
    /// KD-Club-style per-node re-colouring bound.
    pub const KDCLUB: usize = 3;
    /// UB4 — second-order bound (experimental, off in every preset).
    pub const UB4: usize = 4;
    /// Number of tracked bounds.
    pub const COUNT: usize = 5;
    /// Metric-label names, indexed like [`SearchStats::bound_costs`].
    ///
    /// [`SearchStats::bound_costs`]: crate::SearchStats
    pub const NAMES: [&str; COUNT] = ["ub2", "ub3", "ub1", "kdclub", "ub4"];
}

/// Per-bound telemetry: how often a bound ran, how often it was the bound
/// that closed the instance, and what it cost. `ns` is only accumulated
/// while `kdc_obs` observability is enabled (the clock reads are skipped
/// otherwise); invocation and prune counts are always maintained.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BoundCost {
    /// Times the bound was evaluated.
    pub invocations: u64,
    /// Times this bound was the one that pruned the instance.
    pub prunes: u64,
    /// Cumulative evaluation time in nanoseconds (0 when observability is
    /// disabled).
    pub ns: u64,
}

/// Counters describing a branch-and-bound run. All counters are best-effort
/// and intended for experiments/ablations, not for control flow.
#[derive(Clone, Debug, Default)]
pub struct SearchStats {
    /// Branch-and-bound nodes visited (instances of `Branch&Bound`).
    pub nodes: u64,
    /// Leaf nodes (instances solved by the k-defective-leaf rule).
    pub leaves: u64,
    /// Maximum recursion depth reached.
    pub max_depth: usize,
    /// Vertices removed by RR1 (excess-removal).
    pub rr1_removals: u64,
    /// Vertices greedily added to S by RR2 (high-degree).
    pub rr2_additions: u64,
    /// Vertices removed by RR3 (degree-sequence).
    pub rr3_removals: u64,
    /// Vertices removed by RR4 (second-order).
    pub rr4_removals: u64,
    /// Vertices removed by RR5 (core rule) inside the search.
    pub rr5_removals: u64,
    /// Instances pruned because an upper bound was ≤ lb.
    pub bound_prunes: u64,
    /// Instances pruned by UB1 specifically (UB1 was the smallest bound).
    pub ub1_prunes: u64,
    /// Instances pruned by the KD-Club-style colouring bound specifically:
    /// UB1–UB3 failed to prune and the per-node re-colouring bound was the
    /// one that closed the instance.
    pub kdclub_prunes: u64,
    /// Instances pruned while applying RR5 to a vertex of S.
    pub s_vertex_prunes: u64,
    /// Per-bound invocation/prune/cost telemetry, indexed by the constants
    /// in [`bound`]. Supersedes nothing: `bound_prunes`, `ub1_prunes` and
    /// `kdclub_prunes` keep their historical meaning.
    pub bound_costs: [BoundCost; bound::COUNT],
    /// Size of the initial heuristic solution (|C0|).
    pub initial_solution_size: usize,
    /// Vertices of the reduced graph after preprocessing (n0).
    pub preprocessed_n: usize,
    /// Edges of the reduced graph after preprocessing (m0).
    pub preprocessed_m: usize,
    /// Vertices removed by the incremental CTCP reducer (RR5/RR6 against
    /// the rising lower bound, preprocessing *and* mid-search re-tightens).
    pub ctcp_vertex_removals: u64,
    /// Edges removed by the incremental CTCP reducer.
    pub ctcp_edge_removals: u64,
    /// Ego subproblems primed by re-using an existing arena (long-lived
    /// engine + flat buffers) instead of allocating a fresh universe.
    pub arena_reuses: u64,
    /// Full universe (re)builds: relabelled adjacency extracted from
    /// scratch. The warm paths keep this at one per solve.
    pub universe_rebuilds: u64,
    /// Ego subproblems actually searched by the decomposition (skipped
    /// too-small universes excluded).
    pub ego_subproblems: u64,
    /// Wall-clock time of the heuristic + preprocessing phase.
    pub preprocess_time: Duration,
    /// Wall-clock time of the branch-and-bound phase.
    pub search_time: Duration,
}

impl SearchStats {
    /// Total solve time (preprocessing + search).
    pub fn total_time(&self) -> Duration {
        self.preprocess_time + self.search_time
    }

    /// Folds the counters of another run into this one (restart loops and
    /// per-worker aggregation): counts add, depths max, sizes and times of
    /// `other` are ignored.
    pub fn absorb(&mut self, other: &SearchStats) {
        self.nodes += other.nodes;
        self.leaves += other.leaves;
        self.max_depth = self.max_depth.max(other.max_depth);
        self.rr1_removals += other.rr1_removals;
        self.rr2_additions += other.rr2_additions;
        self.rr3_removals += other.rr3_removals;
        self.rr4_removals += other.rr4_removals;
        self.rr5_removals += other.rr5_removals;
        self.bound_prunes += other.bound_prunes;
        self.ub1_prunes += other.ub1_prunes;
        self.kdclub_prunes += other.kdclub_prunes;
        self.s_vertex_prunes += other.s_vertex_prunes;
        for (mine, theirs) in self.bound_costs.iter_mut().zip(&other.bound_costs) {
            mine.invocations += theirs.invocations;
            mine.prunes += theirs.prunes;
            mine.ns += theirs.ns;
        }
        self.ctcp_vertex_removals += other.ctcp_vertex_removals;
        self.ctcp_edge_removals += other.ctcp_edge_removals;
        self.arena_reuses += other.arena_reuses;
        self.universe_rebuilds += other.universe_rebuilds;
        self.ego_subproblems += other.ego_subproblems;
    }

    /// Serializes the counters as one compact `key=value` line (durations
    /// as nanoseconds, per-bound telemetry as `bc<i>=inv:prunes:ns`) — the
    /// opaque stats string the durable store journals alongside a memo.
    pub fn encode_compact(&self) -> String {
        let mut s = format!(
            "nodes={} leaves={} max_depth={} rr1={} rr2={} rr3={} rr4={} rr5={} \
             bound_prunes={} ub1_prunes={} kdclub_prunes={} s_vertex_prunes={} \
             init_size={} pre_n={} pre_m={} ctcp_v={} ctcp_e={} arena={} \
             rebuilds={} ego={} pre_ns={} search_ns={}",
            self.nodes,
            self.leaves,
            self.max_depth,
            self.rr1_removals,
            self.rr2_additions,
            self.rr3_removals,
            self.rr4_removals,
            self.rr5_removals,
            self.bound_prunes,
            self.ub1_prunes,
            self.kdclub_prunes,
            self.s_vertex_prunes,
            self.initial_solution_size,
            self.preprocessed_n,
            self.preprocessed_m,
            self.ctcp_vertex_removals,
            self.ctcp_edge_removals,
            self.arena_reuses,
            self.universe_rebuilds,
            self.ego_subproblems,
            self.preprocess_time.as_nanos(),
            self.search_time.as_nanos(),
        );
        for (i, bc) in self.bound_costs.iter().enumerate() {
            s.push_str(&format!(
                " bc{i}={}:{}:{}",
                bc.invocations, bc.prunes, bc.ns
            ));
        }
        s
    }

    /// Parses a line produced by [`SearchStats::encode_compact`]. Tolerant
    /// by design: unknown keys are ignored and missing keys default to
    /// zero, so records written by one version replay under another.
    ///
    /// # Errors
    /// Only a syntactically broken field (`key=value` with a non-numeric
    /// value) is an error.
    pub fn decode_compact(s: &str) -> Result<SearchStats, String> {
        let mut out = SearchStats::default();
        for field in s.split_whitespace() {
            let Some((key, value)) = field.split_once('=') else {
                return Err(format!("stats field {field:?} is not key=value"));
            };
            let num = |v: &str| -> Result<u64, String> {
                v.parse()
                    .map_err(|_| format!("bad numeric value {v:?} for stats key {key:?}"))
            };
            match key {
                "nodes" => out.nodes = num(value)?,
                "leaves" => out.leaves = num(value)?,
                "max_depth" => out.max_depth = num(value)? as usize,
                "rr1" => out.rr1_removals = num(value)?,
                "rr2" => out.rr2_additions = num(value)?,
                "rr3" => out.rr3_removals = num(value)?,
                "rr4" => out.rr4_removals = num(value)?,
                "rr5" => out.rr5_removals = num(value)?,
                "bound_prunes" => out.bound_prunes = num(value)?,
                "ub1_prunes" => out.ub1_prunes = num(value)?,
                "kdclub_prunes" => out.kdclub_prunes = num(value)?,
                "s_vertex_prunes" => out.s_vertex_prunes = num(value)?,
                "init_size" => out.initial_solution_size = num(value)? as usize,
                "pre_n" => out.preprocessed_n = num(value)? as usize,
                "pre_m" => out.preprocessed_m = num(value)? as usize,
                "ctcp_v" => out.ctcp_vertex_removals = num(value)?,
                "ctcp_e" => out.ctcp_edge_removals = num(value)?,
                "arena" => out.arena_reuses = num(value)?,
                "rebuilds" => out.universe_rebuilds = num(value)?,
                "ego" => out.ego_subproblems = num(value)?,
                "pre_ns" => out.preprocess_time = Duration::from_nanos(num(value)?),
                "search_ns" => out.search_time = Duration::from_nanos(num(value)?),
                _ if key.starts_with("bc") => {
                    let Ok(i) = key[2..].parse::<usize>() else {
                        continue;
                    };
                    if i >= bound::COUNT {
                        continue;
                    }
                    let mut parts = value.splitn(3, ':');
                    let mut next = || num(parts.next().unwrap_or("0"));
                    out.bound_costs[i].invocations = next()?;
                    out.bound_costs[i].prunes = next()?;
                    out.bound_costs[i].ns = next()?;
                }
                _ => {}
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solution_accessors() {
        let s = Solution {
            vertices: vec![1, 4, 9],
            status: Status::Optimal,
            stats: SearchStats::default(),
        };
        assert_eq!(s.size(), 3);
        assert!(s.is_optimal());
        let t = Solution {
            status: Status::TimedOut,
            ..s
        };
        assert!(!t.is_optimal());
    }

    #[test]
    fn status_tokens_roundtrip() {
        for status in [
            Status::Optimal,
            Status::TimedOut,
            Status::NodeLimitReached,
            Status::Cancelled,
        ] {
            assert_eq!(Status::parse_token(status.as_token()).unwrap(), status);
        }
        assert!(Status::parse_token("done").is_err());
    }

    #[test]
    fn stats_encode_decode_roundtrips() {
        let mut stats = SearchStats {
            nodes: 42,
            leaves: 7,
            max_depth: 9,
            rr1_removals: 1,
            rr2_additions: 2,
            rr3_removals: 3,
            rr4_removals: 4,
            rr5_removals: 5,
            bound_prunes: 6,
            ub1_prunes: 7,
            kdclub_prunes: 8,
            s_vertex_prunes: 9,
            initial_solution_size: 10,
            preprocessed_n: 11,
            preprocessed_m: 12,
            ctcp_vertex_removals: 13,
            ctcp_edge_removals: 14,
            arena_reuses: 15,
            universe_rebuilds: 16,
            ego_subproblems: 17,
            preprocess_time: Duration::from_nanos(123_456),
            search_time: Duration::from_nanos(789_012),
            ..Default::default()
        };
        stats.bound_costs[bound::UB1] = BoundCost {
            invocations: 100,
            prunes: 40,
            ns: 5_000,
        };
        let line = stats.encode_compact();
        let back = SearchStats::decode_compact(&line).unwrap();
        assert_eq!(back.encode_compact(), line);
        assert_eq!(back.nodes, 42);
        assert_eq!(back.bound_costs[bound::UB1].prunes, 40);
        assert_eq!(back.search_time, Duration::from_nanos(789_012));
    }

    #[test]
    fn stats_decode_is_tolerant_of_missing_and_unknown_keys() {
        let sparse = SearchStats::decode_compact("nodes=5 future_key=9").unwrap();
        assert_eq!(sparse.nodes, 5);
        assert_eq!(sparse.leaves, 0);
        assert!(SearchStats::decode_compact("nodes=abc").is_err());
        assert!(SearchStats::decode_compact("naked").is_err());
    }

    #[test]
    fn total_time_adds_up() {
        let stats = SearchStats {
            preprocess_time: Duration::from_millis(30),
            search_time: Duration::from_millis(70),
            ..Default::default()
        };
        assert_eq!(stats.total_time(), Duration::from_millis(100));
    }
}
