//! Initial-solution heuristics (§3.3, Algorithms 3 and 4).
//!
//! `Degen` finds the longest suffix of a degeneracy ordering that forms a
//! k-defective clique, in O(m) time after the ordering. `Degen-opt`
//! additionally runs `Degen` inside the ego-subgraph `G[N⁺(v)]` of every
//! vertex `v` (its higher-ranked neighbours under the degeneracy ordering),
//! for a total of O(δ(G)·m) time, and keeps the largest of the `n + 1`
//! candidate solutions.

use kdc_graph::degeneracy;
use kdc_graph::graph::{Graph, VertexId};
use kdc_graph::scratch::Marker;

/// Algorithm 3 (`Degen`): the longest suffix of a degeneracy ordering of `g`
/// that is a k-defective clique.
///
/// Because missing-edge counts grow monotonically as the suffix extends
/// leftwards, a single backward pass suffices.
///
/// ```
/// use kdc_graph::gen;
/// let g = gen::complete(6);
/// assert_eq!(kdc::heuristic::degen(&g, 0).len(), 6);
/// ```
pub fn degen(g: &Graph, k: usize) -> Vec<VertexId> {
    degen_with(g, k, &degeneracy::peel(g))
}

/// [`degen`] on a caller-supplied peeling of `g` (resident services cache
/// the peeling per graph and reuse it across solves).
pub fn degen_with(g: &Graph, k: usize, peeling: &degeneracy::Peeling) -> Vec<VertexId> {
    debug_assert_eq!(peeling.order.len(), g.n(), "peeling is for another graph");
    degen_on_order(g, k, &peeling.order)
}

/// `Degen` on a caller-supplied ordering (used by `Degen-opt` to reuse the
/// ego-subgraph's ordering).
pub fn degen_on_order(g: &Graph, k: usize, order: &[VertexId]) -> Vec<VertexId> {
    let n = order.len();
    if n == 0 {
        return Vec::new();
    }
    let mut in_suffix = Marker::new(g.n());
    let mut missing = 0usize;
    let mut taken = 0usize;
    // Walk the ordering from the end; vertex order[n-1-taken] joins next.
    while taken < n {
        let v = order[n - 1 - taken];
        let nbrs_in = g
            .neighbors(v)
            .iter()
            .filter(|&&w| in_suffix.is_marked(w as usize))
            .count();
        let new_missing = missing + (taken - nbrs_in);
        if new_missing > k {
            break;
        }
        missing = new_missing;
        in_suffix.mark(v as usize);
        taken += 1;
    }
    order[n - taken..].to_vec()
}

/// Algorithm 4 (`Degen-opt`): the best of `Degen(G, k)` and, for every
/// vertex `u`, `{u} ∪ Degen(G[N⁺(u)], k)` where `N⁺(u)` is the set of
/// higher-ranked neighbours of `u` in the degeneracy ordering.
///
/// Since `u` is adjacent to all of `N⁺(u)`, adding `u` never adds missing
/// edges, so the combined set stays a k-defective clique.
pub fn degen_opt(g: &Graph, k: usize) -> Vec<VertexId> {
    degen_opt_with(g, k, &degeneracy::peel(g))
}

/// [`degen_opt`] on a caller-supplied peeling of `g`.
pub fn degen_opt_with(g: &Graph, k: usize, peeling: &degeneracy::Peeling) -> Vec<VertexId> {
    debug_assert_eq!(peeling.order.len(), g.n(), "peeling is for another graph");
    let mut best = degen_on_order(g, k, &peeling.order);

    let n = g.n();
    // Forward adjacency under the ordering: |N⁺(u)| ≤ δ(G), total size m.
    let nplus: Vec<Vec<VertexId>> = (0..n as VertexId)
        .map(|u| {
            g.neighbors(u)
                .iter()
                .copied()
                .filter(|&w| peeling.rank[w as usize] > peeling.rank[u as usize])
                .collect()
        })
        .collect();

    let mut member = Marker::new(n);
    let mut local_id = vec![0u32; n];
    for u in 0..n as VertexId {
        let ego = &nplus[u as usize];
        if ego.len() < best.len() {
            // Even {u} ∪ ego cannot beat the incumbent.
            continue;
        }
        // Build the ego subgraph over local ids 0..ego.len(). Edges of the
        // ego graph are found through N⁺ of the members: (a, b) with
        // rank(a) < rank(b) appears in nplus[a], so scanning members' N⁺
        // lists against the membership marker finds each edge once, in
        // O(Σ_{a ∈ ego} |N⁺(a)|) ≤ O(|ego|·δ) time.
        member.reset();
        for (i, &a) in ego.iter().enumerate() {
            member.mark(a as usize);
            local_id[a as usize] = i as u32;
        }
        let mut adj: Vec<Vec<VertexId>> = vec![Vec::new(); ego.len()];
        for &a in ego {
            let la = local_id[a as usize];
            for &b in &nplus[a as usize] {
                if member.is_marked(b as usize) {
                    let lb = local_id[b as usize];
                    adj[la as usize].push(lb);
                    adj[lb as usize].push(la);
                }
            }
        }
        let sub = Graph::from_adjacency(adj);
        let local_best = degen(&sub, k);
        if local_best.len() + 1 > best.len() {
            let mut cand: Vec<VertexId> = local_best.iter().map(|&l| ego[l as usize]).collect();
            cand.push(u);
            debug_assert!(g.is_k_defective_clique(&cand, k));
            best = cand;
        }
    }
    best
}

/// Local-search refinement of a k-defective clique: greedily extend to a
/// maximal solution, then repeat (1-out, multi-in) swaps — drop one member,
/// re-extend greedily — accepting any strict improvement, until a fixpoint
/// or `max_rounds`. An inexpensive practical extension beyond the paper's
/// §3.3 heuristics; the result is always a valid k-defective clique at least
/// as large as the input.
pub fn local_search(g: &Graph, start: &[VertexId], k: usize, max_rounds: usize) -> Vec<VertexId> {
    assert!(g.is_k_defective_clique(start, k));
    let mut current = crate::verify::extend_to_maximal(g, start, k);
    for _ in 0..max_rounds {
        let mut improved = false;
        for drop_idx in 0..current.len() {
            let mut trial: Vec<VertexId> = current.clone();
            trial.swap_remove(drop_idx);
            let extended = crate::verify::extend_to_maximal(g, &trial, k);
            if extended.len() > current.len() {
                current = extended;
                improved = true;
                break;
            }
        }
        if !improved {
            break;
        }
    }
    current.sort_unstable();
    debug_assert!(g.is_k_defective_clique(&current, k));
    current
}

/// `Degen-opt` followed by [`local_search`] (the `DegenOptLocalSearch`
/// heuristic preset).
pub fn degen_opt_ls(g: &Graph, k: usize) -> Vec<VertexId> {
    degen_opt_ls_with(g, k, &degeneracy::peel(g))
}

/// [`degen_opt_ls`] on a caller-supplied peeling of `g`.
pub fn degen_opt_ls_with(g: &Graph, k: usize, peeling: &degeneracy::Peeling) -> Vec<VertexId> {
    let base = degen_opt_with(g, k, peeling);
    if base.is_empty() {
        return base;
    }
    local_search(g, &base, k, 8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdc_graph::gen;
    use kdc_graph::named;

    #[test]
    fn degen_on_clique_takes_everything() {
        let g = gen::complete(7);
        assert_eq!(degen(&g, 0).len(), 7);
        assert_eq!(degen_opt(&g, 0).len(), 7);
    }

    #[test]
    fn degen_respects_k() {
        // Empty graph: suffix of size s misses s(s-1)/2 edges.
        let g = Graph::empty(10);
        assert_eq!(degen(&g, 0).len(), 1);
        assert_eq!(degen(&g, 1).len(), 2);
        assert_eq!(degen(&g, 3).len(), 3);
        assert_eq!(degen(&g, 6).len(), 4);
    }

    #[test]
    fn results_are_k_defective() {
        let mut rng = gen::seeded_rng(21);
        for _ in 0..20 {
            let g = gen::gnp(40, 0.3, &mut rng);
            for k in [0usize, 1, 2, 5, 10] {
                let c1 = degen(&g, k);
                assert!(g.is_k_defective_clique(&c1, k), "Degen invalid k={k}");
                let c2 = degen_opt(&g, k);
                assert!(g.is_k_defective_clique(&c2, k), "Degen-opt invalid k={k}");
                assert!(c2.len() >= c1.len(), "Degen-opt dominates Degen");
                assert!(!c1.is_empty());
            }
        }
    }

    #[test]
    fn example_3_8_degen_vs_degen_opt() {
        // On the Figure-6-like graph with k = 1, Degen finds 3 vertices while
        // Degen-opt finds the optimal 4 via N⁺(v1) (Example 3.8's behaviour).
        let g = named::figure6_like();
        assert_eq!(degen(&g, 1).len(), 3);
        let opt = degen_opt(&g, 1);
        assert_eq!(opt.len(), 4);
        assert!(g.is_k_defective_clique(&opt, 1));
    }

    #[test]
    fn figure2_heuristics() {
        let g = named::figure2();
        // The K5 suffix of the degeneracy ordering is found for k = 0.
        let c = degen(&g, 0);
        assert_eq!(c.len(), 5);
        // k = 2: the optimum is 6 ({v1..v6}); Degen's suffix after the K5
        // portion cannot see it, but Degen-opt must still return ≥ 5 and a
        // valid 2-defective clique.
        let c2 = degen_opt(&g, 2);
        assert!(c2.len() >= 5);
        assert!(g.is_k_defective_clique(&c2, 2));
    }

    #[test]
    fn planted_clique_recovered_heuristically() {
        let mut rng = gen::seeded_rng(8);
        let (g, planted) = gen::planted_defective_clique(300, 20, 3, 0.02, &mut rng);
        let c = degen_opt(&g, 3);
        // The planted near-clique dominates the sparse background, so the
        // heuristic should recover (at least almost) all of it.
        assert!(
            c.len() + 2 >= planted.len(),
            "heuristic found {} of {}",
            c.len(),
            planted.len()
        );
    }

    #[test]
    fn empty_and_tiny_graphs() {
        assert!(degen(&Graph::empty(0), 3).is_empty());
        assert!(degen_opt(&Graph::empty(0), 3).is_empty());
        assert_eq!(degen(&Graph::empty(1), 0), vec![0]);
        assert_eq!(degen_opt(&Graph::empty(1), 5).len(), 1);
        assert!(degen_opt_ls(&Graph::empty(0), 2).is_empty());
    }

    #[test]
    fn local_search_only_improves() {
        let mut rng = gen::seeded_rng(97);
        for _ in 0..15 {
            let g = gen::gnp(30, 0.35, &mut rng);
            for k in [0usize, 2, 5] {
                let base = degen(&g, k);
                let refined = local_search(&g, &base, k, 8);
                assert!(refined.len() >= base.len());
                assert!(g.is_k_defective_clique(&refined, k));
                // Refined solutions are maximal.
                assert!(crate::verify::is_maximal_k_defective(&g, &refined, k));
                let full = degen_opt_ls(&g, k);
                assert!(g.is_k_defective_clique(&full, k));
                assert!(full.len() >= degen_opt(&g, k).len());
            }
        }
    }

    #[test]
    fn local_search_escapes_blocking_vertex() {
        // K4 on {0..3} plus a pendant 4 attached to 0. The seed {0, 4} is a
        // maximal clique (k = 0), but dropping 4 lets the re-extension climb
        // to the K4.
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (0, 4)]);
        let refined = local_search(&g, &[0, 4], 0, 4);
        assert_eq!(refined, vec![0, 1, 2, 3]);
    }

    #[test]
    fn local_search_cannot_jump_between_distant_optima() {
        // Honest limitation: on the Figure-6-like graph, Degen's triangle
        // {v5,v6,v7} is a strict local optimum for (1-out, multi-in) moves —
        // dropping any member just re-adds it. The refinement keeps validity
        // and maximality but stays at size 3 (the optimum is 4).
        let g = named::figure6_like();
        let base = degen(&g, 1);
        assert_eq!(base.len(), 3);
        let refined = local_search(&g, &base, 1, 8);
        assert_eq!(refined.len(), 3);
        assert!(crate::verify::is_maximal_k_defective(&g, &refined, 1));
    }
}
