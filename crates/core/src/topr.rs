//! Top-r extensions (§6): finding several large k-defective cliques.
//!
//! * [`top_r_maximal`] — the `r` largest **maximal** k-defective cliques,
//!   via the enumeration variant of the engine (RR2 tightened to universal
//!   vertices only, a solution pool in place of a single incumbent, and the
//!   pool's smallest size driving the lb-based rules). As noted in the
//!   paper, the tightened RR2 weakens the complexity to `O*(γ_{2k}^n)`.
//! * [`top_r_diversified`] — `r` k-defective cliques that collectively cover
//!   as many distinct vertices as possible, via the iterative peel-and-solve
//!   scheme with its `(1 − 1/e)`-approximation guarantee.

use crate::config::SolverConfig;
use crate::engine::Engine;
use crate::solver::Solver;
use crate::stats::Status;
use kdc_graph::graph::{Graph, VertexId};

/// An enumeration answer plus its completeness: [`Status::Optimal`] means
/// the pool is proven exact; any other status means a limit or a
/// cancellation interrupted the search and the pool may be truncated.
#[derive(Clone, Debug)]
pub struct TopRResult {
    /// The collected cliques, size-descending (ties by vertex set).
    pub cliques: Vec<Vec<VertexId>>,
    /// [`Status::Optimal`] iff the enumeration ran to completion.
    pub status: Status,
}

/// The `r` largest maximal k-defective cliques of `g` (fewer if the graph
/// has fewer maximal cliques), sorted by size descending. Ties at the pool
/// boundary are resolved arbitrarily, like any top-r-by-size query.
///
/// ```
/// use kdc::{topr::top_r_maximal, SolverConfig};
/// use kdc_graph::named;
///
/// // Figure 2: the top-2 maximal 1-defective cliques have 5 vertices each.
/// let g = named::figure2();
/// let top = top_r_maximal(&g, 1, 2, SolverConfig::kdc());
/// assert_eq!(top.len(), 2);
/// assert_eq!(top[0].len(), 5);
/// ```
pub fn top_r_maximal(g: &Graph, k: usize, r: usize, config: SolverConfig) -> Vec<Vec<VertexId>> {
    top_r_maximal_with_status(g, k, r, config).cliques
}

/// [`top_r_maximal`] plus the completion status, for callers that pass a
/// time/node limit or a cancellation flag in `config` and must not read a
/// truncated pool as the proven top-r answer.
pub fn top_r_maximal_with_status(
    g: &Graph,
    k: usize,
    r: usize,
    config: SolverConfig,
) -> TopRResult {
    assert!(r > 0, "r must be positive");
    let adj: Vec<Vec<u32>> = (0..g.n() as u32).map(|v| g.neighbors(v).to_vec()).collect();
    // Enumeration must not discard solutions via a precomputed lower bound,
    // so no heuristic floor and no lb-driven preprocessing are used.
    let mut engine = Engine::new(adj, k, config, 0);
    engine.enable_pool(r);
    let completed = engine.run();
    let status = if completed {
        Status::Optimal
    } else {
        engine.abort_status()
    };
    let mut out: Vec<Vec<VertexId>> = engine
        .take_pool()
        .into_iter()
        .map(|mut c| {
            c.sort_unstable();
            c
        })
        .collect();
    out.sort_by(|a, b| b.len().cmp(&a.len()).then_with(|| a.cmp(b)));
    debug_assert!(
        status != Status::Optimal
            || out
                .iter()
                .all(|c| crate::verify::is_maximal_k_defective(g, c, k))
    );
    TopRResult {
        cliques: out,
        status,
    }
}

/// Enumerates **all** maximal k-defective cliques of `g`, sorted by size
/// descending (ties by vertex set). Equivalent to [`top_r_maximal`] with an
/// unbounded pool; exponential output is possible, so use on small or
/// well-structured graphs.
pub fn enumerate_maximal(g: &Graph, k: usize, config: SolverConfig) -> Vec<Vec<VertexId>> {
    top_r_maximal(g, k, usize::MAX, config)
}

/// `r` k-defective cliques chosen to cover many distinct vertices: find the
/// maximum clique, delete its vertices, repeat. The greedy scheme yields a
/// `(1 − 1/e)`-approximation to the maximum coverage (§6).
pub fn top_r_diversified(
    g: &Graph,
    k: usize,
    r: usize,
    config: SolverConfig,
) -> Vec<Vec<VertexId>> {
    top_r_diversified_with_status(g, k, r, config).cliques
}

/// [`top_r_diversified`] plus the completion status: anything other than
/// [`Status::Optimal`] means some peel-and-solve round was interrupted by a
/// limit or cancellation, so the covered sets are valid but the coverage
/// guarantee does not hold.
pub fn top_r_diversified_with_status(
    g: &Graph,
    k: usize,
    r: usize,
    config: SolverConfig,
) -> TopRResult {
    assert!(r > 0, "r must be positive");
    let mut status = Status::Optimal;
    let mut out = Vec::new();
    let mut remaining: Vec<VertexId> = g.vertices().collect();
    let mut current = g.clone();
    for _ in 0..r {
        if current.n() == 0 {
            break;
        }
        let sol = Solver::new(&current, k, config.clone()).solve();
        if !sol.is_optimal() {
            status = sol.status;
        }
        if sol.vertices.is_empty() {
            break;
        }
        // Map back to original ids and peel the covered vertices.
        let covered: Vec<VertexId> = sol
            .vertices
            .iter()
            .map(|&v| remaining[v as usize])
            .collect();
        let keep: Vec<VertexId> = current
            .vertices()
            .filter(|v| !sol.vertices.contains(v))
            .collect();
        let (next, sub_map) = current.induced_subgraph(&keep);
        remaining = sub_map.iter().map(|&v| remaining[v as usize]).collect();
        current = next;
        let mut covered_sorted = covered;
        covered_sorted.sort_unstable();
        out.push(covered_sorted);
        if status != Status::Optimal {
            break;
        }
    }
    TopRResult {
        cliques: out,
        status,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::is_maximal_k_defective;
    use kdc_graph::{gen, named};

    #[test]
    fn top_one_matches_max_solver() {
        let mut rng = gen::seeded_rng(41);
        for _ in 0..5 {
            let g = gen::gnp(18, 0.4, &mut rng);
            for k in [0usize, 1, 2] {
                let top = top_r_maximal(&g, k, 1, SolverConfig::kdc());
                let opt = Solver::new(&g, k, SolverConfig::kdc()).solve();
                assert_eq!(top[0].len(), opt.size(), "k = {k}");
            }
        }
    }

    #[test]
    fn pool_entries_are_maximal_distinct_and_sorted() {
        let mut rng = gen::seeded_rng(42);
        let g = gen::gnp(16, 0.5, &mut rng);
        let k = 1;
        let top = top_r_maximal(&g, k, 4, SolverConfig::kdc());
        assert!(!top.is_empty());
        for c in &top {
            assert!(is_maximal_k_defective(&g, c, k));
        }
        for w in top.windows(2) {
            assert!(w[0].len() >= w[1].len(), "sorted by size descending");
            assert_ne!(w[0], w[1], "entries must be distinct");
        }
    }

    #[test]
    fn pool_against_bruteforce_enumeration() {
        // Enumerate all maximal 1-defective cliques of figure2 by brute
        // force; the top-3 pool must match the three largest sizes.
        let g = named::figure2();
        let k = 1;
        let n = g.n();
        let mut maximal_sizes: Vec<usize> = Vec::new();
        for mask in 1u32..(1 << n) {
            let set: Vec<u32> = (0..n as u32).filter(|&v| mask >> v & 1 == 1).collect();
            if g.is_k_defective_clique(&set, k) && is_maximal_k_defective(&g, &set, k) {
                maximal_sizes.push(set.len());
            }
        }
        maximal_sizes.sort_unstable_by(|a, b| b.cmp(a));
        let top = top_r_maximal(&g, k, 3, SolverConfig::kdc());
        let got: Vec<usize> = top.iter().map(Vec::len).collect();
        assert_eq!(got, maximal_sizes[..3].to_vec());
    }

    #[test]
    fn enumerate_maximal_matches_bruteforce() {
        let mut rng = gen::seeded_rng(404);
        for trial in 0..6 {
            let g = gen::gnp(11, 0.45, &mut rng);
            for k in [0usize, 1, 2] {
                // Brute-force all maximal k-defective cliques.
                let n = g.n();
                let mut expected: Vec<Vec<u32>> = Vec::new();
                for mask in 1u32..(1 << n) {
                    let set: Vec<u32> = (0..n as u32).filter(|&v| mask >> v & 1 == 1).collect();
                    if g.is_k_defective_clique(&set, k) && is_maximal_k_defective(&g, &set, k) {
                        expected.push(set);
                    }
                }
                expected.sort_by(|a, b| b.len().cmp(&a.len()).then_with(|| a.cmp(b)));
                let got = enumerate_maximal(&g, k, SolverConfig::kdc());
                assert_eq!(got, expected, "trial {trial} k {k}");
            }
        }
    }

    #[test]
    fn diversified_cliques_are_disjoint() {
        let mut rng = gen::seeded_rng(43);
        let params = gen::CommunityParams {
            communities: 3,
            community_size: 12,
            p_in: 0.9,
            p_out: 0.05,
        };
        let g = gen::community(&params, &mut rng);
        let sols = top_r_diversified(&g, 2, 3, SolverConfig::kdc());
        assert_eq!(sols.len(), 3);
        let mut seen = std::collections::HashSet::new();
        for c in &sols {
            assert!(g.is_k_defective_clique(c, 2));
            for &v in c {
                assert!(seen.insert(v), "vertex {v} covered twice");
            }
        }
        // Each solution should roughly recover one community's core.
        assert!(sols.iter().all(|c| c.len() >= 6));
    }

    #[test]
    fn diversified_stops_on_small_graphs() {
        let g = gen::complete(4);
        let sols = top_r_diversified(&g, 1, 10, SolverConfig::kdc());
        assert_eq!(sols.len(), 1, "K4 is fully covered by the first clique");
        assert_eq!(sols[0].len(), 4);
    }
}
