//! Solver configuration.
//!
//! The paper deliberately separates the techniques needed for the
//! `O*(γ_k^n)` time complexity (branching rule BR, reduction rules RR1/RR2)
//! from the techniques that only improve practical performance (UB1–UB3,
//! RR3–RR6, initial-solution heuristics). [`SolverConfig`] mirrors that
//! separation: every practical technique can be toggled independently, and
//! the named presets correspond exactly to the algorithm variants evaluated
//! in §4 of the paper.

use kdc_graph::ctcp::Ctcp;
use kdc_graph::degeneracy::Peeling;
use kdc_graph::VertexId;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Validates a wall-clock limit given in (possibly fractional) seconds and
/// converts it to a [`Duration`]. Rejects negative, non-finite and absurdly
/// large values with an error instead of letting
/// [`Duration::from_secs_f64`] panic on untrusted input (CLI flags, daemon
/// protocol options).
pub fn parse_time_limit(seconds: f64) -> Result<Duration, String> {
    const MAX_LIMIT_SECS: f64 = 1e9; // ~31 years; anything more is a typo
    if !seconds.is_finite() || !(0.0..=MAX_LIMIT_SECS).contains(&seconds) {
        return Err(format!(
            "invalid time limit {seconds}s (must be finite, >= 0 and <= 1e9)"
        ));
    }
    Ok(Duration::from_secs_f64(seconds))
}

/// Parses a raw time-limit *token* (CLI `--limit`, daemon `limit=`) and
/// validates it via [`parse_time_limit`]. The single entry point for every
/// surface that accepts a wall-clock limit as text, so hostile inputs
/// (`-1`, `NaN`, `inf`, `1e30`, garbage) are rejected identically
/// everywhere.
pub fn parse_time_limit_arg(raw: &str) -> Result<Duration, String> {
    let seconds: f64 = raw
        .trim()
        .parse()
        .map_err(|_| format!("invalid time limit {raw:?} (expected seconds)"))?;
    parse_time_limit(seconds)
}

/// Validates a branch-and-bound node limit. Zero is rejected (a search that
/// may visit no node cannot report anything meaningful) so every surface
/// treats "no limit" as *absent*, never as `0`.
pub fn parse_node_limit(nodes: u64) -> Result<u64, String> {
    if nodes == 0 {
        return Err("invalid node limit 0 (must be >= 1; omit for unlimited)".to_string());
    }
    Ok(nodes)
}

/// Parses a raw node-limit *token* (CLI `--nodes`, daemon `nodes=`) and
/// validates it via [`parse_node_limit`]. Rejects non-numeric, negative,
/// fractional and overflowing values with an error instead of panicking on
/// untrusted input.
pub fn parse_node_limit_arg(raw: &str) -> Result<u64, String> {
    let nodes: u64 = raw
        .trim()
        .parse()
        .map_err(|_| format!("invalid node limit {raw:?} (expected a positive integer)"))?;
    parse_node_limit(nodes)
}

/// A shared cooperative-cancellation flag.
///
/// Clone the flag, hand one copy to the solver via
/// [`SolverConfig::with_cancel`], and keep the other; calling
/// [`CancelFlag::cancel`] from any thread makes the search abort at the next
/// branch-and-bound node with [`crate::Status::Cancelled`], returning the
/// best solution found so far. Cancellation is sticky: once raised, every
/// solve sharing the flag aborts.
#[derive(Clone, Debug, Default)]
pub struct CancelFlag(Arc<AtomicBool>);

impl CancelFlag {
    /// A fresh, un-raised flag.
    pub fn new() -> Self {
        Self::default()
    }

    /// Raises the flag; safe to call from any thread, idempotent.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether the flag has been raised.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// A coarse progress event emitted during a solve when an [`EventHook`] is
/// installed via [`SolverConfig::on_event`].
///
/// Events are emitted synchronously on the solving thread at incumbent
/// improvements and preprocessing milestones — never per branch-and-bound
/// node — so a hook costs nothing on the hot path and a slow consumer (a
/// TCP writer, a progress bar) only stalls the solve at those milestones.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SolveEvent {
    /// The best known solution improved to `size` vertices. The first event
    /// of a solve reports the initial heuristic/seed bound (when non-zero).
    Incumbent {
        /// Size of the new incumbent.
        size: usize,
    },
    /// The CTCP reducer re-tightened against a risen lower bound and
    /// removed something.
    Retighten {
        /// Vertices removed by this tightening step.
        vertices: u64,
        /// Edges removed by this tightening step.
        edges: u64,
    },
    /// Branch and bound (re)started on a universe of `universe` vertices
    /// (once per solve on the warm path; again after each mid-search
    /// retighten that shrank the universe).
    Restart {
        /// Vertex count of the universe being searched.
        universe: usize,
    },
}

/// A shareable callback receiving [`SolveEvent`]s; install via
/// [`SolverConfig::with_event_hook`]. Cloning shares the same callback.
#[derive(Clone)]
pub struct EventHook(Arc<dyn Fn(SolveEvent) + Send + Sync>);

impl EventHook {
    /// Wraps a callback.
    pub fn new(hook: impl Fn(SolveEvent) + Send + Sync + 'static) -> Self {
        EventHook(Arc::new(hook))
    }

    /// Delivers one event to the callback.
    pub fn emit(&self, event: SolveEvent) {
        (self.0)(event);
    }
}

impl std::fmt::Debug for EventHook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("EventHook(..)")
    }
}

/// How the branching vertex is chosen *among* the vertices admitted by the
/// non-fully-adjacent-first rule BR (the rule itself allows any candidate
/// with a non-neighbour in `S`; the tie-break is a practical choice).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BranchPolicy {
    /// Prefer the candidate with the most non-neighbours in `S`
    /// (fails fastest towards RR1). Default for kDC.
    MaxNonNeighbors,
    /// The first candidate with a non-neighbour in `S`, in internal order.
    FirstEligible,
    /// The eligible candidate with minimum alive degree.
    MinDegree,
    /// Plain maximum-degree branching, *ignoring* the BR preference for
    /// non-fully-adjacent vertices. Used by the baselines, which predate BR;
    /// still correct, but forfeits the `O*(γ_k^n)` argument.
    MaxDegreeAny,
}

/// Which initial solution is computed before preprocessing (§3.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InitialHeuristic {
    /// No initial solution (`lb = 0`); used by the theory-only kDC-t.
    None,
    /// `Degen`: longest k-defective suffix of a degeneracy ordering, O(m).
    Degen,
    /// `Degen-opt`: `Degen` plus one degeneracy-ordering ego-subgraph per
    /// vertex, O(δ(G)·m). Default for kDC.
    DegenOpt,
    /// `Degen-opt` refined by (1-out, multi-in) local search — an extension
    /// beyond the paper that can tighten `lb` before preprocessing.
    DegenOptLocalSearch,
}

/// Full solver configuration. Construct via a preset and override fields as
/// needed; `SolverConfig::kdc()` is the paper's flagship configuration.
#[derive(Clone, Debug)]
pub struct SolverConfig {
    /// Branching tie-break policy (BR itself is always in force).
    pub branch_policy: BranchPolicy,
    /// RR2 — high-degree reduction (greedily add near-universal vertices).
    /// Required (together with RR1 and BR) for the `O*(γ_k^n)` bound.
    pub enable_rr2: bool,
    /// RR3 — degree-sequence reduction (§3.2.2).
    pub enable_rr3: bool,
    /// RR4 — second-order reduction (§3.2.2).
    pub enable_rr4: bool,
    /// RR5 — (lb − k)-core reduction \[11\], applied at every node and during
    /// preprocessing.
    pub enable_rr5: bool,
    /// RR6 — (lb − k + 1)-truss reduction \[16\], preprocessing only (§3.2.3).
    pub enable_rr6: bool,
    /// UB1 — improved colouring upper bound (§3.2.1).
    pub enable_ub1: bool,
    /// UB2 — minimum-S-degree upper bound \[11\].
    pub enable_ub2: bool,
    /// UB3 — non-neighbour-prefix upper bound \[16\].
    pub enable_ub3: bool,
    /// UB4 — the RR4-derived second-order bound that §3.2.2 sketches but
    /// leaves unused for cost reasons; off in every preset, available for
    /// experimentation via [`SolverConfig::with_ub4`].
    pub enable_ub4: bool,
    /// KD-Club-style colouring bound \[Jin et al., AAAI 2024\]: re-colour the
    /// *current* candidate subgraph at every node, packing the non-neighbours
    /// of `S` first, and distribute the remaining missing-edge budget
    /// `k − |Ē(S)|` greedily across the colour classes. Evaluated after
    /// UB1–UB3 (only when they fail to prune), so enabling it can only
    /// shrink the search tree; see [`SearchStats::kdclub_prunes`] for how
    /// often it was the deciding bound.
    ///
    /// [`SearchStats::kdclub_prunes`]: crate::SearchStats
    pub enable_kdclub: bool,
    /// Replace UB1 by the weaker Eq. (2) colouring bound of MADEC+ \[11\]
    /// (used by the MADEC-like baseline and the tightness experiments).
    pub use_eq2_bound: bool,
    /// Drive the engine's per-node hot path (S-insertion, candidate removal,
    /// backtracking, maximality checks, RR4 common-neighbour counts) through
    /// masked `u64`-word sweeps instead of per-vertex probes. The search
    /// tree is bit-identical either way — this flag exists so the scalar
    /// path stays testable as the parity reference and measurable as the
    /// benchmark baseline.
    pub word_kernel: bool,
    /// Initial-solution heuristic (Line 1 of Algorithm 2).
    pub heuristic: InitialHeuristic,
    /// Build a bit-matrix over the reduced universe when it has at most this
    /// many vertices (`0` disables the dense acceleration entirely).
    pub matrix_limit: usize,
    /// Wall-clock limit; on expiry the best solution found so far is
    /// returned with [`crate::Status::TimedOut`].
    pub time_limit: Option<Duration>,
    /// Search-node limit, mainly for experiments on search-tree size.
    pub node_limit: Option<u64>,
    /// Cooperative cancellation: when the flag is raised, the search aborts
    /// at the next node with [`crate::Status::Cancelled`]. `None` disables
    /// the per-node check entirely.
    pub cancel: Option<CancelFlag>,
    /// A precomputed degeneracy peeling of the *input* graph, reused by the
    /// initial-solution heuristics and the ego decomposition instead of
    /// re-peeling. Must describe exactly the graph handed to the solver
    /// (checked by `debug_assert`); long-running services cache one peeling
    /// per resident graph and share it across solves.
    pub shared_peeling: Option<Arc<Peeling>>,
    /// A resident incremental CTCP reducer for the *input* graph, built with
    /// this configuration's `k` and RR5/RR6 flags. When installed, the
    /// solver resumes tightening from the reducer's current state instead of
    /// recomputing the core/truss fixpoint from scratch — the warm-solve
    /// path of long-running services. Ignored (with a fresh reducer built
    /// instead) if the reducer's graph/k/rules don't match, or if its
    /// recorded lower bound exceeds what this solve can justify.
    pub shared_ctcp: Option<Arc<Mutex<Ctcp>>>,
    /// A previously found k-defective clique of the input graph, used as an
    /// extra initial lower-bound candidate (validated before use). Services
    /// install their best known witness so warm solves start at least as
    /// tight as every earlier solve — which in turn makes `shared_ctcp`'s
    /// accumulated removals sound for this run.
    pub seed_solution: Option<Vec<VertexId>>,
    /// An externally *proven* upper bound on the optimum size. The search
    /// terminates with [`crate::Status::Optimal`] as soon as the incumbent
    /// reaches it, instead of exhausting the tree to prove what the caller
    /// already knows. Soundness is the caller's responsibility: batch
    /// k-sweeps derive it from the adjacent-k optimum (any k-defective
    /// clique is (k+1)-defective, and dropping a vertex incident to a
    /// missing edge turns a (k+1)-defective clique into a k-defective one,
    /// so `opt(k) ≤ opt(k') ≤ opt(k) + (k' − k)` for `k ≤ k'`). The cap
    /// only ever stops the search early — it never alters pruning — so the
    /// reported witness is identical to an uncapped run's.
    pub known_ub: Option<usize>,
    /// Progress callback, fired at incumbent improvements, retightens and
    /// search restarts (see [`SolveEvent`]). `None` disables event emission
    /// entirely.
    pub on_event: Option<EventHook>,
    /// Phase tracer: when installed, the solver records spans for its
    /// coarse phases (`peel`, `tighten`, `branch`) and the decomposition
    /// records one `ego` span per re-solved subproblem. `None` (the
    /// default in every preset) records nothing.
    pub trace: Option<kdc_obs::Tracer>,
}

impl SolverConfig {
    /// The full kDC algorithm (Algorithm 2): BR + RR1–RR6 + UB1–UB3 +
    /// Degen-opt.
    pub fn kdc() -> Self {
        SolverConfig {
            branch_policy: BranchPolicy::MaxNonNeighbors,
            enable_rr2: true,
            enable_rr3: true,
            enable_rr4: true,
            enable_rr5: true,
            enable_rr6: true,
            enable_ub1: true,
            enable_ub2: true,
            enable_ub3: true,
            enable_ub4: false,
            enable_kdclub: false,
            use_eq2_bound: false,
            word_kernel: true,
            heuristic: InitialHeuristic::DegenOpt,
            matrix_limit: 16_384,
            time_limit: None,
            node_limit: None,
            cancel: None,
            shared_peeling: None,
            shared_ctcp: None,
            seed_solution: None,
            known_ub: None,
            on_event: None,
            trace: None,
        }
    }

    /// kDC-t (Algorithm 1): the bare minimum achieving `O*(γ_k^n)` — BR,
    /// RR1, RR2 and nothing else. No bounds, no lb-based reductions, no
    /// initial solution.
    pub fn kdc_t() -> Self {
        SolverConfig {
            branch_policy: BranchPolicy::MaxNonNeighbors,
            enable_rr2: true,
            enable_rr3: false,
            enable_rr4: false,
            enable_rr5: false,
            enable_rr6: false,
            enable_ub1: false,
            enable_ub2: false,
            enable_ub3: false,
            enable_ub4: false,
            enable_kdclub: false,
            use_eq2_bound: false,
            word_kernel: true,
            heuristic: InitialHeuristic::None,
            matrix_limit: 16_384,
            time_limit: None,
            node_limit: None,
            cancel: None,
            shared_peeling: None,
            shared_ctcp: None,
            seed_solution: None,
            known_ub: None,
            on_event: None,
            trace: None,
        }
    }

    /// kDC augmented with the KD-Club-style colouring bound: everything in
    /// [`SolverConfig::kdc`] plus a per-node re-colouring bound evaluated
    /// when UB1–UB3 fail to prune. Typically explores fewer branch-and-bound
    /// nodes than `kdc` at a higher per-node cost; preferable on instances
    /// where the search tree, not the bound evaluation, dominates.
    pub fn kdclub() -> Self {
        SolverConfig {
            enable_kdclub: true,
            ..Self::kdc()
        }
    }

    /// `kDC/UB1` of §4.2: kDC without the improved colouring bound.
    pub fn without_ub1() -> Self {
        SolverConfig {
            enable_ub1: false,
            ..Self::kdc()
        }
    }

    /// `kDC/RR3&4` of §4.2: kDC without the two new reduction rules.
    pub fn without_rr3_rr4() -> Self {
        SolverConfig {
            enable_rr3: false,
            enable_rr4: false,
            ..Self::kdc()
        }
    }

    /// `kDC/UB1&RR3&4` of §4.2: both ablations combined.
    pub fn without_ub1_rr3_rr4() -> Self {
        SolverConfig {
            enable_ub1: false,
            enable_rr3: false,
            enable_rr4: false,
            ..Self::kdc()
        }
    }

    /// `kDC-Degen` of §4.2: the cheap `Degen` initial solution and no RR6
    /// preprocessing (O(m) preprocessing instead of O(δ(G)·m)).
    pub fn degen() -> Self {
        SolverConfig {
            heuristic: InitialHeuristic::Degen,
            enable_rr6: false,
            ..Self::kdc()
        }
    }

    /// A KDBB-like baseline \[16\]: preprocessing (core + truss) and the UB3
    /// bound, but none of kDC's novel rules (no RR2/RR3/RR4, no UB1) and
    /// plain min-degree branching.
    pub fn kdbb_like() -> Self {
        SolverConfig {
            branch_policy: BranchPolicy::MaxDegreeAny,
            enable_rr2: false,
            enable_rr3: false,
            enable_rr4: false,
            enable_rr5: true,
            enable_rr6: true,
            enable_ub1: false,
            enable_ub2: true,
            enable_ub3: true,
            enable_ub4: false,
            enable_kdclub: false,
            use_eq2_bound: false,
            word_kernel: true,
            heuristic: InitialHeuristic::Degen,
            matrix_limit: 16_384,
            time_limit: None,
            node_limit: None,
            cancel: None,
            shared_peeling: None,
            shared_ctcp: None,
            seed_solution: None,
            known_ub: None,
            on_event: None,
            trace: None,
        }
    }

    /// A MADEC-like baseline \[11\]: the Eq. (2) colouring bound and core
    /// pruning, no RR2 (hence the `O*(γ_{2k}^n)` behaviour), no UB1/RR3/RR4.
    pub fn madec_like() -> Self {
        SolverConfig {
            branch_policy: BranchPolicy::MaxDegreeAny,
            enable_rr2: false,
            enable_rr3: false,
            enable_rr4: false,
            enable_rr5: true,
            enable_rr6: false,
            enable_ub1: false,
            enable_ub2: true,
            enable_ub3: false,
            enable_ub4: false,
            enable_kdclub: false,
            use_eq2_bound: true,
            word_kernel: true,
            heuristic: InitialHeuristic::Degen,
            matrix_limit: 16_384,
            time_limit: None,
            node_limit: None,
            cancel: None,
            shared_peeling: None,
            shared_ctcp: None,
            seed_solution: None,
            known_ub: None,
            on_event: None,
            trace: None,
        }
    }

    /// Resolves a preset *name* (as accepted by the CLI's `--preset` and
    /// the daemon protocol's `preset=`) to its configuration. The single
    /// name table for the whole system — every surface that accepts preset
    /// names must resolve them here so they can never disagree.
    pub fn from_preset(name: &str) -> Result<Self, String> {
        Ok(match name {
            "kdc" => Self::kdc(),
            "kdc_t" => Self::kdc_t(),
            "kdclub" => Self::kdclub(),
            "kdbb" => Self::kdbb_like(),
            "madec" => Self::madec_like(),
            other => return Err(format!("unknown preset {other:?}")),
        })
    }

    /// Enables the experimental RR4-derived bound UB4 (see §3.2.2).
    pub fn with_ub4(mut self) -> Self {
        self.enable_ub4 = true;
        self
    }

    /// Disables the word-parallel engine kernel, forcing the scalar
    /// per-vertex hot path (the parity reference and benchmark baseline;
    /// see [`SolverConfig::word_kernel`]).
    pub fn with_scalar_kernel(mut self) -> Self {
        self.word_kernel = false;
        self
    }

    /// Builder-style override of the time limit.
    pub fn with_time_limit(mut self, limit: Duration) -> Self {
        self.time_limit = Some(limit);
        self
    }

    /// Builder-style override of the node limit.
    pub fn with_node_limit(mut self, limit: u64) -> Self {
        self.node_limit = Some(limit);
        self
    }

    /// Builder-style installation of a cooperative cancellation flag.
    pub fn with_cancel(mut self, flag: CancelFlag) -> Self {
        self.cancel = Some(flag);
        self
    }

    /// Builder-style installation of a precomputed degeneracy peeling of
    /// the input graph (see [`SolverConfig::shared_peeling`]).
    pub fn with_shared_peeling(mut self, peeling: Arc<Peeling>) -> Self {
        self.shared_peeling = Some(peeling);
        self
    }

    /// Builder-style installation of a resident CTCP reducer (see
    /// [`SolverConfig::shared_ctcp`]).
    pub fn with_shared_ctcp(mut self, ctcp: Arc<Mutex<Ctcp>>) -> Self {
        self.shared_ctcp = Some(ctcp);
        self
    }

    /// Builder-style installation of a known-solution seed (see
    /// [`SolverConfig::seed_solution`]).
    pub fn with_seed_solution(mut self, seed: Vec<VertexId>) -> Self {
        self.seed_solution = Some(seed);
        self
    }

    /// Builder-style installation of a proven upper-bound cap (see
    /// [`SolverConfig::known_ub`]).
    pub fn with_known_ub(mut self, ub: usize) -> Self {
        self.known_ub = Some(ub);
        self
    }

    /// Builder-style installation of a progress-event callback (see
    /// [`SolverConfig::on_event`]).
    pub fn with_event_hook(mut self, hook: EventHook) -> Self {
        self.on_event = Some(hook);
        self
    }
}

impl Default for SolverConfig {
    fn default() -> Self {
        Self::kdc()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kdc_t_is_minimal() {
        let c = SolverConfig::kdc_t();
        assert!(c.enable_rr2, "RR2 is part of the complexity argument");
        assert!(!c.enable_rr3 && !c.enable_rr4 && !c.enable_rr5 && !c.enable_rr6);
        assert!(!c.enable_ub1 && !c.enable_ub2 && !c.enable_ub3);
        assert_eq!(c.heuristic, InitialHeuristic::None);
    }

    #[test]
    fn ablations_differ_only_in_stated_flags() {
        let base = SolverConfig::kdc();
        let no_ub1 = SolverConfig::without_ub1();
        assert!(!no_ub1.enable_ub1);
        assert_eq!(no_ub1.enable_rr3, base.enable_rr3);

        let no_rr = SolverConfig::without_rr3_rr4();
        assert!(!no_rr.enable_rr3 && !no_rr.enable_rr4);
        assert!(no_rr.enable_ub1);

        let degen = SolverConfig::degen();
        assert_eq!(degen.heuristic, InitialHeuristic::Degen);
        assert!(!degen.enable_rr6);
        assert!(degen.enable_ub1);
    }

    #[test]
    fn from_preset_resolves_every_name() {
        for name in ["kdc", "kdc_t", "kdclub", "kdbb", "madec"] {
            assert!(SolverConfig::from_preset(name).is_ok(), "{name}");
        }
        assert!(
            SolverConfig::from_preset("kdclub").unwrap().enable_kdclub,
            "kdclub preset enables the KD-Club bound"
        );
        assert!(SolverConfig::from_preset("nope").is_err());
        assert_eq!(
            SolverConfig::from_preset("kdc_t").unwrap().heuristic,
            InitialHeuristic::None
        );
    }

    #[test]
    fn time_limit_parsing_rejects_hostile_values() {
        assert!(parse_time_limit(2.5).is_ok());
        assert!(parse_time_limit(0.0).is_ok());
        for bad in [-1.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 1e30] {
            assert!(parse_time_limit(bad).is_err(), "{bad} must be rejected");
        }
    }

    #[test]
    fn time_limit_arg_parsing_rejects_hostile_tokens() {
        assert_eq!(
            parse_time_limit_arg("2.5").unwrap(),
            Duration::from_secs_f64(2.5)
        );
        assert_eq!(parse_time_limit_arg(" 0 ").unwrap(), Duration::ZERO);
        for bad in ["-1", "NaN", "inf", "-inf", "1e30", "", "fast", "1s"] {
            assert!(
                parse_time_limit_arg(bad).is_err(),
                "limit token {bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn node_limit_parsing_rejects_hostile_tokens() {
        assert_eq!(parse_node_limit_arg("1").unwrap(), 1);
        assert_eq!(parse_node_limit_arg(" 1000000 ").unwrap(), 1_000_000);
        assert_eq!(parse_node_limit(u64::MAX).unwrap(), u64::MAX);
        assert!(parse_node_limit(0).is_err(), "0 nodes means no search");
        for bad in [
            "0",
            "-1",
            "1.5",
            "1e9",
            "NaN",
            "",
            "many",
            "18446744073709551616", // u64::MAX + 1
        ] {
            assert!(
                parse_node_limit_arg(bad).is_err(),
                "node token {bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn event_hook_delivers_and_clones_share() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let count = Arc::new(AtomicUsize::new(0));
        let c = count.clone();
        let hook = EventHook::new(move |_| {
            c.fetch_add(1, Ordering::Relaxed);
        });
        hook.emit(SolveEvent::Incumbent { size: 3 });
        hook.clone().emit(SolveEvent::Restart { universe: 10 });
        assert_eq!(count.load(Ordering::Relaxed), 2);
        // Installing it on a config keeps the config Clone + Debug.
        let cfg = SolverConfig::kdc().with_event_hook(hook);
        let _ = format!("{:?}", cfg.clone());
    }

    #[test]
    fn builders_apply() {
        let c = SolverConfig::kdc()
            .with_time_limit(Duration::from_secs(3))
            .with_node_limit(100);
        assert_eq!(c.time_limit, Some(Duration::from_secs(3)));
        assert_eq!(c.node_limit, Some(100));
    }

    #[test]
    fn word_kernel_is_on_everywhere_and_scalar_is_opt_in() {
        for preset in ["kdc", "kdc_t", "kdclub", "kdbb", "madec"] {
            assert!(
                SolverConfig::from_preset(preset).unwrap().word_kernel,
                "{preset} must default to the word kernel"
            );
        }
        let scalar = SolverConfig::kdc().with_scalar_kernel();
        assert!(!scalar.word_kernel);
        assert!(
            !SolverConfig::kdc().enable_kdclub,
            "the KD-Club bound is opt-in"
        );
    }
}
