//! Exact counting of k-defective cliques by size.
//!
//! §5 of the paper points at the counting problem (\[21\] approximates counts
//! of 1- and 2-defective cliques of a given size) and notes that the
//! hereditary property makes counts explode as the maximum size grows —
//! which the maximum k-defective clique size (this crate's main product)
//! roughly indicates. This module provides the exact reference counter:
//! a canonical-order backtracking enumeration with missing-edge pruning and
//! a remaining-budget horizon.
//!
//! Counting is `#P`-hard in general; use on small graphs or with a
//! `min_size` close to the maximum.

use crate::config::CancelFlag;
use crate::stats::Status;
use kdc_graph::graph::{Graph, VertexId};
use std::time::Instant;

/// Per-size counts of k-defective cliques (vertex subsets inducing at most
/// `k` missing edges). `counts[s]` is the number of such subsets of size
/// `s`; index 0 counts the empty set (always 1).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DefectiveCounts {
    /// `counts[s]` = number of k-defective cliques with exactly `s` vertices.
    pub counts: Vec<u64>,
}

impl DefectiveCounts {
    /// The largest size with a non-zero count (the maximum k-defective
    /// clique size).
    pub fn max_size(&self) -> usize {
        self.counts.iter().rposition(|&c| c > 0).unwrap_or(0)
    }

    /// Total number of k-defective cliques of size ≥ `min_size`.
    pub fn total_at_least(&self, min_size: usize) -> u64 {
        self.counts.iter().skip(min_size).sum()
    }
}

/// Counts every k-defective clique of `g` with at least `min_size` vertices
/// (sizes below `min_size` report 0, except the conventional empty set when
/// `min_size == 0`).
pub fn count_k_defective_cliques(g: &Graph, k: usize, min_size: usize) -> DefectiveCounts {
    count_k_defective_cliques_with(g, k, min_size, None, None).0
}

/// Abort checks for the counting recursion: a cooperative cancel flag and a
/// wall-clock deadline, sampled every [`CHECK_INTERVAL`] recursion steps so
/// the per-node cost stays negligible.
struct Limiter<'a> {
    cancel: Option<&'a CancelFlag>,
    deadline: Option<Instant>,
    tick: u32,
    status: Status,
}

/// Recursion steps between limiter samples (an `Instant::now()` per step
/// would dominate the cheap per-node work).
const CHECK_INTERVAL: u32 = 256;

impl Limiter<'_> {
    /// Whether the enumeration must stop; sticky once tripped.
    fn interrupted(&mut self) -> bool {
        if self.status != Status::Optimal {
            return true;
        }
        self.tick += 1;
        if self.tick < CHECK_INTERVAL {
            return false;
        }
        self.tick = 0;
        if self.cancel.is_some_and(CancelFlag::is_cancelled) {
            self.status = Status::Cancelled;
        } else if self.deadline.is_some_and(|d| Instant::now() >= d) {
            self.status = Status::TimedOut;
        }
        self.status != Status::Optimal
    }
}

/// [`count_k_defective_cliques`] with cooperative interruption: the count
/// aborts at the next check when `cancel` is raised or `deadline` passes.
/// Returns the counts plus a status — anything other than
/// [`Status::Optimal`] means the enumeration was cut short and the counts
/// are a **lower bound**, not the exact answer. Services run the `#P`-hard
/// counter through this entry point so a hostile `COUNT` cannot pin a
/// worker forever.
pub fn count_k_defective_cliques_with(
    g: &Graph,
    k: usize,
    min_size: usize,
    cancel: Option<&CancelFlag>,
    deadline: Option<Instant>,
) -> (DefectiveCounts, Status) {
    let n = g.n();
    let mut counts = vec![0u64; n + 1];
    if min_size == 0 {
        counts[0] = 1;
    }
    let mut current: Vec<VertexId> = Vec::new();
    /// Everything constant across the recursion, plus the abort limiter.
    struct Ctx<'a> {
        g: &'a Graph,
        k: usize,
        min_size: usize,
        limiter: Limiter<'a>,
    }
    // Canonical enumeration: members are added in increasing id order, so
    // each subset is generated exactly once.
    fn recurse(
        ctx: &mut Ctx<'_>,
        next: usize,
        missing: usize,
        current: &mut Vec<VertexId>,
        counts: &mut [u64],
    ) {
        if ctx.limiter.interrupted() {
            return;
        }
        if !current.is_empty() && current.len() >= ctx.min_size {
            counts[current.len()] += 1;
        }
        let n = ctx.g.n();
        for cand in next..n {
            let v = cand as VertexId;
            let added = current.iter().filter(|&&u| !ctx.g.has_edge(u, v)).count();
            if missing + added > ctx.k {
                continue;
            }
            current.push(v);
            recurse(ctx, cand + 1, missing + added, current, counts);
            current.pop();
            if ctx.limiter.status != Status::Optimal {
                return;
            }
        }
    }
    let mut ctx = Ctx {
        g,
        k,
        min_size,
        limiter: Limiter {
            cancel,
            deadline,
            tick: 0,
            status: Status::Optimal,
        },
    };
    recurse(&mut ctx, 0, 0, &mut current, &mut counts);
    (DefectiveCounts { counts }, ctx.limiter.status)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdc_graph::{gen, named};

    #[test]
    fn empty_graph_counts_are_binomials() {
        // With k = 1, any single vertex or pair qualifies (a pair misses at
        // most one edge); triples of isolated vertices miss 3 > 1.
        let g = kdc_graph::Graph::empty(5);
        let c = count_k_defective_cliques(&g, 1, 0);
        assert_eq!(c.counts[0], 1);
        assert_eq!(c.counts[1], 5);
        assert_eq!(c.counts[2], 10, "C(5,2) pairs");
        assert_eq!(c.counts[3], 0);
        assert_eq!(c.max_size(), 2);
    }

    #[test]
    fn clique_counts_are_binomials() {
        // In K5 every subset is a clique: counts[s] = C(5, s).
        let g = gen::complete(5);
        let c = count_k_defective_cliques(&g, 0, 0);
        assert_eq!(c.counts, vec![1, 5, 10, 10, 5, 1]);
    }

    #[test]
    fn zero_defective_triples_are_triangles() {
        let mut rng = gen::seeded_rng(71);
        for _ in 0..10 {
            let g = gen::gnp(18, 0.4, &mut rng);
            let c = count_k_defective_cliques(&g, 0, 3);
            assert_eq!(c.counts[3] as usize, g.triangle_count());
            // Edges are exactly the size-2 cliques, but min_size = 3 zeroes them.
            assert_eq!(c.counts[2], 0);
        }
    }

    #[test]
    fn one_defective_pairs_count_all_pairs() {
        let mut rng = gen::seeded_rng(72);
        let g = gen::gnp(12, 0.3, &mut rng);
        let c = count_k_defective_cliques(&g, 1, 0);
        assert_eq!(
            c.counts[2] as usize,
            12 * 11 / 2,
            "any pair misses ≤ 1 edge"
        );
    }

    #[test]
    fn max_size_agrees_with_solver() {
        let mut rng = gen::seeded_rng(73);
        for _ in 0..8 {
            let g = gen::gnp(14, 0.45, &mut rng);
            for k in [0usize, 1, 3] {
                let c = count_k_defective_cliques(&g, k, 1);
                let opt = crate::max_defective_clique(&g, k).size();
                assert_eq!(c.max_size(), opt, "k = {k}");
                assert!(c.counts[opt] >= 1);
            }
        }
    }

    #[test]
    fn figure2_counts() {
        let g = named::figure2();
        let c1 = count_k_defective_cliques(&g, 1, 5);
        // Size-5 1-defective cliques: the K5 itself, its 5 one-vertex-swap
        // variants? Ground truth by independent brute force:
        let mut expected = 0u64;
        let n = g.n();
        for mask in 0u32..(1 << n) {
            if mask.count_ones() != 5 {
                continue;
            }
            let set: Vec<u32> = (0..n as u32).filter(|&v| mask >> v & 1 == 1).collect();
            if g.is_k_defective_clique(&set, 1) {
                expected += 1;
            }
        }
        assert_eq!(c1.counts[5], expected);
        assert_eq!(c1.max_size(), 5);
        assert_eq!(c1.total_at_least(5), expected);
    }

    #[test]
    fn cancelled_count_reports_partial_status() {
        let mut rng = gen::seeded_rng(75);
        // Dense enough that the full count takes many recursion steps.
        let g = gen::gnp(24, 0.6, &mut rng);
        let flag = CancelFlag::new();
        flag.cancel(); // pre-raised: abort at the first limiter sample
        let (_, status) = count_k_defective_cliques_with(&g, 2, 0, Some(&flag), None);
        assert_eq!(status, Status::Cancelled);

        // An un-raised flag must not disturb the count.
        let flag = CancelFlag::new();
        let (counts, status) = count_k_defective_cliques_with(&g, 1, 3, Some(&flag), None);
        assert_eq!(status, Status::Optimal);
        assert_eq!(counts, count_k_defective_cliques(&g, 1, 3));

        // An already-expired deadline aborts with TimedOut.
        let (_, status) =
            count_k_defective_cliques_with(&g, 2, 0, None, Some(std::time::Instant::now()));
        assert_eq!(status, Status::TimedOut);
    }

    #[test]
    fn counts_monotone_in_k() {
        let mut rng = gen::seeded_rng(74);
        let g = gen::gnp(12, 0.35, &mut rng);
        let mut prev_total = 0u64;
        for k in 0..4 {
            let c = count_k_defective_cliques(&g, k, 1);
            let total: u64 = c.counts.iter().sum();
            assert!(total >= prev_total, "relaxing k adds solutions");
            prev_total = total;
        }
    }
}
