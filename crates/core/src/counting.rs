//! Exact counting of k-defective cliques by size.
//!
//! §5 of the paper points at the counting problem (\[21\] approximates counts
//! of 1- and 2-defective cliques of a given size) and notes that the
//! hereditary property makes counts explode as the maximum size grows —
//! which the maximum k-defective clique size (this crate's main product)
//! roughly indicates. This module provides the exact reference counter:
//! a canonical-order backtracking enumeration with missing-edge pruning and
//! a remaining-budget horizon.
//!
//! Counting is `#P`-hard in general; use on small graphs or with a
//! `min_size` close to the maximum.

use kdc_graph::graph::{Graph, VertexId};

/// Per-size counts of k-defective cliques (vertex subsets inducing at most
/// `k` missing edges). `counts[s]` is the number of such subsets of size
/// `s`; index 0 counts the empty set (always 1).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DefectiveCounts {
    /// `counts[s]` = number of k-defective cliques with exactly `s` vertices.
    pub counts: Vec<u64>,
}

impl DefectiveCounts {
    /// The largest size with a non-zero count (the maximum k-defective
    /// clique size).
    pub fn max_size(&self) -> usize {
        self.counts.iter().rposition(|&c| c > 0).unwrap_or(0)
    }

    /// Total number of k-defective cliques of size ≥ `min_size`.
    pub fn total_at_least(&self, min_size: usize) -> u64 {
        self.counts.iter().skip(min_size).sum()
    }
}

/// Counts every k-defective clique of `g` with at least `min_size` vertices
/// (sizes below `min_size` report 0, except the conventional empty set when
/// `min_size == 0`).
pub fn count_k_defective_cliques(g: &Graph, k: usize, min_size: usize) -> DefectiveCounts {
    let n = g.n();
    let mut counts = vec![0u64; n + 1];
    if min_size == 0 {
        counts[0] = 1;
    }
    let mut current: Vec<VertexId> = Vec::new();
    // Canonical enumeration: members are added in increasing id order, so
    // each subset is generated exactly once.
    fn recurse(
        g: &Graph,
        k: usize,
        min_size: usize,
        next: usize,
        missing: usize,
        current: &mut Vec<VertexId>,
        counts: &mut [u64],
    ) {
        if !current.is_empty() && current.len() >= min_size {
            counts[current.len()] += 1;
        }
        let n = g.n();
        for cand in next..n {
            let v = cand as VertexId;
            let added = current.iter().filter(|&&u| !g.has_edge(u, v)).count();
            if missing + added > k {
                continue;
            }
            current.push(v);
            recurse(g, k, min_size, cand + 1, missing + added, current, counts);
            current.pop();
        }
    }
    recurse(g, k, min_size, 0, 0, &mut current, &mut counts);
    DefectiveCounts { counts }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdc_graph::{gen, named};

    #[test]
    fn empty_graph_counts_are_binomials() {
        // With k = 1, any single vertex or pair qualifies (a pair misses at
        // most one edge); triples of isolated vertices miss 3 > 1.
        let g = kdc_graph::Graph::empty(5);
        let c = count_k_defective_cliques(&g, 1, 0);
        assert_eq!(c.counts[0], 1);
        assert_eq!(c.counts[1], 5);
        assert_eq!(c.counts[2], 10, "C(5,2) pairs");
        assert_eq!(c.counts[3], 0);
        assert_eq!(c.max_size(), 2);
    }

    #[test]
    fn clique_counts_are_binomials() {
        // In K5 every subset is a clique: counts[s] = C(5, s).
        let g = gen::complete(5);
        let c = count_k_defective_cliques(&g, 0, 0);
        assert_eq!(c.counts, vec![1, 5, 10, 10, 5, 1]);
    }

    #[test]
    fn zero_defective_triples_are_triangles() {
        let mut rng = gen::seeded_rng(71);
        for _ in 0..10 {
            let g = gen::gnp(18, 0.4, &mut rng);
            let c = count_k_defective_cliques(&g, 0, 3);
            assert_eq!(c.counts[3] as usize, g.triangle_count());
            // Edges are exactly the size-2 cliques, but min_size = 3 zeroes them.
            assert_eq!(c.counts[2], 0);
        }
    }

    #[test]
    fn one_defective_pairs_count_all_pairs() {
        let mut rng = gen::seeded_rng(72);
        let g = gen::gnp(12, 0.3, &mut rng);
        let c = count_k_defective_cliques(&g, 1, 0);
        assert_eq!(
            c.counts[2] as usize,
            12 * 11 / 2,
            "any pair misses ≤ 1 edge"
        );
    }

    #[test]
    fn max_size_agrees_with_solver() {
        let mut rng = gen::seeded_rng(73);
        for _ in 0..8 {
            let g = gen::gnp(14, 0.45, &mut rng);
            for k in [0usize, 1, 3] {
                let c = count_k_defective_cliques(&g, k, 1);
                let opt = crate::max_defective_clique(&g, k).size();
                assert_eq!(c.max_size(), opt, "k = {k}");
                assert!(c.counts[opt] >= 1);
            }
        }
    }

    #[test]
    fn figure2_counts() {
        let g = named::figure2();
        let c1 = count_k_defective_cliques(&g, 1, 5);
        // Size-5 1-defective cliques: the K5 itself, its 5 one-vertex-swap
        // variants? Ground truth by independent brute force:
        let mut expected = 0u64;
        let n = g.n();
        for mask in 0u32..(1 << n) {
            if mask.count_ones() != 5 {
                continue;
            }
            let set: Vec<u32> = (0..n as u32).filter(|&v| mask >> v & 1 == 1).collect();
            if g.is_k_defective_clique(&set, 1) {
                expected += 1;
            }
        }
        assert_eq!(c1.counts[5], expected);
        assert_eq!(c1.max_size(), 5);
        assert_eq!(c1.total_at_least(5), expected);
    }

    #[test]
    fn counts_monotone_in_k() {
        let mut rng = gen::seeded_rng(74);
        let g = gen::gnp(12, 0.35, &mut rng);
        let mut prev_total = 0u64;
        for k in 0..4 {
            let c = count_k_defective_cliques(&g, k, 1);
            let total: u64 = c.counts.iter().sum();
            assert!(total >= prev_total, "relaxing k adds solutions");
            prev_total = total;
        }
    }
}
