//! The branching factor γ_k of Theorem 3.5.
//!
//! kDC runs in `O*(γ_k^n)` where `γ_k < 2` is the largest real root of
//!
//! ```text
//! x^(k+3) − 2·x^(k+2) + 1 = 0
//! ```
//!
//! which is equivalent (for x > 1) to `x^(k+2) = x^(k+1) + x^k + … + x + 1`.
//! The paper reports γ_0 = 1.619, γ_1 = 1.840, γ_2 = 1.928, γ_3 = 1.966,
//! γ_4 = 1.984, γ_5 = 1.992. MADEC+'s complexity is `O*(σ_k^n)` with
//! `σ_k = γ_{2k}`, hence strictly worse for every `k ≥ 1`.

/// Evaluates `f(x) = x^(k+3) − 2·x^(k+2) + 1` in a numerically friendly form.
fn f(k: usize, x: f64) -> f64 {
    // x^(k+2) · (x − 2) + 1
    x.powi(k as i32 + 2) * (x - 2.0) + 1.0
}

/// The largest real root γ_k of `x^(k+3) − 2x^(k+2) + 1 = 0`, computed by
/// bisection on `(1, 2)`.
///
/// For every `k ≥ 0`: `1 < γ_k < 2`, and `γ_k` is strictly increasing in `k`
/// with `γ_k → 2`.
///
/// ```
/// // γ_0 is the golden ratio: for k = 0 the equation factors as
/// // (x − 1)(x² − x − 1).
/// let phi = (1.0 + 5.0_f64.sqrt()) / 2.0;
/// assert!((kdc::gamma_k(0) - phi).abs() < 1e-9);
/// assert!(kdc::gamma_k(5) < 2.0);
/// ```
pub fn gamma_k(k: usize) -> f64 {
    // f(1) = 0 — x = 1 is always a root — but the *largest* root lies in
    // (1, 2): f(2) = 1 > 0 and f has a negative dip in between (e.g.
    // f(1.5) < 0 for all k ≥ 0). Bisect on [lo, 2] with lo just above the
    // minimum of the dip.
    //
    // f'(x) = (k+3)x^(k+2) − 2(k+2)x^(k+1) = x^(k+1)·((k+3)x − 2(k+2)),
    // so the interior stationary point is x* = 2(k+2)/(k+3) ∈ (1, 2) and f is
    // strictly increasing on (x*, 2]: a unique root lies in (x*, 2).
    let k_f = k as f64;
    let x_star = 2.0 * (k_f + 2.0) / (k_f + 3.0);
    debug_assert!(f(k, x_star) < 0.0);
    let (mut lo, mut hi) = (x_star, 2.0);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if f(k, mid) < 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// MADEC+'s base `σ_k = γ_{2k}` (observation in §3.1.2).
pub fn sigma_k(k: usize) -> f64 {
    gamma_k(2 * k)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_values() {
        // §3.1.2 lists the first few solutions to three decimals; the paper
        // rounds *up* (γ_0 is the golden ratio 1.61803…, printed as 1.619;
        // γ_1 is the tribonacci constant 1.83929…, printed as 1.840), so the
        // exact roots sit at most ~1e-3 below the printed values.
        let expected = [1.619, 1.840, 1.928, 1.966, 1.984, 1.992];
        for (k, &e) in expected.iter().enumerate() {
            let g = gamma_k(k);
            assert!(
                g <= e + 5e-4 && e - g < 1.5e-3,
                "γ_{k} = {g:.6}, paper says {e}"
            );
        }
    }

    #[test]
    fn gamma_0_is_related_to_golden_ratio_cubic() {
        // k = 0: x³ − 2x² + 1 = (x − 1)(x² − x − 1); the largest root is the
        // golden ratio φ = (1 + √5)/2 ≈ 1.618034.
        let phi = (1.0 + 5.0_f64.sqrt()) / 2.0;
        assert!((gamma_k(0) - phi).abs() < 1e-10);
    }

    #[test]
    fn roots_actually_solve_equation() {
        for k in 0..25 {
            let g = gamma_k(k);
            // The residual tolerance scales with the derivative near the
            // root: f'(γ) grows like 2^(k+2), amplifying the fixed bisection
            // precision on x into a larger residual on f.
            let tol = 1e-12 * 2f64.powi(k as i32 + 3);
            assert!(f(k, g).abs() < tol.max(1e-9), "k={k} residual {}", f(k, g));
            assert!(g > 1.0 && g < 2.0);
        }
    }

    #[test]
    fn strictly_increasing_in_k() {
        let mut prev = 0.0;
        for k in 0..40 {
            let g = gamma_k(k);
            assert!(g > prev, "γ must increase: γ_{k} = {g} ≤ {prev}");
            prev = g;
        }
    }

    #[test]
    fn sigma_matches_gamma_2k_and_dominates() {
        // MADEC+'s σ_k = γ_{2k} > γ_k for k ≥ 1 → kDC's complexity is better.
        for k in 1..10 {
            assert_eq!(sigma_k(k), gamma_k(2 * k));
            assert!(sigma_k(k) > gamma_k(k));
        }
        assert_eq!(sigma_k(0), gamma_k(0));
    }
}
