//! Release-mode parity suite for the word-parallel engine kernel and the
//! KD-Club colouring bound.
//!
//! * **Word vs scalar kernel**: the masked-word hot path must be
//!   *bit-identical* to the per-vertex probe path — same witness, same
//!   status and the same number of explored branch-and-bound nodes (the
//!   kernel changes how state is maintained, never which tree is walked) —
//!   across `matrix_limit ∈ {0, large}`, `k ∈ {0..3}` and every branch
//!   policy.
//! * **KD-Club vs legacy bound**: enabling the re-colouring bound must keep
//!   the optimum and, under a fixed branch policy, the exact witness (it
//!   only prunes subtrees that contain no improving solution), while never
//!   exploring more nodes than the legacy-bound run.
//!
//! CI runs this file in release mode so the optimized kernels are the ones
//! exercised.

use kdc::{BranchPolicy, Solver, SolverConfig};
use kdc_graph::gen;
use proptest::prelude::*;

const POLICIES: [BranchPolicy; 4] = [
    BranchPolicy::MaxNonNeighbors,
    BranchPolicy::FirstEligible,
    BranchPolicy::MinDegree,
    BranchPolicy::MaxDegreeAny,
];

/// `matrix_limit` regimes: 0 forces the adjacency-list path (cached
/// neighbour masks), "large" keeps the dense bit-matrix path.
const MATRIX_LIMITS: [usize; 2] = [0, 1 << 14];

/// Every named preset must answer identical optimum sizes and statuses on
/// both kernels, for k ∈ {0..3} — the preset-level face of the parity
/// contract (the property tests below then pin witnesses and node counts).
#[test]
fn every_preset_agrees_across_kernels_and_k() {
    let mut rng = gen::seeded_rng(20_260_727);
    for trial in 0..4 {
        let g = gen::gnp(24 + 2 * trial, 0.4, &mut rng);
        for preset in ["kdc", "kdc_t", "kdclub", "kdbb", "madec"] {
            for k in 0usize..4 {
                let word_cfg = SolverConfig::from_preset(preset).unwrap();
                let scalar_cfg = word_cfg.clone().with_scalar_kernel();
                let word = Solver::new(&g, k, word_cfg).solve();
                let scalar = Solver::new(&g, k, scalar_cfg).solve();
                assert_eq!(word.size(), scalar.size(), "{preset} k={k} trial {trial}");
                assert_eq!(word.status, scalar.status, "{preset} k={k} trial {trial}");
                assert_eq!(
                    word.vertices, scalar.vertices,
                    "{preset} k={k} trial {trial}: witnesses"
                );
                assert_eq!(
                    word.stats.nodes, scalar.stats.nodes,
                    "{preset} k={k} trial {trial}: trees"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn word_kernel_is_bit_identical_to_scalar(
        seed in 0u64..10_000,
        n in 16usize..34,
        p_percent in 25usize..55,
        k in 0usize..4,
    ) {
        let mut rng = gen::seeded_rng(seed);
        let g = gen::gnp(n, p_percent as f64 / 100.0, &mut rng);
        for policy in POLICIES {
            for matrix_limit in MATRIX_LIMITS {
                let mut word_cfg = SolverConfig::kdc();
                word_cfg.branch_policy = policy;
                word_cfg.matrix_limit = matrix_limit;
                let scalar_cfg = word_cfg.clone().with_scalar_kernel();
                let word = Solver::new(&g, k, word_cfg).solve();
                let scalar = Solver::new(&g, k, scalar_cfg).solve();
                prop_assert_eq!(
                    &word.vertices, &scalar.vertices,
                    "witness parity ({:?}, matrix_limit={}, k={})", policy, matrix_limit, k
                );
                prop_assert_eq!(word.status, scalar.status);
                prop_assert_eq!(
                    word.stats.nodes, scalar.stats.nodes,
                    "tree parity ({:?}, matrix_limit={}, k={})", policy, matrix_limit, k
                );
                prop_assert!(g.is_k_defective_clique(&word.vertices, k));
            }
        }
    }

    #[test]
    fn theory_preset_word_kernel_matches_scalar(
        seed in 0u64..10_000,
        k in 0usize..4,
    ) {
        // kDC-t has no bounds and no lb reductions, so its (much larger)
        // trees stress the raw add/remove/undo sweeps hardest.
        let mut rng = gen::seeded_rng(seed);
        let g = gen::gnp(20, 0.5, &mut rng);
        for matrix_limit in MATRIX_LIMITS {
            let mut word_cfg = SolverConfig::kdc_t();
            word_cfg.matrix_limit = matrix_limit;
            let scalar_cfg = word_cfg.clone().with_scalar_kernel();
            let word = Solver::new(&g, k, word_cfg).solve();
            let scalar = Solver::new(&g, k, scalar_cfg).solve();
            prop_assert_eq!(&word.vertices, &scalar.vertices);
            prop_assert_eq!(word.stats.nodes, scalar.stats.nodes);
        }
    }

    #[test]
    fn kdclub_bound_keeps_witnesses_and_shrinks_trees(
        seed in 0u64..10_000,
        n in 16usize..34,
        p_percent in 30usize..55,
        k in 0usize..4,
    ) {
        let mut rng = gen::seeded_rng(seed);
        let g = gen::gnp(n, p_percent as f64 / 100.0, &mut rng);
        for policy in POLICIES {
            for matrix_limit in MATRIX_LIMITS {
                let mut legacy_cfg = SolverConfig::kdc();
                legacy_cfg.branch_policy = policy;
                legacy_cfg.matrix_limit = matrix_limit;
                let mut club_cfg = legacy_cfg.clone();
                club_cfg.enable_kdclub = true;
                let club_scalar_cfg = club_cfg.clone().with_scalar_kernel();

                let legacy = Solver::new(&g, k, legacy_cfg).solve();
                let club = Solver::new(&g, k, club_cfg).solve();
                prop_assert_eq!(club.status, legacy.status);
                // A sound extra bound only prunes subtrees without improving
                // solutions, so under a fixed branch policy the incumbent
                // sequence — hence the final witness — is unchanged.
                prop_assert_eq!(
                    &club.vertices, &legacy.vertices,
                    "witness parity ({:?}, matrix_limit={}, k={})", policy, matrix_limit, k
                );
                prop_assert!(
                    club.stats.nodes <= legacy.stats.nodes,
                    "KD-Club grew the tree: {} > {} ({:?}, matrix_limit={}, k={})",
                    club.stats.nodes, legacy.stats.nodes, policy, matrix_limit, k
                );

                // The bound itself is kernel-independent: scalar × kdclub
                // walks the identical tree.
                let club_scalar = Solver::new(&g, k, club_scalar_cfg).solve();
                prop_assert_eq!(&club_scalar.vertices, &club.vertices);
                prop_assert_eq!(club_scalar.stats.nodes, club.stats.nodes);
            }
        }
    }
}
