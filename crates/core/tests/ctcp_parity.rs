//! Release-mode parity tests for the incremental CTCP solve path: every
//! RR5/RR6 toggle combination must produce the same optimum as the
//! theory-only kDC-t reference, through both the global solver (with its
//! mid-search re-tighten loop) and the shared-universe decomposition.
//!
//! These run under proptest so a failure reports the exact seed; CI also
//! runs this file in release mode (`cargo test --release --test
//! ctcp_parity`) to keep the optimized perf path exercised.

use kdc::{decompose::solve_decomposed, Solver, SolverConfig};
use kdc_graph::gen;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn rr5_rr6_toggles_agree_with_reference(
        seed in 0u64..10_000,
        n in 14usize..32,
        p_percent in 25usize..50,
        k in 0usize..4,
    ) {
        let mut rng = gen::seeded_rng(seed);
        let g = gen::gnp(n, p_percent as f64 / 100.0, &mut rng);
        let reference = Solver::new(&g, k, SolverConfig::kdc_t()).solve();
        prop_assert!(reference.is_optimal());
        for rr5 in [false, true] {
            for rr6 in [false, true] {
                let mut cfg = SolverConfig::kdc();
                cfg.enable_rr5 = rr5;
                cfg.enable_rr6 = rr6;
                let sol = Solver::new(&g, k, cfg).solve();
                prop_assert!(sol.is_optimal());
                prop_assert_eq!(
                    sol.size(), reference.size(),
                    "rr5={} rr6={} k={}", rr5, rr6, k
                );
                prop_assert!(g.is_k_defective_clique(&sol.vertices, k));
            }
        }
    }

    #[test]
    fn decomposed_toggles_agree_with_reference(
        seed in 0u64..10_000,
        k in 0usize..3,
    ) {
        let mut rng = gen::seeded_rng(seed);
        let g = gen::gnp(36, 0.3, &mut rng);
        let reference = Solver::new(&g, k, SolverConfig::kdc()).solve();
        for rr6 in [false, true] {
            let mut cfg = SolverConfig::kdc();
            cfg.enable_rr6 = rr6;
            let sol = solve_decomposed(&g, k, cfg, 2);
            prop_assert!(sol.is_optimal());
            prop_assert_eq!(sol.size(), reference.size(), "rr6={} k={}", rr6, k);
            prop_assert!(g.is_k_defective_clique(&sol.vertices, k));
        }
    }
}
