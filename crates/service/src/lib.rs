#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! # kdc_service — a long-running kDC solver daemon
//!
//! Every standalone `kdc solve` pays process startup, graph parsing and
//! preprocessing before the first branch-and-bound node. On large sparse
//! graphs that fixed cost dominates (the reduction rules RR5/RR6 are the
//! point of the paper's preprocessing), and it is exactly the cost a
//! resident service amortizes: **load and reduce a graph once, then answer
//! many `(k, preset, limit)` queries against it**.
//!
//! The daemon is std-only (no external dependencies) and speaks a
//! newline-delimited text protocol over `TcpListener` (loopback by
//! default); see [`protocol`] for the grammar. It owns three pieces:
//!
//! * [`cache::GraphCache`] — a name-keyed map of [`kdc_api::Session`]s;
//!   every solver-side artifact (degeneracy peeling, LRU-bounded resident
//!   CTCP reducers, best-known witnesses, the proven-optimal result memo)
//!   lives *inside* the session, with explicit counters so warm reuse is
//!   assertable, not just observable in timings;
//! * [`jobs::JobQueue`] / [`jobs::WorkerPool`] — a FIFO queue and a fixed
//!   `std::thread` pool coordinated by one `Mutex` and two `Condvar`s,
//!   running typed [`kdc_api::Query`]s through the cached session with
//!   cooperative cancellation ([`kdc::CancelFlag`]), per-job deadlines and
//!   node limits ([`kdc_api::Budget`]);
//! * [`server::Server`] — the accept loop and per-connection handlers,
//!   including the `SOLVE verbose=1` `EVENT` stream fed by a
//!   [`kdc_api::Observer`] registered on the job.
//!
//! ## Threading model
//!
//! ```text
//!                    ┌────────────────────────────────────────────┐
//!  client A ──TCP──► │ conn thread A ──┐                          │
//!  client B ──TCP──► │ conn thread B ──┤ submit / wait            │
//!                    │                 ▼                          │
//!  accept loop ────► │        JobQueue (Mutex + 2 Condvars)       │
//!  (run/spawn        │                 ▲                          │
//!   thread)          │   worker 1 ─────┤ next_job / finish        │
//!                    │   worker …  ────┘    │                     │
//!                    │                      ▼                     │
//!                    │        GraphCache (Arc<Graph> + artifacts) │
//!                    └────────────────────────────────────────────┘
//! ```
//!
//! * **One accept thread** (the caller of [`server::Server::run`], or a
//!   background thread under [`server::Server::spawn`]) only accepts.
//! * **One handler thread per connection** parses lines and executes
//!   commands. Cheap commands (`LOAD`, `STATS`, `JOBS`, …) run inline on
//!   the handler thread; `SOLVE`/`ENUMERATE` are submitted to the queue and
//!   the handler blocks in [`jobs::JobQueue::wait`] — so solver concurrency
//!   is bounded by the worker pool, never by the number of clients.
//! * **N worker threads** (fixed at startup) pop jobs FIFO. A job's
//!   [`kdc::CancelFlag`] is raised by `CANCEL <id>` from *any* connection;
//!   the engine notices at its next branch-and-bound node and returns the
//!   best solution found so far.
//! * **Shutdown** raises a latch, pokes the accept loop with a loopback
//!   connection, cancels every outstanding job and joins the workers.
//!   Handler threads are detached and die with their connections.
//!
//! Shared-state discipline: the cache and queue are each a single coarse
//! `Mutex` (lookups and bookkeeping are microseconds; solves run outside
//! any lock), per-graph counters are relaxed atomics, and graphs are
//! immutable behind `Arc` — workers never copy a cached graph.

pub mod cache;
pub mod jobs;
pub mod protocol;
pub mod server;
pub mod sync;

pub use cache::{GraphCache, GraphEntry};
pub use jobs::{JobInfo, JobObserver, JobOutcome, JobQueue, JobSpec, JobState, WorkerPool};
pub use protocol::{parse_command, Command};
pub use server::{request, Server, ServerHandle, DEFAULT_SLOW_THRESHOLD};
