#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! # kdc_service — a long-running kDC solver daemon
//!
//! Every standalone `kdc solve` pays process startup, graph parsing and
//! preprocessing before the first branch-and-bound node. On large sparse
//! graphs that fixed cost dominates (the reduction rules RR5/RR6 are the
//! point of the paper's preprocessing), and it is exactly the cost a
//! resident service amortizes: **load and reduce a graph once, then answer
//! many `(k, preset, limit)` queries against it**.
//!
//! The daemon is std-only (no external dependencies) and speaks a
//! newline-delimited text protocol over `TcpListener` (loopback by
//! default); see [`protocol`] for the grammar. It owns three pieces:
//!
//! * [`cache::GraphCache`] — a name-keyed map of [`kdc_api::Session`]s;
//!   every solver-side artifact (degeneracy peeling, LRU-bounded resident
//!   CTCP reducers, best-known witnesses, the proven-optimal result memo)
//!   lives *inside* the session, with explicit counters so warm reuse is
//!   assertable, not just observable in timings;
//! * [`jobs::JobQueue`] / [`jobs::WorkerPool`] — a FIFO queue and a fixed
//!   `std::thread` pool coordinated by one `Mutex` and two `Condvar`s,
//!   running typed [`kdc_api::Query`]s through the cached session with
//!   cooperative cancellation ([`kdc::CancelFlag`]), per-job deadlines and
//!   node limits ([`kdc_api::Budget`]);
//! * [`server::Server`] — the accept loop and per-connection handlers,
//!   including the `SOLVE verbose=1` `EVENT` stream fed by a
//!   [`kdc_api::Observer`] registered on the job.
//!
//! ## Threading model
//!
//! ```text
//!                    ┌────────────────────────────────────────────┐
//!  client A ──TCP──► │ conn thread A ──┐                          │
//!  client B ──TCP──► │ conn thread B ──┤ submit / wait            │
//!                    │                 ▼                          │
//!  accept loop ────► │        JobQueue (Mutex + 2 Condvars)       │
//!  (run/spawn        │                 ▲                          │
//!   thread)          │   worker 1 ─────┤ next_job / finish        │
//!                    │   worker …  ────┘    │                     │
//!                    │                      ▼                     │
//!                    │        GraphCache (Arc<Graph> + artifacts) │
//!                    └────────────────────────────────────────────┘
//! ```
//!
//! * **One accept thread** (the caller of [`server::Server::run`], or a
//!   background thread under [`server::Server::spawn`]) only accepts.
//! * **One handler thread per connection** parses lines and executes
//!   commands. Cheap commands (`LOAD`, `STATS`, `JOBS`, …) run inline on
//!   the handler thread; `SOLVE`/`ENUMERATE` are submitted to the queue and
//!   the handler blocks in [`jobs::JobQueue::wait`] — so solver concurrency
//!   is bounded by the worker pool, never by the number of clients.
//! * **N worker threads** (fixed at startup) pop jobs FIFO. A job's
//!   [`kdc::CancelFlag`] is raised by `CANCEL <id>` from *any* connection;
//!   the engine notices at its next branch-and-bound node and returns the
//!   best solution found so far.
//! * **Shutdown** raises a latch, pokes the accept loop with a loopback
//!   connection, and tears down per the requested mode: `mode=abort` (the
//!   default) cancels every outstanding job cooperatively; `mode=drain`
//!   first blocks in [`jobs::JobQueue::drain`] until queued and running
//!   jobs have answered their waiters (verbose `EVENT` streams included),
//!   then joins the workers. Handler threads are detached and die with
//!   their connections.
//!
//! Shared-state discipline: the cache and queue are each a single coarse
//! `Mutex` (lookups and bookkeeping are microseconds; solves run outside
//! any lock), per-graph counters are relaxed atomics, and graphs are
//! immutable behind `Arc` — workers never copy a cached graph.
//!
//! ## Hardened lifecycle
//!
//! The daemon degrades loudly, not mysteriously, under overload and
//! misbehaving clients:
//!
//! * **Admission control** ([`server::Server::with_limits`]) — beyond the
//!   connection cap or job-queue depth bound, requests get a typed
//!   `ERR busy .. retry_after_ms=..` line instead of unbounded queueing
//!   (`kdc_service_busy_rejections_total`).
//! * **Idle timeouts** ([`server::Server::with_idle_timeout`]) — half-open
//!   or stalled connections are reaped so handler threads cannot leak
//!   (`kdc_service_conn_timeouts_total`); real transport errors are
//!   distinguished from clean EOF and counted
//!   (`kdc_service_conn_errors_total`).
//! * **Watchdog** ([`server::Server::with_watchdog`]) — jobs submitted
//!   without their own `limit=`/`nodes=` budget are cancelled after a
//!   default deadline and surfaced as `failed reason=watchdog`
//!   (`kdc_service_watchdog_kills_total`).
//! * **Client retry** ([`server::request_with_retry`], `kdc client
//!   --retries`) — retries connect failures and busy replies for every
//!   verb, plus torn replies / mid-exchange errors for the idempotent
//!   read verbs (`SOLVE`/`STATS`/`METRICS`), with decorrelated-jitter
//!   backoff.
//! * **Durable session state** ([`persist`], `kdc serve --state-dir`) —
//!   every newly proven outcome is journaled to a crash-safe
//!   snapshot/journal store (the `kdc_store` crate: CRC-framed records,
//!   atomic tmp-write + rename compaction); a killed daemon restarts
//!   warm, revalidating each recovered graph against its source file's
//!   content hash and answering recovered queries `cached=true`.
//! * **Fault injection** (the `kdc_faults` crate) — named injection points
//!   (`accept`, `conn_read`, `conn_write`, `job_start`, `solve_node`,
//!   `cache_insert`, `store_write`, `store_read`) armed via `KDC_FAULTS`
//!   or the debug-only `FAULTS` verb drive all of the above in the chaos
//!   soak test (`kdc_service_faults_injected_total`); disarmed, each
//!   point is one relaxed atomic load.

pub mod cache;
pub mod jobs;
pub mod persist;
pub mod protocol;
pub mod server;
pub mod sync;

pub use cache::{GraphCache, GraphEntry};
pub use jobs::{
    JobInfo, JobObserver, JobOutcome, JobQueue, JobSpec, JobState, SubmitError, WorkerPool,
};
pub use persist::{export_graph_state, import_graph_state};
pub use protocol::{parse_command, Command, ShutdownMode};
pub use server::{request, request_with_retry, Server, ServerHandle, DEFAULT_SLOW_THRESHOLD};
