//! The resident graph cache: parse once, serve many sessions.
//!
//! Since the `kdc_api` Session layer, this module is *only* the name-keyed
//! map the daemon protocol needs: each [`GraphEntry`] pairs a cache name
//! and parse cost with a [`kdc_api::Session`], and every solver-side
//! artifact (degeneracy peeling, resident CTCP reducers with LRU bounds,
//! best-known witnesses, the proven-optimal result memo) lives inside the
//! session where the CLI, the benches and embedders share the exact same
//! code path. Counters stay explicit — `parses` and per-entry `hits` here,
//! everything else via [`kdc_api::SessionCounters`] — so warm-vs-cold
//! claims are asserted, not inferred from timings.

use crate::sync::{rank, TrackedRwLock};
use kdc_api::Session;
use kdc_graph::Graph;
use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A cached graph: one resident solver session plus protocol bookkeeping.
#[derive(Debug)]
pub struct GraphEntry {
    /// Cache key this entry is stored under.
    pub name: String,
    /// Wall-clock cost of the original parse (what the warm path saves).
    pub parse_time: Duration,
    session: Session,
    hits: AtomicU64,
    /// Logical-clock stamp of the last lookup or insert, for LRU eviction.
    last_used: AtomicU64,
    /// Where the graph was parsed from plus the FNV-1a hash of the raw
    /// file bytes — the identity recovery revalidates against. `None` for
    /// entries inserted directly from memory (tests, benches), which the
    /// durable store therefore never persists.
    source: Option<(String, u64)>,
    /// Whether this entry's `Graph` meta record has been journaled this
    /// process (a lock-free once-latch; see `persist`).
    meta_journaled: AtomicBool,
}

impl GraphEntry {
    fn new(
        name: String,
        graph: Graph,
        parse_time: Duration,
        source: Option<(String, u64)>,
    ) -> Self {
        GraphEntry {
            name,
            parse_time,
            session: Session::new(graph),
            hits: AtomicU64::new(0),
            last_used: AtomicU64::new(0),
            source,
            meta_journaled: AtomicBool::new(false),
        }
    }

    /// The resident solver session — the single query surface every job
    /// runs through.
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// The parsed graph, shared with in-flight jobs.
    pub fn graph(&self) -> &Arc<Graph> {
        self.session.graph()
    }

    /// Successful cache lookups of this entry.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Source path and content hash, when the entry came from a file.
    pub fn source(&self) -> Option<(&str, u64)> {
        self.source.as_ref().map(|(p, h)| (p.as_str(), *h))
    }

    /// Flips the once-per-process meta-journal latch; `true` exactly once.
    pub fn claim_meta_journal(&self) -> bool {
        !self.meta_journaled.swap(true, Ordering::Relaxed)
    }
}

/// Name-keyed cache of [`GraphEntry`]s shared by every connection and
/// worker. Lookups take a shared (read) lock so concurrent `SOLVE`s on
/// different connections never serialize on the map; only `LOAD`/`UNLOAD`
/// take the exclusive lock. The lock is rank-checked against
/// `LOCK_ORDER.md` in debug builds and recovers from poisoning.
#[derive(Debug)]
pub struct GraphCache {
    entries: TrackedRwLock<HashMap<String, Arc<GraphEntry>>>,
    parses: AtomicU64,
    /// Maximum resident entries; 0 = unlimited (the default).
    capacity: AtomicUsize,
    /// Monotonic logical clock stamping every lookup/insert for LRU order.
    clock: AtomicU64,
    evictions: AtomicU64,
    evictions_total: kdc_obs::Counter,
    faults_injected: kdc_obs::Counter,
}

impl Default for GraphCache {
    fn default() -> Self {
        Self::new()
    }
}

impl GraphCache {
    /// An empty cache with unlimited capacity.
    pub fn new() -> Self {
        let r = kdc_obs::registry();
        GraphCache {
            entries: TrackedRwLock::new(rank::GRAPH_CACHE, "GraphCache::entries", HashMap::new()),
            parses: AtomicU64::new(0),
            capacity: AtomicUsize::new(0),
            clock: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            evictions_total: r.register_counter("kdc_service_cache_evictions_total"),
            faults_injected: r.register_counter("kdc_service_faults_injected_total"),
        }
    }

    /// Caps the cache at `capacity` resident graphs (0 = unlimited).
    /// Shrinking below the current population evicts on the next insert,
    /// not immediately.
    pub fn set_capacity(&self, capacity: usize) {
        self.capacity.store(capacity, Ordering::Relaxed);
    }

    /// Entries evicted to enforce the capacity bound since startup.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    fn touch(&self, entry: &GraphEntry) {
        let now = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        entry.last_used.store(now, Ordering::Relaxed);
    }

    /// Checks the `cache_insert` fault point. `Error` and `DropConnection`
    /// both surface as an `Err` (the caller owns the connection and decides
    /// whether to answer or hang up); `Delay` sleeps inline.
    fn insert_fault(&self) -> Result<(), String> {
        let Some(action) = kdc_faults::check(kdc_faults::Point::CacheInsert) else {
            return Ok(());
        };
        self.faults_injected.inc();
        match action {
            kdc_faults::Action::Delay(d) => {
                std::thread::sleep(d);
                Ok(())
            }
            kdc_faults::Action::Error
            | kdc_faults::Action::DropConnection
            | kdc_faults::Action::TornWrite => Err("fault injected at cache_insert".to_string()),
            kdc_faults::Action::Panic => kdc_faults::panic_now(kdc_faults::Point::CacheInsert),
        }
    }

    /// Stores `entry` under its name, then enforces the LRU capacity bound
    /// (never evicting the entry just inserted).
    fn store(&self, entry: Arc<GraphEntry>) {
        self.touch(&entry);
        let mut map = self.entries.write();
        map.insert(entry.name.clone(), entry.clone());
        let cap = self.capacity.load(Ordering::Relaxed);
        if cap == 0 {
            return;
        }
        while map.len() > cap {
            let victim = map
                .iter()
                .filter(|(name, _)| *name != &entry.name)
                .min_by_key(|(_, e)| e.last_used.load(Ordering::Relaxed))
                .map(|(name, _)| name.clone());
            match victim {
                Some(name) => {
                    map.remove(&name);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                    self.evictions_total.inc();
                }
                // Only the just-inserted entry remains: a capacity of zero
                // is "unlimited", so cap >= 1 always keeps it.
                None => break,
            }
        }
    }

    /// Parses `path` and stores it under `name`, replacing any previous
    /// entry of that name — *unless* the resident entry was parsed from
    /// the same path and the file's bytes still hash identically, in
    /// which case the entry (and all its warm session state, including
    /// anything recovered from the durable store) is kept and returned:
    /// re-`LOAD`ing unchanged content is idempotent, never state loss.
    /// The raw file bytes are hashed first so the entry carries the
    /// identity recovery revalidates against. Returns the entry.
    pub fn load(&self, path: &str, name: &str) -> Result<Arc<GraphEntry>, String> {
        self.insert_fault()?;
        let t0 = Instant::now();
        let bytes = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let content_hash = kdc_store::content_hash(&bytes);
        if let Some(existing) = self.entries.read().get(name) {
            if existing.source() == Some((path, content_hash)) {
                let existing = existing.clone();
                self.touch(&existing);
                return Ok(existing);
            }
        }
        let graph = kdc_graph::io::read_graph(Path::new(path))
            .map_err(|e| format!("cannot read {path}: {e}"))?;
        self.parses.fetch_add(1, Ordering::Relaxed);
        let entry = Arc::new(GraphEntry::new(
            name.to_string(),
            graph,
            t0.elapsed(),
            Some((path.to_string(), content_hash)),
        ));
        self.store(entry.clone());
        Ok(entry)
    }

    /// Stores an already-parsed graph (tests and benches; counts as a parse
    /// so warm/cold comparisons stay honest).
    pub fn insert(&self, name: &str, graph: Graph) -> Arc<GraphEntry> {
        self.parses.fetch_add(1, Ordering::Relaxed);
        let entry = Arc::new(GraphEntry::new(
            name.to_string(),
            graph,
            Duration::default(),
            None,
        ));
        self.store(entry.clone());
        entry
    }

    /// Looks up `name`, counting a cache hit (and refreshing LRU recency)
    /// on success.
    pub fn get(&self, name: &str) -> Option<Arc<GraphEntry>> {
        let entry = self.entries.read().get(name).cloned();
        if let Some(e) = &entry {
            e.hits.fetch_add(1, Ordering::Relaxed);
            self.touch(e);
        }
        entry
    }

    /// Drops `name` from the cache; running jobs keep their `Arc`.
    pub fn unload(&self, name: &str) -> bool {
        self.entries.write().remove(name).is_some()
    }

    /// Number of graph files parsed since startup (LOAD + insert calls —
    /// *not* incremented by cache hits; the core of the warm-path claim).
    pub fn parses(&self) -> u64 {
        self.parses.load(Ordering::Relaxed)
    }

    /// Currently cached names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.entries.read().keys().cloned().collect();
        names.sort();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdc_graph::named;

    #[test]
    fn peeling_is_built_exactly_once() {
        let cache = GraphCache::new();
        let entry = cache.insert("fig2", named::figure2());
        assert_eq!(
            entry.session().counters().peel_builds,
            0,
            "peel must be lazy"
        );
        let d1 = entry.session().degeneracy();
        let d2 = entry.session().degeneracy();
        assert_eq!(d1, d2);
        assert_eq!(
            entry.session().counters().peel_builds,
            1,
            "artifact must be cached after first use"
        );
    }

    #[test]
    fn hits_and_parses_are_tracked() {
        let cache = GraphCache::new();
        cache.insert("a", named::figure2());
        assert_eq!(cache.parses(), 1);
        assert!(cache.get("a").is_some());
        assert!(cache.get("a").is_some());
        assert!(cache.get("missing").is_none());
        let entry = cache.get("a").unwrap();
        assert_eq!(entry.hits(), 3, "three successful lookups");
        assert_eq!(cache.parses(), 1, "lookups must not re-parse");
    }

    #[test]
    fn unload_drops_but_arc_survives() {
        let cache = GraphCache::new();
        let entry = cache.insert("a", named::figure2());
        let graph = entry.graph().clone();
        assert!(cache.unload("a"));
        assert!(!cache.unload("a"));
        assert!(cache.get("a").is_none());
        assert_eq!(graph.n(), 12, "in-flight Arc keeps the graph alive");
    }

    #[test]
    fn names_are_sorted() {
        let cache = GraphCache::new();
        cache.insert("zeta", named::figure2());
        cache.insert("alpha", named::figure2());
        assert_eq!(cache.names(), vec!["alpha".to_string(), "zeta".to_string()]);
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        let cache = GraphCache::new();
        cache.set_capacity(2);
        cache.insert("a", named::figure2());
        cache.insert("b", named::figure2());
        // Touch `a` so `b` becomes the LRU victim.
        assert!(cache.get("a").is_some());
        cache.insert("c", named::figure2());
        assert_eq!(cache.names(), vec!["a".to_string(), "c".to_string()]);
        assert_eq!(cache.evictions(), 1);
        // Re-inserting an existing name replaces in place, no eviction.
        cache.insert("a", named::figure2());
        assert_eq!(cache.evictions(), 1);
        assert_eq!(cache.names().len(), 2);
    }

    #[test]
    fn zero_capacity_means_unlimited() {
        let cache = GraphCache::new();
        for name in ["a", "b", "c", "d"] {
            cache.insert(name, named::figure2());
        }
        assert_eq!(cache.names().len(), 4);
        assert_eq!(cache.evictions(), 0);
    }

    #[test]
    fn reloading_unchanged_content_keeps_the_entry_and_its_state() {
        let dir = std::env::temp_dir().join(format!("kdc_cache_reload_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fig2.clq");
        kdc_graph::io::write_dimacs(&named::figure2(), &path).unwrap();
        let path = path.to_string_lossy().into_owned();

        let cache = GraphCache::new();
        let first = cache.load(&path, "fig2").unwrap();
        assert!(first.session().solve(2).is_optimal());
        assert_eq!(first.session().counters().solves, 1);

        // Same name, same path, same bytes: the warm entry survives.
        let again = cache.load(&path, "fig2").unwrap();
        assert!(Arc::ptr_eq(&first, &again), "entry must be kept");
        assert!(again.session().solve(2).cache.result_memo_hit);
        assert_eq!(cache.parses(), 1, "unchanged reload must not re-parse");

        // Changed bytes under the same name: a genuine replacement.
        kdc_graph::io::write_dimacs(&kdc_graph::gen::complete(5), Path::new(&path)).unwrap();
        let replaced = cache.load(&path, "fig2").unwrap();
        assert!(!Arc::ptr_eq(&first, &replaced), "changed file must reload");
        assert_eq!(replaced.graph().n(), 5);
        assert_eq!(cache.parses(), 2);
    }

    #[test]
    fn capacity_one_keeps_newest_insert() {
        let cache = GraphCache::new();
        cache.set_capacity(1);
        cache.insert("a", named::figure2());
        cache.insert("b", named::figure2());
        assert_eq!(cache.names(), vec!["b".to_string()]);
        assert_eq!(cache.evictions(), 1);
    }
}
