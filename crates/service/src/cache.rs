//! The resident graph cache: parse once, solve many times.
//!
//! Each [`GraphEntry`] owns an `Arc<Graph>` plus lazily computed, cached
//! per-graph artifacts (the degeneracy peeling, i.e. ordering + core
//! numbers, and one incremental CTCP reducer per `(k, rules)` pair) and a
//! memo of proven-optimal solve results keyed by `(k, preset)` plus the
//! best known witness solution per `k` (which seeds warm solves so the
//! resident reducer's accumulated removals stay sound). Every counter a
//! warm-vs-cold comparison needs is tracked explicitly — `parses`,
//! `graph_hits`, `peel_builds`, `result_hits`, `ctcp_builds`,
//! `ctcp_resumes` — so tests and benches can assert that the warm path
//! really skips re-parsing and re-preprocessing instead of inferring it
//! from timings.

use kdc::Solution;
use kdc_graph::ctcp::Ctcp;
use kdc_graph::degeneracy::{self, Peeling};
use kdc_graph::{Graph, VertexId};
use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Memo key for a solve result: the answer depends only on the graph, `k`
/// and the algorithm variant (all exact presets agree on the *size*, but we
/// key on the preset so the reported vertex set is reproducible per preset).
#[derive(Clone, Debug, Hash, PartialEq, Eq)]
pub struct SolveKey {
    /// The k of the k-defective clique.
    pub k: usize,
    /// Preset name (`"kdc"` for the default).
    pub preset: String,
}

/// Cache key for a resident CTCP reducer: its state depends on `k` and on
/// which of the two rules (RR5 core / RR6 truss) the preset enables.
#[derive(Clone, Copy, Debug, Hash, PartialEq, Eq)]
pub struct CtcpKey {
    /// The k of the k-defective clique.
    pub k: usize,
    /// Whether the degree (RR5) rule is active.
    pub core_rule: bool,
    /// Whether the support (RR6) rule is active.
    pub truss_rule: bool,
}

/// A cached graph plus its lazily built artifacts and usage counters.
#[derive(Debug)]
pub struct GraphEntry {
    /// Cache key this entry is stored under.
    pub name: String,
    /// The parsed graph, shared with in-flight jobs.
    pub graph: Arc<Graph>,
    /// Wall-clock cost of the original parse (what the warm path saves).
    pub parse_time: Duration,
    peeling: OnceLock<Arc<Peeling>>,
    peel_builds: AtomicU64,
    hits: AtomicU64,
    solves: AtomicU64,
    result_hits: AtomicU64,
    results: Mutex<HashMap<SolveKey, Solution>>,
    /// Resident incremental reducers, one per `(k, rules)` combination.
    ctcp: Mutex<HashMap<CtcpKey, Arc<Mutex<Ctcp>>>>,
    ctcp_builds: AtomicU64,
    ctcp_resumes: AtomicU64,
    /// Best known solution per `k` (any preset): the witness that makes the
    /// resident reducer's accumulated lower bound sound for warm solves.
    best_known: Mutex<HashMap<usize, Vec<VertexId>>>,
}

impl GraphEntry {
    fn new(name: String, graph: Graph, parse_time: Duration) -> Self {
        GraphEntry {
            name,
            graph: Arc::new(graph),
            parse_time,
            peeling: OnceLock::new(),
            peel_builds: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            solves: AtomicU64::new(0),
            result_hits: AtomicU64::new(0),
            results: Mutex::new(HashMap::new()),
            ctcp: Mutex::new(HashMap::new()),
            ctcp_builds: AtomicU64::new(0),
            ctcp_resumes: AtomicU64::new(0),
            best_known: Mutex::new(HashMap::new()),
        }
    }

    /// The degeneracy peeling (ordering, ranks, core numbers), computed at
    /// most once per cached graph and shared from then on.
    pub fn peeling(&self) -> Arc<Peeling> {
        self.peeling
            .get_or_init(|| {
                self.peel_builds.fetch_add(1, Ordering::Relaxed);
                Arc::new(degeneracy::peel(&self.graph))
            })
            .clone()
    }

    /// Degeneracy of the cached graph (forces the peeling artifact).
    pub fn degeneracy(&self) -> usize {
        self.peeling().degeneracy
    }

    /// A memoized proven-optimal result for `key`, if any.
    pub fn cached_result(&self, key: &SolveKey) -> Option<Solution> {
        let found = self.results.lock().expect("poisoned").get(key).cloned();
        if found.is_some() {
            self.result_hits.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Memoizes `solution` for `key`; only proven-optimal results may be
    /// stored (best-effort answers depend on the deadline, not the graph).
    pub fn store_result(&self, key: SolveKey, solution: Solution) {
        debug_assert!(solution.is_optimal());
        self.results.lock().expect("poisoned").insert(key, solution);
    }

    /// Records one solve executed against this entry.
    pub fn record_solve(&self) {
        self.solves.fetch_add(1, Ordering::Relaxed);
    }

    /// The resident CTCP reducer for `key`, built on first use (counted in
    /// `ctcp_builds`) and resumed from then on (counted in `ctcp_resumes`).
    /// Warm solves hand this to the solver via
    /// `SolverConfig::shared_ctcp`, so a higher lower bound resumes
    /// tightening where the previous solve stopped instead of recomputing
    /// the core/truss fixpoint from a fresh clone.
    pub fn ctcp_state(&self, key: CtcpKey) -> Arc<Mutex<Ctcp>> {
        let mut map = self.ctcp.lock().expect("poisoned");
        if let Some(existing) = map.get(&key) {
            self.ctcp_resumes.fetch_add(1, Ordering::Relaxed);
            return existing.clone();
        }
        self.ctcp_builds.fetch_add(1, Ordering::Relaxed);
        let fresh = Arc::new(Mutex::new(Ctcp::with_rules(
            &self.graph,
            key.k,
            key.core_rule,
            key.truss_rule,
        )));
        map.insert(key, fresh.clone());
        fresh
    }

    /// The best known solution for `k`, if any (cloned; used to seed warm
    /// solves).
    pub fn best_known(&self, k: usize) -> Option<Vec<VertexId>> {
        self.best_known.lock().expect("poisoned").get(&k).cloned()
    }

    /// Records `vertices` as the best known solution for `k` when it beats
    /// the stored witness. Solutions come straight out of the solver, so
    /// they are trusted here (and re-validated by the solver when seeded
    /// back in).
    pub fn record_best_known(&self, k: usize, vertices: &[VertexId]) {
        let mut map = self.best_known.lock().expect("poisoned");
        let entry = map.entry(k).or_default();
        if vertices.len() > entry.len() {
            *entry = vertices.to_vec();
        }
    }

    /// Usage counters: `(hits, peel_builds, solves, result_hits)`.
    pub fn counters(&self) -> (u64, u64, u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.peel_builds.load(Ordering::Relaxed),
            self.solves.load(Ordering::Relaxed),
            self.result_hits.load(Ordering::Relaxed),
        )
    }

    /// Reducer counters: `(ctcp_builds, ctcp_resumes)`.
    pub fn ctcp_counters(&self) -> (u64, u64) {
        (
            self.ctcp_builds.load(Ordering::Relaxed),
            self.ctcp_resumes.load(Ordering::Relaxed),
        )
    }
}

/// Name-keyed cache of [`GraphEntry`]s shared by every connection and worker.
#[derive(Debug, Default)]
pub struct GraphCache {
    entries: Mutex<HashMap<String, Arc<GraphEntry>>>,
    parses: AtomicU64,
}

impl GraphCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Parses `path` and stores it under `name`, replacing any previous
    /// entry of that name. Returns the new entry.
    pub fn load(&self, path: &str, name: &str) -> Result<Arc<GraphEntry>, String> {
        let t0 = Instant::now();
        let graph = kdc_graph::io::read_graph(Path::new(path))
            .map_err(|e| format!("cannot read {path}: {e}"))?;
        self.parses.fetch_add(1, Ordering::Relaxed);
        let entry = Arc::new(GraphEntry::new(name.to_string(), graph, t0.elapsed()));
        self.entries
            .lock()
            .expect("poisoned")
            .insert(name.to_string(), entry.clone());
        Ok(entry)
    }

    /// Stores an already-parsed graph (tests and benches; counts as a parse
    /// so warm/cold comparisons stay honest).
    pub fn insert(&self, name: &str, graph: Graph) -> Arc<GraphEntry> {
        self.parses.fetch_add(1, Ordering::Relaxed);
        let entry = Arc::new(GraphEntry::new(
            name.to_string(),
            graph,
            Duration::default(),
        ));
        self.entries
            .lock()
            .expect("poisoned")
            .insert(name.to_string(), entry.clone());
        entry
    }

    /// Looks up `name`, counting a cache hit on success.
    pub fn get(&self, name: &str) -> Option<Arc<GraphEntry>> {
        let entry = self.entries.lock().expect("poisoned").get(name).cloned();
        if let Some(e) = &entry {
            e.hits.fetch_add(1, Ordering::Relaxed);
        }
        entry
    }

    /// Drops `name` from the cache; running jobs keep their `Arc<Graph>`.
    pub fn unload(&self, name: &str) -> bool {
        self.entries
            .lock()
            .expect("poisoned")
            .remove(name)
            .is_some()
    }

    /// Number of graph files parsed since startup (LOAD + insert calls —
    /// *not* incremented by cache hits; the core of the warm-path claim).
    pub fn parses(&self) -> u64 {
        self.parses.load(Ordering::Relaxed)
    }

    /// Currently cached names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .entries
            .lock()
            .expect("poisoned")
            .keys()
            .cloned()
            .collect();
        names.sort();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdc_graph::named;

    #[test]
    fn peeling_is_built_exactly_once() {
        let cache = GraphCache::new();
        let entry = cache.insert("fig2", named::figure2());
        assert_eq!(entry.counters().1, 0, "peel must be lazy");
        let d1 = entry.degeneracy();
        let d2 = entry.degeneracy();
        assert_eq!(d1, d2);
        let (_, peel_builds, _, _) = entry.counters();
        assert_eq!(peel_builds, 1, "artifact must be cached after first use");
    }

    #[test]
    fn hits_and_parses_are_tracked() {
        let cache = GraphCache::new();
        cache.insert("a", named::figure2());
        assert_eq!(cache.parses(), 1);
        assert!(cache.get("a").is_some());
        assert!(cache.get("a").is_some());
        assert!(cache.get("missing").is_none());
        let entry = cache.get("a").unwrap();
        assert_eq!(entry.counters().0, 3, "three successful lookups");
        assert_eq!(cache.parses(), 1, "lookups must not re-parse");
    }

    #[test]
    fn unload_drops_but_arc_survives() {
        let cache = GraphCache::new();
        let entry = cache.insert("a", named::figure2());
        let graph = entry.graph.clone();
        assert!(cache.unload("a"));
        assert!(!cache.unload("a"));
        assert!(cache.get("a").is_none());
        assert_eq!(graph.n(), 12, "in-flight Arc keeps the graph alive");
    }

    #[test]
    fn result_memo_only_hits_same_key() {
        let cache = GraphCache::new();
        let entry = cache.insert("a", named::figure2());
        let key = SolveKey {
            k: 2,
            preset: "kdc".into(),
        };
        assert!(entry.cached_result(&key).is_none());
        let sol = kdc::max_defective_clique(&entry.graph, 2);
        entry.store_result(key.clone(), sol.clone());
        assert_eq!(entry.cached_result(&key).unwrap().size(), sol.size());
        let other = SolveKey {
            k: 3,
            preset: "kdc".into(),
        };
        assert!(entry.cached_result(&other).is_none());
        assert_eq!(entry.counters().3, 1, "exactly one result hit");
    }

    #[test]
    fn ctcp_state_is_built_once_per_key_and_resumed() {
        let cache = GraphCache::new();
        let entry = cache.insert("fig2", named::figure2());
        assert_eq!(entry.ctcp_counters(), (0, 0), "reducers must be lazy");
        let key = CtcpKey {
            k: 2,
            core_rule: true,
            truss_rule: true,
        };
        let a = entry.ctcp_state(key);
        assert_eq!(entry.ctcp_counters(), (1, 0));
        let b = entry.ctcp_state(key);
        assert_eq!(entry.ctcp_counters(), (1, 1), "same key resumes");
        assert!(Arc::ptr_eq(&a, &b));
        // A different rule set is a different resident reducer.
        let other = entry.ctcp_state(CtcpKey {
            k: 2,
            core_rule: true,
            truss_rule: false,
        });
        assert_eq!(entry.ctcp_counters(), (2, 1));
        assert!(!Arc::ptr_eq(&a, &other));
    }

    #[test]
    fn best_known_keeps_the_largest_witness() {
        let cache = GraphCache::new();
        let entry = cache.insert("fig2", named::figure2());
        assert!(entry.best_known(1).is_none());
        entry.record_best_known(1, &[7, 8, 9]);
        entry.record_best_known(1, &[7, 8]); // smaller: ignored
        assert_eq!(entry.best_known(1).unwrap(), vec![7, 8, 9]);
        entry.record_best_known(1, &[7, 8, 9, 10]);
        assert_eq!(entry.best_known(1).unwrap().len(), 4);
        assert!(entry.best_known(2).is_none(), "witnesses are per-k");
    }

    #[test]
    fn warm_solve_resumes_the_resident_reducer() {
        // End-to-end through run_job: two identical solves with different
        // presets (dodging the result memo) must build the reducer once and
        // resume it once, with identical answers.
        use crate::jobs::{run_job, JobOutcome, JobSpec};
        use kdc::CancelFlag;
        let mut rng = kdc_graph::gen::seeded_rng(31);
        let (g, _) = kdc_graph::gen::planted_defective_clique(200, 12, 2, 0.03, &mut rng);
        let cache = GraphCache::new();
        let entry = cache.insert("planted", g);
        let spec = |preset: &str| JobSpec::Solve {
            entry: entry.clone(),
            k: 2,
            preset: preset.into(),
            limit: None,
            threads: 1,
        };
        let JobOutcome::Solve { solution: s1, .. } = run_job(&spec("kdc"), CancelFlag::new())
        else {
            panic!("expected solve outcome");
        };
        assert_eq!(entry.ctcp_counters(), (1, 0), "cold solve builds");
        let JobOutcome::Solve {
            solution: s2,
            from_cache,
            ..
        } = run_job(&spec("kdbb"), CancelFlag::new())
        else {
            panic!("expected solve outcome");
        };
        assert!(!from_cache, "different preset must not hit the memo");
        assert_eq!(s1.size(), s2.size());
        let (builds, resumes) = entry.ctcp_counters();
        // kdbb shares kdc's (rr5, rr6) = (true, true) rule set, so the
        // second solve resumes the same resident reducer.
        assert_eq!((builds, resumes), (1, 1), "warm solve must resume");
        assert_eq!(
            s2.stats.ctcp_vertex_removals, 0,
            "resumed reducer already at the fixpoint for this bound"
        );
        assert_eq!(
            entry.best_known(2).unwrap().len(),
            s1.size(),
            "witness recorded for seeding"
        );
    }

    #[test]
    fn names_are_sorted() {
        let cache = GraphCache::new();
        cache.insert("zeta", named::figure2());
        cache.insert("alpha", named::figure2());
        assert_eq!(cache.names(), vec!["alpha".to_string(), "zeta".to_string()]);
    }
}
