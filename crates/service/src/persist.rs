//! Crash-safe persistence: wires the `kdc_store` snapshot/journal store
//! into the daemon.
//!
//! Armed by `kdc serve --state-dir DIR` (see
//! [`crate::server::Server::with_state_dir`]), the daemon journals every
//! *newly proven* outcome — a `SOLVE`/`MSOLVE` that ran a real search and
//! ended [`kdc::Status::Optimal`] — and periodically folds the journal
//! into a snapshot. On the next startup the store replays
//! snapshot + journal, this module revalidates each recovered graph
//! against its source file's content hash, re-parses it, and feeds the
//! surviving witnesses and proven-optimal memos back into the fresh
//! [`kdc_api::Session`] via [`kdc_api::Session::import_state`] — so a
//! killed daemon restarts warm: recovered queries answer `cached=true`
//! without re-searching, and recovered witnesses seed new searches.
//!
//! Durability is strictly best-effort from the daemon's point of view: a
//! failed append or compaction is logged to stderr (and counted by the
//! `kdc_store_*` metrics) but never fails the query that triggered it.
//! A graph whose source file moved or changed since the snapshot is
//! recovered *cold* — the stale state is dropped, never replayed into a
//! session it no longer describes.

use crate::cache::{GraphCache, GraphEntry};
use kdc::{SearchStats, Solution, Status};
use kdc_api::{SessionState, SolveKey};
use kdc_graph::VertexId;
use kdc_store::{GraphState, MemoState, Record, Store};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The daemon's handle on the durable store plus recovery bookkeeping.
pub(crate) struct Persist {
    store: Store,
    /// Graphs successfully rehydrated (cache entry + session state) at
    /// startup; reported as `recovered_graphs=` in server-wide `STATS`.
    recovered_graphs: AtomicU64,
}

impl Persist {
    pub(crate) fn new(store: Store) -> Self {
        Persist {
            store,
            recovered_graphs: AtomicU64::new(0),
        }
    }

    pub(crate) fn recovered_graphs(&self) -> u64 {
        self.recovered_graphs.load(Ordering::Relaxed)
    }

    /// Rehydrates `recovered` into the cache: for each persisted graph,
    /// re-read the source file, check its content hash against the
    /// snapshot, re-parse, and import the persisted witnesses/memos into
    /// the new entry's session. Any mismatch (file gone, changed, or
    /// unparseable) falls back cold for that graph — the daemon still
    /// starts, it just re-searches.
    pub(crate) fn recover(&self, cache: &GraphCache, recovered: &[GraphState]) {
        for gs in recovered {
            let hash = match std::fs::read(&gs.source_path) {
                Ok(bytes) => kdc_store::content_hash(&bytes),
                Err(e) => {
                    eprintln!(
                        "kdc_service recovery: graph {:?}: cannot read {}: {e}; starting cold",
                        gs.name, gs.source_path
                    );
                    continue;
                }
            };
            if hash != gs.content_hash {
                eprintln!(
                    "kdc_service recovery: graph {:?}: {} changed since snapshot \
                     (hash {:#x} != {:#x}); starting cold",
                    gs.name, gs.source_path, hash, gs.content_hash
                );
                continue;
            }
            let entry = match cache.load(&gs.source_path, &gs.name) {
                Ok(entry) => entry,
                Err(e) => {
                    eprintln!(
                        "kdc_service recovery: graph {:?}: {e}; starting cold",
                        gs.name
                    );
                    continue;
                }
            };
            let state = import_graph_state(gs);
            let (witnesses, memos) = entry.session().import_state(&state);
            self.recovered_graphs.fetch_add(1, Ordering::Relaxed);
            eprintln!(
                "kdc_service recovery: graph {:?} rehydrated \
                 (witnesses={witnesses} memos={memos})",
                gs.name
            );
        }
    }

    /// Journals one newly proven solve outcome: the entry's `Graph` meta
    /// record (once per process), the winning witness, and the
    /// proven-optimal memo row. Compacts when the append cadence says so.
    /// Entries without file provenance are skipped — there is nothing to
    /// revalidate against on recovery.
    pub(crate) fn record_solve(
        &self,
        cache: &GraphCache,
        entry: &GraphEntry,
        key: &SolveKey,
        solution: &Solution,
    ) {
        let Some((source_path, content_hash)) = entry.source() else {
            return;
        };
        if solution.status != Status::Optimal || solution.vertices.is_empty() {
            return;
        }
        let mut due = false;
        if entry.claim_meta_journal() {
            due |= self.append(&Record::Graph {
                name: entry.name.clone(),
                source_path: source_path.to_string(),
                content_hash,
            });
        }
        let ids: Vec<u64> = solution.vertices.iter().map(|&v| u64::from(v)).collect();
        due |= self.append(&Record::Witness {
            graph: entry.name.clone(),
            k: key.k as u64,
            vertices: ids.clone(),
        });
        due |= self.append(&Record::Memo {
            graph: entry.name.clone(),
            k: key.k as u64,
            preset: key.preset.clone(),
            vertices: ids,
            status: solution.status.as_token().to_string(),
            stats: solution.stats.encode_compact(),
        });
        if due {
            self.compact_now(cache);
        }
    }

    /// Journals a graph's *entire* current session state — the batch
    /// (`MSOLVE`) path, where one job proves many `(k, preset)` rows at
    /// once. Replay folds duplicates last-wins, so re-journaling rows that
    /// were already on disk is harmless.
    pub(crate) fn record_session(&self, cache: &GraphCache, entry: &GraphEntry) {
        let Some((source_path, content_hash)) = entry.source() else {
            return;
        };
        let state = entry.session().export_state();
        if state.witnesses.is_empty() && state.memos.is_empty() {
            return;
        }
        let mut due = false;
        if entry.claim_meta_journal() {
            due |= self.append(&Record::Graph {
                name: entry.name.clone(),
                source_path: source_path.to_string(),
                content_hash,
            });
        }
        let gs = export_graph_state(&entry.name, source_path, content_hash, &state);
        for record in gs.records() {
            if !matches!(record, Record::Graph { .. }) {
                due |= self.append(&record);
            }
        }
        if due {
            self.compact_now(cache);
        }
    }

    /// One best-effort journal append; returns whether compaction is due.
    fn append(&self, record: &Record) -> bool {
        match self.store.append(record) {
            Ok(due) => due,
            Err(e) => {
                eprintln!("kdc_service persistence: journal append failed: {e}");
                false
            }
        }
    }

    /// Folds the full current state of every file-backed cache entry into
    /// a fresh snapshot (best effort; called on cadence and at drain).
    pub(crate) fn compact_now(&self, cache: &GraphCache) {
        let mut states = Vec::new();
        for name in cache.names() {
            let Some(entry) = cache.get(&name) else {
                continue;
            };
            let Some((source_path, content_hash)) = entry.source() else {
                continue;
            };
            let state = entry.session().export_state();
            if state.witnesses.is_empty() && state.memos.is_empty() {
                continue;
            }
            states.push(export_graph_state(
                &entry.name,
                source_path,
                content_hash,
                &state,
            ));
        }
        if let Err(e) = self.store.compact(&states) {
            eprintln!("kdc_service persistence: compaction failed: {e}");
        }
    }
}

/// Converts a session's exported warm state into the store's on-disk
/// shape. The inverse of [`import_graph_state`] up to entries the
/// session itself would reject.
pub fn export_graph_state(
    name: &str,
    source_path: &str,
    content_hash: u64,
    state: &SessionState,
) -> GraphState {
    GraphState {
        name: name.to_string(),
        source_path: source_path.to_string(),
        content_hash,
        witnesses: state
            .witnesses
            .iter()
            .map(|(k, vs)| (*k as u64, vs.iter().map(|&v| u64::from(v)).collect()))
            .collect(),
        memos: state
            .memos
            .iter()
            .map(|(key, solution)| MemoState {
                k: key.k as u64,
                preset: key.preset.clone(),
                vertices: solution.vertices.iter().map(|&v| u64::from(v)).collect(),
                status: solution.status.as_token().to_string(),
                stats: solution.stats.encode_compact(),
            })
            .collect(),
    }
}

/// Converts a recovered on-disk graph state back into the session's
/// import shape. Tolerant by construction: rows with out-of-range vertex
/// ids or an undecodable status/stats field are dropped here (and the
/// session's own validation re-checks everything that survives against
/// the actual graph).
pub fn import_graph_state(gs: &GraphState) -> SessionState {
    let narrow = |ids: &[u64]| -> Option<Vec<VertexId>> {
        ids.iter()
            .map(|&v| VertexId::try_from(v).ok())
            .collect::<Option<Vec<VertexId>>>()
    };
    let witnesses = gs
        .witnesses
        .iter()
        .filter_map(|(k, ids)| Some((usize::try_from(*k).ok()?, narrow(ids)?)))
        .collect();
    let memos = gs
        .memos
        .iter()
        .filter_map(|m| {
            let key = SolveKey {
                k: usize::try_from(m.k).ok()?,
                preset: m.preset.clone(),
            };
            let solution = Solution {
                vertices: narrow(&m.vertices)?,
                status: Status::parse_token(&m.status).ok()?,
                stats: SearchStats::decode_compact(&m.stats).ok()?,
            };
            Some((key, solution))
        })
        .collect();
    SessionState { witnesses, memos }
}

/// Shared handle used by [`crate::server::Server`]: the daemon holds it in
/// a `OnceLock` so `--state-dir` can arm persistence after `bind`.
pub(crate) type PersistHandle = Arc<Persist>;

#[cfg(test)]
mod tests {
    use super::*;
    use kdc_api::Session;
    use kdc_graph::named;

    #[test]
    fn graph_state_roundtrips_through_the_store_shape() {
        let session = Session::new(named::figure2());
        let outcome = session.solve(2);
        assert!(outcome.is_optimal());
        let state = session.export_state();
        assert!(!state.witnesses.is_empty() && !state.memos.is_empty());

        let gs = export_graph_state("fig2", "/tmp/fig2.clq", 0xdead_beef, &state);
        let back = import_graph_state(&gs);
        assert_eq!(back.witnesses, state.witnesses);
        assert_eq!(back.memos.len(), state.memos.len());
        for ((key, sol), (key2, sol2)) in state.memos.iter().zip(back.memos.iter()) {
            assert_eq!(key, key2);
            assert_eq!(sol.vertices, sol2.vertices);
            assert_eq!(sol.status, sol2.status);
            assert_eq!(sol.stats.nodes, sol2.stats.nodes);
        }

        // And a fresh session accepts the round-tripped state wholesale.
        let fresh = Session::new(named::figure2());
        let (w, m) = fresh.import_state(&back);
        assert_eq!((w, m), (1, 1));
        let warm = fresh.solve(2);
        assert!(warm.cache.result_memo_hit, "recovered memo must answer");
        assert_eq!(warm.size(), outcome.size());
    }

    #[test]
    fn undecodable_rows_are_dropped_not_fatal() {
        let gs = GraphState {
            name: "g".to_string(),
            source_path: "/tmp/g.clq".to_string(),
            content_hash: 1,
            witnesses: vec![(2, vec![1, 2, u64::from(u32::MAX) + 1])],
            memos: vec![MemoState {
                k: 2,
                preset: "kdc".to_string(),
                vertices: vec![1, 2],
                status: "definitely-not-a-status".to_string(),
                stats: String::new(),
            }],
        };
        let state = import_graph_state(&gs);
        assert!(state.witnesses.is_empty(), "overflowing vertex id dropped");
        assert!(state.memos.is_empty(), "bad status token dropped");
    }
}
