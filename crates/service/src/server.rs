//! The TCP front end: accept loop, per-connection line handlers, dispatch.
//!
//! See the crate docs for the threading model. The accept loop runs on the
//! caller's thread ([`Server::run`]) or a dedicated one ([`Server::spawn`]);
//! each accepted connection gets its own handler thread that parses one
//! command per line and writes one response line back. `SHUTDOWN` raises a
//! flag and pokes the listener with a loopback connection so `accept`
//! returns without platform-specific non-blocking machinery.

use crate::cache::GraphCache;
use crate::jobs::{JobObserver, JobOutcome, JobQueue, JobSpec, WorkerPool};
use crate::protocol::{err_line, parse_command, render_vertices, Command, OkLine};
use kdc::Status;
use kdc_api::{Event, Observer, Options};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Shared daemon state: the graph cache, the job queue, the shutdown latch.
struct Daemon {
    cache: GraphCache,
    queue: Arc<JobQueue>,
    shutdown: AtomicBool,
    addr: SocketAddr,
    /// Slow-query threshold in nanoseconds; solves at or above it are
    /// logged to stderr with their phase breakdown. `u64::MAX` disables.
    slow_threshold_ns: AtomicU64,
    /// Registry twin counting slow-query log entries.
    slow_queries: kdc_obs::Counter,
}

impl Daemon {
    fn request_shutdown(&self) {
        if !self.shutdown.swap(true, Ordering::SeqCst) {
            // Poke the accept loop awake. A wildcard bind address
            // (0.0.0.0 / ::) is not a connectable destination, so aim the
            // poke at loopback on the bound port. Errors are fine (the
            // listener may already be gone).
            let ip = if self.addr.ip().is_unspecified() {
                match self.addr {
                    SocketAddr::V4(_) => IpAddr::V4(Ipv4Addr::LOCALHOST),
                    SocketAddr::V6(_) => IpAddr::V6(Ipv6Addr::LOCALHOST),
                }
            } else {
                self.addr.ip()
            };
            let poke = SocketAddr::new(ip, self.addr.port());
            let _ = TcpStream::connect_timeout(&poke, Duration::from_secs(1));
        }
    }
}

/// A bound, not-yet-running daemon.
pub struct Server {
    listener: TcpListener,
    daemon: Arc<Daemon>,
    workers: usize,
}

/// Handle to a server running on a background thread (see [`Server::spawn`]).
pub struct ServerHandle {
    addr: SocketAddr,
    thread: std::thread::JoinHandle<std::io::Result<()>>,
}

impl ServerHandle {
    /// The bound address (useful with an ephemeral port 0 bind).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Waits for the server to shut down. A panicked accept loop is
    /// reported as an I/O error, not propagated as a panic.
    pub fn join(self) -> std::io::Result<()> {
        match self.thread.join() {
            Ok(result) => result,
            Err(_) => Err(std::io::Error::other("server thread panicked")),
        }
    }
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) with a pool
    /// of `workers` solver threads.
    pub fn bind(addr: &str, workers: usize) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(Server {
            listener,
            daemon: Arc::new(Daemon {
                cache: GraphCache::new(),
                queue: Arc::new(JobQueue::new()),
                shutdown: AtomicBool::new(false),
                addr,
                slow_threshold_ns: AtomicU64::new(DEFAULT_SLOW_THRESHOLD.as_nanos() as u64),
                slow_queries: kdc_obs::registry()
                    .register_counter("kdc_service_slow_queries_total"),
            }),
            workers,
        })
    }

    /// Sets the slow-query threshold (default [`DEFAULT_SLOW_THRESHOLD`]):
    /// solves whose wall-clock reaches it are logged to stderr with their
    /// per-phase time breakdown. `Duration::ZERO` logs every solve.
    pub fn with_slow_threshold(self, threshold: Duration) -> Self {
        let ns = threshold.as_nanos().min(u128::from(u64::MAX)) as u64;
        self.daemon.slow_threshold_ns.store(ns, Ordering::Relaxed);
        self
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.daemon.addr
    }

    /// Runs the accept loop on the current thread until `SHUTDOWN`.
    pub fn run(self) -> std::io::Result<()> {
        let Server {
            listener,
            daemon,
            workers,
        } = self;
        let pool = WorkerPool::new(daemon.queue.clone(), workers)?;
        for stream in listener.incoming() {
            if daemon.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            let daemon = daemon.clone();
            // Handler threads are detached: they die with the connection
            // (client EOF) or with the process; joining them could block
            // shutdown on a client that never hangs up.
            let _ = std::thread::Builder::new()
                .name("kdc-conn".to_string())
                .spawn(move || handle_connection(stream, &daemon));
        }
        daemon.queue.shutdown();
        pool.join();
        Ok(())
    }

    /// Runs the accept loop on a background thread; returns immediately.
    /// Fails with the OS error if the thread cannot be spawned.
    pub fn spawn(self) -> std::io::Result<ServerHandle> {
        let addr = self.local_addr();
        let thread = std::thread::Builder::new()
            .name("kdc-accept".to_string())
            .spawn(move || self.run())?;
        Ok(ServerHandle { addr, thread })
    }
}

/// Longest accepted request line. Any real command (a filesystem path plus
/// a few options) is far below this; past it the sender is broken or
/// hostile and an unbounded `read_line` would buffer its bytes forever.
const MAX_LINE_BYTES: u64 = 64 * 1024;

/// Default slow-query threshold (see [`Server::with_slow_threshold`]).
pub const DEFAULT_SLOW_THRESHOLD: Duration = Duration::from_secs(1);

fn handle_connection(stream: TcpStream, daemon: &Daemon) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let mut line = String::new();
    loop {
        line.clear();
        match (&mut reader).take(MAX_LINE_BYTES).read_line(&mut line) {
            Ok(0) | Err(_) => return, // client hung up (or sent non-UTF-8)
            Ok(_) => {}
        }
        if line.len() as u64 >= MAX_LINE_BYTES && !line.ends_with('\n') {
            // Oversized line: no way to resync mid-stream, so answer once
            // and hang up.
            let _ = writer.write_all(format!("{}\n", err_line("request line too long")).as_bytes());
            return;
        }
        if line.trim().is_empty() {
            continue;
        }
        let (response, shutdown) = match parse_command(line.trim()) {
            Err(e) => (err_line(&e), false),
            Ok(command) => execute(command, daemon, &mut writer),
        };
        if writer
            .write_all(format!("{response}\n").as_bytes())
            .and_then(|()| writer.flush())
            .is_err()
        {
            return;
        }
        if shutdown {
            daemon.request_shutdown();
            return;
        }
    }
}

/// Protocol token for a solve status.
fn status_token(status: Status) -> &'static str {
    match status {
        Status::Optimal => "optimal",
        Status::TimedOut => "timeout",
        Status::NodeLimitReached => "node-limit",
        Status::Cancelled => "cancelled",
    }
}

/// Executes one command; returns the final response line and whether to
/// shut down. A `SOLVE .. verbose=1` additionally streams `EVENT` lines to
/// `writer` while the search runs, before the final line is returned.
fn execute(command: Command, daemon: &Daemon, writer: &mut TcpStream) -> (String, bool) {
    let response = match command {
        Command::Load { path, name } => daemon.cache.load(&path, &name).map(|entry| {
            OkLine::new()
                .field("loaded", &entry.name)
                .field("n", entry.graph().n())
                .field("m", entry.graph().m())
                .field("parse_ms", entry.parse_time.as_millis())
                .render()
        }),
        Command::Solve {
            graph,
            k,
            preset,
            limit,
            nodes,
            threads,
            verbose,
        } => solve(
            daemon,
            &graph,
            SolveParams {
                k,
                preset,
                limit,
                nodes,
                threads,
                verbose,
            },
            writer,
        ),
        Command::Enumerate { graph, k, top } => enumerate(daemon, &graph, k, top),
        Command::Count { graph, k, min_size } => count(daemon, &graph, k, min_size),
        Command::Stats { graph } => stats(daemon, graph.as_deref()),
        Command::Unload { graph } => {
            if daemon.cache.unload(&graph) {
                Ok(OkLine::new().field("unloaded", &graph).render())
            } else {
                Err(format!("no graph named {graph:?}"))
            }
        }
        Command::Jobs => {
            let jobs = daemon.queue.list();
            let rendered: Vec<String> = jobs
                .iter()
                .map(|j| {
                    format!(
                        "{}:{}:{}:queued_ns={}:running_ns={}",
                        j.id,
                        j.state.as_str(),
                        j.description,
                        j.queued_ns,
                        j.running_ns
                    )
                })
                .collect();
            Ok(OkLine::new()
                .field("count", jobs.len())
                .field("jobs", rendered.join(";"))
                .render())
        }
        Command::Cancel { id } => daemon.queue.cancel(id).map(|was| {
            OkLine::new()
                .field("cancelled", id)
                .field("was", was.as_str())
                .render()
        }),
        Command::Metrics => metrics(writer),
        Command::Trace { id } => daemon.queue.trace(id).map(|trace| {
            OkLine::new()
                .field("job", id)
                .field("spans", trace.len())
                .field("dropped", trace.dropped())
                .field("trace", trace.export_chrome_json())
                .render()
        }),
        Command::Shutdown => {
            return (OkLine::new().field("shutdown", "ok").render(), true);
        }
    };
    match response {
        Ok(line) => (line, false),
        Err(e) => (err_line(&e), false),
    }
}

/// Streams the global registry as `METRIC <line>` lines onto the
/// connection; the returned final line reports the number of sample lines
/// (exposition lines that are not `# TYPE` headers). A dead client cannot
/// be told about write failures; the final line's delivery is attempted by
/// the caller like any other response.
fn metrics(writer: &mut TcpStream) -> Result<String, String> {
    let text = kdc_obs::registry().render_prometheus();
    let mut series = 0usize;
    for line in text.lines() {
        if !line.starts_with('#') {
            series += 1;
        }
        let _ = writer.write_all(format!("METRIC {line}\n").as_bytes());
    }
    let _ = writer.flush();
    Ok(OkLine::new().field("series", series).render())
}

/// Parameters of one `SOLVE` request (bundled to keep the call sites flat).
struct SolveParams {
    k: usize,
    preset: Option<String>,
    limit: Option<Duration>,
    nodes: Option<u64>,
    threads: usize,
    verbose: bool,
}

/// Renders one streamed event as an `EVENT` protocol line.
fn event_line(event: &Event) -> String {
    match *event {
        Event::Incumbent { size } => format!("EVENT type=incumbent size={size}"),
        Event::Retighten { vertices, edges } => {
            format!("EVENT type=retighten removed_v={vertices} removed_e={edges}")
        }
        Event::Restart { universe } => format!("EVENT type=restart universe={universe}"),
        Event::Done { status } => format!("EVENT type=done status={}", status_token(status)),
    }
}

fn solve(
    daemon: &Daemon,
    graph: &str,
    params: SolveParams,
    writer: &mut TcpStream,
) -> Result<String, String> {
    let entry = daemon
        .cache
        .get(graph)
        .ok_or_else(|| format!("no graph named {graph:?} (LOAD it first)"))?;
    let preset = params.preset.unwrap_or_else(|| "kdc".to_string());
    // Fail fast on a bad preset instead of burning a worker slot.
    Options::preset(&preset)?;
    // verbose=1: the job forwards events into a channel; this handler
    // drains it onto the connection until the worker drops its sender (job
    // finished), then falls through to the final response line. mpsc
    // senders are wrapped in a mutex only to stay `Sync` for the observer.
    let (observer, events) = if params.verbose {
        let (tx, rx) = mpsc::channel::<Event>();
        let tx = Mutex::new(tx);
        let observer: Arc<dyn Observer> = Arc::new(move |e: &Event| {
            // A poisoned sender mutex means an earlier event callback
            // panicked; dropping this event is strictly better than killing
            // the whole job with a second panic.
            if let Ok(tx) = tx.lock() {
                let _ = tx.send(*e);
            }
        });
        (Some(JobObserver(observer)), Some(rx))
    } else {
        (None, None)
    };
    // Every daemon solve carries a tracer, so `TRACE <id>` works after the
    // fact and the slow-query log can print a phase breakdown.
    let trace = kdc_obs::Tracer::new();
    let id = daemon.queue.submit(JobSpec::Solve {
        entry,
        k: params.k,
        preset: preset.clone(),
        limit: params.limit,
        nodes: params.nodes,
        threads: params.threads,
        observer,
        trace: Some(trace.clone()),
    });
    if let Some(rx) = events {
        while let Ok(event) = rx.recv() {
            // A dead client cannot be told about it; keep draining so the
            // job is not blocked on a full channel, skip the writes.
            let _ = writer
                .write_all(format!("{}\n", event_line(&event)).as_bytes())
                .and_then(|()| writer.flush());
        }
    }
    match daemon.queue.wait(id) {
        JobOutcome::Done(outcome) => {
            let elapsed_ns = outcome.elapsed.as_nanos().min(u128::from(u64::MAX)) as u64;
            if elapsed_ns >= daemon.slow_threshold_ns.load(Ordering::Relaxed) {
                daemon.slow_queries.inc();
                let phases: Vec<String> = trace
                    .summary()
                    .iter()
                    .map(|p| format!("{}={}ns/{}", p.name, p.total_ns, p.count))
                    .collect();
                eprintln!(
                    "kdc_service slow query: job={id} graph={graph} preset={preset} \
                     k={} elapsed_ms={} phases=[{}]",
                    params.k,
                    outcome.elapsed.as_millis(),
                    phases.join(" ")
                );
            }
            Ok(OkLine::new()
                .field("job", id)
                .field("graph", graph)
                .field("status", status_token(outcome.status))
                .field("size", outcome.size())
                .field(
                    "vertices",
                    render_vertices(outcome.best().unwrap_or_default()),
                )
                .field("cached", outcome.cache.result_memo_hit)
                .field("ctcp_resumed", outcome.cache.ctcp_resumed)
                .field("elapsed_ms", outcome.elapsed.as_millis())
                .field("nodes", outcome.stats.nodes)
                .field("ctcp_removed_v", outcome.stats.ctcp_vertex_removals)
                .field("ctcp_removed_e", outcome.stats.ctcp_edge_removals)
                .field("arena_reuses", outcome.stats.arena_reuses)
                .field("universe_rebuilds", outcome.stats.universe_rebuilds)
                .render())
        }
        JobOutcome::Error(e) => Err(e),
    }
}

fn enumerate(daemon: &Daemon, graph: &str, k: usize, top: usize) -> Result<String, String> {
    let entry = daemon
        .cache
        .get(graph)
        .ok_or_else(|| format!("no graph named {graph:?} (LOAD it first)"))?;
    let id = daemon.queue.submit(JobSpec::Enumerate { entry, k, top });
    match daemon.queue.wait(id) {
        JobOutcome::Done(outcome) => {
            let complete = outcome.status == Status::Optimal;
            let sizes: Vec<String> = outcome
                .witnesses
                .iter()
                .map(|c| c.len().to_string())
                .collect();
            let rendered: Vec<String> = outcome
                .witnesses
                .iter()
                .map(|c| render_vertices(c))
                .collect();
            Ok(OkLine::new()
                .field("job", id)
                .field("graph", graph)
                .field("status", if complete { "complete" } else { "cancelled" })
                .field("count", outcome.witnesses.len())
                .field("sizes", sizes.join(","))
                .field("cliques", rendered.join(";"))
                .field("elapsed_ms", outcome.elapsed.as_millis())
                .render())
        }
        JobOutcome::Error(e) => Err(e),
    }
}

fn count(daemon: &Daemon, graph: &str, k: usize, min_size: usize) -> Result<String, String> {
    let entry = daemon
        .cache
        .get(graph)
        .ok_or_else(|| format!("no graph named {graph:?} (LOAD it first)"))?;
    let id = daemon.queue.submit(JobSpec::Count { entry, k, min_size });
    match daemon.queue.wait(id) {
        JobOutcome::Done(outcome) => {
            let Some(counts) = outcome.counts else {
                return Err("internal: count job returned no counts".to_string());
            };
            // Render only the non-zero sizes as size:count pairs.
            let rendered: Vec<String> = counts
                .counts
                .iter()
                .enumerate()
                .filter(|&(_, &c)| c > 0)
                .map(|(s, &c)| format!("{s}:{c}"))
                .collect();
            Ok(OkLine::new()
                .field("job", id)
                .field("graph", graph)
                .field("max_size", counts.max_size())
                .field("total", counts.total_at_least(min_size))
                .field("counts", rendered.join(","))
                .field("elapsed_ms", outcome.elapsed.as_millis())
                .render())
        }
        JobOutcome::Error(e) => Err(e),
    }
}

fn stats(daemon: &Daemon, graph: Option<&str>) -> Result<String, String> {
    match graph {
        Some(name) => {
            let entry = daemon
                .cache
                .get(name)
                .ok_or_else(|| format!("no graph named {name:?}"))?;
            // Force the artifact before sampling counters, so the reported
            // peel_builds already reflects this request's build (if any).
            let degeneracy = entry.session().degeneracy();
            let counters = entry.session().counters();
            Ok(OkLine::new()
                .field("graph", name)
                .field("n", entry.graph().n())
                .field("m", entry.graph().m())
                .field("degeneracy", degeneracy)
                .field("parse_ms", entry.parse_time.as_millis())
                .field("hits", entry.hits())
                .field("peel_builds", counters.peel_builds)
                .field("solves", counters.solves)
                .field("result_hits", counters.result_hits)
                .field("ctcp_builds", counters.ctcp_builds)
                .field("ctcp_resumes", counters.ctcp_resumes)
                .field("ctcp_evictions", counters.ctcp_evictions)
                .render())
        }
        None => Ok(OkLine::new()
            .field("graphs", daemon.cache.names().join(","))
            .field("parses", daemon.cache.parses())
            .field("jobs", daemon.queue.list().len())
            .render()),
    }
}

/// One-shot client helper: connect, send one command line, read the
/// response. Any `EVENT` lines streamed by a `verbose=1` solve, and any
/// `METRIC` lines streamed by `METRICS`, are included (newline-separated)
/// before the final `OK`/`ERR` line, which is always the last line of the
/// returned string. Used by `kdc client` and the tests.
pub fn request(addr: &str, command: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.write_all(format!("{command}\n").as_bytes())?;
    stream.flush()?;
    let mut reader = BufReader::new(stream);
    let mut lines: Vec<String> = Vec::new();
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            break; // server hung up mid-stream; return what arrived
        }
        let trimmed = line.trim_end().to_string();
        let streamed = trimmed.starts_with("EVENT ") || trimmed.starts_with("METRIC ");
        lines.push(trimmed);
        if !streamed {
            break;
        }
    }
    Ok(lines.join("\n"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdc_graph::named;

    fn write_figure2() -> String {
        let dir = std::env::temp_dir().join(format!("kdc_service_unit_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("figure2.clq");
        kdc_graph::io::write_dimacs(&named::figure2(), &path).unwrap();
        path.to_string_lossy().into_owned()
    }

    #[test]
    fn single_connection_session() {
        let path = write_figure2();
        let handle = Server::bind("127.0.0.1:0", 2).unwrap().spawn().unwrap();
        let addr = handle.addr().to_string();

        let resp = request(&addr, &format!("LOAD {path} AS fig2")).unwrap();
        assert!(resp.starts_with("OK loaded=fig2 n=12 m=26"), "{resp}");

        let resp = request(&addr, "SOLVE fig2 k=2").unwrap();
        assert!(resp.contains("status=optimal"), "{resp}");
        assert!(resp.contains("size=6"), "{resp}");
        assert!(resp.contains("cached=false"), "{resp}");

        // Second identical solve is answered from the memo.
        let resp = request(&addr, "SOLVE fig2 k=2").unwrap();
        assert!(resp.contains("cached=true"), "{resp}");

        let resp = request(&addr, "ENUMERATE fig2 k=1 top=2").unwrap();
        assert!(resp.contains("count=2"), "{resp}");
        assert!(resp.contains("sizes=5,5"), "{resp}");

        let resp = request(&addr, "STATS fig2").unwrap();
        assert!(resp.contains("degeneracy="), "{resp}");
        assert!(resp.contains("peel_builds=1"), "{resp}");
        assert!(
            resp.contains("ctcp_builds=1") && resp.contains("ctcp_resumes=0"),
            "one cold solve builds the resident reducer once: {resp}"
        );

        let resp = request(&addr, "JOBS").unwrap();
        assert!(resp.starts_with("OK count=3"), "{resp}");

        let resp = request(&addr, "UNLOAD fig2").unwrap();
        assert_eq!(resp, "OK unloaded=fig2");
        let resp = request(&addr, "SOLVE fig2 k=2").unwrap();
        assert!(resp.starts_with("ERR "), "{resp}");

        let resp = request(&addr, "SHUTDOWN").unwrap();
        assert_eq!(resp, "OK shutdown=ok");
        handle.join().unwrap();
    }

    #[test]
    fn malformed_lines_get_err_without_killing_connection() {
        let handle = Server::bind("127.0.0.1:0", 1).unwrap().spawn().unwrap();
        let addr = handle.addr().to_string();
        // One persistent connection, several bad lines, then a good one.
        let mut stream = TcpStream::connect(&addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut send = |line: &str| {
            stream.write_all(format!("{line}\n").as_bytes()).unwrap();
            let mut resp = String::new();
            reader.read_line(&mut resp).unwrap();
            resp.trim_end().to_string()
        };
        assert!(send("BOGUS").starts_with("ERR "));
        assert!(send("SOLVE nowhere k=1").starts_with("ERR "));
        assert!(send("LOAD /nonexistent.clq AS g").starts_with("ERR "));
        assert!(send("STATS").starts_with("OK graphs= parses=0"));
        assert_eq!(send("SHUTDOWN"), "OK shutdown=ok");
        handle.join().unwrap();
    }

    #[test]
    fn unload_missing_graph_is_an_error() {
        let handle = Server::bind("127.0.0.1:0", 1).unwrap().spawn().unwrap();
        let addr = handle.addr().to_string();
        assert!(request(&addr, "UNLOAD ghost").unwrap().starts_with("ERR "));
        assert!(request(&addr, "CANCEL 42").unwrap().starts_with("ERR "));
        request(&addr, "SHUTDOWN").unwrap();
        handle.join().unwrap();
    }
}
