//! The TCP front end: accept loop, per-connection line handlers, dispatch.
//!
//! See the crate docs for the threading model. The accept loop runs on the
//! caller's thread ([`Server::run`]) or a dedicated one ([`Server::spawn`]);
//! each accepted connection gets its own handler thread that parses one
//! command per line and writes one response line back. `SHUTDOWN` raises a
//! flag and pokes the listener with a loopback connection so `accept`
//! returns without platform-specific non-blocking machinery.

use crate::cache::GraphCache;
use crate::jobs::{JobObserver, JobOutcome, JobQueue, JobSpec, SubmitError, WorkerPool};
use crate::persist::{Persist, PersistHandle};
use crate::protocol::{err_line, parse_command, render_vertices, Command, OkLine, ShutdownMode};
use kdc::Status;
use kdc_api::{Event, Observer, Options};
use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// The `retry_after_ms` hint attached to `ERR busy` replies. A constant,
/// not a measurement: clients jitter around it anyway (see
/// [`request_with_retry`]), so a cheap fixed hint beats a queue estimate.
const RETRY_AFTER_MS: u64 = 50;

/// Shared daemon state: the graph cache, the job queue, the shutdown latch,
/// and the admission/lifecycle configuration (all atomics so builders and
/// handler threads never contend on a lock).
struct Daemon {
    cache: GraphCache,
    queue: Arc<JobQueue>,
    shutdown: AtomicBool,
    /// `SHUTDOWN mode=drain` was requested: finish outstanding jobs before
    /// the pool goes down (checked by `run` after the accept loop exits).
    drain: AtomicBool,
    addr: SocketAddr,
    /// Slow-query threshold in nanoseconds; solves at or above it are
    /// logged to stderr with their phase breakdown. `u64::MAX` disables.
    slow_threshold_ns: AtomicU64,
    /// Max concurrent connections (0 = unlimited).
    max_conns: AtomicUsize,
    /// Max queued jobs before `SOLVE`/`ENUMERATE`/`COUNT` answer busy
    /// (0 = unlimited).
    max_queue: AtomicUsize,
    /// Per-connection idle read/write timeout in ms (0 = none).
    idle_timeout_ms: AtomicU64,
    /// Watchdog default deadline in ms for limit-less jobs (0 = no watchdog).
    watchdog_ms: AtomicU64,
    /// Connections currently being served (admission-control numerator).
    active_conns: AtomicUsize,
    /// Registry twin counting slow-query log entries.
    slow_queries: kdc_obs::Counter,
    /// Admissions refused (connection cap or queue depth).
    busy_rejections: kdc_obs::Counter,
    /// Connections closed by the idle read/write timeout.
    conn_timeouts: kdc_obs::Counter,
    /// Connections closed on a real I/O error (not clean EOF, not timeout).
    conn_errors: kdc_obs::Counter,
    /// Faults injected at the connection-level points (accept/read/write).
    faults_injected: kdc_obs::Counter,
    /// Durable session state, armed by [`Server::with_state_dir`]; absent
    /// (the default) the daemon runs purely in-memory as before.
    persist: OnceLock<PersistHandle>,
}

impl Daemon {
    fn request_shutdown(&self) {
        if !self.shutdown.swap(true, Ordering::SeqCst) {
            // Poke the accept loop awake. A wildcard bind address
            // (0.0.0.0 / ::) is not a connectable destination, so aim the
            // poke at loopback on the bound port. Errors are fine (the
            // listener may already be gone).
            let ip = if self.addr.ip().is_unspecified() {
                match self.addr {
                    SocketAddr::V4(_) => IpAddr::V4(Ipv4Addr::LOCALHOST),
                    SocketAddr::V6(_) => IpAddr::V6(Ipv6Addr::LOCALHOST),
                }
            } else {
                self.addr.ip()
            };
            let poke = SocketAddr::new(ip, self.addr.port());
            let _ = TcpStream::connect_timeout(&poke, Duration::from_secs(1));
        }
    }
}

/// A bound, not-yet-running daemon.
pub struct Server {
    listener: TcpListener,
    daemon: Arc<Daemon>,
    workers: usize,
}

/// Handle to a server running on a background thread (see [`Server::spawn`]).
pub struct ServerHandle {
    addr: SocketAddr,
    thread: std::thread::JoinHandle<std::io::Result<()>>,
}

impl ServerHandle {
    /// The bound address (useful with an ephemeral port 0 bind).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Waits for the server to shut down. A panicked accept loop is
    /// reported as an I/O error, not propagated as a panic.
    pub fn join(self) -> std::io::Result<()> {
        match self.thread.join() {
            Ok(result) => result,
            Err(_) => Err(std::io::Error::other("server thread panicked")),
        }
    }
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) with a pool
    /// of `workers` solver threads.
    pub fn bind(addr: &str, workers: usize) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let r = kdc_obs::registry();
        Ok(Server {
            listener,
            daemon: Arc::new(Daemon {
                cache: GraphCache::new(),
                queue: Arc::new(JobQueue::new()),
                shutdown: AtomicBool::new(false),
                drain: AtomicBool::new(false),
                addr,
                slow_threshold_ns: AtomicU64::new(DEFAULT_SLOW_THRESHOLD.as_nanos() as u64),
                max_conns: AtomicUsize::new(0),
                max_queue: AtomicUsize::new(0),
                idle_timeout_ms: AtomicU64::new(0),
                watchdog_ms: AtomicU64::new(0),
                active_conns: AtomicUsize::new(0),
                slow_queries: r.register_counter("kdc_service_slow_queries_total"),
                busy_rejections: r.register_counter("kdc_service_busy_rejections_total"),
                conn_timeouts: r.register_counter("kdc_service_conn_timeouts_total"),
                conn_errors: r.register_counter("kdc_service_conn_errors_total"),
                faults_injected: r.register_counter("kdc_service_faults_injected_total"),
                persist: OnceLock::new(),
            }),
            workers,
        })
    }

    /// Arms durable session state: opens (or creates) the snapshot/journal
    /// store in `dir`, replays whatever a previous process left there —
    /// including a torn tail from a mid-write kill, which is truncated to
    /// the last valid record — rehydrates every recovered graph whose
    /// source file still hashes to the snapshot's content hash, and from
    /// then on journals each newly proven outcome. See the `persist`
    /// module and the `kdc_store` crate.
    ///
    /// # Errors
    ///
    /// Fails when the state directory cannot be created or its files
    /// cannot be read; a *damaged* store is not an error (the damaged
    /// suffix is dropped and counted in `kdc_store_*_dropped_total`).
    pub fn with_state_dir(self, dir: impl AsRef<std::path::Path>) -> Result<Self, String> {
        let (store, recovered) = kdc_store::Store::open(dir.as_ref())?;
        let persist = Arc::new(Persist::new(store));
        persist.recover(&self.daemon.cache, &recovered);
        if self.daemon.persist.set(persist).is_err() {
            return Err("state directory already configured".to_string());
        }
        Ok(self)
    }

    /// Sets the slow-query threshold (default [`DEFAULT_SLOW_THRESHOLD`]):
    /// solves whose wall-clock reaches it are logged to stderr with their
    /// per-phase time breakdown. `Duration::ZERO` logs every solve.
    pub fn with_slow_threshold(self, threshold: Duration) -> Self {
        let ns = threshold.as_nanos().min(u128::from(u64::MAX)) as u64;
        self.daemon.slow_threshold_ns.store(ns, Ordering::Relaxed);
        self
    }

    /// Admission control: at most `max_conns` concurrent connections (extra
    /// accepts get one `ERR busy active_conns=..` line and are closed) and
    /// at most `max_queue` queued jobs (extra `SOLVE`/`ENUMERATE`/`COUNT`
    /// requests get `ERR busy queue_depth=..`). 0 = unlimited (the default).
    pub fn with_limits(self, max_conns: usize, max_queue: usize) -> Self {
        self.daemon.max_conns.store(max_conns, Ordering::Relaxed);
        self.daemon.max_queue.store(max_queue, Ordering::Relaxed);
        self
    }

    /// Per-connection idle timeout: a connection whose socket stays silent
    /// (no readable bytes, or an unwritable peer) for `timeout` is counted
    /// in `kdc_service_conn_timeouts_total` and closed — the defense
    /// against half-open clients holding handler threads forever.
    /// `Duration::ZERO` disables (the default).
    pub fn with_idle_timeout(self, timeout: Duration) -> Self {
        let ms = timeout.as_millis().min(u128::from(u64::MAX)) as u64;
        self.daemon.idle_timeout_ms.store(ms, Ordering::Relaxed);
        self
    }

    /// Watchdog: jobs submitted *without* their own `limit=`/`nodes=`
    /// budget are cooperatively cancelled once they have been running for
    /// `deadline`, and reported as `failed reason=watchdog` in `JOBS`.
    /// `Duration::ZERO` disables (the default).
    pub fn with_watchdog(self, deadline: Duration) -> Self {
        let ms = deadline.as_millis().min(u128::from(u64::MAX)) as u64;
        self.daemon.watchdog_ms.store(ms, Ordering::Relaxed);
        self
    }

    /// Caps the graph cache at `capacity` resident graphs, evicting the
    /// least recently used on overflow (`kdc_service_cache_evictions_total`,
    /// `cache_evictions=` in server-wide `STATS`). 0 = unlimited (the
    /// default).
    pub fn with_cache_capacity(self, capacity: usize) -> Self {
        self.daemon.cache.set_capacity(capacity);
        self
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.daemon.addr
    }

    /// Runs the accept loop on the current thread until `SHUTDOWN`. With
    /// `mode=drain`, queued and running jobs finish (and answer their
    /// waiters) before the pool is torn down; the default `mode=abort`
    /// cancels them cooperatively.
    pub fn run(self) -> std::io::Result<()> {
        let Server {
            listener,
            daemon,
            workers,
        } = self;
        let pool = WorkerPool::new(daemon.queue.clone(), workers)?;
        let watchdog = spawn_watchdog(&daemon)?;
        for stream in listener.incoming() {
            if daemon.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(mut stream) = stream else { continue };
            // Connection admission: over the cap, the client gets one typed
            // busy line (best effort — it may only see the hangup) and the
            // socket is closed without spawning a handler.
            let cap = daemon.max_conns.load(Ordering::Relaxed);
            let active = daemon.active_conns.load(Ordering::Relaxed);
            if cap > 0 && active >= cap {
                daemon.busy_rejections.inc();
                let busy = err_line(&format!(
                    "busy active_conns={active} retry_after_ms={RETRY_AFTER_MS}"
                ));
                let _ = stream.write_all(format!("{busy}\n").as_bytes());
                continue;
            }
            daemon.active_conns.fetch_add(1, Ordering::Relaxed);
            let conn_daemon = daemon.clone();
            // Handler threads are detached: they die with the connection
            // (client EOF) or with the process; joining them could block
            // shutdown on a client that never hangs up.
            let spawned = std::thread::Builder::new()
                .name("kdc-conn".to_string())
                .spawn(move || {
                    // The guard decrements the active-connection count on
                    // every exit path, including an unwinding fault panic.
                    let _guard = ConnGuard(&conn_daemon);
                    handle_connection(stream, &conn_daemon);
                });
            if spawned.is_err() {
                // Never spawned, so the guard never ran.
                daemon.active_conns.fetch_sub(1, Ordering::Relaxed);
            }
        }
        if daemon.drain.load(Ordering::SeqCst) {
            // Graceful drain: block until every queued and running job has
            // published its real outcome (waiting connections and verbose
            // event streams complete), then stop the pool.
            daemon.queue.drain();
        }
        daemon.queue.shutdown();
        pool.join();
        if let Some((stop, thread)) = watchdog {
            stop.store(true, Ordering::Relaxed);
            let _ = thread.join();
        }
        // Final fold: every worker has finished, so the snapshot written
        // here captures the complete end-of-life session state (best
        // effort, like every other store write).
        if let Some(persist) = daemon.persist.get() {
            persist.compact_now(&daemon.cache);
        }
        Ok(())
    }

    /// Runs the accept loop on a background thread; returns immediately.
    /// Fails with the OS error if the thread cannot be spawned.
    pub fn spawn(self) -> std::io::Result<ServerHandle> {
        let addr = self.local_addr();
        let thread = std::thread::Builder::new()
            .name("kdc-accept".to_string())
            .spawn(move || self.run())?;
        Ok(ServerHandle { addr, thread })
    }
}

/// Decrements the active-connection count when a handler thread exits, on
/// every path — clean EOF, error return, or an unwinding injected panic.
struct ConnGuard<'a>(&'a Daemon);

impl Drop for ConnGuard<'_> {
    fn drop(&mut self) {
        self.0.active_conns.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Spawns the watchdog thread when a deadline is configured. It polls at a
/// quarter of the deadline (clamped to 10–250 ms) and cooperatively cancels
/// limit-less jobs that overstay; the returned stop flag + handle are
/// flipped/joined by `run` after the pool exits.
#[allow(clippy::type_complexity)]
fn spawn_watchdog(
    daemon: &Arc<Daemon>,
) -> std::io::Result<Option<(Arc<AtomicBool>, std::thread::JoinHandle<()>)>> {
    let ms = daemon.watchdog_ms.load(Ordering::Relaxed);
    if ms == 0 {
        return Ok(None);
    }
    let deadline = Duration::from_millis(ms);
    let poll = Duration::from_millis((ms / 4).clamp(10, 250));
    let stop = Arc::new(AtomicBool::new(false));
    let queue = daemon.queue.clone();
    let stop_flag = stop.clone();
    let thread = std::thread::Builder::new()
        .name("kdc-watchdog".to_string())
        .spawn(move || {
            while !stop_flag.load(Ordering::Relaxed) {
                queue.watchdog_sweep(deadline);
                std::thread::sleep(poll);
            }
        })?;
    Ok(Some((stop, thread)))
}

/// Longest accepted request line. Any real command (a filesystem path plus
/// a few options) is far below this; past it the sender is broken or
/// hostile and an unbounded `read_line` would buffer its bytes forever.
const MAX_LINE_BYTES: u64 = 64 * 1024;

/// Default slow-query threshold (see [`Server::with_slow_threshold`]).
pub const DEFAULT_SLOW_THRESHOLD: Duration = Duration::from_secs(1);

/// True when an I/O error is the idle-timeout deadline firing (blocking
/// sockets report `SO_RCVTIMEO`/`SO_SNDTIMEO` expiry as either kind,
/// platform-dependent).
fn is_timeout(e: &std::io::Error) -> bool {
    matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)
}

fn handle_connection(stream: TcpStream, daemon: &Daemon) {
    // The accept fault point runs here, on the handler thread, so an
    // injected panic kills exactly one connection and never the accept loop.
    if let Some(action) = kdc_faults::check(kdc_faults::Point::Accept) {
        daemon.faults_injected.inc();
        match action {
            kdc_faults::Action::Delay(d) => std::thread::sleep(d),
            kdc_faults::Action::Error | kdc_faults::Action::TornWrite => {
                let mut stream = stream;
                let _ = stream
                    .write_all(format!("{}\n", err_line("fault injected at accept")).as_bytes());
                return;
            }
            kdc_faults::Action::DropConnection => return,
            kdc_faults::Action::Panic => kdc_faults::panic_now(kdc_faults::Point::Accept),
        }
    }
    let idle_ms = daemon.idle_timeout_ms.load(Ordering::Relaxed);
    if idle_ms > 0 {
        // Socket options live on the underlying fd, shared with the clone
        // below. A failure to set them degrades to no timeout, which the
        // pre-`--idle-secs` daemon always ran with.
        let timeout = Some(Duration::from_millis(idle_ms));
        let _ = stream.set_read_timeout(timeout);
        let _ = stream.set_write_timeout(timeout);
    }
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let mut line = String::new();
    loop {
        line.clear();
        match (&mut reader).take(MAX_LINE_BYTES).read_line(&mut line) {
            Ok(0) => return, // clean EOF: the client is done, nothing to log
            Err(e) if is_timeout(&e) => {
                // Idle (possibly half-open) connection: reclaim the handler
                // thread. The goodbye line is best effort — a half-open
                // peer will never read it.
                daemon.conn_timeouts.inc();
                let _ =
                    writer.write_all(format!("{}\n", err_line("idle timeout, closing")).as_bytes());
                return;
            }
            Err(e) => {
                // A real transport error (reset, non-UTF-8 bytes, ...) is
                // not a hangup: count it and log it like a slow query.
                daemon.conn_errors.inc();
                eprintln!("kdc_service connection error: read failed: {e}");
                return;
            }
            Ok(_) => {}
        }
        if line.len() as u64 >= MAX_LINE_BYTES && !line.ends_with('\n') {
            // Oversized line: no way to resync mid-stream, so answer once
            // and hang up.
            let _ = writer.write_all(format!("{}\n", err_line("request line too long")).as_bytes());
            return;
        }
        if line.trim().is_empty() {
            continue;
        }
        // conn_read fault point: after a request line arrives, before it is
        // parsed. `Error` answers a typed line and keeps the connection.
        let mut injected: Option<String> = None;
        if let Some(action) = kdc_faults::check(kdc_faults::Point::ConnRead) {
            daemon.faults_injected.inc();
            match action {
                kdc_faults::Action::Delay(d) => std::thread::sleep(d),
                kdc_faults::Action::Error | kdc_faults::Action::TornWrite => {
                    injected = Some(err_line("fault injected at conn_read"));
                }
                kdc_faults::Action::DropConnection => return,
                kdc_faults::Action::Panic => kdc_faults::panic_now(kdc_faults::Point::ConnRead),
            }
        }
        let (response, shutdown) = match injected {
            Some(response) => (response, false),
            None => match parse_command(line.trim()) {
                Err(e) => (err_line(&e), false),
                Ok(command) => execute(command, daemon, &mut writer),
            },
        };
        // conn_write fault point: before the final response line goes out.
        // `Error` cannot be reported over the write it is failing, so both
        // it and `DropConnection` sever the connection with the response
        // unsent — exactly the torn-reply case clients must survive.
        if let Some(action) = kdc_faults::check(kdc_faults::Point::ConnWrite) {
            daemon.faults_injected.inc();
            match action {
                kdc_faults::Action::Delay(d) => std::thread::sleep(d),
                kdc_faults::Action::Error
                | kdc_faults::Action::DropConnection
                | kdc_faults::Action::TornWrite => return,
                kdc_faults::Action::Panic => kdc_faults::panic_now(kdc_faults::Point::ConnWrite),
            }
        }
        if let Err(e) = writer
            .write_all(format!("{response}\n").as_bytes())
            .and_then(|()| writer.flush())
        {
            if is_timeout(&e) {
                daemon.conn_timeouts.inc();
            } else {
                daemon.conn_errors.inc();
                eprintln!("kdc_service connection error: write failed: {e}");
            }
            return;
        }
        if shutdown {
            daemon.request_shutdown();
            return;
        }
    }
}

/// Protocol token for a solve status.
fn status_token(status: Status) -> &'static str {
    match status {
        Status::Optimal => "optimal",
        Status::TimedOut => "timeout",
        Status::NodeLimitReached => "node-limit",
        Status::Cancelled => "cancelled",
    }
}

/// Executes one command; returns the final response line and whether to
/// shut down. A `SOLVE .. verbose=1` additionally streams `EVENT` lines to
/// `writer` while the search runs, before the final line is returned.
fn execute(command: Command, daemon: &Daemon, writer: &mut TcpStream) -> (String, bool) {
    let response = match command {
        Command::Load { path, name } => daemon.cache.load(&path, &name).map(|entry| {
            OkLine::new()
                .field("loaded", &entry.name)
                .field("n", entry.graph().n())
                .field("m", entry.graph().m())
                .field("parse_ms", entry.parse_time.as_millis())
                .render()
        }),
        Command::Solve {
            graph,
            k,
            preset,
            limit,
            nodes,
            threads,
            verbose,
        } => solve(
            daemon,
            &graph,
            SolveParams {
                k,
                preset,
                limit,
                nodes,
                threads,
                verbose,
            },
            writer,
        ),
        Command::MSolve {
            graph,
            k_lo,
            k_hi,
            r,
            preset,
            limit,
            nodes,
            threads,
        } => msolve(
            daemon,
            &graph,
            MSolveParams {
                k_lo,
                k_hi,
                r,
                preset,
                limit,
                nodes,
                threads,
            },
            writer,
        ),
        Command::Enumerate { graph, k, top } => enumerate(daemon, &graph, k, top),
        Command::Count { graph, k, min_size } => count(daemon, &graph, k, min_size),
        Command::Stats { graph } => stats(daemon, graph.as_deref()),
        Command::Unload { graph } => {
            if daemon.cache.unload(&graph) {
                Ok(OkLine::new().field("unloaded", &graph).render())
            } else {
                Err(format!("no graph named {graph:?}"))
            }
        }
        Command::Jobs => {
            let jobs = daemon.queue.list();
            let rendered: Vec<String> = jobs
                .iter()
                .map(|j| {
                    // `:reason=..` appears only when the daemon (today: the
                    // watchdog) decided the job's fate, so rows of ordinary
                    // jobs keep their historical shape.
                    let reason = j.reason.map(|r| format!(":reason={r}")).unwrap_or_default();
                    format!(
                        "{}:{}:{}:queued_ns={}:running_ns={}{reason}",
                        j.id,
                        j.state.as_str(),
                        j.description,
                        j.queued_ns,
                        j.running_ns
                    )
                })
                .collect();
            Ok(OkLine::new()
                .field("count", jobs.len())
                .field("jobs", rendered.join(";"))
                .render())
        }
        Command::Cancel { id } => daemon.queue.cancel(id).map(|was| {
            OkLine::new()
                .field("cancelled", id)
                .field("was", was.as_str())
                .render()
        }),
        Command::Metrics => metrics(writer),
        Command::Trace { id } => daemon.queue.trace(id).map(|trace| {
            OkLine::new()
                .field("job", id)
                .field("spans", trace.len())
                .field("dropped", trace.dropped())
                .field("trace", trace.export_chrome_json())
                .render()
        }),
        Command::Faults { plan } => faults_verb(plan.as_deref()),
        Command::Shutdown { mode } => {
            if mode == ShutdownMode::Drain {
                daemon.drain.store(true, Ordering::SeqCst);
            }
            return (
                OkLine::new()
                    .field("shutdown", "ok")
                    .field("mode", mode.as_str())
                    .render(),
                true,
            );
        }
    };
    match response {
        Ok(line) => (line, false),
        Err(e) => (err_line(&e), false),
    }
}

/// The debug-only `FAULTS` verb: status / install / disarm. Release builds
/// refuse, so a production daemon cannot be fault-armed over the wire (the
/// `KDC_FAULTS` environment variable at startup works in any build).
#[cfg(debug_assertions)]
fn faults_verb(plan: Option<&str>) -> Result<String, String> {
    match plan {
        None => Ok(OkLine::new().field("faults", kdc_faults::status()).render()),
        Some("off") => {
            kdc_faults::disarm_all();
            Ok(OkLine::new().field("faults", "off").render())
        }
        Some(plan) => kdc_faults::install_plan(plan).map(|rules| {
            OkLine::new()
                .field("faults", "armed")
                .field("rules", rules)
                .render()
        }),
    }
}

#[cfg(not(debug_assertions))]
fn faults_verb(_plan: Option<&str>) -> Result<String, String> {
    Err("FAULTS requires a debug build (set KDC_FAULTS at startup instead)".to_string())
}

/// Submits through the admission bound, translating a refusal into the
/// typed `busy` error line (`retry_after_ms` is the client backoff hint).
fn submit_checked(daemon: &Daemon, spec: JobSpec) -> Result<u64, String> {
    let max_queue = daemon.max_queue.load(Ordering::Relaxed);
    daemon
        .queue
        .try_submit(spec, max_queue)
        .map_err(|e| match e {
            SubmitError::Busy { depth } => {
                daemon.busy_rejections.inc();
                format!("busy queue_depth={depth} retry_after_ms={RETRY_AFTER_MS}")
            }
            SubmitError::ShuttingDown => "server shutting down".to_string(),
        })
}

/// Streams the global registry as `METRIC <line>` lines onto the
/// connection; the returned final line reports the number of sample lines
/// (exposition lines that are not `# TYPE` headers). A dead client cannot
/// be told about write failures; the final line's delivery is attempted by
/// the caller like any other response.
fn metrics(writer: &mut TcpStream) -> Result<String, String> {
    let text = kdc_obs::registry().render_prometheus();
    let mut series = 0usize;
    for line in text.lines() {
        if !line.starts_with('#') {
            series += 1;
        }
        let _ = writer.write_all(format!("METRIC {line}\n").as_bytes());
    }
    let _ = writer.flush();
    Ok(OkLine::new().field("series", series).render())
}

/// Parameters of one `SOLVE` request (bundled to keep the call sites flat).
struct SolveParams {
    k: usize,
    preset: Option<String>,
    limit: Option<Duration>,
    nodes: Option<u64>,
    threads: usize,
    verbose: bool,
}

/// Renders one streamed event as an `EVENT` protocol line.
fn event_line(event: &Event) -> String {
    match *event {
        Event::Incumbent { size } => format!("EVENT type=incumbent size={size}"),
        Event::Retighten { vertices, edges } => {
            format!("EVENT type=retighten removed_v={vertices} removed_e={edges}")
        }
        Event::Restart { universe } => format!("EVENT type=restart universe={universe}"),
        // Batch sub-query completions get their own streamed prefix (the
        // MSOLVE handler turns them into `RESULT` lines); as a plain EVENT
        // they carry the same fields for verbose non-batch observers.
        Event::SubDone {
            index,
            k,
            size,
            status,
        } => format!(
            "EVENT type=subdone idx={index} k={k} size={size} status={}",
            status_token(status)
        ),
        Event::Done { status } => format!("EVENT type=done status={}", status_token(status)),
    }
}

fn solve(
    daemon: &Daemon,
    graph: &str,
    params: SolveParams,
    writer: &mut TcpStream,
) -> Result<String, String> {
    let entry = daemon
        .cache
        .get(graph)
        .ok_or_else(|| format!("no graph named {graph:?} (LOAD it first)"))?;
    let preset = params.preset.unwrap_or_else(|| "kdc".to_string());
    // Fail fast on a bad preset instead of burning a worker slot.
    Options::preset(&preset)?;
    // verbose=1: the job forwards events into a channel; this handler
    // drains it onto the connection until the worker drops its sender (job
    // finished), then falls through to the final response line. mpsc
    // senders are wrapped in a mutex only to stay `Sync` for the observer.
    let (observer, events) = if params.verbose {
        let (tx, rx) = mpsc::channel::<Event>();
        let tx = Mutex::new(tx);
        let observer: Arc<dyn Observer> = Arc::new(move |e: &Event| {
            // A poisoned sender mutex means an earlier event callback
            // panicked; dropping this event is strictly better than killing
            // the whole job with a second panic.
            if let Ok(tx) = tx.lock() {
                let _ = tx.send(*e);
            }
        });
        (Some(JobObserver(observer)), Some(rx))
    } else {
        (None, None)
    };
    // Every daemon solve carries a tracer, so `TRACE <id>` works after the
    // fact and the slow-query log can print a phase breakdown.
    let trace = kdc_obs::Tracer::new();
    // A busy refusal drops the spec (and with it the verbose sender), so
    // the `?` below cannot leave a channel dangling.
    let id = submit_checked(
        daemon,
        JobSpec::Solve {
            entry: entry.clone(),
            k: params.k,
            preset: preset.clone(),
            limit: params.limit,
            nodes: params.nodes,
            threads: params.threads,
            observer,
            trace: Some(trace.clone()),
        },
    )?;
    if let Some(rx) = events {
        while let Ok(event) = rx.recv() {
            // A dead client cannot be told about it; keep draining so the
            // job is not blocked on a full channel, skip the writes.
            let _ = writer
                .write_all(format!("{}\n", event_line(&event)).as_bytes())
                .and_then(|()| writer.flush());
        }
    }
    match daemon.queue.wait(id) {
        JobOutcome::Done(outcome) => {
            let elapsed_ns = outcome.elapsed.as_nanos().min(u128::from(u64::MAX)) as u64;
            if elapsed_ns >= daemon.slow_threshold_ns.load(Ordering::Relaxed) {
                daemon.slow_queries.inc();
                let phases: Vec<String> = trace
                    .summary()
                    .iter()
                    .map(|p| format!("{}={}ns/{}", p.name, p.total_ns, p.count))
                    .collect();
                eprintln!(
                    "kdc_service slow query: job={id} graph={graph} preset={preset} \
                     k={} elapsed_ms={} phases=[{}]",
                    params.k,
                    outcome.elapsed.as_millis(),
                    phases.join(" ")
                );
            }
            // Journal newly proven outcomes only: a memo hit was journaled
            // when it was first proven (possibly by an earlier process).
            if outcome.status == Status::Optimal && !outcome.cache.result_memo_hit {
                if let Some(persist) = daemon.persist.get() {
                    let key = kdc_api::SolveKey {
                        k: params.k,
                        preset: preset.clone(),
                    };
                    let solution = kdc::Solution {
                        vertices: outcome.best().unwrap_or_default().to_vec(),
                        status: outcome.status,
                        stats: outcome.stats.clone(),
                    };
                    persist.record_solve(&daemon.cache, &entry, &key, &solution);
                }
            }
            Ok(OkLine::new()
                .field("job", id)
                .field("graph", graph)
                .field("status", status_token(outcome.status))
                .field("size", outcome.size())
                .field(
                    "vertices",
                    render_vertices(outcome.best().unwrap_or_default()),
                )
                .field("cached", outcome.cache.result_memo_hit)
                .field("ctcp_resumed", outcome.cache.ctcp_resumed)
                .field("elapsed_ms", outcome.elapsed.as_millis())
                .field("nodes", outcome.stats.nodes)
                .field("ctcp_removed_v", outcome.stats.ctcp_vertex_removals)
                .field("ctcp_removed_e", outcome.stats.ctcp_edge_removals)
                .field("arena_reuses", outcome.stats.arena_reuses)
                .field("universe_rebuilds", outcome.stats.universe_rebuilds)
                .render())
        }
        JobOutcome::Batch(_) => Err("internal: solve job returned a batch".to_string()),
        JobOutcome::Error(e) => Err(e),
    }
}

/// Parameters of one `MSOLVE` request.
struct MSolveParams {
    k_lo: usize,
    k_hi: usize,
    r: Option<usize>,
    preset: Option<String>,
    limit: Option<Duration>,
    nodes: Option<u64>,
    threads: usize,
}

fn msolve(
    daemon: &Daemon,
    graph: &str,
    params: MSolveParams,
    writer: &mut TcpStream,
) -> Result<String, String> {
    let entry = daemon
        .cache
        .get(graph)
        .ok_or_else(|| format!("no graph named {graph:?} (LOAD it first)"))?;
    let preset = params.preset.unwrap_or_else(|| "kdc".to_string());
    Options::preset(&preset)?;
    // The whole sweep is one job, but answers stream as they land: the
    // job's observer forwards each sub-query completion into a channel and
    // this handler writes them as `RESULT` lines until the worker drops
    // its sender, then falls through to the final OK. Same mpsc pattern as
    // `SOLVE verbose=1`; non-SubDone solver events are dropped at the
    // source so a chatty search cannot stall on a slow client.
    let (tx, rx) = mpsc::channel::<Event>();
    let tx = Mutex::new(tx);
    let observer: Arc<dyn Observer> = Arc::new(move |e: &Event| {
        if matches!(e, Event::SubDone { .. }) {
            if let Ok(tx) = tx.lock() {
                let _ = tx.send(*e);
            }
        }
    });
    let trace = kdc_obs::Tracer::new();
    let id = submit_checked(
        daemon,
        JobSpec::Batch {
            entry: entry.clone(),
            k_lo: params.k_lo,
            k_hi: params.k_hi,
            r: params.r,
            preset,
            limit: params.limit,
            nodes: params.nodes,
            threads: params.threads,
            observer: Some(JobObserver(observer)),
            trace: Some(trace.clone()),
        },
    )?;
    while let Ok(event) = rx.recv() {
        if let Event::SubDone {
            index,
            k,
            size,
            status,
        } = event
        {
            // A dead client cannot be told; keep draining so the job is
            // never blocked on the channel.
            let _ = writer
                .write_all(
                    format!(
                        "RESULT idx={index} k={k} size={size} status={}\n",
                        status_token(status)
                    )
                    .as_bytes(),
                )
                .and_then(|()| writer.flush());
        }
    }
    match daemon.queue.wait(id) {
        JobOutcome::Batch(batch) => {
            // One sweep proves many (k, preset) rows at once; journal the
            // session's whole exported state (replay folds last-wins, so
            // re-journaling rows already on disk is harmless).
            if let Some(persist) = daemon.persist.get() {
                persist.record_session(&daemon.cache, &entry);
            }
            let sizes: Vec<String> = batch
                .outcomes
                .iter()
                .map(|o| o.size().to_string())
                .collect();
            Ok(OkLine::new()
                .field("job", id)
                .field("graph", graph)
                .field("status", status_token(batch.status()))
                .field("subs", batch.outcomes.len())
                .field("sizes", sizes.join(","))
                .field("ctcp_shares", batch.batch_ctcp_shares)
                .field("witness_seeds", batch.batch_witness_seeds)
                .field("memo_dedups", batch.batch_memo_dedups)
                .field("nodes", batch.total_nodes())
                .field("elapsed_ms", batch.elapsed.as_millis())
                .render())
        }
        JobOutcome::Done(_) => Err("internal: batch job returned a single outcome".to_string()),
        JobOutcome::Error(e) => Err(e),
    }
}

fn enumerate(daemon: &Daemon, graph: &str, k: usize, top: usize) -> Result<String, String> {
    let entry = daemon
        .cache
        .get(graph)
        .ok_or_else(|| format!("no graph named {graph:?} (LOAD it first)"))?;
    let id = submit_checked(daemon, JobSpec::Enumerate { entry, k, top })?;
    match daemon.queue.wait(id) {
        JobOutcome::Done(outcome) => {
            let complete = outcome.status == Status::Optimal;
            let sizes: Vec<String> = outcome
                .witnesses
                .iter()
                .map(|c| c.len().to_string())
                .collect();
            let rendered: Vec<String> = outcome
                .witnesses
                .iter()
                .map(|c| render_vertices(c))
                .collect();
            Ok(OkLine::new()
                .field("job", id)
                .field("graph", graph)
                .field("status", if complete { "complete" } else { "cancelled" })
                .field("count", outcome.witnesses.len())
                .field("sizes", sizes.join(","))
                .field("cliques", rendered.join(";"))
                .field("elapsed_ms", outcome.elapsed.as_millis())
                .render())
        }
        JobOutcome::Batch(_) => Err("internal: enumerate job returned a batch".to_string()),
        JobOutcome::Error(e) => Err(e),
    }
}

fn count(daemon: &Daemon, graph: &str, k: usize, min_size: usize) -> Result<String, String> {
    let entry = daemon
        .cache
        .get(graph)
        .ok_or_else(|| format!("no graph named {graph:?} (LOAD it first)"))?;
    let id = submit_checked(daemon, JobSpec::Count { entry, k, min_size })?;
    match daemon.queue.wait(id) {
        JobOutcome::Done(outcome) => {
            let Some(counts) = outcome.counts else {
                return Err("internal: count job returned no counts".to_string());
            };
            // Render only the non-zero sizes as size:count pairs.
            let rendered: Vec<String> = counts
                .counts
                .iter()
                .enumerate()
                .filter(|&(_, &c)| c > 0)
                .map(|(s, &c)| format!("{s}:{c}"))
                .collect();
            Ok(OkLine::new()
                .field("job", id)
                .field("graph", graph)
                .field("max_size", counts.max_size())
                .field("total", counts.total_at_least(min_size))
                .field("counts", rendered.join(","))
                .field("elapsed_ms", outcome.elapsed.as_millis())
                .render())
        }
        JobOutcome::Batch(_) => Err("internal: count job returned a batch".to_string()),
        JobOutcome::Error(e) => Err(e),
    }
}

fn stats(daemon: &Daemon, graph: Option<&str>) -> Result<String, String> {
    match graph {
        Some(name) => {
            let entry = daemon
                .cache
                .get(name)
                .ok_or_else(|| format!("no graph named {name:?}"))?;
            // Force the artifact before sampling counters, so the reported
            // peel_builds already reflects this request's build (if any).
            let degeneracy = entry.session().degeneracy();
            let counters = entry.session().counters();
            Ok(OkLine::new()
                .field("graph", name)
                .field("n", entry.graph().n())
                .field("m", entry.graph().m())
                .field("degeneracy", degeneracy)
                .field("parse_ms", entry.parse_time.as_millis())
                .field("hits", entry.hits())
                .field("peel_builds", counters.peel_builds)
                .field("solves", counters.solves)
                .field("result_hits", counters.result_hits)
                .field("ctcp_builds", counters.ctcp_builds)
                .field("ctcp_resumes", counters.ctcp_resumes)
                .field("ctcp_evictions", counters.ctcp_evictions)
                .field("memo_evictions", counters.memo_evictions)
                .field("recovered_witnesses", counters.recovered_witnesses)
                .field("recovered_memos", counters.recovered_memos)
                .render())
        }
        None => Ok(OkLine::new()
            .field("graphs", daemon.cache.names().join(","))
            .field("parses", daemon.cache.parses())
            .field("jobs", daemon.queue.list().len())
            .field("cache_evictions", daemon.cache.evictions())
            .field(
                "recovered_graphs",
                daemon
                    .persist
                    .get()
                    .map_or(0, |persist| persist.recovered_graphs()),
            )
            .render()),
    }
}

/// One-shot client helper: connect, send one command line, read the
/// response. Any `EVENT` lines streamed by a `verbose=1` solve, any
/// `METRIC` lines streamed by `METRICS`, and any `RESULT` lines streamed
/// by `MSOLVE`, are included (newline-separated) before the final
/// `OK`/`ERR` line, which is always the last line of the returned string.
/// Used by `kdc client` and the tests.
pub fn request(addr: &str, command: &str) -> std::io::Result<String> {
    exchange(TcpStream::connect(addr)?, command)
}

/// The exchange half of [`request`], split out so [`request_with_retry`]
/// can distinguish connect failures (retryable) from mid-exchange errors
/// (not).
fn exchange(mut stream: TcpStream, command: &str) -> std::io::Result<String> {
    stream.write_all(format!("{command}\n").as_bytes())?;
    stream.flush()?;
    let mut reader = BufReader::new(stream);
    let mut lines: Vec<String> = Vec::new();
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            break; // server hung up mid-stream; return what arrived
        }
        let trimmed = line.trim_end().to_string();
        let streamed = trimmed.starts_with("EVENT ")
            || trimmed.starts_with("METRIC ")
            || trimmed.starts_with("RESULT ");
        lines.push(trimmed);
        if !streamed {
            break;
        }
    }
    Ok(lines.join("\n"))
}

/// Whether a reply is the daemon's typed overload refusal (its final line
/// starts with `ERR busy`) — the only *reply* worth retrying on every
/// verb: any other `ERR` is deterministic and will fail identically on
/// every attempt.
fn is_busy_reply(reply: &str) -> bool {
    reply
        .lines()
        .last()
        .is_some_and(|line| line.starts_with("ERR busy"))
}

/// Whether a reply was torn mid-stream: the daemon hung up (or the
/// transport died) before the final `OK`/`ERR` line arrived, leaving only
/// streamed `EVENT`/`METRIC`/`RESULT` lines — or nothing at all.
fn is_torn_reply(reply: &str) -> bool {
    !reply
        .lines()
        .last()
        .is_some_and(|line| line.starts_with("OK") || line.starts_with("ERR"))
}

/// Whether a command's first word is one of the idempotent *read* verbs —
/// `SOLVE` (answers from the session memo / resident state without
/// mutating what a retry would observe), `STATS` and `METRICS`. Only
/// these are safe to re-send after a torn reply or a mid-exchange I/O
/// error: the first attempt may have executed server-side.
fn is_idempotent_verb(command: &str) -> bool {
    command.split_whitespace().next().is_some_and(|verb| {
        verb.eq_ignore_ascii_case("SOLVE")
            || verb.eq_ignore_ascii_case("STATS")
            || verb.eq_ignore_ascii_case("METRICS")
    })
}

/// [`request`] with client-side retry, the contract `kdc client --retries`
/// exposes: up to `retries` extra attempts, retrying on a connect failure
/// (daemon restarting) or a busy reply (admission control) for every verb,
/// and additionally on a torn reply or mid-exchange I/O error for the
/// idempotent read verbs (`SOLVE`/`STATS`/`METRICS`) — a daemon killed or
/// fault-injected mid-write re-answers those identically. Non-idempotent
/// verbs never retry a torn exchange: the first attempt may have had side
/// effects (a `LOAD`, an `UNLOAD`, a `CANCEL`).
///
/// Backoff is decorrelated jitter: each sleep is drawn uniformly from
/// `backoff..3 * previous_sleep` (capped at 64x `backoff`), so a thundering
/// herd of rejected clients decorrelates instead of re-colliding.
pub fn request_with_retry(
    addr: &str,
    command: &str,
    retries: u32,
    backoff: Duration,
) -> std::io::Result<String> {
    use rand::{rngs::SmallRng, RngExt, SeedableRng};
    let base_ms = (backoff.as_millis().min(u128::from(u64::MAX)) as u64).max(1);
    let cap_ms = base_ms.saturating_mul(64);
    let idempotent = is_idempotent_verb(command);
    // Wall-clock + pid seed: retry jitter must differ *between* client
    // processes; within one, reproducibility is worthless.
    let seed = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x5eed)
        ^ (u64::from(std::process::id()) << 32);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut sleep_ms = base_ms;
    let mut attempts_left = retries;
    loop {
        let outcome = match TcpStream::connect(addr) {
            Err(e) => Err(e),
            Ok(stream) => match exchange(stream, command) {
                Ok(reply) if is_busy_reply(&reply) => Ok(reply),
                Ok(reply) if idempotent && is_torn_reply(&reply) => Ok(reply),
                Err(e) if idempotent => Err(e),
                // Success, or a failure this verb must not repeat: final.
                other => return other,
            },
        };
        if attempts_left == 0 {
            return outcome;
        }
        attempts_left -= 1;
        std::thread::sleep(Duration::from_millis(sleep_ms));
        sleep_ms = rng
            .random_range(base_ms..sleep_ms.saturating_mul(3).max(base_ms + 1))
            .min(cap_ms);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdc_graph::named;

    fn write_figure2() -> String {
        let dir = std::env::temp_dir().join(format!("kdc_service_unit_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("figure2.clq");
        kdc_graph::io::write_dimacs(&named::figure2(), &path).unwrap();
        path.to_string_lossy().into_owned()
    }

    #[test]
    fn single_connection_session() {
        let path = write_figure2();
        let handle = Server::bind("127.0.0.1:0", 2).unwrap().spawn().unwrap();
        let addr = handle.addr().to_string();

        let resp = request(&addr, &format!("LOAD {path} AS fig2")).unwrap();
        assert!(resp.starts_with("OK loaded=fig2 n=12 m=26"), "{resp}");

        let resp = request(&addr, "SOLVE fig2 k=2").unwrap();
        assert!(resp.contains("status=optimal"), "{resp}");
        assert!(resp.contains("size=6"), "{resp}");
        assert!(resp.contains("cached=false"), "{resp}");

        // Second identical solve is answered from the memo.
        let resp = request(&addr, "SOLVE fig2 k=2").unwrap();
        assert!(resp.contains("cached=true"), "{resp}");

        let resp = request(&addr, "ENUMERATE fig2 k=1 top=2").unwrap();
        assert!(resp.contains("count=2"), "{resp}");
        assert!(resp.contains("sizes=5,5"), "{resp}");

        let resp = request(&addr, "STATS fig2").unwrap();
        assert!(resp.contains("degeneracy="), "{resp}");
        assert!(resp.contains("peel_builds=1"), "{resp}");
        assert!(
            resp.contains("ctcp_builds=1") && resp.contains("ctcp_resumes=0"),
            "one cold solve builds the resident reducer once: {resp}"
        );

        let resp = request(&addr, "JOBS").unwrap();
        assert!(resp.starts_with("OK count=3"), "{resp}");

        let resp = request(&addr, "UNLOAD fig2").unwrap();
        assert_eq!(resp, "OK unloaded=fig2");
        let resp = request(&addr, "SOLVE fig2 k=2").unwrap();
        assert!(resp.starts_with("ERR "), "{resp}");

        let resp = request(&addr, "SHUTDOWN").unwrap();
        assert_eq!(resp, "OK shutdown=ok mode=abort");
        handle.join().unwrap();
    }

    #[test]
    fn malformed_lines_get_err_without_killing_connection() {
        let handle = Server::bind("127.0.0.1:0", 1).unwrap().spawn().unwrap();
        let addr = handle.addr().to_string();
        // One persistent connection, several bad lines, then a good one.
        let mut stream = TcpStream::connect(&addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut send = |line: &str| {
            stream.write_all(format!("{line}\n").as_bytes()).unwrap();
            let mut resp = String::new();
            reader.read_line(&mut resp).unwrap();
            resp.trim_end().to_string()
        };
        assert!(send("BOGUS").starts_with("ERR "));
        assert!(send("SOLVE nowhere k=1").starts_with("ERR "));
        assert!(send("LOAD /nonexistent.clq AS g").starts_with("ERR "));
        assert!(send("STATS").starts_with("OK graphs= parses=0"));
        assert_eq!(send("SHUTDOWN"), "OK shutdown=ok mode=abort");
        handle.join().unwrap();
    }

    #[test]
    fn busy_reply_detection() {
        assert!(is_busy_reply("ERR busy queue_depth=4 retry_after_ms=50"));
        assert!(is_busy_reply(
            "EVENT type=incumbent size=3\nERR busy queue_depth=1 retry_after_ms=50"
        ));
        assert!(!is_busy_reply("ERR no graph named \"g\""));
        assert!(!is_busy_reply("OK busy=0"));
        assert!(!is_busy_reply(""));
    }

    #[test]
    fn retry_helper_retries_busy_then_succeeds() {
        // A fake daemon: first connection gets a typed busy line, the
        // second gets an OK. The retry helper must surface only the OK.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let replies = ["ERR busy queue_depth=9 retry_after_ms=1\n", "OK done=1\n"];
            let mut served = 0;
            for reply in replies {
                let (mut stream, _) = listener.accept().unwrap();
                let mut line = String::new();
                BufReader::new(stream.try_clone().unwrap())
                    .read_line(&mut line)
                    .unwrap();
                stream.write_all(reply.as_bytes()).unwrap();
                served += 1;
            }
            served
        });
        let reply = request_with_retry(&addr, "SOLVE g k=1", 3, Duration::from_millis(1)).unwrap();
        assert_eq!(reply, "OK done=1");
        assert_eq!(server.join().unwrap(), 2, "exactly one retry");
    }

    #[test]
    fn retry_helper_does_not_retry_deterministic_errors() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let mut line = String::new();
            BufReader::new(stream.try_clone().unwrap())
                .read_line(&mut line)
                .unwrap();
            stream.write_all(b"ERR no graph named \"ghost\"\n").unwrap();
            // A second accept would hang the test; the listener drops here,
            // so a (buggy) retry would surface as a connect error instead.
        });
        let reply = request_with_retry(&addr, "SOLVE ghost k=1", 3, Duration::from_millis(1));
        assert_eq!(reply.unwrap(), "ERR no graph named \"ghost\"");
        server.join().unwrap();
    }

    #[test]
    fn retry_helper_gives_up_after_connect_failures() {
        // Bind-then-drop: the port had a listener moments ago, now refuses.
        let addr = {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap().to_string()
        };
        let t0 = std::time::Instant::now();
        let result = request_with_retry(&addr, "JOBS", 2, Duration::from_millis(1));
        assert!(result.is_err(), "no listener must surface the io error");
        assert!(
            t0.elapsed() >= Duration::from_millis(2),
            "two backoff sleeps must have happened"
        );
    }

    #[test]
    fn unload_missing_graph_is_an_error() {
        let handle = Server::bind("127.0.0.1:0", 1).unwrap().spawn().unwrap();
        let addr = handle.addr().to_string();
        assert!(request(&addr, "UNLOAD ghost").unwrap().starts_with("ERR "));
        assert!(request(&addr, "CANCEL 42").unwrap().starts_with("ERR "));
        request(&addr, "SHUTDOWN").unwrap();
        handle.join().unwrap();
    }
}
