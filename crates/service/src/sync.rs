//! Rank-checked, poison-tolerant lock wrappers.
//!
//! [`TrackedMutex`] and [`TrackedRwLock`] enforce the lock hierarchy
//! declared in the repository's `LOCK_ORDER.md` at runtime in debug builds:
//! every lock carries a rank, a thread-local stack records the ranks the
//! current thread holds, and acquiring a lock whose rank is not strictly
//! greater than every held rank panics with a description of the inversion
//! *before* blocking on the lock — turning a potential cross-thread
//! deadlock into a deterministic test failure. Release builds compile the
//! wrappers down to plain `std::sync` primitives with no thread-local
//! bookkeeping (the rank and name are not even stored).
//!
//! Both wrappers also recover from poisoning instead of panicking: a worker
//! that panicked mid-job must not take the whole daemon down with it, and
//! every critical section guarded by these locks keeps its data structurally
//! consistent at each panic point (single-call map/queue operations), so the
//! poison flag carries no information worth dying for. The static half of
//! the same contract is `kdc_lint`'s `lock_order` rule, which checks the
//! declared hierarchy against every `.lock()`/`.read()`/`.write()` site in
//! the tree.

use std::ops::{Deref, DerefMut};
use std::sync::{
    Condvar, Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// Lock ranks, outermost first. Must mirror `LOCK_ORDER.md` at the
/// repository root; `kdc_lint`'s `lock_order` rule checks the source tree
/// against that manifest.
pub mod rank {
    /// `JobQueue::state` — the job queue mutex (held across submit/finish).
    pub const JOB_QUEUE: u8 = 1;
    /// `GraphCache::entries` — the name-keyed graph cache map.
    pub const GRAPH_CACHE: u8 = 2;
    /// `Store::store` — the `kdc_store` journal/snapshot writer mutex.
    /// Near-leaf (rank 8, after the solver-side ranks 3–7): appends and
    /// compaction collect their data *before* locking and only do file
    /// I/O while holding it. The store crate is std-only and cannot
    /// depend on [`super::TrackedMutex`], so this rank is enforced
    /// statically by the `lock_order` lint only.
    pub const STORE: u8 = 8;
    /// `Registry::series` — the `kdc_obs` metrics registry map. A strict
    /// leaf (rank 9): `register_*` and exposition rendering never call
    /// out while holding it. Like [`STORE`], lint-enforced only.
    pub const OBS_REGISTRY: u8 = 9;
}

#[cfg(debug_assertions)]
mod tracking {
    use std::cell::RefCell;

    thread_local! {
        /// Ranks (and names, for diagnostics) of the locks this thread holds.
        static HELD: RefCell<Vec<(u8, &'static str)>> = const { RefCell::new(Vec::new()) };
    }

    /// Records an acquisition; panics on a hierarchy inversion (acquiring a
    /// rank that is not strictly above every rank already held).
    pub(super) fn acquire(rank: u8, name: &'static str) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(&(held_rank, held_name)) = held.iter().find(|&&(r, _)| r >= rank) {
                // kdc-lint: allow(no_panic) — the checker's entire job is to
                // panic loudly (debug builds only) on a hierarchy inversion.
                panic!(
                    "lock hierarchy inversion: acquiring {name} (rank {rank}) while \
                     holding {held_name} (rank {held_rank}); see LOCK_ORDER.md"
                );
            }
            held.push((rank, name));
        });
    }

    /// Removes the most recent acquisition of `rank` from the stack.
    pub(super) fn release(rank: u8) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(i) = held.iter().rposition(|&(r, _)| r == rank) {
                held.remove(i);
            }
        });
    }
}

/// A [`Mutex`] that participates in the declared lock hierarchy (debug
/// builds) and recovers from poisoning instead of panicking.
#[derive(Debug)]
pub struct TrackedMutex<T> {
    inner: Mutex<T>,
    #[cfg(debug_assertions)]
    rank: u8,
    #[cfg(debug_assertions)]
    name: &'static str,
}

impl<T> TrackedMutex<T> {
    /// Wraps `value` with hierarchy rank `rank` (see [`rank`]); `name` is
    /// used in inversion diagnostics only.
    pub fn new(rank: u8, name: &'static str, value: T) -> Self {
        #[cfg(not(debug_assertions))]
        let _ = (rank, name);
        TrackedMutex {
            inner: Mutex::new(value),
            #[cfg(debug_assertions)]
            rank,
            #[cfg(debug_assertions)]
            name,
        }
    }

    /// Locks, checking the hierarchy first (debug builds) and recovering the
    /// data from a poisoned lock instead of panicking.
    pub fn lock(&self) -> TrackedMutexGuard<'_, T> {
        #[cfg(debug_assertions)]
        tracking::acquire(self.rank, self.name);
        TrackedMutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
            #[cfg(debug_assertions)]
            rank: self.rank,
        }
    }
}

/// RAII guard of a [`TrackedMutex`]; releases the hierarchy slot on drop.
#[derive(Debug)]
pub struct TrackedMutexGuard<'a, T> {
    /// `Some` except transiently inside [`TrackedMutexGuard::wait`], which
    /// takes the inner guard out to hand it to the condvar.
    inner: Option<MutexGuard<'a, T>>,
    #[cfg(debug_assertions)]
    rank: u8,
}

impl<T> TrackedMutexGuard<'_, T> {
    /// Atomically releases the lock, waits on `cv`, and reacquires before
    /// returning — the [`Condvar`] protocol. The hierarchy slot stays held
    /// across the wait: the thread reacquires the same lock before
    /// continuing, and the stack is per-thread, so no inversion can hide
    /// behind a wait.
    pub fn wait(&mut self, cv: &Condvar) {
        if let Some(guard) = self.inner.take() {
            self.inner = Some(cv.wait(guard).unwrap_or_else(PoisonError::into_inner));
        }
    }
}

impl<T> Deref for TrackedMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // kdc-lint: allow(no_panic) — `inner` is only vacated inside
        // `wait`, which refills it before returning; no safe caller can
        // observe the `None`.
        self.inner.as_ref().expect("guard taken")
    }
}

impl<T> DerefMut for TrackedMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // kdc-lint: allow(no_panic) — see `Deref`.
        self.inner.as_mut().expect("guard taken")
    }
}

impl<T> Drop for TrackedMutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the std guard before the hierarchy slot so the slot never
        // outlives the actual critical section.
        self.inner = None;
        #[cfg(debug_assertions)]
        tracking::release(self.rank);
    }
}

/// An [`RwLock`] that participates in the declared lock hierarchy (debug
/// builds) and recovers from poisoning instead of panicking. Read and write
/// acquisitions are ranked identically: reacquiring a lock the thread
/// already holds — even read-after-read — is flagged, because a writer
/// queued between the two reads deadlocks both.
#[derive(Debug)]
pub struct TrackedRwLock<T> {
    inner: RwLock<T>,
    #[cfg(debug_assertions)]
    rank: u8,
    #[cfg(debug_assertions)]
    name: &'static str,
}

impl<T> TrackedRwLock<T> {
    /// Wraps `value` with hierarchy rank `rank` (see [`rank`]).
    pub fn new(rank: u8, name: &'static str, value: T) -> Self {
        #[cfg(not(debug_assertions))]
        let _ = (rank, name);
        TrackedRwLock {
            inner: RwLock::new(value),
            #[cfg(debug_assertions)]
            rank,
            #[cfg(debug_assertions)]
            name,
        }
    }

    /// Shared lock, hierarchy-checked, poison-recovering.
    pub fn read(&self) -> TrackedReadGuard<'_, T> {
        #[cfg(debug_assertions)]
        tracking::acquire(self.rank, self.name);
        TrackedReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
            #[cfg(debug_assertions)]
            rank: self.rank,
        }
    }

    /// Exclusive lock, hierarchy-checked, poison-recovering.
    pub fn write(&self) -> TrackedWriteGuard<'_, T> {
        #[cfg(debug_assertions)]
        tracking::acquire(self.rank, self.name);
        TrackedWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
            #[cfg(debug_assertions)]
            rank: self.rank,
        }
    }
}

/// RAII shared guard of a [`TrackedRwLock`].
#[derive(Debug)]
pub struct TrackedReadGuard<'a, T> {
    inner: RwLockReadGuard<'a, T>,
    #[cfg(debug_assertions)]
    rank: u8,
}

impl<T> Deref for TrackedReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> Drop for TrackedReadGuard<'_, T> {
    fn drop(&mut self) {
        #[cfg(debug_assertions)]
        tracking::release(self.rank);
    }
}

/// RAII exclusive guard of a [`TrackedRwLock`].
#[derive(Debug)]
pub struct TrackedWriteGuard<'a, T> {
    inner: RwLockWriteGuard<'a, T>,
    #[cfg(debug_assertions)]
    rank: u8,
}

impl<T> Deref for TrackedWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> DerefMut for TrackedWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T> Drop for TrackedWriteGuard<'_, T> {
    fn drop(&mut self) {
        #[cfg(debug_assertions)]
        tracking::release(self.rank);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_acquisition_is_fine() {
        let a = TrackedMutex::new(1, "a", 0u32);
        let b = TrackedMutex::new(2, "b", 0u32);
        let ga = a.lock();
        let gb = b.lock();
        drop(gb);
        drop(ga);
        // Sequential (non-nested) reacquisition at any rank is fine too.
        drop(b.lock());
        drop(a.lock());
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "lock hierarchy inversion")]
    fn inverted_acquisition_panics_in_debug() {
        let a = TrackedMutex::new(1, "a", 0u32);
        let b = TrackedMutex::new(2, "b", 0u32);
        let _gb = b.lock();
        let _ga = a.lock(); // rank 1 acquired while rank 2 is held
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "lock hierarchy inversion")]
    fn recursive_acquisition_panics_instead_of_deadlocking() {
        let a = TrackedMutex::new(1, "a", 0u32);
        let _g1 = a.lock();
        let _g2 = a.lock(); // would deadlock; the checker fires first
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "lock hierarchy inversion")]
    fn rwlock_participates_in_the_hierarchy() {
        let cache = TrackedRwLock::new(2, "cache", 0u32);
        let queue = TrackedMutex::new(1, "queue", 0u32);
        let _gc = cache.read();
        let _gq = queue.lock(); // queue (rank 1) under cache (rank 2)
    }

    #[test]
    fn poisoned_mutex_recovers_with_data_intact() {
        let m = std::sync::Arc::new(TrackedMutex::new(1, "m", vec![1, 2, 3]));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), vec![1, 2, 3], "data survives the poison");
    }

    #[test]
    fn poisoned_rwlock_recovers() {
        let l = std::sync::Arc::new(TrackedRwLock::new(2, "l", 7u32));
        let l2 = l.clone();
        let _ = std::thread::spawn(move || {
            let _g = l2.write();
            panic!("poison it");
        })
        .join();
        assert_eq!(*l.read(), 7);
        *l.write() = 8;
        assert_eq!(*l.read(), 8);
    }

    #[test]
    fn condvar_wait_roundtrips_the_guard() {
        use std::sync::Arc;
        let pair = Arc::new((TrackedMutex::new(1, "cv", false), Condvar::new()));
        let pair2 = pair.clone();
        let waiter = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut ready = lock.lock();
            while !*ready {
                ready.wait(cv);
            }
            *ready
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        assert!(waiter.join().unwrap());
    }
}
