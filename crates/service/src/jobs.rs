//! Job queue and fixed worker pool.
//!
//! Connection threads [`JobQueue::submit`] work and block in
//! [`JobQueue::wait`]; a fixed set of worker threads pops jobs FIFO and runs
//! them through the existing `kdc` entry points ([`kdc::Solver`],
//! [`kdc::decompose::solve_decomposed`], [`kdc::topr::top_r_maximal`]). All
//! coordination is one `Mutex` around the queue state plus two `Condvar`s
//! (`work_ready` wakes idle workers, `job_done` wakes waiters), so the pool
//! is std-only.
//!
//! Cancellation is cooperative: every job owns a [`CancelFlag`] that is
//! threaded into the solver config, and `CANCEL <id>` simply raises it —
//! the branch-and-bound engine notices at its next node. Per-job deadlines
//! reuse the solver's own `time_limit`.

use crate::cache::{GraphEntry, SolveKey};
use kdc::{decompose, topr, CancelFlag, Solution, Solver, SolverConfig, Status};
use kdc_graph::VertexId;
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// What a job should run.
#[derive(Clone, Debug)]
pub enum JobSpec {
    /// An exact maximum k-defective clique solve.
    Solve {
        /// Cached graph to solve on.
        entry: Arc<GraphEntry>,
        /// The k of the k-defective clique.
        k: usize,
        /// Preset name (`"kdc"`, `"kdc_t"`, `"kdbb"`, `"madec"`).
        preset: String,
        /// Per-job wall-clock deadline.
        limit: Option<Duration>,
        /// 1 = sequential solver, otherwise parallel ego decomposition
        /// (0 = all cores).
        threads: usize,
    },
    /// Top-r maximal k-defective clique enumeration.
    Enumerate {
        /// Cached graph to enumerate on.
        entry: Arc<GraphEntry>,
        /// The k of the k-defective clique.
        k: usize,
        /// Pool size r.
        top: usize,
    },
}

impl JobSpec {
    /// Compact single-token description for `JOBS` listings.
    fn describe(&self) -> String {
        match self {
            JobSpec::Solve {
                entry, k, preset, ..
            } => format!("solve({},k={k},preset={preset})", entry.name),
            JobSpec::Enumerate { entry, k, top } => {
                format!("enumerate({},k={k},top={top})", entry.name)
            }
        }
    }
}

/// Lifecycle of a job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobState {
    /// Submitted, not yet picked up by a worker.
    Queued,
    /// A worker is executing it.
    Running,
    /// Finished (see the outcome for the solve status).
    Done,
    /// Cancelled before or during execution.
    Cancelled,
    /// The job itself failed (e.g. unknown preset).
    Failed,
}

impl JobState {
    /// Lower-case protocol token.
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Cancelled => "cancelled",
            JobState::Failed => "failed",
        }
    }
}

/// Result of a finished job.
#[derive(Clone, Debug)]
pub enum JobOutcome {
    /// A solve finished (possibly best-effort); `from_cache` is true when
    /// the answer came from the per-graph result memo without searching.
    Solve {
        /// The solution, including status and search statistics.
        solution: Solution,
        /// Whether the result memo answered without running the solver.
        from_cache: bool,
        /// Wall-clock execution time on the worker.
        elapsed: Duration,
    },
    /// An enumeration finished.
    Enumerate {
        /// The r largest maximal k-defective cliques, size-descending.
        cliques: Vec<Vec<VertexId>>,
        /// False when the job was cancelled mid-search: the clique list may
        /// be truncated and must not be read as the full top-r answer.
        complete: bool,
        /// Wall-clock execution time on the worker.
        elapsed: Duration,
    },
    /// The job failed before producing a result.
    Error(String),
}

/// One row of a `JOBS` listing.
#[derive(Clone, Debug)]
pub struct JobInfo {
    /// Job id (monotonically increasing from 1).
    pub id: u64,
    /// Current lifecycle state.
    pub state: JobState,
    /// Compact description, e.g. `solve(g1,k=2,preset=kdc)`.
    pub description: String,
}

struct JobRecord {
    state: JobState,
    description: String,
    cancel: CancelFlag,
    outcome: Option<JobOutcome>,
}

#[derive(Default)]
struct QueueState {
    next_id: u64,
    queue: VecDeque<(u64, JobSpec)>,
    records: HashMap<u64, JobRecord>,
    /// Ids in submission order, for stable `JOBS` listings.
    history: Vec<u64>,
    shutdown: bool,
}

/// The shared queue: submit/wait/cancel/list on one mutex, two condvars.
#[derive(Default)]
pub struct JobQueue {
    state: Mutex<QueueState>,
    work_ready: Condvar,
    job_done: Condvar,
}

impl JobQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueues `spec`; returns the job id immediately. After
    /// [`JobQueue::shutdown`] the job is finalized as cancelled on the spot
    /// (no worker will ever pop it), so waiters never block forever.
    pub fn submit(&self, spec: JobSpec) -> u64 {
        let mut state = self.state.lock().expect("poisoned");
        state.next_id += 1;
        let id = state.next_id;
        let shutting_down = state.shutdown;
        state.records.insert(
            id,
            JobRecord {
                state: if shutting_down {
                    JobState::Cancelled
                } else {
                    JobState::Queued
                },
                description: spec.describe(),
                cancel: CancelFlag::new(),
                outcome: shutting_down
                    .then(|| JobOutcome::Error("server shutting down".to_string())),
            },
        );
        state.history.push(id);
        if !shutting_down {
            state.queue.push_back((id, spec));
        }
        drop(state);
        self.work_ready.notify_one();
        id
    }

    /// Blocks until job `id` reaches a terminal state; returns its outcome.
    pub fn wait(&self, id: u64) -> JobOutcome {
        let mut state = self.state.lock().expect("poisoned");
        loop {
            match state.records.get(&id) {
                None => return JobOutcome::Error(format!("unknown job {id}")),
                Some(record) => {
                    if let Some(outcome) = &record.outcome {
                        return outcome.clone();
                    }
                }
            }
            state = self.job_done.wait(state).expect("poisoned");
        }
    }

    /// Raises job `id`'s cancel flag. A queued job is finalized immediately;
    /// a running one aborts at the engine's next branch-and-bound node.
    pub fn cancel(&self, id: u64) -> Result<JobState, String> {
        let mut state = self.state.lock().expect("poisoned");
        let Some(record) = state.records.get(&id) else {
            return Err(format!("unknown job {id}"));
        };
        record.cancel.cancel();
        let was = record.state;
        if was == JobState::Queued {
            // The worker that eventually pops it will see the raised flag,
            // but finalize now so JOBS/wait reflect the cancellation
            // without waiting for a free worker.
            let record = state.records.get_mut(&id).expect("checked above");
            record.state = JobState::Cancelled;
            record.outcome = Some(JobOutcome::Error(format!(
                "job {id} cancelled while queued"
            )));
            drop(state);
            self.job_done.notify_all();
        }
        Ok(was)
    }

    /// Every job ever submitted, in submission order.
    pub fn list(&self) -> Vec<JobInfo> {
        let state = self.state.lock().expect("poisoned");
        state
            .history
            .iter()
            .map(|id| {
                let record = &state.records[id];
                JobInfo {
                    id: *id,
                    state: record.state,
                    description: record.description.clone(),
                }
            })
            .collect()
    }

    /// Stops the pool: cancels everything outstanding and wakes all workers
    /// and waiters. Idempotent.
    pub fn shutdown(&self) {
        let mut state = self.state.lock().expect("poisoned");
        state.shutdown = true;
        for record in state.records.values_mut() {
            record.cancel.cancel();
            if record.state == JobState::Queued {
                record.state = JobState::Cancelled;
                record.outcome = Some(JobOutcome::Error("server shutting down".to_string()));
            }
        }
        state.queue.clear();
        drop(state);
        self.work_ready.notify_all();
        self.job_done.notify_all();
    }

    /// Worker side: blocks for the next job, or `None` on shutdown.
    fn next_job(&self) -> Option<(u64, JobSpec, CancelFlag)> {
        let mut state = self.state.lock().expect("poisoned");
        loop {
            if state.shutdown {
                return None;
            }
            if let Some((id, spec)) = state.queue.pop_front() {
                let record = state.records.get_mut(&id).expect("record exists");
                if record.state != JobState::Queued {
                    // Cancelled while queued; already finalized.
                    continue;
                }
                record.state = JobState::Running;
                let flag = record.cancel.clone();
                return Some((id, spec, flag));
            }
            state = self.work_ready.wait(state).expect("poisoned");
        }
    }

    /// Worker side: publishes the outcome and wakes waiters.
    fn finish(&self, id: u64, state_after: JobState, outcome: JobOutcome) {
        let mut state = self.state.lock().expect("poisoned");
        if let Some(record) = state.records.get_mut(&id) {
            record.state = state_after;
            record.outcome = Some(outcome);
        }
        drop(state);
        self.job_done.notify_all();
    }
}

/// Workers may not spawn unbounded decomposition threads on a client's
/// say-so; `threads=` beyond this is clamped (0 still means "all cores").
const MAX_SOLVE_THREADS: usize = 256;

/// Executes one job spec with the given cancel flag; pure function of its
/// inputs so it is unit-testable without a pool.
pub fn run_job(spec: &JobSpec, cancel: CancelFlag) -> JobOutcome {
    let t0 = Instant::now();
    match spec {
        JobSpec::Solve {
            entry,
            k,
            preset,
            limit,
            threads,
        } => {
            let memo_key = SolveKey {
                k: *k,
                preset: preset.clone(),
            };
            if let Some(solution) = entry.cached_result(&memo_key) {
                return JobOutcome::Solve {
                    solution,
                    from_cache: true,
                    elapsed: t0.elapsed(),
                };
            }
            let mut config = match SolverConfig::from_preset(preset) {
                Ok(c) => c,
                Err(e) => return JobOutcome::Error(e),
            };
            config.time_limit = *limit;
            config.cancel = Some(cancel);
            // Warm artifact reuse: the solver's heuristic/decomposition
            // phase runs on the cached peeling instead of re-peeling, its
            // preprocessing resumes the resident CTCP reducer for this
            // (k, rules) pair, and the best known witness seeds the lower
            // bound so the resumed reducer state is sound.
            config.shared_peeling = Some(entry.peeling());
            config.shared_ctcp = Some(entry.ctcp_state(crate::cache::CtcpKey {
                k: *k,
                core_rule: config.enable_rr5,
                truss_rule: config.enable_rr6,
            }));
            config.seed_solution = entry.best_known(*k);
            entry.record_solve();
            let solution = if *threads == 1 {
                Solver::new(&entry.graph, *k, config).solve()
            } else {
                let threads = (*threads).min(MAX_SOLVE_THREADS);
                decompose::solve_decomposed(&entry.graph, *k, config, threads)
            };
            entry.record_best_known(*k, &solution.vertices);
            if solution.is_optimal() {
                entry.store_result(memo_key, solution.clone());
            }
            JobOutcome::Solve {
                solution,
                from_cache: false,
                elapsed: t0.elapsed(),
            }
        }
        JobSpec::Enumerate { entry, k, top } => {
            let config = SolverConfig::kdc().with_cancel(cancel.clone());
            let cliques = topr::top_r_maximal(&entry.graph, *k, *top, config);
            JobOutcome::Enumerate {
                cliques,
                // The sticky flag is the only cancellation signal topr
                // exposes; raised means the pool may be truncated.
                complete: !cancel.is_cancelled(),
                elapsed: t0.elapsed(),
            }
        }
    }
}

/// A fixed pool of worker threads draining a shared [`JobQueue`].
pub struct WorkerPool {
    queue: Arc<JobQueue>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` threads (at least one) on `queue`.
    pub fn new(queue: Arc<JobQueue>, workers: usize) -> Self {
        let workers = workers.max(1);
        let handles = (0..workers)
            .map(|i| {
                let queue = queue.clone();
                std::thread::Builder::new()
                    .name(format!("kdc-worker-{i}"))
                    .spawn(move || worker_loop(&queue))
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool { queue, handles }
    }

    /// Shuts the queue down and joins every worker.
    pub fn join(self) {
        self.queue.shutdown();
        for handle in self.handles {
            let _ = handle.join();
        }
    }
}

fn worker_loop(queue: &JobQueue) {
    while let Some((id, spec, cancel)) = queue.next_job() {
        if cancel.is_cancelled() {
            queue.finish(
                id,
                JobState::Cancelled,
                JobOutcome::Error(format!("job {id} cancelled")),
            );
            continue;
        }
        // Panic isolation: a job that panics must still publish an outcome
        // (or its waiter blocks forever) and must not kill the pool worker.
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_job(&spec, cancel)))
                .unwrap_or_else(|panic| {
                    let msg = panic
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| panic.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "unknown panic".to_string());
                    JobOutcome::Error(format!("job {id} panicked: {msg}"))
                });
        let state_after = match &outcome {
            JobOutcome::Solve { solution, .. } if solution.status == Status::Cancelled => {
                JobState::Cancelled
            }
            JobOutcome::Enumerate {
                complete: false, ..
            } => JobState::Cancelled,
            JobOutcome::Error(_) => JobState::Failed,
            _ => JobState::Done,
        };
        queue.finish(id, state_after, outcome);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::GraphCache;
    use kdc_graph::{gen, named};

    fn figure2_entry() -> Arc<GraphEntry> {
        let cache = GraphCache::new();
        cache.insert("fig2", named::figure2())
    }

    #[test]
    fn pool_runs_solve_jobs_and_memoizes() {
        let entry = figure2_entry();
        let queue = Arc::new(JobQueue::new());
        let pool = WorkerPool::new(queue.clone(), 2);
        let spec = JobSpec::Solve {
            entry: entry.clone(),
            k: 2,
            preset: "kdc".into(),
            limit: None,
            threads: 1,
        };
        let first = queue.submit(spec.clone());
        let JobOutcome::Solve {
            solution,
            from_cache,
            ..
        } = queue.wait(first)
        else {
            panic!("expected a solve outcome");
        };
        assert_eq!(solution.size(), 6);
        assert!(!from_cache);

        let second = queue.submit(spec);
        let JobOutcome::Solve {
            solution,
            from_cache,
            ..
        } = queue.wait(second)
        else {
            panic!("expected a solve outcome");
        };
        assert_eq!(solution.size(), 6);
        assert!(from_cache, "second identical solve must hit the memo");
        assert_eq!(entry.counters().2, 1, "only one real solve executed");
        pool.join();
    }

    #[test]
    fn queued_job_cancel_is_immediate() {
        let entry = figure2_entry();
        let queue = Arc::new(JobQueue::new());
        // No workers: the job stays queued forever unless cancel finalizes it.
        let id = queue.submit(JobSpec::Solve {
            entry,
            k: 1,
            preset: "kdc".into(),
            limit: None,
            threads: 1,
        });
        assert_eq!(queue.cancel(id).unwrap(), JobState::Queued);
        assert!(matches!(queue.wait(id), JobOutcome::Error(_)));
        assert_eq!(queue.list()[0].state, JobState::Cancelled);
        assert!(queue.cancel(999).is_err());
    }

    #[test]
    fn running_job_cancel_aborts_search() {
        let mut rng = gen::seeded_rng(42);
        let cache = GraphCache::new();
        let entry = cache.insert("hard", gen::gnp(220, 0.5, &mut rng));
        let queue = Arc::new(JobQueue::new());
        let pool = WorkerPool::new(queue.clone(), 1);
        let id = queue.submit(JobSpec::Solve {
            entry,
            k: 12,
            preset: "kdc".into(),
            limit: None,
            threads: 1,
        });
        // Wait for it to leave the queue, then cancel mid-search.
        loop {
            let info = &queue.list()[0];
            if info.state != JobState::Queued {
                break;
            }
            std::thread::yield_now();
        }
        queue.cancel(id).unwrap();
        let JobOutcome::Solve { solution, .. } = queue.wait(id) else {
            panic!("expected a solve outcome");
        };
        assert_eq!(solution.status, Status::Cancelled);
        assert_eq!(queue.list()[0].state, JobState::Cancelled);
        pool.join();
    }

    #[test]
    fn unknown_preset_fails_the_job() {
        let entry = figure2_entry();
        let queue = Arc::new(JobQueue::new());
        let pool = WorkerPool::new(queue.clone(), 1);
        let id = queue.submit(JobSpec::Solve {
            entry,
            k: 1,
            preset: "nope".into(),
            limit: None,
            threads: 1,
        });
        assert!(matches!(queue.wait(id), JobOutcome::Error(_)));
        assert_eq!(queue.list()[0].state, JobState::Failed);
        pool.join();
    }

    #[test]
    fn enumerate_jobs_work() {
        let entry = figure2_entry();
        let queue = Arc::new(JobQueue::new());
        let pool = WorkerPool::new(queue.clone(), 1);
        let id = queue.submit(JobSpec::Enumerate {
            entry,
            k: 1,
            top: 2,
        });
        let JobOutcome::Enumerate { cliques, .. } = queue.wait(id) else {
            panic!("expected an enumerate outcome");
        };
        assert_eq!(cliques.len(), 2);
        assert_eq!(cliques[0].len(), 5);
        pool.join();
    }

    #[test]
    fn submit_after_shutdown_fails_fast() {
        let entry = figure2_entry();
        let queue = Arc::new(JobQueue::new());
        let pool = WorkerPool::new(queue.clone(), 1);
        queue.shutdown();
        pool.join();
        // No workers remain; wait() must still return, not block forever.
        let id = queue.submit(JobSpec::Solve {
            entry,
            k: 1,
            preset: "kdc".into(),
            limit: None,
            threads: 1,
        });
        assert!(matches!(queue.wait(id), JobOutcome::Error(_)));
        let listed = queue.list();
        assert_eq!(listed.last().unwrap().state, JobState::Cancelled);
    }

    #[test]
    fn cancelled_enumerate_is_not_reported_complete() {
        let mut rng = gen::seeded_rng(77);
        let cache = GraphCache::new();
        // Dense enough that full maximal enumeration far outlives the poll
        // loop below.
        let entry = cache.insert("dense", gen::gnp(80, 0.5, &mut rng));
        let queue = Arc::new(JobQueue::new());
        let pool = WorkerPool::new(queue.clone(), 1);
        let id = queue.submit(JobSpec::Enumerate {
            entry,
            k: 2,
            top: usize::MAX,
        });
        loop {
            if queue.list()[0].state != JobState::Queued {
                break;
            }
            std::thread::yield_now();
        }
        queue.cancel(id).unwrap();
        let JobOutcome::Enumerate { complete, .. } = queue.wait(id) else {
            panic!("expected an enumerate outcome");
        };
        assert!(!complete, "truncated enumeration must not claim completion");
        assert_eq!(queue.list()[0].state, JobState::Cancelled);
        pool.join();
    }

    #[test]
    fn shutdown_cancels_queued_jobs() {
        let entry = figure2_entry();
        let queue = Arc::new(JobQueue::new());
        let id = queue.submit(JobSpec::Solve {
            entry,
            k: 1,
            preset: "kdc".into(),
            limit: None,
            threads: 1,
        });
        let pool = WorkerPool::new(queue.clone(), 1);
        queue.shutdown();
        pool.join();
        // The queued job was either finished by a racing worker or
        // cancelled by shutdown — never left pending.
        let state = queue.list()[0].state;
        assert!(
            state == JobState::Cancelled || state == JobState::Done,
            "job {id} left in {state:?}"
        );
    }
}
